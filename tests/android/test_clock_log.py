"""Tests for the virtual clock and the logcat buffer."""

import pytest
from hypothesis import given, strategies as st

from repro.android.clock import Clock
from repro.android.jtypes import NullPointerException, frame, sigabrt
from repro.android.log import Level, Logcat, _format_time


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now_ms() == 0.0

    def test_sleep_advances(self):
        clock = Clock()
        clock.sleep(100)
        clock.sleep(250)
        assert clock.now_ms() == 350.0

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Clock().sleep(-1)

    def test_advance_to_past_is_noop(self):
        clock = Clock(start_ms=500)
        clock.advance_to(100)
        assert clock.now_ms() == 500

    def test_callbacks_fire_in_deadline_order(self):
        clock = Clock()
        fired = []
        clock.call_after(30, lambda: fired.append("b"))
        clock.call_after(10, lambda: fired.append("a"))
        clock.call_after(50, lambda: fired.append("c"))
        clock.sleep(40)
        assert fired == ["a", "b"]
        clock.sleep(20)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_registration_order(self):
        clock = Clock()
        fired = []
        clock.call_after(10, lambda: fired.append(1))
        clock.call_after(10, lambda: fired.append(2))
        clock.sleep(10)
        assert fired == [1, 2]

    def test_callback_sees_its_own_deadline(self):
        clock = Clock()
        seen = []
        clock.call_after(25, lambda: seen.append(clock.now_ms()))
        clock.sleep(100)
        assert seen == [25.0]

    def test_cancel(self):
        clock = Clock()
        fired = []
        handle = clock.call_after(10, lambda: fired.append(1))
        handle.cancel()
        clock.sleep(20)
        assert fired == []
        assert handle.cancelled

    def test_pending_count_excludes_cancelled(self):
        clock = Clock()
        h1 = clock.call_after(10, lambda: None)
        clock.call_after(20, lambda: None)
        h1.cancel()
        assert clock.pending_count() == 1

    def test_drain_runs_everything(self):
        clock = Clock()
        fired = []
        clock.call_after(1000, lambda: fired.append(1))
        clock.call_after(9999, lambda: fired.append(2))
        clock.drain()
        assert fired == [1, 2]

    def test_callback_scheduling_callback(self):
        clock = Clock()
        fired = []

        def first():
            fired.append("first")
            clock.call_after(5, lambda: fired.append("second"))

        clock.call_after(10, first)
        clock.sleep(20)
        assert fired == ["first", "second"]

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=20))
    def test_time_is_monotonic(self, durations):
        clock = Clock()
        last = clock.now_ms()
        for duration in durations:
            clock.sleep(duration)
            assert clock.now_ms() >= last
            last = clock.now_ms()


class TestTimeFormat:
    def test_epoch(self):
        assert _format_time(0) == "06-20 10:00:00.000"

    def test_milliseconds(self):
        assert _format_time(1234) == "06-20 10:00:01.234"

    def test_hours_roll(self):
        assert _format_time(3600 * 1000 * 3 + 61_500) == "06-20 13:01:01.500"

    def test_day_roll(self):
        # 14 hours past 10:00 crosses midnight.
        assert _format_time(14 * 3600 * 1000).startswith("06-21 00:")


class TestLogcat:
    def make(self, capacity=None):
        clock = Clock()
        return clock, Logcat(clock, capacity=capacity)

    def test_write_and_dump(self):
        clock, log = self.make()
        log.i("MyTag", "hello", pid=42)
        line = log.dump()
        assert "I MyTag: hello" in line
        assert "   42 " in line

    def test_multiline_messages_become_multiple_records(self):
        _, log = self.make()
        log.e("T", "line1\nline2")
        assert len(log) == 2

    def test_fatal_exception_block(self):
        _, log = self.make()
        exc = NullPointerException("null deref")
        exc.frames = [frame("com.a.B", "onCreate", 10)]
        log.fatal_exception("com.a", 77, exc)
        text = log.dump()
        assert "FATAL EXCEPTION: main" in text
        assert "Process: com.a, PID: 77" in text
        assert "java.lang.NullPointerException: null deref" in text
        assert "at com.a.B.onCreate(B.java:10)" in text
        assert all("E AndroidRuntime:" in line for line in log.dump_lines())

    def test_anr_block(self):
        _, log = self.make()
        log.anr("com.a", 5, "com.a/.Main", "blocked 9000ms")
        text = log.dump()
        assert "ANR in com.a (com.a/.Main)" in text
        assert "Reason: blocked 9000ms" in text

    def test_security_denial(self):
        _, log = self.make()
        log.security_denial(0, "broadcasting protected action X")
        assert "java.lang.SecurityException: Permission Denial:" in log.dump()

    def test_native_crash(self):
        _, log = self.make()
        log.native_crash(sigabrt("libsensorservice.so"), pid=3)
        text = log.dump()
        assert "Fatal signal 6 (SIGABRT)" in text
        assert "*** ***" in text

    def test_reboot_marker(self):
        _, log = self.make()
        log.reboot_marker("aging collapse")
        text = log.dump()
        assert "!!! SYSTEM REBOOT: aging collapse !!!" in text
        assert "Boot completed" in text

    def test_timestamps_use_clock(self):
        clock, log = self.make()
        clock.sleep(1500)
        log.i("T", "x")
        assert log.dump().startswith("06-20 10:00:01.500")

    def test_ring_buffer_capacity(self):
        _, log = self.make(capacity=10)
        for i in range(25):
            log.i("T", f"m{i}")
        assert len(log) == 10
        assert log.dropped == 15
        assert "m24" in log.dump()
        assert "m14" not in log.dump()

    def test_grep(self):
        _, log = self.make()
        log.i("T", "alpha")
        log.i("T", "beta")
        assert len(log.grep("alpha")) == 1

    def test_tail(self):
        _, log = self.make()
        for i in range(5):
            log.i("T", f"m{i}")
        assert len(log.tail(2)) == 2
        assert "m4" in log.tail(2)[-1]

    def test_clear(self):
        _, log = self.make()
        log.i("T", "x")
        log.clear()
        assert len(log) == 0
        assert log.dump() == ""

    def test_handled_exception_is_warning(self):
        _, log = self.make()
        exc = NullPointerException("caught it")
        exc.frames = [frame("com.a.B", "work", 3)]
        log.handled_exception("AppTag", 9, exc, context="while parsing")
        lines = log.dump_lines()
        assert any("W AppTag: while parsing: java.lang.NullPointerException" in l for l in lines)


class TestDroppedAccounting:
    """Eviction must be counted per appended line (regression).

    ``write()`` used to compute ``at_capacity`` once before the per-line
    loop, so a multi-line message crossing the capacity boundary (or filling
    the ring mid-call) undercounted ``dropped``.
    """

    def make(self, capacity=None):
        clock = Clock()
        return clock, Logcat(clock, capacity=capacity)

    def test_multiline_message_crossing_capacity_boundary(self):
        _, log = self.make(capacity=3)
        log.i("T", "a")
        log.i("T", "b")
        # Two records buffered; a 2-line message crosses the boundary:
        # line 1 fits, line 2 evicts one record.
        log.i("T", "c\nd")
        assert len(log) == 3
        assert log.dropped == 1

    def test_single_message_filling_ring_mid_call(self):
        _, log = self.make(capacity=3)
        # 5 lines into an empty 3-slot ring: lines 4 and 5 evict.
        log.i("T", "l1\nl2\nl3\nl4\nl5")
        assert len(log) == 3
        assert log.dropped == 2
        assert "l5" in log.dump()
        assert "l1" not in log.dump()

    def test_multiline_at_capacity_counts_every_line(self):
        _, log = self.make(capacity=2)
        log.i("T", "a")
        log.i("T", "b")
        log.i("T", "c\nd\ne")
        assert len(log) == 2
        assert log.dropped == 3

    def test_unbounded_buffer_never_drops(self):
        _, log = self.make()
        log.i("T", "a\nb\nc")
        assert log.dropped == 0
