"""Tests for the process table, main-thread execution, and binder IPC."""

import pytest

from repro.android.binder import IBinder, ServiceRegistry
from repro.android.clock import Clock
from repro.android.jtypes import (
    DeadObjectException,
    IllegalArgumentException,
    NullPointerException,
)
from repro.android.process import (
    MainThreadTask,
    ProcessRecord,
    ProcessState,
    ProcessTable,
)


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def table(clock):
    return ProcessTable(clock)


class TestProcessRecord:
    def test_unique_pids(self, clock):
        a = ProcessRecord("a", "a", clock)
        b = ProcessRecord("b", "b", clock)
        assert a.pid != b.pid

    def test_task_advances_clock(self, clock):
        proc = ProcessRecord("p", "p", clock)
        proc.run_main_task(MainThreadTask("work", lambda: None, duration_ms=42))
        assert clock.now_ms() == 42

    def test_uncaught_throwable_crashes_process(self, clock):
        proc = ProcessRecord("p", "p", clock)

        def boom():
            raise NullPointerException("x")

        thrown = proc.run_main_task(MainThreadTask("boom", boom))
        assert isinstance(thrown, NullPointerException)
        assert proc.state == ProcessState.CRASHED
        assert not proc.alive
        assert len(proc.crashes) == 1
        assert proc.crashes[0].task_description == "boom"

    def test_run_on_dead_process_rejected(self, clock):
        proc = ProcessRecord("p", "p", clock)
        proc.kill()
        with pytest.raises(RuntimeError):
            proc.run_main_task(MainThreadTask("x", lambda: None))

    def test_post_and_drain(self, clock):
        proc = ProcessRecord("p", "p", clock)
        results = []
        proc.post(MainThreadTask("one", lambda: results.append(1)))
        proc.post(MainThreadTask("two", lambda: results.append(2)))
        assert proc.drain_queue() is None
        assert results == [1, 2]

    def test_crash_clears_queue(self, clock):
        proc = ProcessRecord("p", "p", clock)
        results = []

        def boom():
            raise NullPointerException("x")

        proc.post(MainThreadTask("boom", boom))
        proc.post(MainThreadTask("after", lambda: results.append(1)))
        thrown = proc.drain_queue()
        assert thrown is not None
        assert results == []

    def test_death_recipients_notified_once(self, clock):
        proc = ProcessRecord("p", "p", clock)
        deaths = []
        proc.link_to_death(deaths.append)
        proc.kill()
        proc.kill()  # idempotent
        assert deaths == [proc]

    def test_anr_recording(self, clock):
        proc = ProcessRecord("p", "p", clock)
        info = proc.record_anr("slow", blocked_for_ms=8000)
        assert proc.anrs == [info]
        assert info.blocked_for_ms == 8000


class TestProcessTable:
    def test_get_or_start_reuses(self, table):
        a = table.get_or_start("com.a", "com.a")
        b = table.get_or_start("com.a", "com.a")
        assert a is b
        assert table.total_started == 1

    def test_dead_process_not_returned(self, table):
        proc = table.get_or_start("com.a", "com.a")
        proc.kill()
        assert table.get("com.a") is None
        fresh = table.get_or_start("com.a", "com.a")
        assert fresh is not proc
        assert fresh.alive

    def test_kill_package_kills_all_its_processes(self, table):
        table.get_or_start("com.a", "com.a")
        table.get_or_start("com.a:remote", "com.a")
        table.get_or_start("com.b", "com.b")
        assert table.kill_package("com.a") == 2
        assert table.get("com.b") is not None

    def test_clear_for_reboot(self, table):
        proc = table.get_or_start("com.a", "com.a")
        table.clear()
        assert not proc.alive
        assert table.live_processes() == []


class TestBinder:
    def test_transact_dispatches(self, clock):
        owner = ProcessRecord("svc", "android", clock)
        binder = IBinder("test.binder", owner)
        binder.register("add", lambda a, b: a + b)
        assert binder.transact("add", 2, 3) == 5

    def test_unknown_code_raises_iae(self, clock):
        binder = IBinder("b", ProcessRecord("svc", "android", clock))
        with pytest.raises(IllegalArgumentException):
            binder.transact("nope")

    def test_dead_owner_raises_dead_object(self, clock):
        owner = ProcessRecord("svc", "android", clock)
        binder = IBinder("b", owner)
        binder.register("ping", lambda: "pong")
        owner.kill()
        assert not binder.is_binder_alive()
        with pytest.raises(DeadObjectException):
            binder.transact("ping")

    def test_link_to_death_via_binder(self, clock):
        owner = ProcessRecord("svc", "android", clock)
        binder = IBinder("b", owner)
        deaths = []
        binder.link_to_death(lambda proc: deaths.append(proc.name))
        owner.kill()
        assert deaths == ["svc"]

    def test_service_registry(self, clock):
        registry = ServiceRegistry()
        owner = ProcessRecord("svc", "android", clock)
        binder = IBinder("sensor", owner)
        registry.add_service("sensor", binder)
        assert registry.get_service("sensor") is binder
        assert registry.check_service("sensor") is binder
        owner.kill()
        assert registry.get_service("sensor") is binder
        assert registry.check_service("sensor") is None
        assert "sensor" in registry.names()
