"""Tests for permissions, the sensor stack, and the system server aging model."""

import pytest

from repro.android.clock import Clock
from repro.android.component import ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.intent import ComponentName
from repro.android.jtypes import (
    DeadObjectException,
    IllegalArgumentException,
    NullPointerException,
    sigabrt,
)
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.android.permissions import (
    PERMISSION_DENIED,
    PERMISSION_GRANTED,
    PermissionManager,
    ProtectionLevel,
    Permission,
)
from repro.android.process import ProcessRecord
from repro.android.sensor import TYPE_HEART_RATE, SensorManager
from repro.android.system_server import AgingModel


class TestPermissionManager:
    def setup_method(self):
        self.pm = PermissionManager()

    def test_protected_action_detection(self):
        assert self.pm.is_protected_action("android.intent.action.BATTERY_LOW")
        assert not self.pm.is_protected_action("android.intent.action.VIEW")
        assert not self.pm.is_protected_action(None)

    def test_unprivileged_cannot_send_protected(self):
        assert not self.pm.may_send_action("com.qgj", "android.intent.action.BOOT_COMPLETED")
        assert self.pm.may_send_action("com.qgj", "android.intent.action.VIEW")

    def test_privileged_can_send_protected(self):
        self.pm.mark_privileged("com.sys")
        assert self.pm.may_send_action("com.sys", "android.intent.action.BOOT_COMPLETED")

    def test_grant_and_check(self):
        self.pm.grant("com.a", "android.permission.BODY_SENSORS")
        assert self.pm.check_permission("com.a", "android.permission.BODY_SENSORS") == PERMISSION_GRANTED
        assert self.pm.check_permission("com.b", "android.permission.BODY_SENSORS") == PERMISSION_DENIED

    def test_grant_unknown_permission_rejected(self):
        with pytest.raises(ValueError):
            self.pm.grant("com.a", "S0me.r@ndom.$trinG")

    def test_signature_permission_not_grantable_to_third_party(self):
        self.pm.grant("com.a", "android.permission.DEVICE_POWER")
        assert self.pm.check_permission("com.a", "android.permission.DEVICE_POWER") == PERMISSION_DENIED

    def test_privileged_package_has_everything(self):
        self.pm.mark_privileged("com.sys")
        assert self.pm.check_permission("com.sys", "android.permission.DEVICE_POWER") == PERMISSION_GRANTED

    def test_revoke(self):
        self.pm.grant("com.a", "android.permission.VIBRATE")
        self.pm.revoke("com.a", "android.permission.VIBRATE")
        assert self.pm.check_permission("com.a", "android.permission.VIBRATE") == PERMISSION_DENIED

    def test_declare_custom_permission(self):
        self.pm.declare(Permission("com.app.CUSTOM", ProtectionLevel.NORMAL))
        self.pm.grant("com.a", "com.app.CUSTOM")
        assert self.pm.check_permission("com.a", "com.app.CUSTOM") == PERMISSION_GRANTED


class TestSensorStack:
    def setup_method(self):
        self.device = Device("watch")
        self.service = self.device.sensor_service

    def test_default_sensors_present(self):
        assert self.service.get_default_sensor(TYPE_HEART_RATE) is not None

    def test_register_listener(self):
        manager = SensorManager(self.service, "com.health")
        manager.register_listener_by_type(TYPE_HEART_RATE)
        assert self.service.has_listeners("com.health")

    def test_register_unknown_type_raises_iae(self):
        manager = SensorManager(self.service, "com.health")
        with pytest.raises(IllegalArgumentException):
            manager.register_listener_by_type(999)

    def test_unregister_all(self):
        manager = SensorManager(self.service, "com.health")
        manager.register_listener_by_type(TYPE_HEART_RATE)
        assert manager.unregister_all() == 1
        assert not self.service.has_listeners("com.health")

    def test_context_provides_sensor_manager(self):
        manager = self.device.get_system_service("sensor", "com.health")
        assert isinstance(manager, SensorManager)

    def test_anr_client_without_listeners_is_harmless(self):
        client = ProcessRecord("com.idle", "com.idle", self.device.clock)
        assert not self.service.on_client_anr(client)
        assert self.service.alive

    def test_anr_client_with_listeners_kills_service_and_reboots(self):
        manager = SensorManager(self.service, "com.health")
        manager.register_listener_by_type(TYPE_HEART_RATE)
        client = self.device.processes.get_or_start("com.health", "com.health")
        boots_before = self.device.boot_count
        assert self.service.on_client_anr(client)
        # Losing the core native service reboots the device...
        assert self.device.boot_count == boots_before + 1
        # ...and the restarted service is healthy again.
        assert self.service.alive
        text = self.device.adb.logcat()
        assert "Fatal signal 6 (SIGABRT)" in text
        assert "SYSTEM REBOOT" in text

    def test_dead_service_raises_dead_object(self):
        self.service.process.kill()
        manager = SensorManager(self.service, "com.health")
        with pytest.raises(DeadObjectException):
            manager.get_default_sensor(TYPE_HEART_RATE)


class TestAgingModel:
    def test_deposit_and_score(self):
        clock = Clock()
        aging = AgingModel(clock, half_life_ms=1000)
        aging.deposit(4.0, "crash:x")
        assert aging.score() == pytest.approx(4.0)

    def test_exponential_decay(self):
        clock = Clock()
        aging = AgingModel(clock, half_life_ms=1000)
        aging.deposit(4.0, "crash:x")
        clock.sleep(1000)
        assert aging.score() == pytest.approx(2.0)
        clock.sleep(1000)
        assert aging.score() == pytest.approx(1.0)

    def test_accumulation(self):
        clock = Clock()
        aging = AgingModel(clock, half_life_ms=1000)
        for _ in range(3):
            aging.deposit(1.0, "anr")
        assert aging.score() == pytest.approx(3.0)

    def test_negative_weight_rejected(self):
        aging = AgingModel(Clock())
        with pytest.raises(ValueError):
            aging.deposit(-1.0, "x")

    def test_reset(self):
        aging = AgingModel(Clock())
        aging.deposit(5.0, "x")
        aging.reset()
        assert aging.score() == 0.0

    def test_old_events_pruned(self):
        clock = Clock()
        aging = AgingModel(clock, half_life_ms=10)
        for _ in range(300):
            aging.deposit(1.0, "x")
            clock.sleep(200)  # 20 half-lives apart
        assert aging.event_count() <= 256


class TestSystemServerEscalation:
    def _crash_info(self, device, package="com.builtin.app"):
        comp = ComponentInfo(
            name=ComponentName(package, f"{package}.Main"),
            kind=ComponentKind.ACTIVITY,
        )
        return comp

    def _install(self, device, package, origin):
        device.install(
            PackageInfo(
                package=package,
                label=package,
                category=AppCategory.OTHER,
                origin=origin,
                components=[],
            )
        )

    def test_builtin_crash_weighs_more(self):
        device = Device()
        self._install(device, "com.builtin.app", AppOrigin.BUILT_IN)
        self._install(device, "com.third.app", AppOrigin.THIRD_PARTY)
        proc = device.processes.get_or_start("com.builtin.app", "com.builtin.app")
        device.system_server.on_app_crash(
            proc, self._crash_info(device, "com.builtin.app"), NullPointerException("x")
        )
        builtin_score = device.system_server.aging.score()
        device.system_server.aging.reset()
        device.system_server.on_app_crash(
            proc, self._crash_info(device, "com.third.app"), NullPointerException("x")
        )
        assert builtin_score > device.system_server.aging.score()

    def test_ambient_starvation_reboot_requires_aging(self):
        device = Device(reboot_threshold=6.0)
        self._install(device, "com.builtin.app", AppOrigin.BUILT_IN)
        device.system_server.register_ambient_binder("com.builtin.app")
        info = self._crash_info(device)
        proc = device.processes.get_or_start("com.builtin.app", "com.builtin.app")
        boots_before = device.boot_count
        # Crash-loop the component; weights accumulate until the third
        # (loop-flagged) crash pushes past the threshold and the SIGSEGV path
        # reboots the device.
        for _ in range(4):
            device.system_server.on_app_crash(proc, info, NullPointerException("x"))
        assert device.boot_count > boots_before
        text = device.adb.logcat()
        assert "Fatal signal 11 (SIGSEGV)" in text
        assert "ambient bind" in text.lower()

    def test_single_crash_never_reboots(self):
        device = Device()
        self._install(device, "com.builtin.app", AppOrigin.BUILT_IN)
        device.system_server.register_ambient_binder("com.builtin.app")
        proc = device.processes.get_or_start("com.builtin.app", "com.builtin.app")
        device.system_server.on_app_crash(
            proc, self._crash_info(device), NullPointerException("x")
        )
        assert device.boot_count == 1
        assert device.system_server.reboot_count == 0

    def test_aging_resets_after_reboot(self):
        device = Device(reboot_threshold=6.0)
        self._install(device, "com.builtin.app", AppOrigin.BUILT_IN)
        device.system_server.register_ambient_binder("com.builtin.app")
        info = self._crash_info(device)
        proc = device.processes.get_or_start("com.builtin.app", "com.builtin.app")
        for _ in range(4):
            device.system_server.on_app_crash(proc, info, NullPointerException("x"))
            if device.system_server.reboot_count:
                break
        assert device.system_server.reboot_count == 1
        assert device.system_server.aging.score() == 0.0

    def test_reboot_record_captures_post_mortem(self):
        device = Device(reboot_threshold=6.0)
        self._install(device, "com.builtin.app", AppOrigin.BUILT_IN)
        device.system_server.register_ambient_binder("com.builtin.app")
        info = self._crash_info(device)
        proc = device.processes.get_or_start("com.builtin.app", "com.builtin.app")
        for _ in range(4):
            device.system_server.on_app_crash(proc, info, NullPointerException("x"))
        record = device.system_server.reboots[0]
        assert record.signal is not None and record.signal.signal == "SIGSEGV"
        assert record.triggering_component == "com.builtin.app/com.builtin.app.Main"
        assert record.aging_score >= 6.0

    def test_native_death_reboots_unconditionally(self):
        device = Device()
        device.system_server.on_native_service_death("sensorservice", sigabrt("libsensorservice.so"))
        assert device.system_server.reboot_count == 1
