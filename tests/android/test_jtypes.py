"""Tests for the Java-style throwable hierarchy."""

import pytest

from repro.android.jtypes import (
    ActivityNotFoundException,
    ArithmeticException,
    ClassNotFoundException,
    DeadObjectException,
    IllegalArgumentException,
    IllegalStateException,
    JavaException,
    NullPointerException,
    NumberFormatException,
    RemoteException,
    RuntimeException,
    SecurityException,
    Throwable,
    frame,
    sigabrt,
    sigsegv,
    throwable_from_name,
)


class TestHierarchy:
    def test_runtime_exceptions_are_exceptions(self):
        assert issubclass(RuntimeException, JavaException)
        assert issubclass(NullPointerException, RuntimeException)
        assert issubclass(IllegalArgumentException, RuntimeException)
        assert issubclass(IllegalStateException, RuntimeException)
        assert issubclass(SecurityException, RuntimeException)

    def test_number_format_is_illegal_argument(self):
        # Matches the Java hierarchy: NumberFormatException extends IAE.
        assert issubclass(NumberFormatException, IllegalArgumentException)

    def test_dead_object_is_remote(self):
        assert issubclass(DeadObjectException, RemoteException)

    def test_class_not_found_is_checked_not_runtime(self):
        assert not issubclass(ClassNotFoundException, RuntimeException)

    def test_throwables_are_python_exceptions(self):
        with pytest.raises(Throwable):
            raise NullPointerException("boom")

    def test_catch_by_base_class(self):
        with pytest.raises(RuntimeException):
            raise IllegalStateException("bad state")


class TestRendering:
    def test_java_str_with_message(self):
        exc = NullPointerException("Attempt to invoke virtual method")
        assert exc.java_str() == (
            "java.lang.NullPointerException: Attempt to invoke virtual method"
        )

    def test_java_str_without_message(self):
        assert ArithmeticException().java_str() == "java.lang.ArithmeticException"

    def test_android_class_names(self):
        assert ActivityNotFoundException("x").java_str().startswith(
            "android.content.ActivityNotFoundException"
        )
        assert DeadObjectException().java_str() == "android.os.DeadObjectException"

    def test_stack_trace_contains_frames(self):
        exc = IllegalStateException("nope")
        exc.frames = [frame("com.example.app.MainActivity", "onCreate", 42)]
        lines = exc.stack_trace_lines()
        assert lines[0] == "java.lang.IllegalStateException: nope"
        assert lines[1] == "\tat com.example.app.MainActivity.onCreate(MainActivity.java:42)"

    def test_frame_derives_file_from_class(self):
        f = frame("com.example.Foo$Inner", "run", 7)
        assert f.file == "Foo.java"

    def test_cause_chain_renders_caused_by(self):
        inner = NullPointerException("inner")
        outer = RuntimeException("outer", cause=inner)
        lines = outer.stack_trace_lines()
        assert any(line.startswith("Caused by: java.lang.NullPointerException") for line in lines)

    def test_cause_chain_iteration_order(self):
        a = NullPointerException("a")
        b = IllegalStateException("b", cause=a)
        c = RuntimeException("c", cause=b)
        chain = list(c.cause_chain())
        assert [type(x) for x in chain] == [
            RuntimeException,
            IllegalStateException,
            NullPointerException,
        ]

    def test_root_cause(self):
        a = NullPointerException("a")
        c = RuntimeException("c", cause=IllegalStateException("b", cause=a))
        assert c.root_cause() is a

    def test_cycle_in_causes_is_bounded(self):
        a = RuntimeException("a")
        b = RuntimeException("b", cause=a)
        a.cause = b  # malicious cycle
        assert len(list(a.cause_chain())) <= 16
        assert len(a.stack_trace_lines()) < 100

    def test_with_frames_appends_framework_padding(self):
        exc = NullPointerException("x").with_frames(
            [frame("com.example.A", "onCreate", 1)], component_kind="activity"
        )
        rendered = "\n".join(exc.stack_trace_lines())
        assert "android.app.ActivityThread.performLaunchActivity" in rendered

    def test_service_padding_differs_from_activity(self):
        act = NullPointerException("x").with_frames([], component_kind="activity")
        svc = NullPointerException("x").with_frames([], component_kind="service")
        assert act.stack_trace_lines() != svc.stack_trace_lines()


class TestRegistry:
    def test_round_trip_known_class(self):
        exc = throwable_from_name("java.lang.IllegalStateException", "m")
        assert isinstance(exc, IllegalStateException)
        assert exc.message == "m"

    def test_unknown_class_preserved(self):
        exc = throwable_from_name("com.vendor.WeirdException", "m")
        assert exc.java_str() == "com.vendor.WeirdException: m"


class TestNativeSignals:
    def test_sigabrt(self):
        sig = sigabrt("/system/lib/libsensorservice.so", "queue wedged")
        assert sig.number == 6
        assert "SIGABRT" in sig.logcat_line()
        assert "libsensorservice" in sig.logcat_line()

    def test_sigsegv(self):
        sig = sigsegv("system_server")
        assert sig.number == 11
        assert sig.signal == "SIGSEGV"
