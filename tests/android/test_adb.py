"""Tests for the adb shell tools, including the paper's documented quirks."""

import pytest

from repro.android.component import Activity, ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.intent import ComponentName, launcher_filter
from repro.android.jtypes import NullPointerException, NumberFormatException, SecurityException
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo


@pytest.fixture
def device():
    dev = Device("phone")
    main = ComponentInfo(
        name=ComponentName("com.example.app", "com.example.app.MainActivity"),
        kind=ComponentKind.ACTIVITY,
        intent_filters=[launcher_filter()],
    )
    svc = ComponentInfo(
        name=ComponentName("com.example.app", "com.example.app.SyncService"),
        kind=ComponentKind.SERVICE,
    )
    dev.install(
        PackageInfo(
            package="com.example.app",
            label="Example",
            category=AppCategory.OTHER,
            origin=AppOrigin.THIRD_PARTY,
            components=[main, svc],
        )
    )
    return dev


class TestInputTool:
    def test_tap_garbage_string_raises_handled_nfe(self, device):
        # The paper: random ASCII where a coordinate belongs triggers an
        # exception inside the tool, which handles it -- no app involvement.
        result = device.adb.shell("input tap abc 42")
        assert result.exit_code == 1
        assert isinstance(result.tool_exception, NumberFormatException)
        assert not result.reached_app
        assert not result.caused_crash

    def test_tap_absurd_but_parseable_coordinates_land_offscreen(self, device):
        # The paper's example event: input tap -8803.85 4668.17
        result = device.adb.shell("input tap -8803.85 4668.17")
        assert result.ok
        assert not result.reached_app

    def test_tap_onscreen_reaches_foreground(self, device):
        device.adb.shell("am start -n com.example.app/.MainActivity")
        result = device.adb.shell("input tap 100 200")
        assert result.ok and result.reached_app

    def test_keyevent_valid(self, device):
        assert device.adb.shell("input keyevent 4").ok  # BACK

    def test_keyevent_garbage_raises_handled_nfe(self, device):
        result = device.adb.shell("input keyevent KEYCODE_$@!")
        assert result.exit_code == 1
        assert isinstance(result.tool_exception, NumberFormatException)

    def test_keyevent_out_of_table(self, device):
        result = device.adb.shell("input keyevent 9999")
        assert result.exit_code == 1
        assert "Unknown keycode" in result.output

    def test_text(self, device):
        assert device.adb.shell("input text hello").ok

    def test_swipe(self, device):
        assert device.adb.shell("input swipe 0 0 100 100").ok

    def test_trackball(self, device):
        assert device.adb.shell("input trackball roll 3 4").ok

    def test_usage_on_no_args(self, device):
        result = device.adb.shell("input")
        assert result.exit_code == 1
        assert "Usage" in result.output


class TestAmTool:
    def test_start_explicit_component(self, device):
        result = device.adb.shell("am start -n com.example.app/.MainActivity")
        assert result.ok and result.reached_app
        assert "Starting activity" in result.output

    def test_bare_component_gets_main_launcher_filled_in(self, device):
        # The documented am quirk (Section IV-D of the paper).
        device.adb.shell("am start -n com.example.app/.MainActivity")
        text = device.adb.logcat()
        assert "act=android.intent.action.MAIN" in text
        assert "cat=[android.intent.category.LAUNCHER]" in text

    def test_am_forwards_random_action_strings(self, device):
        # am performs no action validation -- the string reaches the app.
        result = device.adb.shell(
            "am start -a 'S0me.r@ndom.$trinG' -n com.example.app/.MainActivity"
        )
        assert result.ok and result.reached_app
        assert "act=S0me.r@ndom.$trinG" in device.adb.logcat()

    def test_unresolvable_activity(self, device):
        result = device.adb.shell("am start -n com.nope/.Missing")
        assert result.exit_code == 1
        assert "unable to resolve Intent" in result.output

    def test_security_exception_reported(self, device):
        result = device.adb.shell(
            "am start -a android.intent.action.BATTERY_LOW -n com.example.app/.MainActivity"
        )
        assert result.exit_code == 1
        assert isinstance(result.tool_exception, SecurityException)

    def test_startservice(self, device):
        result = device.adb.shell(
            "am startservice -a a.b.SYNC -n com.example.app/.SyncService"
        )
        assert result.ok and result.reached_app

    def test_startservice_not_found(self, device):
        result = device.adb.shell("am startservice -n com.nope/.S")
        assert result.exit_code == 1
        assert "no service started" in result.output

    def test_intent_args_full(self, device):
        device.adb.shell(
            "am start -a a.VIEW -d https://x/ -c android.intent.category.DEFAULT"
            " -t text/plain --es k v --ei n 3 -n com.example.app/.MainActivity"
        )
        text = device.adb.logcat()
        assert "dat=https://x/" in text
        assert "typ=text/plain" in text
        assert "(has extras)" in text

    def test_bad_extra_int(self, device):
        result = device.adb.shell("am start --ei n notanint -n com.example.app/.MainActivity")
        assert result.exit_code == 1
        assert "NumberFormatException" in result.output

    def test_force_stop(self, device):
        device.adb.shell("am start -n com.example.app/.MainActivity")
        assert device.adb.shell("am force-stop com.example.app").ok
        assert device.processes.get("com.example.app") is None

    def test_unknown_option(self, device):
        result = device.adb.shell("am start --frobnicate x")
        assert result.exit_code == 1


class TestPmTool:
    def test_list_packages(self, device):
        result = device.adb.shell("pm list packages")
        assert "package:com.example.app" in result.output

    def test_list_permissions(self, device):
        result = device.adb.shell("pm list permissions")
        assert "permission:android.permission.BODY_SENSORS" in result.output

    def test_grant_known(self, device):
        result = device.adb.shell("pm grant com.example.app android.permission.BODY_SENSORS")
        assert result.ok

    def test_grant_garbage_permission_rejected_at_tool(self, device):
        # The documented pm quirk: the garbage string never reaches the app.
        result = device.adb.shell("pm grant com.example.app 'S0me.r@ndom.$trinG'")
        assert result.exit_code == 1
        assert "not a changeable permission type" in result.output
        assert isinstance(result.tool_exception, SecurityException)

    def test_grant_unknown_package(self, device):
        result = device.adb.shell("pm grant com.nope android.permission.VIBRATE")
        assert result.exit_code == 1
        assert "Unknown package" in result.output

    def test_revoke(self, device):
        device.adb.shell("pm grant com.example.app android.permission.BODY_SENSORS")
        assert device.adb.shell("pm revoke com.example.app android.permission.BODY_SENSORS").ok


class TestShellDispatch:
    def test_unknown_tool(self, device):
        assert device.adb.shell("frobnicate").exit_code == 127

    def test_empty_command(self, device):
        assert device.adb.shell("").ok

    def test_syntax_error(self, device):
        assert device.adb.shell("am start 'unclosed").exit_code == 2

    @pytest.mark.parametrize(
        "payload",
        [
            'am start -a S0me.r@ndom."trinG',  # the paper's garbage action, quoted
            "input text it's-broken",
            'pm grant com.example.app "android.permission',
        ],
    )
    def test_unbalanced_quotes_regression(self, device, payload):
        # Campaign payloads routinely contain unbalanced quotes; shlex used
        # to raise ValueError out of the tool instead of failing the command.
        result = device.adb.shell(payload)
        assert result.exit_code == 2
        assert "syntax error" in result.output

    def test_logcat_roundtrip(self, device):
        device.adb.shell("am start -n com.example.app/.MainActivity")
        assert "START u0" in device.adb.logcat()
        device.adb.logcat_clear()
        assert device.adb.logcat() == ""


class _UiCrashActivity(Activity):
    def on_ui_event(self, kind, **params):
        raise NullPointerException("view was null")


class TestUiCrashPath:
    def test_tap_can_crash_a_fragile_activity(self):
        device = Device()
        info = ComponentInfo(
            name=ComponentName("com.frail", "com.frail.Main"),
            kind=ComponentKind.ACTIVITY,
            intent_filters=[launcher_filter()],
            behavior_key="frail",
        )
        device.install(
            PackageInfo(
                package="com.frail",
                label="Frail",
                category=AppCategory.OTHER,
                origin=AppOrigin.THIRD_PARTY,
                components=[info],
            )
        )
        device.activity_manager.register_factory(
            "frail", lambda i, c: _UiCrashActivity(i, c)
        )
        device.adb.shell("am start -n com.frail/.Main")
        result = device.adb.shell("input tap 10 10")
        assert result.caused_crash
        assert "FATAL EXCEPTION: main" in device.adb.logcat()
