"""Edge-case tests rounding out the substrate's smaller surfaces."""

import pytest

from repro.android.clock import Clock
from repro.android.component import describe_components, ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.intent import ComponentName, launcher_filter
from repro.android.log import Level, Logcat
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo


class TestLogLevels:
    def test_level_letters(self):
        assert [str(level) for level in Level] == ["V", "D", "I", "W", "E", "F"]

    def test_all_write_helpers(self):
        logcat = Logcat(Clock())
        logcat.v("T", "verbose")
        logcat.d("T", "debug")
        logcat.i("T", "info")
        logcat.w("T", "warn")
        logcat.e("T", "error")
        # threadtime layout: date time pid tid LEVEL tag: message
        letters = [line.split()[4] for line in logcat.dump_lines()]
        assert letters == ["V", "D", "I", "W", "E"]

    def test_explicit_tid(self):
        logcat = Logcat(Clock())
        logcat.write(Level.INFO, "T", "x", pid=5, tid=9)
        line = logcat.dump()
        assert "    5     9 I" in line


class TestDescribeComponents:
    def test_inventory_lines(self):
        infos = [
            ComponentInfo(
                name=ComponentName("com.a", "com.a.Main"),
                kind=ComponentKind.ACTIVITY,
                intent_filters=[launcher_filter()],
            ),
            ComponentInfo(
                name=ComponentName("com.a", "com.a.Svc"),
                kind=ComponentKind.SERVICE,
                exported=False,
            ),
            ComponentInfo(
                name=ComponentName("com.a", "com.a.Guarded"),
                kind=ComponentKind.ACTIVITY,
                permission="android.permission.BODY_SENSORS",
            ),
        ]
        text = describe_components(infos)
        assert "com.a/.Main" in text
        assert "[not-exported]" in text
        assert "permission=android.permission.BODY_SENSORS" in text


class TestInstallAll:
    def test_install_all(self):
        device = Device()
        packages = [
            PackageInfo(
                package=f"com.app{i}",
                label=f"App{i}",
                category=AppCategory.OTHER,
                origin=AppOrigin.THIRD_PARTY,
                components=[],
            )
            for i in range(3)
        ]
        device.install_all(packages)
        assert len(device.packages.installed_packages()) == 3


class TestPackageInfoHelpers:
    def test_component_lookup(self):
        info = ComponentInfo(
            name=ComponentName("com.a", "com.a.Main"), kind=ComponentKind.ACTIVITY
        )
        package = PackageInfo(
            package="com.a",
            label="A",
            category=AppCategory.OTHER,
            origin=AppOrigin.THIRD_PARTY,
            components=[info],
        )
        assert package.component("com.a.Main") is info
        assert package.component("com.a.Nope") is None

    def test_receivers_listing(self):
        receiver = ComponentInfo(
            name=ComponentName("com.a", "com.a.Recv"), kind=ComponentKind.RECEIVER
        )
        package = PackageInfo(
            package="com.a",
            label="A",
            category=AppCategory.OTHER,
            origin=AppOrigin.THIRD_PARTY,
            components=[receiver],
        )
        assert package.receivers() == [receiver]
        assert package.activities() == []

    def test_effective_process_override(self):
        info = ComponentInfo(
            name=ComponentName("com.a", "com.a.Main"),
            kind=ComponentKind.ACTIVITY,
            process_name="com.a:remote",
        )
        assert info.effective_process() == "com.a:remote"


class TestSystemServerIntrospection:
    def test_health_summary(self):
        device = Device()
        summary = device.system_server.health_summary()
        assert summary["aging_score"] == 0.0
        assert summary["reboots"] == 0.0
