"""Tests for the Device facade, Context helpers, and reboot mechanics."""

import pytest

from repro.android.component import ComponentInfo, ComponentKind
from repro.android.context import Context
from repro.android.device import BOOT_DURATION_MS, Device
from repro.android.intent import ComponentName, Intent, launcher_filter
from repro.android.jtypes import ActivityNotFoundException, SecurityException
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.wear.device import WearDevice


def simple_package(pkg="com.a"):
    return PackageInfo(
        package=pkg,
        label=pkg,
        category=AppCategory.OTHER,
        origin=AppOrigin.THIRD_PARTY,
        components=[
            ComponentInfo(
                name=ComponentName(pkg, f"{pkg}.MainActivity"),
                kind=ComponentKind.ACTIVITY,
                intent_filters=[launcher_filter()],
            ),
            ComponentInfo(
                name=ComponentName(pkg, f"{pkg}.SyncService"),
                kind=ComponentKind.SERVICE,
            ),
        ],
    )


class TestDevice:
    def test_boot_logs(self):
        device = Device("d", android_version="7.1.1")
        text = device.adb.logcat()
        assert "Starting Android runtime (7.1.1) on d" in text
        assert "Boot completed" in text
        assert device.boot_count == 1

    def test_unknown_system_service_is_none(self):
        device = Device()
        assert device.get_system_service("frobnicator", "com.a") is None
        assert not device.has_system_service("frobnicator")

    def test_custom_system_service_provider(self):
        device = Device()
        device.register_system_service("echo", lambda dev, pkg: f"echo:{pkg}")
        assert device.get_system_service("echo", "com.x") == "echo:com.x"

    def test_reboot_advances_clock_and_counters(self):
        device = Device()
        before = device.clock.now_ms()
        device.perform_reboot("test")
        assert device.boot_count == 2
        assert device.clock.now_ms() >= before + BOOT_DURATION_MS
        assert not device.rebooting

    def test_reboot_kills_processes_but_keeps_packages(self):
        device = Device()
        device.install(simple_package())
        device.processes.get_or_start("com.a", "com.a")
        device.perform_reboot("test")
        assert device.processes.get("com.a") is None
        assert device.packages.is_installed("com.a")
        # Apps restart fine after boot.
        intent = Intent("a").set_class_name("com.a", "com.a.MainActivity")
        result = device.activity_manager.start_activity("com.qgj", intent)
        assert result.delivered

    def test_wear_reboot_resets_wear_services(self):
        watch = WearDevice("w")
        watch.ambient.enter_ambient()
        client = watch.get_system_service("fit", "com.h")
        session = client.start_session("run")
        watch.perform_reboot("test")
        from repro.wear.ambient import DisplayState

        assert watch.ambient.state == DisplayState.INTERACTIVE
        assert not session.active


class TestContext:
    @pytest.fixture()
    def device(self):
        dev = Device()
        dev.install(simple_package())
        return dev

    def test_start_activity_via_context(self, device):
        context = Context("com.qgj", device)
        context.start_activity(Intent("x").set_class_name("com.a", "com.a.MainActivity"))
        assert "START u0" in device.adb.logcat()

    def test_start_activity_propagates_not_found(self, device):
        context = Context("com.qgj", device)
        with pytest.raises(ActivityNotFoundException):
            context.start_activity(Intent("x").set_class_name("com.z", "com.z.X"))

    def test_start_service_via_context(self, device):
        context = Context("com.qgj", device)
        name = context.start_service(
            Intent("x").set_class_name("com.a", "com.a.SyncService")
        )
        assert name == ComponentName("com.a", "com.a.SyncService")

    def test_implicit_service_rejected(self, device):
        context = Context("com.qgj", device)
        with pytest.raises(SecurityException):
            context.start_service(Intent("x"))

    def test_permission_helpers(self, device):
        context = Context("com.a", device)
        assert not context.has_permission("android.permission.BODY_SENSORS")
        device.permissions.grant("com.a", "android.permission.BODY_SENSORS")
        assert context.has_permission("android.permission.BODY_SENSORS")

    def test_log_helpers_tag_pid(self, device):
        context = Context("com.a", device)
        device.processes.get_or_start("com.a", "com.a")
        context.log_i("Tag", "info message")
        context.log_w("Tag", "warn message")
        context.log_e("Tag", "error message")
        text = device.adb.logcat()
        assert "I Tag: info message" in text
        assert "W Tag: warn message" in text
        assert "E Tag: error message" in text

    def test_log_without_process_uses_pid_zero(self, device):
        context = Context("com.notstarted", device)
        context.log_i("T", "x")  # must not raise
        assert "T: x" in device.adb.logcat()


class TestUiEventEdgeCases:
    def test_ui_event_after_foreground_process_death(self):
        device = Device()
        device.install(simple_package())
        intent = Intent("x").set_class_name("com.a", "com.a.MainActivity")
        device.activity_manager.start_activity("com.qgj", intent)
        device.activity_manager.force_stop("com.a")
        result = device.activity_manager.deliver_ui_event("tap", x=1.0, y=1.0)
        assert not result.delivered
        assert device.activity_manager.foreground is None

    def test_ui_events_accumulate_handler_cost(self):
        device = Device()
        device.install(simple_package())
        intent = Intent("x").set_class_name("com.a", "com.a.MainActivity")
        device.activity_manager.start_activity("com.qgj", intent)
        info = device.packages.resolve_component(intent.component)
        component = device.activity_manager.live_component(info)
        before = component.handler_cost_ms
        device.activity_manager.deliver_ui_event("tap", x=1.0, y=1.0)
        assert component.handler_cost_ms > before
