"""Tests for URI parsing and intent construction / filter matching."""

import pytest
from hypothesis import given, strategies as st

from repro.android.intent import (
    CATEGORY_DEFAULT,
    CATEGORY_LAUNCHER,
    ComponentName,
    Intent,
    IntentFilter,
    launcher_filter,
)
from repro.android.uri import Uri, build_hierarchical, build_opaque, scheme_of


class TestUriParsing:
    def test_hierarchical_full(self):
        uri = Uri.parse("https://example.com/path/to?q=1#frag")
        assert uri.scheme == "https"
        assert uri.authority == "example.com"
        assert uri.path == "/path/to"
        assert uri.query == "q=1"
        assert uri.fragment == "frag"
        assert uri.is_hierarchical()

    def test_opaque_tel(self):
        uri = Uri.parse("tel:123")
        assert uri.scheme == "tel"
        assert uri.opaque_part == "123"
        assert uri.is_opaque()

    def test_mailto(self):
        uri = Uri.parse("mailto:someone@example.com")
        assert uri.scheme == "mailto"
        assert uri.opaque_part == "someone@example.com"

    def test_no_scheme_garbage(self):
        uri = Uri.parse("just some garbage")
        assert uri.scheme is None
        assert not uri.is_well_formed()

    def test_invalid_scheme_chars_treated_opaque(self):
        uri = Uri.parse("S0me.r@ndom:$trinG")
        # '@' in the candidate scheme invalidates it.
        assert uri.scheme is None

    def test_numeric_first_char_not_scheme(self):
        assert Uri.parse("1http:foo").scheme is None

    def test_empty_string(self):
        uri = Uri.parse("")
        assert uri.scheme is None
        assert uri.opaque_part is None

    def test_authority_only(self):
        uri = Uri.parse("content://contacts")
        assert uri.authority == "contacts"
        assert uri.path is None

    def test_query_parameters(self):
        uri = Uri.parse("https://h/p?a=1&b=2&flag")
        assert uri.query_parameters() == {"a": "1", "b": "2", "flag": ""}

    def test_last_path_segment(self):
        assert Uri.parse("content://contacts/people/7").last_path_segment() == "7"
        assert Uri.parse("content://contacts").last_path_segment() is None

    def test_round_trip_str(self):
        text = "https://example.com/a?b=c#d"
        assert str(Uri.parse(text)) == text

    def test_build_hierarchical(self):
        uri = build_hierarchical("content", "calendar", "events/5")
        assert str(uri) == "content://calendar/events/5"
        assert uri.last_path_segment() == "5"

    def test_build_opaque(self):
        assert str(build_opaque("sms", "5551234")) == "sms:5551234"

    def test_scheme_of(self):
        assert scheme_of("tel:1") == "tel"
        assert scheme_of("") is None
        assert scheme_of(None) is None

    def test_parse_rejects_non_str(self):
        with pytest.raises(TypeError):
            Uri.parse(123)  # type: ignore[arg-type]

    @given(st.text(max_size=200))
    def test_parse_never_raises(self, text):
        uri = Uri.parse(text)
        assert str(uri) == text

    @given(st.text(alphabet=st.characters(blacklist_characters="#?/"), max_size=50))
    def test_hierarchical_round_trip(self, authority):
        text = f"https://{authority}/p"
        uri = Uri.parse(text)
        assert uri.scheme == "https"
        assert uri.path == "/p"


class TestComponentName:
    def test_parse_full(self):
        cn = ComponentName.parse("com.foo/com.foo.Bar")
        assert cn.package == "com.foo"
        assert cn.class_name == "com.foo.Bar"

    def test_parse_shorthand(self):
        cn = ComponentName.parse("com.foo/.Bar")
        assert cn.class_name == "com.foo.Bar"

    def test_flatten_short(self):
        cn = ComponentName("com.foo", "com.foo.Bar")
        assert cn.flatten_to_short_string() == "com.foo/.Bar"

    def test_flatten_full_when_foreign_class(self):
        cn = ComponentName("com.foo", "org.lib.Widget")
        assert cn.flatten_to_short_string() == "com.foo/org.lib.Widget"

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            ComponentName.parse("no-slash-here")
        with pytest.raises(ValueError):
            ComponentName.parse("/onlyclass")

    def test_simple_class(self):
        assert ComponentName("a.b", "a.b.c.MainActivity").simple_class == "MainActivity"

    def test_round_trip(self):
        cn = ComponentName("com.x.y", "com.x.y.Z")
        assert ComponentName.parse(cn.flatten_to_string()) == cn


class TestIntent:
    def test_fluent_build(self):
        intent = (
            Intent("android.intent.action.VIEW")
            .set_data_string("https://example.com/")
            .add_category(CATEGORY_DEFAULT)
            .put_extra("k", 1)
        )
        assert intent.action == "android.intent.action.VIEW"
        assert intent.scheme == "https"
        assert intent.get_extra("k") == 1
        assert not intent.is_explicit()

    def test_explicit(self):
        intent = Intent().set_class_name("com.foo", "com.foo.Bar")
        assert intent.is_explicit()
        assert intent.component.simple_class == "Bar"

    def test_log_string_matches_android_format(self):
        intent = Intent("android.intent.action.DIAL", data="tel:123")
        intent.set_component(ComponentName("com.foo", "com.foo.Bar"))
        intent.put_extra("x", "y")
        text = intent.to_log_string()
        assert text.startswith("Intent { ")
        assert "act=android.intent.action.DIAL" in text
        assert "dat=tel:123" in text
        assert "cmp=com.foo/.Bar" in text
        assert "(has extras)" in text

    def test_log_string_blank_intent(self):
        assert Intent().to_log_string() == "Intent {  }"

    def test_copy_is_deep_enough(self):
        intent = Intent("a").put_extra("k", "v").add_category("c")
        clone = intent.copy()
        clone.put_extra("k2", "v2")
        clone.add_category("c2")
        assert "k2" not in intent.extras
        assert "c2" not in intent.categories

    def test_signature_ignores_extra_values_but_keeps_types(self):
        a = Intent("x").put_extra("k", 1)
        b = Intent("x").put_extra("k", 2)
        c = Intent("x").put_extra("k", "s")
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()

    def test_category_dedup(self):
        intent = Intent().add_category("c").add_category("c")
        assert intent.categories == ["c"]


class TestIntentFilter:
    def test_action_match(self):
        filt = IntentFilter(actions=["a.b.VIEW"], categories=[CATEGORY_DEFAULT])
        assert filt.matches(Intent("a.b.VIEW"))
        assert not filt.matches(Intent("a.b.EDIT"))

    def test_null_action_matches_any_filter_with_actions(self):
        filt = IntentFilter(actions=["a.b.VIEW"])
        assert filt.match_action(None)

    def test_category_subset_rule(self):
        filt = IntentFilter(actions=["a"], categories=["c1", "c2"])
        assert filt.matches(Intent("a").add_category("c1"))
        assert not filt.matches(Intent("a").add_category("c3"))

    def test_data_scheme_match(self):
        filt = IntentFilter(actions=["a"], schemes=["https", "http"])
        assert filt.matches(Intent("a", data="https://x/"))
        assert not filt.matches(Intent("a", data="tel:1"))
        assert not filt.matches(Intent("a"))

    def test_no_data_filter_rejects_data(self):
        filt = IntentFilter(actions=["a"])
        assert filt.matches(Intent("a"))
        assert not filt.matches(Intent("a", data="tel:1"))

    def test_mime_wildcard(self):
        filt = IntentFilter(actions=["a"], mime_types=["image/*"])
        assert filt.matches(Intent("a").set_type("image/png"))
        assert not filt.matches(Intent("a").set_type("text/plain"))

    def test_mime_specificity_beats_scheme(self):
        filt = IntentFilter(actions=["a"], schemes=["content"], mime_types=["text/plain"])
        score = filt.match(Intent("a", data="content://x/1").set_type("text/plain"))
        assert score == IntentFilter.MATCH_CATEGORY_TYPE

    def test_launcher_filter(self):
        filt = launcher_filter()
        intent = Intent("android.intent.action.MAIN").add_category(CATEGORY_LAUNCHER)
        assert filt.matches(intent)
