"""Clock edge cases and the FleetScheduler's earliest-deadline contract.

The fleet kernel leans on two Clock behaviours that a blocking run never
exercises hard: callbacks scheduled re-entrantly at exactly the firing
deadline (the ambient duty cycle re-arming itself), and cancelled entries
piling up in the heap (watchdogs armed and abandoned by the thousand over
a long fleet run).  Both are pinned here, alongside the scheduler's
earliest-deadline-first semantics.
"""

import pytest

from repro.android.clock import _COMPACT_MIN_QUEUE, Clock, FleetScheduler


class TestReentrantScheduling:
    def test_same_deadline_reentrant_callback_fires_in_seq_order(self):
        clock = Clock()
        order = []

        def first():
            order.append("first")
            # Scheduled at exactly the firing deadline: lands *behind* the
            # in-flight callback (same deadline, higher seq) and still
            # fires within this same advance.
            clock.call_at(clock.now_ms(), lambda: order.append("nested"))

        clock.call_at(100.0, first)
        clock.call_at(100.0, lambda: order.append("second"))
        clock.advance_to(100.0)
        assert order == ["first", "second", "nested"]
        assert clock.now_ms() == 100.0

    def test_reentrant_chain_terminates_at_later_deadlines(self):
        clock = Clock()
        fired = []

        def rearm():
            fired.append(clock.now_ms())
            if len(fired) < 3:
                clock.call_after(10.0, rearm)

        clock.call_after(10.0, rearm)
        clock.advance_to(100.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_callback_observes_its_own_deadline_as_now(self):
        clock = Clock()
        seen = []
        clock.call_at(40.0, lambda: seen.append(clock.now_ms()))
        clock.call_at(70.0, lambda: seen.append(clock.now_ms()))
        clock.advance_to(1_000.0)
        assert seen == [40.0, 70.0]
        assert clock.now_ms() == 1_000.0


class TestCancellation:
    def test_cancel_below_compaction_threshold_leaves_entries_marked(self):
        clock = Clock()
        handles = [clock.call_at(10.0 * i, lambda: None) for i in range(6)]
        assert len(handles) < _COMPACT_MIN_QUEUE
        for handle in handles[:4]:
            handle.cancel()
        # 4 of 6 cancelled would trigger compaction on a big queue, but a
        # tiny one is cheaper to let advance_to/drain reap lazily.
        assert clock.cancelled_count() == 4
        assert clock.pending_count() == 2

    def test_compaction_once_cancelled_entries_dominate(self):
        clock = Clock()
        handles = [clock.call_at(float(i), lambda: None) for i in range(10)]
        for handle in handles[:5]:
            handle.cancel()
        # 5 of 10: not a strict majority, still lazily marked.
        assert clock.cancelled_count() == 5
        handles[5].cancel()
        # 6 of 10: majority -- the heap is rebuilt with live entries only.
        assert clock.cancelled_count() == 0
        assert clock.pending_count() == 4
        clock.advance_to(20.0)
        assert clock.pending_count() == 0

    def test_double_cancel_is_idempotent(self):
        clock = Clock()
        handle = clock.call_at(5.0, lambda: None)
        clock.call_at(6.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        assert clock.cancelled_count() == 1
        assert clock.pending_count() == 1

    def test_cancelled_callback_never_fires_and_is_reaped(self):
        clock = Clock()
        fired = []
        doomed = clock.call_at(50.0, lambda: fired.append("dead"))
        clock.call_at(60.0, lambda: fired.append("live"))
        doomed.cancel()
        clock.advance_to(100.0)
        assert fired == ["live"]
        assert clock.cancelled_count() == 0
        assert clock.pending_count() == 0

    def test_drain_reaps_cancelled_heads(self):
        clock = Clock()
        fired = []
        doomed = clock.call_at(10.0, lambda: fired.append("dead"))
        clock.call_at(20.0, lambda: fired.append("live"))
        doomed.cancel()
        clock.drain()
        assert fired == ["live"]
        assert clock.pending_count() == 0
        assert clock.cancelled_count() == 0

    def test_cancel_from_inside_a_callback(self):
        # The low-battery park cancels the pending ambient toggle from a
        # clock callback; the cancelled toggle must not fire afterwards.
        clock = Clock()
        fired = []
        toggle = clock.call_at(30.0, lambda: fired.append("toggle"))
        clock.call_at(20.0, lambda: toggle.cancel())
        clock.advance_to(100.0)
        assert fired == []
        assert clock.pending_count() == 0


def _ticker(key, clock, deadlines, trace):
    for deadline in deadlines:
        yield deadline
        trace.append((key, clock.now_ms()))
    return f"{key}-done"


class TestFleetScheduler:
    def test_earliest_deadline_interleaving(self):
        sched = FleetScheduler()
        trace = []
        a_clock, b_clock = Clock(), Clock()
        sched.add("a", a_clock, _ticker("a", a_clock, [10.0, 30.0], trace))
        sched.add("b", b_clock, _ticker("b", b_clock, [5.0, 40.0], trace))
        results = sched.run()
        # Resumed strictly by earliest next deadline across the fleet,
        # each on its own clock.
        assert trace == [("b", 5.0), ("a", 10.0), ("a", 30.0), ("b", 40.0)]
        assert results == {"a": "a-done", "b": "b-done"}
        assert sched.active == 0
        assert sched.peak_active == 2
        assert sched.steps == 4

    def test_ties_break_by_admission_order(self):
        sched = FleetScheduler()
        trace = []
        clocks = {key: Clock() for key in "abc"}
        for key in ("c", "a", "b"):
            sched.add(key, clocks[key], _ticker(key, clocks[key], [7.0], trace))
        sched.run()
        assert [key for key, _ in trace] == ["c", "a", "b"]

    def test_clocks_stay_independent(self):
        sched = FleetScheduler()
        trace = []
        fast, slow = Clock(), Clock()
        sched.add("fast", fast, _ticker("fast", fast, [1.0, 2.0, 3.0], trace))
        sched.add("slow", slow, _ticker("slow", slow, [1_000.0], trace))
        sched.run()
        assert fast.now_ms() == 3.0
        assert slow.now_ms() == 1_000.0

    def test_duplicate_key_rejected(self):
        sched = FleetScheduler()
        clock = Clock()
        sched.add("pair", clock, _ticker("pair", clock, [1.0], []))
        with pytest.raises(ValueError, match="duplicate"):
            sched.add("pair", Clock(), _ticker("pair", Clock(), [1.0], []))

    def test_yielding_a_past_deadline_is_an_error(self):
        sched = FleetScheduler()
        clock = Clock(start_ms=100.0)

        def stale():
            yield 50.0

        with pytest.raises(ValueError, match="past"):
            sched.add("stale", clock, stale())

    def test_yielding_now_is_allowed(self):
        # Guided pairs yield at round boundaries without sleeping; a
        # deadline equal to the pair's current time must be accepted.
        sched = FleetScheduler()
        clock = Clock()

        def stationary():
            yield clock.now_ms()
            yield clock.now_ms()
            return "ok"

        sched.add("s", clock, stationary())
        assert sched.run() == {"s": "ok"}

    def test_task_finishing_on_admission_records_its_result(self):
        sched = FleetScheduler()

        def instant():
            return "done"
            yield  # pragma: no cover - makes this a generator

        sched.add("i", Clock(), instant())
        assert sched.results() == {"i": "done"}
        assert sched.active == 0
        assert sched.peak_active == 1

    def test_run_some_bounds_resumptions_and_reports_remaining_work(self):
        sched = FleetScheduler()
        clock = Clock()
        sched.add("t", clock, _ticker("t", clock, [1.0, 2.0, 3.0], []))
        assert sched.run_some(2) is True
        assert sched.steps == 2
        assert sched.run_some(10) is False
        assert sched.steps == 3
        assert sched.results() == {"t": "t-done"}

    def test_scheduler_advances_the_tasks_clock_before_resuming(self):
        sched = FleetScheduler()
        clock = Clock()
        fired = []
        clock.call_at(5.0, lambda: fired.append(clock.now_ms()))

        def sleeper():
            yield 10.0
            return clock.now_ms()

        sched.add("sleeper", clock, sleeper())
        results = sched.run()
        # Advancing to the yielded deadline ran the due clock callback
        # first, exactly as a blocking clock.sleep would have.
        assert fired == [5.0]
        assert results == {"sleeper": 10.0}
