"""Tests for component lifecycles, the package manager, and intent dispatch."""

import pytest

from repro.android.activity_manager import DispatchResult
from repro.android.component import (
    Activity,
    ActivityState,
    ComponentInfo,
    ComponentKind,
    Service,
    ServiceState,
)
from repro.android.context import Context
from repro.android.device import Device
from repro.android.intent import ComponentName, Intent, IntentFilter, launcher_filter
from repro.android.jtypes import (
    ActivityNotFoundException,
    IllegalStateException,
    NullPointerException,
    SecurityException,
    Throwable,
)
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo


def make_package(
    package="com.example.app",
    exported=True,
    permission=None,
    origin=AppOrigin.THIRD_PARTY,
    behavior_key=None,
):
    main = ComponentInfo(
        name=ComponentName(package, f"{package}.MainActivity"),
        kind=ComponentKind.ACTIVITY,
        exported=exported,
        permission=permission,
        intent_filters=[launcher_filter()],
        behavior_key=behavior_key,
    )
    svc = ComponentInfo(
        name=ComponentName(package, f"{package}.SyncService"),
        kind=ComponentKind.SERVICE,
        exported=exported,
        permission=permission,
        behavior_key=behavior_key,
    )
    return PackageInfo(
        package=package,
        label="Example",
        category=AppCategory.OTHER,
        origin=origin,
        components=[main, svc],
    )


@pytest.fixture
def device():
    dev = Device("test-device")
    dev.install(make_package())
    return dev


class TestLifecycles:
    def _activity(self, device):
        info = device.packages.resolve_component(
            ComponentName("com.example.app", "com.example.app.MainActivity")
        )
        return Activity(info, Context("com.example.app", device))

    def test_activity_happy_path(self, device):
        activity = self._activity(device)
        activity.perform_create(Intent("a"))
        activity.perform_start()
        activity.perform_resume()
        assert activity.state == ActivityState.RESUMED

    def test_double_create_raises_ise(self, device):
        activity = self._activity(device)
        activity.perform_create(Intent("a"))
        with pytest.raises(IllegalStateException):
            activity.perform_create(Intent("a"))

    def test_resume_before_start_raises_ise(self, device):
        activity = self._activity(device)
        activity.perform_create(Intent("a"))
        with pytest.raises(IllegalStateException):
            activity.perform_resume()

    def test_pause_stop_restart(self, device):
        activity = self._activity(device)
        activity.perform_create(Intent("a"))
        activity.perform_start()
        activity.perform_resume()
        activity.perform_pause()
        activity.perform_stop()
        activity.perform_start()
        activity.perform_resume()
        assert activity.state == ActivityState.RESUMED

    def test_new_intent_on_destroyed_raises(self, device):
        activity = self._activity(device)
        activity.perform_create(Intent("a"))
        activity.perform_destroy()
        with pytest.raises(IllegalStateException):
            activity.perform_new_intent(Intent("b"))

    def _service(self, device):
        info = device.packages.resolve_component(
            ComponentName("com.example.app", "com.example.app.SyncService")
        )
        return Service(info, Context("com.example.app", device))

    def test_service_happy_path(self, device):
        service = self._service(device)
        service.perform_create()
        service.perform_start_command(Intent("a"), 1)
        assert service.state == ServiceState.STARTED
        assert service.start_count == 1

    def test_service_start_before_create_raises(self, device):
        service = self._service(device)
        with pytest.raises(IllegalStateException):
            service.perform_start_command(Intent("a"), 1)

    def test_service_unbind_without_bind_raises(self, device):
        service = self._service(device)
        service.perform_create()
        with pytest.raises(IllegalStateException):
            service.perform_unbind()

    def test_service_bind_unbind(self, device):
        service = self._service(device)
        service.perform_create()
        service.perform_bind(Intent("a"))
        assert service.bound_clients == 1
        service.perform_unbind()
        assert service.bound_clients == 0


class TestPackageManager:
    def test_install_and_resolve(self, device):
        info = device.packages.resolve_component(
            ComponentName("com.example.app", "com.example.app.MainActivity")
        )
        assert info is not None
        assert info.kind == ComponentKind.ACTIVITY

    def test_double_install_rejected(self, device):
        with pytest.raises(ValueError):
            device.install(make_package())

    def test_component_package_mismatch_rejected(self):
        device = Device()
        pkg = make_package()
        pkg.components[0] = ComponentInfo(
            name=ComponentName("com.other", "com.other.X"),
            kind=ComponentKind.ACTIVITY,
        )
        with pytest.raises(ValueError):
            device.install(pkg)

    def test_uninstall(self, device):
        device.packages.uninstall("com.example.app")
        assert not device.packages.is_installed("com.example.app")
        assert device.packages.resolve_component(
            ComponentName("com.example.app", "com.example.app.MainActivity")
        ) is None

    def test_launcher_activities(self, device):
        launchers = device.packages.launcher_activities()
        assert len(launchers) == 1
        assert launchers[0].name.simple_class == "MainActivity"

    def test_built_in_becomes_privileged(self):
        device = Device()
        device.install(make_package("com.android.core", origin=AppOrigin.BUILT_IN))
        assert device.permissions.is_privileged("com.android.core")

    def test_population_stats(self, device):
        stats = device.packages.population_stats()
        cell = stats["Not Health/Fitness|Third Party"]
        assert cell == {"apps": 1, "activities": 1, "services": 1}

    def test_query_intent_activities_implicit(self, device):
        intent = Intent("android.intent.action.MAIN").add_category(
            "android.intent.category.LAUNCHER"
        )
        matches = device.packages.query_intent_activities(intent)
        assert [m.name.simple_class for m in matches] == ["MainActivity"]


class TestDispatch:
    def test_explicit_activity_start(self, device):
        intent = Intent("android.intent.action.VIEW").set_class_name(
            "com.example.app", "com.example.app.MainActivity"
        )
        result = device.activity_manager.start_activity("com.qgj", intent)
        assert result.delivered and not result.crashed
        assert "START u0" in device.adb.logcat()
        assert device.activity_manager.foreground.name.simple_class == "MainActivity"

    def test_unknown_component_raises_anfe(self, device):
        intent = Intent().set_class_name("com.nope", "com.nope.X")
        with pytest.raises(ActivityNotFoundException):
            device.activity_manager.start_activity("com.qgj", intent)

    def test_service_intent_must_be_explicit(self, device):
        with pytest.raises(SecurityException):
            device.activity_manager.start_service("com.qgj", Intent("some.action"))

    def test_unknown_service_returns_none(self, device):
        intent = Intent().set_class_name("com.nope", "com.nope.S")
        assert device.activity_manager.start_service("com.qgj", intent) is None

    def test_protected_action_denied_for_unprivileged(self, device):
        intent = Intent("android.intent.action.BATTERY_LOW").set_class_name(
            "com.example.app", "com.example.app.MainActivity"
        )
        with pytest.raises(SecurityException):
            device.activity_manager.start_activity("com.qgj", intent)
        assert "Permission Denial" in device.adb.logcat()

    def test_protected_action_allowed_for_privileged(self, device):
        device.permissions.mark_privileged("com.sys")
        intent = Intent("android.intent.action.BATTERY_LOW").set_class_name(
            "com.example.app", "com.example.app.MainActivity"
        )
        result = device.activity_manager.start_activity("com.sys", intent)
        assert result.delivered

    def test_not_exported_denied_cross_package(self):
        device = Device()
        device.install(make_package(exported=False))
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        with pytest.raises(SecurityException):
            device.activity_manager.start_activity("com.qgj", intent)

    def test_not_exported_allowed_same_package(self):
        device = Device()
        device.install(make_package(exported=False))
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        result = device.activity_manager.start_activity("com.example.app", intent)
        assert result.delivered

    def test_permission_guarded_component(self):
        device = Device()
        device.install(make_package(permission="android.permission.BODY_SENSORS"))
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        with pytest.raises(SecurityException):
            device.activity_manager.start_activity("com.qgj", intent)
        device.permissions.grant("com.qgj", "android.permission.BODY_SENSORS")
        result = device.activity_manager.start_activity("com.qgj", intent)
        assert result.delivered

    def test_repeat_start_uses_on_new_intent(self, device):
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        device.activity_manager.start_activity("com.qgj", intent)
        info = device.packages.resolve_component(intent.component)
        first = device.activity_manager.live_component(info)
        device.activity_manager.start_activity("com.qgj", intent)
        assert device.activity_manager.live_component(info) is first


class _CrashingActivity(Activity):
    def on_handle_intent(self, intent, phase):
        raise NullPointerException("Attempt to read from null object")


class _BlockingActivity(Activity):
    def on_handle_intent(self, intent, phase):
        return 9000.0  # ms; past the 5000 ms ANR window


class TestFailureContainment:
    def _install_with_behavior(self, factory_key, cls):
        device = Device()
        device.install(make_package(behavior_key=factory_key))
        device.activity_manager.register_factory(
            factory_key, lambda info, ctx: cls(info, ctx)
        )
        return device

    def test_crash_logged_and_process_killed(self):
        device = self._install_with_behavior("crash", _CrashingActivity)
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        result = device.activity_manager.start_activity("com.qgj", intent)
        assert result.crashed
        assert isinstance(result.throwable, NullPointerException)
        text = device.adb.logcat()
        assert "FATAL EXCEPTION: main" in text
        assert "has died" in text
        assert device.processes.get("com.example.app") is None

    def test_crash_clears_foreground(self):
        device = self._install_with_behavior("crash", _CrashingActivity)
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        device.activity_manager.start_activity("com.qgj", intent)
        assert device.activity_manager.foreground is None

    def test_crash_deposits_aging(self):
        device = self._install_with_behavior("crash", _CrashingActivity)
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        before = device.system_server.aging.score()
        device.activity_manager.start_activity("com.qgj", intent)
        assert device.system_server.aging.score() > before

    def test_anr_logged(self):
        device = self._install_with_behavior("block", _BlockingActivity)
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        result = device.activity_manager.start_activity("com.qgj", intent)
        assert result.anr and not result.crashed
        assert "ANR in com.example.app" in device.adb.logcat()

    def test_crashed_process_restarts_on_next_start(self):
        device = self._install_with_behavior("crash", _CrashingActivity)
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        device.activity_manager.start_activity("com.qgj", intent)
        result = device.activity_manager.start_activity("com.qgj", intent)
        assert result.crashed  # fresh process, crashes again

    def test_ui_event_without_foreground_dropped(self, device):
        result = device.activity_manager.deliver_ui_event("tap", x=1.0, y=2.0)
        assert not result.delivered

    def test_ui_event_delivered_to_foreground(self, device):
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        device.activity_manager.start_activity("com.qgj", intent)
        result = device.activity_manager.deliver_ui_event("tap", x=1.0, y=2.0)
        assert result.delivered and not result.crashed

    def test_force_stop(self, device):
        intent = Intent("a").set_class_name("com.example.app", "com.example.app.MainActivity")
        device.activity_manager.start_activity("com.qgj", intent)
        killed = device.activity_manager.force_stop("com.example.app")
        assert killed == 1
        assert device.processes.get("com.example.app") is None
