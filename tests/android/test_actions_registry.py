"""Tests for the platform action/URI registry."""

import pytest
from hypothesis import given, strategies as st

from repro.android.actions import (
    ALL_ACTIONS,
    KNOWN_ACTIONS,
    NO_DATA,
    URI_SAMPLES,
    URI_TYPES,
    compatible_schemes,
    is_compatible,
    is_known_action,
    is_known_scheme,
    valid_pairs,
)
from repro.android.permissions import PROTECTED_ACTIONS
from repro.android.uri import Uri


class TestRegistryIntegrity:
    def test_action_count_exceeds_paper_floor(self):
        assert len(ALL_ACTIONS) > 100

    def test_no_duplicate_actions(self):
        assert len(set(ALL_ACTIONS)) == len(ALL_ACTIONS)

    def test_twelve_uri_types_with_parseable_samples(self):
        assert len(URI_TYPES) == 12
        for scheme, sample in URI_SAMPLES.items():
            assert Uri.parse(sample).scheme == scheme, sample

    def test_protected_actions_are_in_the_vocabulary(self):
        # QGJ must be able to *generate* protected actions -- that's where
        # the SecurityException dominance comes from.
        overlap = PROTECTED_ACTIONS & KNOWN_ACTIONS
        assert len(overlap) >= 40

    def test_protected_share_supports_security_dominance(self):
        share = len(PROTECTED_ACTIONS & KNOWN_ACTIONS) / len(ALL_ACTIONS)
        assert 0.25 <= share <= 0.50

    def test_compatible_schemes_subset_of_registry(self):
        for action in ALL_ACTIONS:
            assert compatible_schemes(action) <= set(URI_TYPES) or compatible_schemes(
                action
            ) == NO_DATA


class TestCompatibility:
    def test_dial_takes_tel_not_https(self):
        assert is_compatible("android.intent.action.DIAL", Uri.parse("tel:123"))
        assert not is_compatible(
            "android.intent.action.DIAL", Uri.parse("https://foo.com/")
        )

    def test_dataless_action_rejects_any_data(self):
        assert not is_compatible(
            "android.intent.action.BATTERY_LOW", Uri.parse("tel:123")
        )

    def test_unknown_action_incompatible_with_everything(self):
        assert not is_compatible("weird.ACTION", Uri.parse("tel:123"))

    def test_none_sides_are_compatible(self):
        assert is_compatible(None, Uri.parse("tel:1"))
        assert is_compatible("android.intent.action.VIEW", None)

    @given(st.sampled_from(ALL_ACTIONS), st.sampled_from(URI_TYPES))
    def test_compatibility_matches_scheme_table(self, action, scheme):
        uri = Uri.parse(URI_SAMPLES[scheme])
        assert is_compatible(action, uri) == (scheme in compatible_schemes(action))


class TestValidPairs:
    def test_deterministic(self):
        assert valid_pairs() == valid_pairs()

    def test_dataless_actions_pair_with_empty_string(self):
        pairs = dict(
            (action, data)
            for action, data in valid_pairs()
            if not compatible_schemes(action)
        )
        assert all(data == "" for data in pairs.values())

    def test_known_predicates(self):
        assert is_known_action("android.intent.action.VIEW")
        assert not is_known_action(None)
        assert not is_known_action("x")
        assert is_known_scheme("tel")
        assert not is_known_scheme(None)
        assert not is_known_scheme("gopher")
