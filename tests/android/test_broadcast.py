"""Tests for broadcast delivery (the JJB-lineage extension)."""

import pytest

from repro.android.component import BroadcastReceiver, ComponentInfo, ComponentKind
from repro.android.context import Context
from repro.android.device import Device
from repro.android.intent import ComponentName, Intent, IntentFilter
from repro.android.jtypes import NullPointerException, SecurityException
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.apps.behavior import (
    BehaviorRegistry,
    BehaviorSpec,
    ModeledReceiver,
    Outcome,
    Trigger,
    Vulnerability,
)

SMS_ACTION = "android.provider.Telephony.SMS_RECEIVED"


def receiver_info(pkg, cls, exported=True, actions=(SMS_ACTION,), behavior_key=None):
    return ComponentInfo(
        name=ComponentName(pkg, f"{pkg}.{cls}"),
        kind=ComponentKind.RECEIVER,
        exported=exported,
        intent_filters=[IntentFilter(actions=list(actions))],
        behavior_key=behavior_key,
    )


@pytest.fixture()
def device():
    dev = Device("bcast")
    dev.install(
        PackageInfo(
            package="com.alpha",
            label="Alpha",
            category=AppCategory.OTHER,
            origin=AppOrigin.THIRD_PARTY,
            components=[
                receiver_info("com.alpha", "SmsReceiver"),
                receiver_info("com.alpha", "HiddenReceiver", exported=False),
            ],
        )
    )
    dev.install(
        PackageInfo(
            package="com.beta",
            label="Beta",
            category=AppCategory.OTHER,
            origin=AppOrigin.THIRD_PARTY,
            components=[receiver_info("com.beta", "SmsReceiver")],
        )
    )
    return dev


class TestBroadcastDelivery:
    def test_implicit_broadcast_reaches_all_matching_exported(self, device):
        delivered = device.activity_manager.send_broadcast(
            "com.qgj", Intent(SMS_ACTION)
        )
        assert delivered == 2  # both exported SmsReceivers; not the hidden one

    def test_explicit_broadcast_reaches_named_receiver(self, device):
        intent = Intent(SMS_ACTION).set_class_name("com.beta", "com.beta.SmsReceiver")
        assert device.activity_manager.send_broadcast("com.qgj", intent) == 1

    def test_explicit_to_non_receiver_is_zero(self, device):
        intent = Intent(SMS_ACTION).set_class_name("com.nope", "com.nope.X")
        assert device.activity_manager.send_broadcast("com.qgj", intent) == 0

    def test_protected_action_rejected(self, device):
        with pytest.raises(SecurityException):
            device.activity_manager.send_broadcast(
                "com.qgj", Intent("android.intent.action.BOOT_COMPLETED")
            )
        assert "Permission Denial" in device.adb.logcat()

    def test_privileged_sender_may_broadcast_protected(self, device):
        device.permissions.mark_privileged("com.sys")
        # No receiver declares BOOT_COMPLETED here; delivery is 0 but legal.
        assert device.activity_manager.send_broadcast(
            "com.sys", Intent("android.intent.action.BOOT_COMPLETED")
        ) == 0

    def test_non_matching_action_delivers_nowhere(self, device):
        assert device.activity_manager.send_broadcast("com.qgj", Intent("x.Y")) == 0

    def test_context_send_broadcast(self, device):
        context = Context("com.alpha", device)
        assert context.send_broadcast(Intent(SMS_ACTION)) == 2


class _CrashingReceiver(BroadcastReceiver):
    def on_handle_intent(self, intent, phase):
        raise NullPointerException("pdus was null")


class TestReceiverFailureContainment:
    def test_receiver_crash_contained_and_logged(self, device):
        device.install(
            PackageInfo(
                package="com.frail",
                label="Frail",
                category=AppCategory.OTHER,
                origin=AppOrigin.THIRD_PARTY,
                components=[
                    receiver_info("com.frail", "SmsReceiver", behavior_key="frail.recv")
                ],
            )
        )
        device.activity_manager.register_factory(
            "frail.recv", lambda info, ctx: _CrashingReceiver(info, ctx)
        )
        delivered = device.activity_manager.send_broadcast("com.qgj", Intent(SMS_ACTION))
        # The frail receiver crashed, the healthy two still got it.
        assert delivered == 3
        text = device.adb.logcat()
        assert "FATAL EXCEPTION: main" in text
        assert "pdus was null" in text
        assert device.processes.get("com.frail") is None

    def test_modeled_receiver_behavior(self, device):
        registry = BehaviorRegistry()
        registry.register(
            "recv.model",
            BehaviorSpec(
                vulnerabilities=[
                    Vulnerability(
                        trigger=Trigger.MISSING_DATA,
                        exception="java.lang.NullPointerException",
                        outcome=Outcome.CRASH,
                    )
                ]
            ),
        )
        registry.install(device.activity_manager)
        device.install(
            PackageInfo(
                package="com.gamma",
                label="Gamma",
                category=AppCategory.OTHER,
                origin=AppOrigin.THIRD_PARTY,
                components=[
                    receiver_info("com.gamma", "SmsReceiver", behavior_key="recv.model")
                ],
            )
        )
        factory = device.activity_manager._factories["recv.model"]
        info = device.packages.resolve_component(
            ComponentName("com.gamma", "com.gamma.SmsReceiver")
        )
        receiver = factory(info, Context("com.gamma", device))
        assert isinstance(receiver, ModeledReceiver)
        # Blank-action-style intent crashes it; data-carrying one does not.
        device.activity_manager.send_broadcast("com.qgj", Intent(SMS_ACTION))
        assert "FATAL EXCEPTION" in device.adb.logcat()
