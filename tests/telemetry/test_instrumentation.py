"""End-to-end: the instrumented stack feeding the telemetry plane.

Runs a focused quick-scale wear study with telemetry enabled and checks the
acceptance surface: sane ``intents_injected_total`` and
``anr_watchdog_latency_ms`` series, a span tree nesting campaign → package
→ component → injection, the Prometheus/JSONL exports, and the
``dumpsys telemetry`` shell surface.
"""

import pytest

from repro import telemetry
from repro.android.process import ProcessRecord
from repro.experiments.config import QUICK
from repro.experiments.wear_experiment import run_wear_study
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.qgj.ui_fuzzer import MutationMode, QGJUi
from repro.telemetry.exporters import (
    parse_jsonl_spans,
    render_prometheus,
    spans_to_jsonl,
)
from repro.wear.device import WearDevice

FOCUS_PACKAGES = (
    "com.google.android.apps.fitness",  # crashes in every campaign
    "com.cardiowatch.wear",  # hangs (feeds the ANR-latency histogram)
    "com.runmate.wear",  # well-behaved
)


@pytest.fixture(scope="module")
def instrumented_study():
    """Focused wear study under telemetry; artifacts captured while live."""
    with telemetry.session(heartbeat_every=500) as t:
        beats = []
        t.progress.add_listener(beats.append)
        study = run_wear_study(QUICK, packages=FOCUS_PACKAGES)
        return {
            "study": study,
            "t": t,
            "beats": beats,
            "prom": render_prometheus(t.metrics),
            "jsonl": spans_to_jsonl(t.tracer),
            "dumpsys": study.watch.adb.shell("dumpsys telemetry"),
            "dumpsys_prom": study.watch.adb.shell("dumpsys telemetry --prometheus"),
        }


class TestStudyMetrics:
    def test_intents_counter_matches_summary(self, instrumented_study):
        study, t = instrumented_study["study"], instrumented_study["t"]
        intents = t.metrics.get("intents_injected_total")
        assert intents is not None
        assert intents.total() == study.intents_sent
        # Every campaign and every focused package shows up as a series.
        for campaign in Campaign:
            assert intents.total_where(campaign=campaign.value) > 0
        for package in FOCUS_PACKAGES:
            assert intents.total_where(package=package) > 0

    def test_outcome_labels_reconcile_with_results(self, instrumented_study):
        study, t = instrumented_study["study"], instrumented_study["t"]
        intents = t.metrics.get("intents_injected_total")
        summary = study.summary
        assert intents.total_where(outcome="crash") == summary.total_crashes_seen
        assert (
            intents.total_where(outcome="security_exception")
            == summary.total_security_exceptions
        )

    def test_anr_latency_histogram_fed_by_watchdog(self, instrumented_study):
        t = instrumented_study["t"]
        anr = t.metrics.get("anr_watchdog_latency_ms")
        assert anr is not None
        assert anr.total_count() > 0
        # Only the hang app should be blocking the main thread.
        labels = {labels["package"] for labels, _ in anr.samples()}
        assert "com.cardiowatch.wear" in labels
        # The watchdog only fires past the 5 s ANR window.
        for _, child in anr.samples():
            assert child.sum / child.count > 5000

    def test_am_and_logcat_planes_populated(self, instrumented_study):
        t = instrumented_study["t"]
        dispatches = t.metrics.get("am_dispatches_total")
        assert dispatches.total() >= instrumented_study["study"].intents_sent
        assert t.metrics.get("logcat_records_written_total").total() > 0
        assert t.metrics.get("logcat_buffer_records") is not None


class TestSpanTree:
    def test_injection_spans_nest_to_the_study_root(self, instrumented_study):
        rows = parse_jsonl_spans(instrumented_study["jsonl"])
        by_id = {row["span_id"]: row for row in rows}
        injections = [row for row in rows if row["name"] == "injection"]
        assert injections
        chains_checked = 0
        for injection in injections:
            chain = []
            cursor = injection
            while cursor["parent_id"] is not None and cursor["parent_id"] in by_id:
                cursor = by_id[cursor["parent_id"]]
                chain.append(cursor["name"])
            if len(chain) == 4:  # full ancestry retained in the ring
                assert chain == ["component", "package", "campaign", "study"]
                chains_checked += 1
        assert chains_checked > 0

    def test_spans_carry_both_clocks(self, instrumented_study):
        rows = parse_jsonl_spans(instrumented_study["jsonl"])
        for row in rows:
            assert row["end_wall_s"] >= row["start_wall_s"]
            assert row["start_virtual_ms"] is not None
            assert row["end_virtual_ms"] >= row["start_virtual_ms"]

    def test_span_buffer_bounded(self, instrumented_study):
        t = instrumented_study["t"]
        assert len(t.tracer) <= 8192
        # A focused study still makes tens of thousands of injection spans.
        assert t.tracer.dropped > 0


class TestExpositionSurfaces:
    def test_prometheus_snapshot_contains_required_series(self, instrumented_study):
        prom = instrumented_study["prom"]
        assert "# TYPE intents_injected_total counter" in prom
        assert 'intents_injected_total{campaign="A"' in prom
        assert "# TYPE anr_watchdog_latency_ms histogram" in prom
        assert "anr_watchdog_latency_ms_bucket" in prom
        assert "anr_watchdog_latency_ms_count" in prom

    def test_dumpsys_telemetry(self, instrumented_study):
        result = instrumented_study["dumpsys"]
        assert result.ok
        assert "TELEMETRY" in result.output
        assert "intents_injected_total" in result.output
        assert "anr_watchdog_latency_ms" in result.output
        assert "spans:" in result.output

    def test_dumpsys_prometheus_flag(self, instrumented_study):
        result = instrumented_study["dumpsys_prom"]
        assert result.ok
        assert "# TYPE intents_injected_total counter" in result.output

    def test_heartbeats_fired(self, instrumented_study):
        beats = instrumented_study["beats"]
        assert beats
        # Ticks batch at the fuzzer's pacing boundary, so a snapshot fires
        # on (not exactly at) each every-Nth crossing: successive beats
        # land in strictly increasing 500-injection windows.
        windows = [beat.injections // 500 for beat in beats]
        assert all(b > a for a, b in zip(windows, windows[1:]))
        assert all(beat.injections >= 500 for beat in beats)
        assert beats[-1].anrs > 0
        assert beats[-1].virtual_rate is not None


class TestDumpsysShell:
    def test_service_listing(self):
        watch = WearDevice("w")
        result = watch.adb.shell("dumpsys -l")
        assert result.ok
        assert "telemetry" in result.output

    def test_disabled_message(self):
        watch = WearDevice("w")
        result = watch.adb.shell("dumpsys telemetry")
        assert result.ok
        assert "disabled" in result.output.lower()

    def test_unknown_service(self):
        watch = WearDevice("w")
        result = watch.adb.shell("dumpsys meminfo")
        assert not result.ok
        assert "Can't find service" in result.output


class TestZeroOverheadDiscipline:
    def test_disabled_run_records_nothing(self):
        from repro.apps.catalog import build_wear_corpus

        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("plain")
        corpus.install(watch)
        fuzzer = FuzzerLibrary(watch)
        info = watch.packages.get_package("com.runmate.wear").activities()[1]
        result = fuzzer.fuzz_component(
            info, Campaign.B, FuzzConfig(max_intents_per_component=20)
        )
        assert result.sent == 20
        t = telemetry.get()
        assert not t.enabled
        assert len(t.metrics) == 0
        assert len(t.tracer) == 0

    def test_results_identical_with_and_without_telemetry(self):
        from repro.apps.catalog import build_wear_corpus

        def run():
            corpus = build_wear_corpus(seed=2018)
            watch = WearDevice("twin")
            corpus.install(watch)
            fuzzer = FuzzerLibrary(watch)
            info = watch.packages.get_package("com.runmate.wear").activities()[1]
            return fuzzer.fuzz_component(info, Campaign.B, FuzzConfig())

        plain = run()
        with telemetry.session():
            instrumented = run()
        assert plain.sent == instrumented.sent
        assert plain.delivered == instrumented.delivered
        assert plain.security_exceptions == instrumented.security_exceptions
        assert plain.not_found == instrumented.not_found


class TestOtherPlanes:
    def test_binder_transactions_counted(self):
        from repro.android.binder import IBinder
        from repro.android.clock import Clock
        from repro.android.jtypes import DeadObjectException

        clock = Clock()
        proc = ProcessRecord("svc", "com.svc", clock)
        binder = IBinder("com.svc.IService", proc)
        binder.register("ping", lambda: "pong")
        with telemetry.session() as t:
            assert binder.transact("ping") == "pong"
            proc.kill("test")
            with pytest.raises(DeadObjectException):
                binder.transact("ping")
            counter = t.metrics.get("binder_transactions_total")
            assert counter.total_where(outcome="ok") == 1
            assert counter.total_where(outcome="dead_object") == 1

    def test_ui_fuzzer_and_monkey_counters(self):
        from repro.apps.catalog import build_wear_corpus

        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("ui")
        corpus.install(watch)
        with telemetry.session() as t:
            results = QGJUi(watch, seed=25).run(
                event_count=120, modes=(MutationMode.RANDOM,)
            )
            generated = t.metrics.get("monkey_events_generated_total")
            injected = t.metrics.get("ui_events_injected_total")
            assert generated.total() == 120
            assert injected.total() == results[MutationMode.RANDOM].injected_events
            crashes = t.metrics.get("ui_crashes_total")
            assert crashes.total_where(mode=MutationMode.RANDOM) == pytest.approx(
                results[MutationMode.RANDOM].crashes
            )
