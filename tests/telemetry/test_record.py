"""The batched recording core: sites, bound handles, flush-on-read."""

import pickle

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.record import (
    BucketIndexTable,
    CounterSite,
    GaugeSite,
    HistogramSite,
    bucket_index_table,
)


class TestCounterSite:
    def test_family_registered_before_any_increment(self):
        registry = MetricsRegistry()
        site = CounterSite("hits_total", "Hits.", ("kind",))
        site.family(registry)
        assert registry.get("hits_total") is not None
        assert registry.get("hits_total").total() == 0

    def test_pending_batches_flush_on_registry_read(self):
        registry = MetricsRegistry()
        site = CounterSite("hits_total", "Hits.", ("kind",))
        handle = site.bind(registry, ("a",))
        handle.inc()
        handle.inc(2)
        # get() drains pending state first: readers never see stale totals.
        assert registry.get("hits_total").total() == 3
        assert handle.pending == 0

    def test_direct_slot_store_equivalent_to_inc(self):
        registry = MetricsRegistry()
        site = CounterSite("hits_total", "Hits.", ("kind",))
        handle = site.bind(registry, ("a",))
        handle.pending += 5  # the hot loops' idiom
        assert registry.get("hits_total").total() == 5

    def test_collect_flushes_too(self):
        registry = MetricsRegistry()
        site = CounterSite("hits_total", "Hits.", ("kind",))
        site.bind(registry, ("a",)).inc(7)
        ((_, families),) = [
            (m.name, m) for m in registry.collect() if m.name == "hits_total"
        ]
        ((_, child),) = families.samples()
        assert child.value == 7

    def test_bind_is_cached_per_label_tuple(self):
        registry = MetricsRegistry()
        site = CounterSite("hits_total", "Hits.", ("kind",))
        assert site.bind(registry, ("a",)) is site.bind(registry, ("a",))
        assert site.bind(registry, ("a",)) is not site.bind(registry, ("b",))

    def test_registry_change_invalidates_bindings(self):
        old, new = MetricsRegistry(), MetricsRegistry()
        site = CounterSite("hits_total", "Hits.", ("kind",))
        stale = site.bind(old, ("a",))
        stale.inc(3)
        fresh = site.bind(new, ("a",))
        fresh.inc(4)
        # Samples never leak across registries (sessions, shards, forks).
        assert old.get("hits_total").total() == 3
        assert new.get("hits_total").total() == 4
        assert stale is not fresh

    def test_merge_from_flushes_both_sides(self):
        live, shard = MetricsRegistry(), MetricsRegistry()
        site = CounterSite("hits_total", "Hits.", ("kind",))
        site.bind(live, ("a",)).inc(1)
        site.bind(shard, ("a",)).inc(10)
        live.merge_from(shard)
        assert live.get("hits_total").total() == 11

    def test_watched_handles_survive_registry_pickling(self):
        registry = MetricsRegistry()
        site = CounterSite("hits_total", "Hits.", ("kind",))
        site.bind(registry, ("a",)).inc(9)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.get("hits_total").total() == 9


class TestGaugeSite:
    def test_newest_level_wins(self):
        registry = MetricsRegistry()
        site = GaugeSite("depth", "Depth.")
        handle = site.bind(registry)
        handle.set(4)
        handle.set(2)
        ((_, child),) = registry.get("depth").samples()
        assert child.value == 2

    def test_clean_handle_does_not_overwrite(self):
        registry = MetricsRegistry()
        site = GaugeSite("depth", "Depth.")
        handle = site.bind(registry)
        handle.set(5)
        registry.get("depth")  # flush: dirty bit cleared
        child = registry.get("depth").labels()
        child.value = 99.0  # someone else sets the child directly
        registry.get("depth")
        assert child.value == 99.0  # a clean handle stays silent


class TestHistogramSite:
    def test_observations_batch_and_flush(self):
        registry = MetricsRegistry()
        site = HistogramSite("lat_ms", "Latency.", buckets=(1.0, 10.0, 100.0))
        handle = site.bind(registry)
        for v in (0.5, 5, 50, 500):
            handle.observe(v)
        ((_, child),) = registry.get("lat_ms").samples()
        assert child.count == 4
        assert child.sum == 555.5
        # One observation per finite bucket; the 500 lives only in count
        # (the +Inf bucket is rendered from count, not stored).
        assert child.counts == [1, 1, 1]

    def test_flush_is_idempotent(self):
        registry = MetricsRegistry()
        site = HistogramSite("lat_ms", "Latency.", buckets=(1.0, 10.0))
        handle = site.bind(registry)
        handle.observe(5)
        registry.get("lat_ms")
        registry.get("lat_ms")
        ((_, child),) = registry.get("lat_ms").samples()
        assert child.count == 1


class TestBucketIndexTable:
    BOUNDS = (1.0, 10.0, 100.0)

    def test_matches_bisection_for_every_small_integer(self):
        from bisect import bisect_left

        table = BucketIndexTable(self.BOUNDS)
        for v in range(0, 150):
            assert table.index(v) == bisect_left(self.BOUNDS, v)

    def test_fractional_values_fall_back_correctly(self):
        table = BucketIndexTable(self.BOUNDS)
        assert table.index(0.5) == 0
        assert table.index(1.5) == 1
        assert table.index(10.0) == 1
        assert table.index(10.1) == 2
        assert table.index(1000.0) == 3

    def test_tables_are_shared_per_layout(self):
        assert bucket_index_table(self.BOUNDS) is bucket_index_table(self.BOUNDS)

    def test_negative_values(self):
        table = BucketIndexTable(self.BOUNDS)
        assert table.index(-5.0) == 0
