"""Heartbeat cadence, snapshot contents, and throughput rates."""

import pytest

from repro.android.clock import Clock
from repro.telemetry.metrics import INTENTS_INJECTED, MetricsRegistry
from repro.telemetry.progress import Heartbeat, NoopHeartbeat


def make_hub(every=10, clock=None):
    registry = MetricsRegistry()
    hub = Heartbeat(registry, every_injections=every, clock=clock)
    return registry, hub


class TestCadence:
    def test_emits_every_nth_injection(self):
        _, hub = make_hub(every=10)
        seen = []
        hub.add_listener(seen.append)
        for _ in range(35):
            hub.count_injection()
        assert [snap.injections for snap in seen] == [10, 20, 30]
        assert hub.last_snapshot is seen[-1]

    def test_cadence_validated(self):
        with pytest.raises(ValueError):
            make_hub(every=0)

    def test_manual_emit(self):
        _, hub = make_hub(every=1000)
        hub.count_injection()
        snap = hub.emit()
        assert snap.injections == 1
        assert hub.last_snapshot is snap


class TestSnapshot:
    def test_rates_against_both_clocks(self):
        clock = Clock()
        _, hub = make_hub(every=5, clock=clock)
        for _ in range(10):
            hub.count_injection()
        clock.sleep(2000)  # 2 virtual seconds
        snap = hub.snapshot()
        assert snap.injections == 10
        assert snap.virtual_elapsed_ms == 2000
        assert snap.virtual_rate == pytest.approx(5.0)  # 10 per 2 virtual s
        assert snap.wall_rate > 0
        assert snap.wall_elapsed_s > 0

    def test_no_clock_means_no_virtual_rate(self):
        _, hub = make_hub()
        hub.count_injection()
        snap = hub.snapshot()
        assert snap.virtual_elapsed_ms is None
        assert snap.virtual_rate is None
        assert "no virtual clock" in snap.render()

    def test_outcome_counts_read_from_registry(self):
        registry, hub = make_hub()
        counter = registry.counter(
            INTENTS_INJECTED, "", ("campaign", "package", "outcome")
        )
        counter.labels(campaign="A", package="x", outcome="crash").inc(3)
        counter.labels(campaign="B", package="x", outcome="crash").inc(2)
        counter.labels(campaign="A", package="x", outcome="anr").inc(4)
        counter.labels(campaign="A", package="x", outcome="security_exception").inc(5)
        snap = hub.snapshot()
        assert snap.crashes == 5
        assert snap.anrs == 4
        assert snap.security_exceptions == 5

    def test_render_mentions_throughput(self):
        clock = Clock()
        _, hub = make_hub(clock=clock)
        hub.count_injection()
        clock.sleep(1000)
        text = hub.snapshot().render()
        assert "1 intents" in text
        assert "crashes=0" in text

    def test_set_clock_rebases_virtual_start(self):
        clock = Clock()
        clock.sleep(5000)
        _, hub = make_hub()
        hub.set_clock(clock)
        clock.sleep(1000)
        assert hub.snapshot().virtual_elapsed_ms == 1000


class TestNoopHeartbeat:
    def test_absorbs_everything(self):
        hub = NoopHeartbeat()
        hub.count_injection()
        hub.add_listener(lambda snap: None)
        hub.set_clock(Clock())
        assert hub.injections == 0
        assert hub.last_snapshot is None


class TestBatchedTicks:
    def test_bulk_counts_match_per_call_counts(self):
        _, per_call = make_hub(every=10)
        _, bulk = make_hub(every=10)
        for _ in range(35):
            per_call.count_injection()
        for chunk in (7, 7, 7, 7, 7):
            bulk.count_injections(chunk)
        assert bulk.injections == per_call.injections == 35

    def test_emits_when_a_bulk_add_crosses_the_boundary(self):
        _, hub = make_hub(every=10)
        seen = []
        hub.add_listener(seen.append)
        hub.count_injections(9)
        assert seen == []
        hub.count_injections(9)  # crosses 10
        assert [snap.injections for snap in seen] == [18]
        hub.count_injections(25)  # crosses 20, 30, and 40: one emit
        assert [snap.injections for snap in seen] == [18, 43]

    def test_zero_count_pins_the_baseline_without_emitting(self):
        _, hub = make_hub(every=1)
        seen = []
        hub.add_listener(seen.append)
        hub.count_injections(0)
        assert seen == []
        assert hub.injections == 0


class TestRateBaseline:
    def test_first_tick_resets_the_wall_baseline(self):
        """Regression: idle time between enable() and the first injection
        used to be billed to the campaign, skewing every wall_rate down."""
        _, hub = make_hub(every=1000)
        hub._start_wall_s -= 3600.0  # simulate an hour of pre-campaign idle
        hub.count_injection()
        snap = hub.snapshot()
        assert snap.wall_elapsed_s < 60.0
        assert snap.wall_rate > 0.1

    def test_explicit_start_rebases_both_clocks(self):
        clock = Clock()
        _, hub = make_hub(clock=clock)
        clock.sleep(5000)
        hub.start()
        clock.sleep(1000)
        hub.count_injection()
        assert hub.snapshot().virtual_elapsed_ms == 1000

    def test_bulk_tick_also_arms_the_baseline(self):
        _, hub = make_hub(every=1000)
        hub._start_wall_s -= 3600.0
        hub.count_injections(0)  # the loop-entry pin
        assert hub.snapshot().wall_elapsed_s < 60.0
