"""Counter/Gauge/Histogram semantics, labels, and the noop twin."""

import pytest

from repro import telemetry
from repro.telemetry.metrics import (
    DEFAULT_MS_BUCKETS,
    MetricsRegistry,
    NoopRegistry,
)


class TestCounter:
    def test_unlabeled_inc(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total", "help")
        c.inc()
        c.inc(4)
        assert c.total() == 5

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", "", ("campaign", "outcome"))
        c.labels(campaign="A", outcome="crash").inc()
        c.labels(campaign="A", outcome="crash").inc()
        c.labels(campaign="B", outcome="crash").inc()
        assert c.labels(campaign="A", outcome="crash").value == 2
        assert c.labels(campaign="B", outcome="crash").value == 1
        assert c.total() == 3
        assert c.total_where(campaign="A") == 2
        assert c.total_where(outcome="crash") == 3
        assert c.total_where(campaign="C") == 0

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total", "", ("campaign",))
        with pytest.raises(ValueError):
            c.labels(package="x")
        with pytest.raises(ValueError):
            c.inc()  # labeled metric needs .labels()

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("buffer_records")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.labels().value == 12


class TestHistogram:
    def test_observations_land_in_one_bucket_each(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency_ms", "", buckets=(10, 100, 1000))
        child = h.labels()
        for value in (5, 50, 500, 5000):
            h.observe(value)
        assert child.counts == [1, 1, 1]  # 5000 is above the last bound
        assert child.cumulative_counts() == [1, 2, 3]
        assert child.count == 4
        assert child.sum == 5555

    def test_default_buckets_are_virtual_ms_aware(self):
        # The simulator's own constants must fall inside distinct buckets.
        assert 100 in DEFAULT_MS_BUCKETS  # intent pacing
        assert 5000 in DEFAULT_MS_BUCKETS  # ANR window
        assert 20000 in DEFAULT_MS_BUCKETS  # max main-thread stall
        assert 30000 in DEFAULT_MS_BUCKETS  # boot duration
        assert list(DEFAULT_MS_BUCKETS) == sorted(DEFAULT_MS_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(10, 5))


class TestRegistry:
    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "help", ("x",))
        b = registry.counter("c_total", "other help", ("x",))
        assert a is b

    def test_conflicting_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("x",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "", ("y",))
        with pytest.raises(ValueError):
            registry.gauge("c_total")

    def test_collect_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a")
        assert [m.name for m in registry.collect()] == ["a", "b_total"]


class TestNoop:
    def test_noop_registry_absorbs_everything(self):
        registry = NoopRegistry()
        c = registry.counter("c_total", "", ("x",))
        c.labels(x="1").inc()
        registry.histogram("h").observe(5)
        registry.gauge("g").set(1)
        assert len(registry) == 0
        assert registry.get("c_total") is None
        assert list(registry.collect()) == []

    def test_global_handle_disabled_by_default(self):
        t = telemetry.get()
        assert not t.enabled
        assert not telemetry.enabled()
        # Instrument calls through the disabled handle are free no-ops.
        t.metrics.counter("x_total").inc()
        assert len(t.metrics) == 0

    def test_enable_disable_cycle(self):
        handle = telemetry.enable()
        assert telemetry.get() is handle
        assert handle.enabled
        handle.metrics.counter("x_total").inc()
        # A fresh enable starts from zero.
        fresh = telemetry.enable()
        assert fresh.metrics.get("x_total") is None
        telemetry.disable()
        assert not telemetry.get().enabled

    def test_session_context_manager(self):
        with telemetry.session() as t:
            assert telemetry.get() is t
            assert t.enabled
        assert not telemetry.get().enabled
