"""Span nesting, dual-clock stamping, and ring-buffer bounding."""

import pytest

from repro.android.clock import Clock
from repro.telemetry.trace import NoopTracer, Tracer


class TestNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("campaign") as outer:
            with tracer.span("package") as mid:
                with tracer.span("injection") as inner:
                    pass
        assert outer.parent_id is None
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("package") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_finished_order_is_close_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_open_depth(self):
        tracer = Tracer()
        assert tracer.open_depth == 0
        with tracer.span("x"):
            assert tracer.open_depth == 1
        assert tracer.open_depth == 0

    def test_span_closed_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("x"):
                raise RuntimeError("boom")
        assert tracer.open_depth == 0
        assert len(tracer) == 1


class TestClocks:
    def test_virtual_stamps_from_tracer_clock(self):
        clock = Clock()
        tracer = Tracer(clock=clock)
        clock.sleep(100)
        with tracer.span("x") as span:
            clock.sleep(250)
        assert span.start_virtual_ms == 100
        assert span.end_virtual_ms == 350
        assert span.virtual_duration_ms == 250

    def test_per_span_clock_override(self):
        default, other = Clock(), Clock(start_ms=5000)
        tracer = Tracer(clock=default)
        with tracer.span("x", clock=other) as span:
            pass
        assert span.start_virtual_ms == 5000

    def test_no_clock_means_no_virtual_stamp(self):
        tracer = Tracer()
        with tracer.span("x") as span:
            pass
        assert span.start_virtual_ms is None
        assert span.virtual_duration_ms is None

    def test_wall_stamps_monotonic(self):
        tracer = Tracer()
        with tracer.span("x") as span:
            pass
        assert span.end_wall_s >= span.start_wall_s
        assert span.wall_duration_s >= 0

    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("x", campaign="A") as span:
            span.set_attribute("outcome", "crash")
        assert span.attributes == {"campaign": "A", "outcome": "crash"}


class TestBounding:
    def test_ring_keeps_newest_and_counts_dropped(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert [s.name for s in tracer.spans()] == ["s7", "s8", "s9"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestNoopTracer:
    def test_noop_records_nothing(self):
        tracer = NoopTracer()
        with tracer.span("x", campaign="A") as span:
            span.set_attribute("k", "v")
        assert len(tracer) == 0
        assert tracer.spans() == []
        assert tracer.dropped == 0
