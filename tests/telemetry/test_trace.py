"""Span nesting, dual-clock stamping, and ring-buffer bounding."""

import pytest

from repro.android.clock import Clock
from repro.telemetry.trace import NoopTracer, Tracer


class TestNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("campaign") as outer:
            with tracer.span("package") as mid:
                with tracer.span("injection") as inner:
                    pass
        assert outer.parent_id is None
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("package") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_finished_order_is_close_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_open_depth(self):
        tracer = Tracer()
        assert tracer.open_depth == 0
        with tracer.span("x"):
            assert tracer.open_depth == 1
        assert tracer.open_depth == 0

    def test_span_closed_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("x"):
                raise RuntimeError("boom")
        assert tracer.open_depth == 0
        assert len(tracer) == 1


class TestClocks:
    def test_virtual_stamps_from_tracer_clock(self):
        clock = Clock()
        tracer = Tracer(clock=clock)
        clock.sleep(100)
        with tracer.span("x") as span:
            clock.sleep(250)
        assert span.start_virtual_ms == 100
        assert span.end_virtual_ms == 350
        assert span.virtual_duration_ms == 250

    def test_per_span_clock_override(self):
        default, other = Clock(), Clock(start_ms=5000)
        tracer = Tracer(clock=default)
        with tracer.span("x", clock=other) as span:
            pass
        assert span.start_virtual_ms == 5000

    def test_no_clock_means_no_virtual_stamp(self):
        tracer = Tracer()
        with tracer.span("x") as span:
            pass
        assert span.start_virtual_ms is None
        assert span.virtual_duration_ms is None

    def test_wall_stamps_monotonic(self):
        tracer = Tracer()
        with tracer.span("x") as span:
            pass
        assert span.end_wall_s >= span.start_wall_s
        assert span.wall_duration_s >= 0

    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("x", campaign="A") as span:
            span.set_attribute("outcome", "crash")
        assert span.attributes == {"campaign": "A", "outcome": "crash"}


class TestBounding:
    def test_ring_keeps_newest_and_counts_dropped(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert [s.name for s in tracer.spans()] == ["s7", "s8", "s9"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestNoopTracer:
    def test_noop_records_nothing(self):
        tracer = NoopTracer()
        with tracer.span("x", campaign="A") as span:
            span.set_attribute("k", "v")
        assert len(tracer) == 0
        assert tracer.spans() == []
        assert tracer.dropped == 0


class TestLeafFastPath:
    def test_record_leaf_matches_context_manager_span(self):
        clock = Clock()
        ctx, leaf = Tracer(clock=clock), Tracer(clock=clock)
        with ctx.span("injection", seq=1, outcome="delivered") as span:
            pass
        leaf.record_leaf(
            "injection",
            {"seq": 1, "outcome": "delivered"},
            span.start_wall_s,
            span.end_wall_s,
            span.start_virtual_ms,
            span.end_virtual_ms,
        )
        assert [s.to_dict() for s in leaf.spans()] == [span.to_dict()]

    def test_leaf_nests_under_the_open_span(self):
        tracer = Tracer()
        with tracer.span("component") as parent:
            tracer.record_leaf("injection", {"seq": 1}, 0.0, 1.0, None, None)
        (leaf, _) = tracer.spans()
        assert leaf.parent_id == parent.span_id

    def test_leaf_ring_evicts_and_counts(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.record_leaf("injection", {"seq": i}, 0.0, 1.0, None, None)
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert [s.attributes["seq"] for s in tracer.spans()] == [7, 8, 9]

    def test_inline_client_entry_materializes_like_record_leaf(self):
        # The fuzzer's instrumented loop is the one blessed inline client
        # of the leaf ring: it appends compact tuples directly instead of
        # calling record_leaf.  This locks the entry layout (and the
        # materialized attribute order) to what record_leaf produces, so
        # the two paths cannot drift apart.
        from repro.qgj.fuzzer import _LEAF_KEYS

        reference, inline = Tracer(capacity=8), Tracer(capacity=8)
        for seq, outcome in ((1, "delivered"), (2, "security_exception")):
            reference.record_leaf(
                "injection",
                {"seq": seq, "outcome": outcome},
                1.5,
                2.5,
                100.0,
                200.0,
            )
            inline._finished.append(
                (
                    next(inline._ids),
                    None,
                    "injection",
                    _LEAF_KEYS,
                    1.5,
                    2.5,
                    100.0,
                    200.0,
                    seq,
                    outcome,
                )
            )
        ref_spans, inline_spans = reference.spans(), inline.spans()
        assert [s.to_dict() for s in ref_spans] == [s.to_dict() for s in inline_spans]
        # dict key order matters for byte-stable JSONL exports
        assert [list(s.attributes) for s in inline_spans] == [
            list(s.attributes) for s in ref_spans
        ]

    def test_fuzzer_injection_spans_carry_seq_and_outcome(self):
        from repro import telemetry
        from repro.apps.catalog import build_wear_corpus
        from repro.qgj.campaigns import Campaign
        from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
        from repro.wear.device import WearDevice

        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("leaf")
        corpus.install(watch)
        fuzzer = FuzzerLibrary(watch)
        info = watch.packages.get_package("com.runmate.wear").activities()[1]
        with telemetry.session() as t:
            result = fuzzer.fuzz_component(
                info, Campaign.B, FuzzConfig(max_intents_per_component=25)
            )
            spans = [s for s in t.tracer.spans() if s.name == "injection"]
        assert result.sent == 25
        assert len(spans) == 25
        assert [list(s.attributes) for s in spans] == [["seq", "outcome"]] * 25
        assert [s.attributes["seq"] for s in spans] == list(range(1, 26))

    def test_fuzzer_inline_eviction_accounting(self):
        from repro import telemetry
        from repro.apps.catalog import build_wear_corpus
        from repro.qgj.campaigns import Campaign
        from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
        from repro.wear.device import WearDevice
        import repro.telemetry as telemetry_pkg

        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("leaf-evict")
        corpus.install(watch)
        fuzzer = FuzzerLibrary(watch)
        info = watch.packages.get_package("com.runmate.wear").activities()[1]
        with telemetry.session() as t:
            t.tracer._finished = type(t.tracer._finished)(maxlen=16)
            fuzzer.fuzz_component(
                info, Campaign.B, FuzzConfig(max_intents_per_component=50)
            )
            # 50 injections + 1 component span through a 16-slot ring
            assert len(t.tracer) == 16
            assert t.tracer.dropped == 35


class TestSampling:
    def _record(self, tracer, n=100):
        for i in range(n):
            tracer.record_leaf("injection", {"seq": i}, 0.0, 1.0, None, None)

    def test_sampling_off_by_default(self):
        tracer = Tracer()
        self._record(tracer, 10)
        assert len(tracer) == 10
        assert tracer.sampled_out == 0

    def test_one_in_n_retention_and_accounting(self):
        tracer = Tracer(sample_every=10)
        self._record(tracer, 100)
        assert len(tracer) == 10
        assert tracer.sampled_out == 90
        assert len(tracer) + tracer.dropped + tracer.sampled_out == 100

    def test_same_seed_reproduces_the_same_sampled_trace(self):
        def run(seed):
            tracer = Tracer(sample_every=7, sample_seed=seed)
            self._record(tracer, 200)
            return [s.attributes["seq"] for s in tracer.spans()]

        assert run(42) == run(42)

    def test_phase_offset_is_seed_derived(self):
        seqs = {seed: None for seed in range(20)}
        for seed in seqs:
            tracer = Tracer(sample_every=10, sample_seed=seed)
            self._record(tracer, 30)
            seqs[seed] = tuple(s.attributes["seq"] for s in tracer.spans())
        # Different seeds land on different phases (not all identical).
        assert len(set(seqs.values())) > 1

    def test_sampled_out_spans_consume_no_ids(self):
        tracer = Tracer(sample_every=5)
        self._record(tracer, 25)
        ids = [s.span_id for s in tracer.spans()]
        assert ids == list(range(1, len(ids) + 1))

    def test_sampled_out_ctx_span_is_transparent_to_nesting(self):
        tracer = Tracer(sample_every=2, sample_seed=3)
        kept = []
        with tracer.span("root") as root:
            for _ in range(4):
                with tracer.span("mid"):
                    pass
        for span in tracer.spans():
            if span.name == "mid":
                kept.append(span)
                assert span.parent_id == root.span_id
        assert 0 < len(kept) < 4

    def test_begin_shard_resets_the_phase(self):
        def shard_run(tracer, n):
            tracer.begin_shard()
            self._record(tracer, n)

        two = Tracer(sample_every=10, sample_seed=9)
        shard_run(two, 30)
        first_half = [s.attributes["seq"] for s in two.spans()]
        shard_run(two, 30)
        seqs = [s.attributes["seq"] for s in two.spans()]
        # Each shard samples from a fresh per-shard count, so the second
        # 30-record shard retains the *same* seq pattern as the first --
        # the invariant that makes worker-local sampling (which always
        # starts fresh) merge identically to in-process sampling.
        assert seqs[: len(first_half)] == first_half
        assert seqs[len(first_half) :] == first_half

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)
