"""Telemetry tests toggle the process-wide handle; always restore it."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _telemetry_disabled_after():
    yield
    telemetry.disable()
