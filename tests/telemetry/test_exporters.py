"""Prometheus text exposition, JSONL trace round-trips, summary table."""

import json

from repro import telemetry
from repro.telemetry.exporters import (
    export_snapshot,
    parse_jsonl_spans,
    render_prometheus,
    render_summary,
    spans_to_jsonl,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    c = registry.counter("intents_injected_total", "Injected intents.", ("campaign",))
    c.labels(campaign="A").inc(3)
    c.labels(campaign="B").inc(1)
    h = registry.histogram("anr_watchdog_latency_ms", "ANR latency.", buckets=(100, 1000))
    h.observe(50)
    h.observe(5000)
    registry.gauge("logcat_buffer_records", "Buffered.").set(42)
    return registry


class TestPrometheus:
    def test_text_format(self):
        text = render_prometheus(make_registry())
        assert "# HELP intents_injected_total Injected intents.\n" in text
        assert "# TYPE intents_injected_total counter\n" in text
        assert 'intents_injected_total{campaign="A"} 3\n' in text
        assert 'intents_injected_total{campaign="B"} 1\n' in text
        assert "# TYPE anr_watchdog_latency_ms histogram\n" in text
        assert 'anr_watchdog_latency_ms_bucket{le="100"} 1\n' in text
        assert 'anr_watchdog_latency_ms_bucket{le="1000"} 1\n' in text
        assert 'anr_watchdog_latency_ms_bucket{le="+Inf"} 2\n' in text
        assert "anr_watchdog_latency_ms_sum 5050\n" in text
        assert "anr_watchdog_latency_ms_count 2\n" in text
        assert "# TYPE logcat_buffer_records gauge\n" in text
        assert "logcat_buffer_records 42\n" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("p",)).labels(p='a"b\\c\nd').inc()
        text = render_prometheus(registry)
        assert r'c_total{p="a\"b\\c\nd"} 1' in text

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestJsonl:
    def test_round_trip(self):
        tracer = Tracer()
        with tracer.span("campaign", campaign="A"):
            with tracer.span("injection", seq=1):
                pass
        text = spans_to_jsonl(tracer)
        rows = parse_jsonl_spans(text)
        assert len(rows) == 2
        by_name = {row["name"]: row for row in rows}
        assert by_name["injection"]["parent_id"] == by_name["campaign"]["span_id"]
        assert by_name["injection"]["attributes"] == {"seq": 1}
        # Every line is standalone JSON.
        for line in text.splitlines():
            json.loads(line)


class TestSummaryAndSnapshot:
    def test_summary_lists_every_metric(self):
        with telemetry.session() as t:
            t.metrics.counter("intents_injected_total", "", ("campaign",)).labels(
                campaign="A"
            ).inc(7)
            t.metrics.histogram("anr_watchdog_latency_ms").observe(6000)
            with t.tracer.span("study"):
                pass
            text = render_summary(t)
        assert "intents_injected_total" in text
        assert "anr_watchdog_latency_ms" in text
        assert "n=1" in text
        assert "spans: 1 retained, 0 dropped, 0 open" in text

    def test_export_snapshot_writes_three_files(self, tmp_path):
        with telemetry.session() as t:
            t.metrics.counter("x_total").inc()
            with t.tracer.span("study"):
                pass
            written = export_snapshot(str(tmp_path), t)
        assert sorted(written) == ["metrics.prom", "summary.txt", "trace.jsonl"]
        assert (tmp_path / "metrics.prom").read_text().startswith("# TYPE x_total")
        rows = parse_jsonl_spans((tmp_path / "trace.jsonl").read_text())
        assert rows[0]["name"] == "study"
        assert "TELEMETRY" in (tmp_path / "summary.txt").read_text()


class TestValueFormatting:
    def test_nonfinite_values_use_prometheus_spellings(self):
        from repro.telemetry.exporters import _format_value

        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(float("nan")) == "NaN"

    def test_integral_floats_drop_the_point(self):
        from repro.telemetry.exporters import _format_value

        assert _format_value(3.0) == "3"
        assert _format_value(0.0) == "0"
        assert _format_value(2.5) == "2.5"

    def test_infinite_gauge_renders_scrapeable_text(self):
        registry = MetricsRegistry()
        registry.gauge("limit", "A limit.").labels().set(float("inf"))
        assert "limit +Inf\n" in render_prometheus(registry)

    def test_label_renderer_does_not_leak_extra_labels(self):
        """Regression: ``extra`` was a mutable default dict; one histogram
        render could poison every later label-less call."""
        from repro.telemetry.exporters import _render_labels

        before = _render_labels({"a": "1"})
        _render_labels({"a": "1"}, {"le": "5"})
        assert _render_labels({"a": "1"}) == before
        assert _render_labels({}) == ""


class TestSamplingAndProfileSurfaces:
    def test_summary_mentions_sampling_only_when_armed(self):
        from repro import telemetry as telemetry_mod
        from repro.telemetry.exporters import render_summary

        with telemetry_mod.session() as t:
            assert "sampling:" not in render_summary(t)
        with telemetry_mod.session(sample_every=50) as t:
            t.tracer.record_leaf("injection", {}, 0.0, 1.0, None, None)
            text = render_summary(t)
            assert "sampling: 1-in-50" in text
            assert "sampled out" in text

    def test_export_snapshot_writes_collapsed_profile_only_under_profile(
        self, tmp_path
    ):
        from repro import telemetry as telemetry_mod
        from repro.telemetry.exporters import export_snapshot

        with telemetry_mod.session() as t:
            written = export_snapshot(str(tmp_path / "plain"), t)
        assert "profile.collapsed" not in written
        with telemetry_mod.session(profile=True) as t:
            t.profiler.enter("dispatch")
            t.profiler.exit()
            written = export_snapshot(str(tmp_path / "prof"), t)
        assert "profile.collapsed" in written
        text = (tmp_path / "prof" / "profile.collapsed").read_text()
        assert text.startswith("dispatch ")


class TestFleetSection:
    def test_non_fleet_summary_has_no_fleet_block(self):
        with telemetry.session() as t:
            assert "FLEET" not in render_summary(t)

    def test_fleet_block_renders_pairs_lanes_and_cohort_table(self):
        from repro.fleet.lane import (
            CRASHES_SITE,
            INTENTS_SENT_SITE,
            LANE_OCCUPANCY_SITE,
            PAIRS_ACTIVE_SITE,
            PAIRS_FINISHED_SITE,
        )

        with telemetry.session() as t:
            metrics = t.metrics
            CRASHES_SITE.bind(metrics, ("budget",)).inc(4)
            INTENTS_SENT_SITE.bind(metrics, ("budget",)).inc(1000)
            CRASHES_SITE.bind(metrics, ("aging",)).inc(1)
            INTENTS_SENT_SITE.bind(metrics, ("aging",)).inc(500)
            PAIRS_FINISHED_SITE.bind(metrics).inc(8)
            PAIRS_ACTIVE_SITE.bind(metrics).set(2)
            LANE_OCCUPANCY_SITE.bind(metrics, ("000",)).set(3)
            LANE_OCCUPANCY_SITE.bind(metrics, ("001",)).set(2)
            t.flush()
            text = render_summary(t)
        assert "FLEET" in text
        assert "pairs: 8 finished, 2 active" in text
        assert "lane occupancy (peak pairs): 000=3 001=2" in text
        # Cohort rows render in sorted name order.
        assert text.index("aging") < text.index("budget")
