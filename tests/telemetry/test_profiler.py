"""The telemetry self-profiler: phase stacks, self-time, export formats."""

from repro.telemetry.exporters import render_collapsed
from repro.telemetry.profiler import NOOP_PROFILER, NoopProfiler, PhaseProfiler


class TestPhaseAccounting:
    def test_self_time_excludes_nested_phases(self):
        prof = PhaseProfiler()
        prof.enter("dispatch")
        prof.enter("logcat")
        prof.exit()
        prof.exit()
        rows = dict((path, (s, n)) for path, s, n in prof.paths())
        assert set(rows) == {("dispatch",), ("dispatch", "logcat")}
        total = prof.total_seconds()
        assert total >= 0
        assert sum(s for s, _ in rows.values()) == total

    def test_entries_counted_per_path(self):
        prof = PhaseProfiler()
        for _ in range(3):
            prof.enter("generate")
            prof.exit()
        ((path, _, entries),) = prof.paths()
        assert path == ("generate",)
        assert entries == 3

    def test_reentry_accumulates_into_the_same_path(self):
        prof = PhaseProfiler()
        prof.enter("a")
        prof.enter("b")
        prof.exit()
        prof.enter("b")
        prof.exit()
        prof.exit()
        paths = [path for path, _, _ in prof.paths()]
        assert paths == [("a",), ("a", "b")]

    def test_exit_without_enter_is_harmless(self):
        prof = PhaseProfiler()
        prof.exit()
        assert prof.paths() == []
        assert prof.open_depth == 0

    def test_open_depth(self):
        prof = PhaseProfiler()
        prof.enter("x")
        assert prof.open_depth == 1
        prof.exit()
        assert prof.open_depth == 0


class TestMerge:
    def test_snapshot_round_trips_through_merge(self):
        shard = PhaseProfiler()
        shard.enter("dispatch")
        shard.enter("binder")
        shard.exit()
        shard.exit()
        home = PhaseProfiler()
        home.merge(shard.snapshot())
        home.merge(shard.snapshot())
        rows = {path: (s, n) for path, s, n in home.paths()}
        ref = {path: (s, n) for path, s, n in shard.paths()}
        assert set(rows) == set(ref)
        for path, (seconds, entries) in rows.items():
            assert seconds == 2 * ref[path][0]
            assert entries == 2 * ref[path][1]


class TestCollapsedExport:
    def test_flamegraph_ready_lines(self):
        prof = PhaseProfiler()
        prof.enter("dispatch")
        prof.enter("logcat")
        prof.exit()
        prof.exit()
        lines = render_collapsed(prof).splitlines()
        assert len(lines) == 2
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack in ("dispatch", "dispatch;logcat")
            assert int(weight) >= 0  # integral microseconds

    def test_empty_profiler_renders_empty(self):
        assert render_collapsed(PhaseProfiler()) == ""


class TestNoopProfiler:
    def test_inert(self):
        prof = NoopProfiler()
        prof.enter("x")
        prof.exit()
        prof.merge({"a": (1.0, 1)})
        assert prof.paths() == []
        assert prof.total_seconds() == 0.0
        assert prof.snapshot() == {}
        assert not NOOP_PROFILER.enabled
