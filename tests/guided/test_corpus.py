"""Tests for the behaviour corpus: dedup, deterministic merge, persistence."""

import pytest

from repro.guided.corpus import (
    BehaviorCorpus,
    CorpusEntry,
    admissible,
    canonical_intent,
    intent_from_wire,
    intent_to_wire,
)
from repro.guided.fingerprint import BehaviorFingerprint
from repro.qgj.campaigns import FuzzIntent


def fp(component="pkg/cls", outcome="crash", exception="java.lang.NullPointerException"):
    return BehaviorFingerprint(
        component=component,
        outcome=outcome,
        exception=exception,
        frame="pkg.cls.onCreate",
        log_signature=exception,
        lifecycle="calm",
    )


def entry(component="pkg/cls", action="android.intent.action.VIEW", **kwargs):
    return CorpusEntry(
        package="com.example",
        campaign="A",
        fingerprint=fp(component=component, **kwargs),
        intent=FuzzIntent(action=action, data="tel:123"),
    )


class TestIntentWire:
    def test_round_trip_preserves_everything(self):
        intent = FuzzIntent(
            action="a", data="d:1", extras=(("k", 1), ("n", None), ("f", 0.5))
        )
        assert intent_from_wire(intent_to_wire(intent)) == intent

    def test_canonical_form_is_stable(self):
        intent = FuzzIntent(action="a", data=None)
        assert canonical_intent(intent) == canonical_intent(intent)


class TestEntryValidation:
    def test_rejects_non_wire_safe_extras(self):
        with pytest.raises(ValueError, match="wire-safe"):
            CorpusEntry(
                package="p",
                campaign="A",
                fingerprint=fp(),
                intent=FuzzIntent(action="a", data=None, extras=(("k", object()),)),
            )

    def test_rejects_empty_package(self):
        with pytest.raises(ValueError):
            CorpusEntry(
                package="", campaign="A", fingerprint=fp(), intent=FuzzIntent(action="a", data=None)
            )

    def test_admissible_round_trips(self):
        assert admissible(entry())


class TestDedup:
    def test_first_entry_is_novel(self):
        corpus = BehaviorCorpus()
        assert corpus.add(entry()) is True
        assert len(corpus) == 1

    def test_same_fingerprint_is_rejected(self):
        corpus = BehaviorCorpus()
        corpus.add(entry(action="android.intent.action.VIEW"))
        assert corpus.add(entry(action="android.intent.action.DIAL")) is False
        assert len(corpus) == 1

    def test_contains_is_by_fingerprint(self):
        corpus = BehaviorCorpus([entry()])
        assert fp() in corpus
        assert fp(component="other/cls") not in corpus

    def test_entries_are_canonically_ordered(self):
        a = entry(component="a/cls")
        z = entry(component="z/cls")
        assert BehaviorCorpus([z, a]).entries() == BehaviorCorpus([a, z]).entries()


class TestMerge:
    def test_union_is_order_independent(self):
        left = BehaviorCorpus([entry(component="a/cls"), entry(component="b/cls")])
        right = BehaviorCorpus([entry(component="b/cls"), entry(component="c/cls")])
        ab = BehaviorCorpus.merge([left, right])
        ba = BehaviorCorpus.merge([right, left])
        assert ab.digest() == ba.digest()
        assert len(ab) == 3

    def test_fingerprint_tie_resolves_to_smallest_key(self):
        # Two shards discover the same behaviour with different intents; the
        # merge must pick one deterministically, whatever the input order.
        first = entry(action="android.intent.action.DIAL")
        second = entry(action="android.intent.action.VIEW")
        merged_one = BehaviorCorpus.merge([BehaviorCorpus([first]), BehaviorCorpus([second])])
        merged_two = BehaviorCorpus.merge([BehaviorCorpus([second]), BehaviorCorpus([first])])
        assert merged_one.entries() == merged_two.entries()
        winner = merged_one.entries()[0]
        assert winner.sort_key() == min(first.sort_key(), second.sort_key())

    def test_digest_reflects_content_not_history(self):
        one = BehaviorCorpus([entry(component="a/cls")])
        two = BehaviorCorpus()
        two.add(entry(component="a/cls"))
        two.add(entry(component="a/cls"))  # duplicate, rejected
        assert one.digest() == two.digest()


class TestEntriesFor:
    def test_filters_by_package_and_campaign(self):
        a = CorpusEntry(
            package="p1", campaign="A", fingerprint=fp(component="x/1"),
            intent=FuzzIntent(action="a", data=None),
        )
        b = CorpusEntry(
            package="p1", campaign="B", fingerprint=fp(component="x/2"),
            intent=FuzzIntent(action="b", data=None),
        )
        c = CorpusEntry(
            package="p2", campaign="A", fingerprint=fp(component="x/3"),
            intent=FuzzIntent(action="c", data=None),
        )
        corpus = BehaviorCorpus([a, b, c])
        assert corpus.entries_for("p1") == [a, b]
        assert corpus.entries_for("p1", "B") == [b]
        assert corpus.entries_for("p3") == []


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        corpus = BehaviorCorpus([entry(component="a/cls"), entry(component="b/cls")])
        path = str(tmp_path / "corpus.jsonl")
        corpus.save(path, seed=7)
        loaded = BehaviorCorpus.load(path)
        assert loaded.digest() == corpus.digest()
        assert loaded.entries() == corpus.entries()

    def test_equal_corpora_serialize_byte_identically(self, tmp_path):
        a = BehaviorCorpus([entry(component="a/cls"), entry(component="b/cls")])
        b = BehaviorCorpus([entry(component="b/cls"), entry(component="a/cls")])
        path_a, path_b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        a.save(path_a)
        b.save(path_b)
        with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_load_rejects_foreign_journal(self, tmp_path):
        from repro.faults.journal import CheckpointJournal

        path = str(tmp_path / "other.jsonl")
        CheckpointJournal(path).start({"kind": "something-else"})
        with pytest.raises(ValueError, match="not a behaviour corpus"):
            BehaviorCorpus.load(path)

    def test_load_tolerates_torn_tail(self, tmp_path):
        corpus = BehaviorCorpus([entry(component="a/cls"), entry(component="b/cls")])
        path = str(tmp_path / "corpus.jsonl")
        corpus.save(path)
        with open(path, "ab") as f:
            f.write(b'{"type": "entry", "package": "torn')  # crash mid-write
        loaded = BehaviorCorpus.load(path)
        assert len(loaded) == 2
