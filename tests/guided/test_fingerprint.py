"""Tests for the behaviour fingerprint: the guided loop's novelty key."""

from repro.android.activity_manager import DispatchResult
from repro.android.jtypes import (
    IllegalStateException,
    NullPointerException,
    frame,
)
from repro.guided.fingerprint import (
    BehaviorFingerprint,
    crash_signature,
    fingerprint_injection,
    lifecycle_state,
    normalize_text,
    throwable_signature,
)
from repro.qgj.triage import CrashSignature
from repro.wear.device import WearDevice


def npe(message="Attempt to invoke method on null reference at offset 1234"):
    return NullPointerException(
        message, frames=[frame("com.example.app.MainActivity", "onCreate", 42)]
    )


class TestNormalize:
    def test_digits_collapse(self):
        assert normalize_text("pid 4711 died at 0x7f3a") == "pid # died at #x#f#a"

    def test_stable_for_text_without_digits(self):
        assert normalize_text("no digits here") == "no digits here"


class TestThrowableSignature:
    def test_root_class_and_top_frame(self):
        root, top, chain = throwable_signature(npe())
        assert root == "java.lang.NullPointerException"
        assert top == "com.example.app.MainActivity.onCreate"
        assert chain == "java.lang.NullPointerException"

    def test_chain_walks_causes_outer_first(self):
        outer = IllegalStateException("wrapper", cause=npe())
        root, top, chain = throwable_signature(outer)
        assert root == "java.lang.NullPointerException"
        assert chain == "java.lang.IllegalStateException>java.lang.NullPointerException"
        assert top == "com.example.app.MainActivity.onCreate"

    def test_messages_do_not_leak_into_signature(self):
        a = throwable_signature(npe("ref 111 was null"))
        b = throwable_signature(npe("ref 999 was null"))
        assert a == b


class TestLifecycle:
    def test_fresh_device_is_calm(self):
        assert lifecycle_state(WearDevice("fp-watch")) == "calm"

    def test_bands_follow_aging_fraction(self):
        watch = WearDevice("fp-watch")
        threshold = watch.system_server.reboot_threshold
        watch.system_server.aging.deposit(0.5 * threshold, "test")
        assert lifecycle_state(watch) == "strained"
        watch.system_server.aging.deposit(0.4 * threshold, "test")
        assert lifecycle_state(watch) == "critical"


class TestFingerprintInjection:
    def test_crash_fingerprint_fields(self):
        watch = WearDevice("fp-watch")
        dispatch = DispatchResult(delivered=True, crashed=True, throwable=npe())
        fp = fingerprint_injection("pkg/cls", "crash", dispatch, watch)
        assert fp.component == "pkg/cls"
        assert fp.outcome == "crash"
        assert fp.exception == "java.lang.NullPointerException"
        assert fp.frame == "com.example.app.MainActivity.onCreate"
        assert fp.lifecycle == "calm"

    def test_same_defect_different_payload_digits_dedup(self):
        watch = WearDevice("fp-watch")
        a = fingerprint_injection(
            "pkg/cls",
            "crash",
            DispatchResult(delivered=True, crashed=True, throwable=npe("slot 3")),
            watch,
        )
        b = fingerprint_injection(
            "pkg/cls",
            "crash",
            DispatchResult(delivered=True, crashed=True, throwable=npe("slot 7")),
            watch,
        )
        assert a == b

    def test_reboot_overrides_outcome(self):
        watch = WearDevice("fp-watch")
        fp = fingerprint_injection("pkg/cls", "delivered", None, watch, rebooted=True)
        assert fp.outcome == "reboot"

    def test_non_crash_outcomes_fingerprint_by_label(self):
        watch = WearDevice("fp-watch")
        delivered = fingerprint_injection(
            "pkg/cls", "delivered", DispatchResult(delivered=True), watch
        )
        denied = fingerprint_injection("pkg/cls", "security_exception", None, watch)
        assert delivered != denied
        assert denied.exception == ""

    def test_anr_distinct_from_plain_delivery(self):
        watch = WearDevice("fp-watch")
        anr = fingerprint_injection(
            "pkg/cls", "anr", DispatchResult(delivered=True, anr=True), watch
        )
        ok = fingerprint_injection(
            "pkg/cls", "delivered", DispatchResult(delivered=True), watch
        )
        assert anr != ok

    def test_tuple_round_trip(self):
        watch = WearDevice("fp-watch")
        fp = fingerprint_injection(
            "pkg/cls",
            "crash",
            DispatchResult(delivered=True, crashed=True, throwable=npe()),
            watch,
        )
        assert BehaviorFingerprint.from_tuple(fp.as_tuple()) == fp


class TestCrashSignatureBridge:
    def test_matches_triage_key(self):
        signature = crash_signature("pkg/cls", npe())
        assert isinstance(signature, CrashSignature)
        assert signature == CrashSignature(
            component="pkg/cls",
            exception="java.lang.NullPointerException",
            frame="com.example.app.MainActivity.onCreate",
        )

    def test_frameless_root_gets_placeholder(self):
        signature = crash_signature("pkg/cls", NullPointerException("bare"))
        assert signature.frame == "(unknown)"
