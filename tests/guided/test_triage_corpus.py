"""Triage on corpus-derived intents: minimized reproducers stay corpus-grade.

The guided loop banks crashing intents in the behaviour corpus; the triage
layer minimizes reproducers.  These tests close the loop: a corpus entry's
intent minimizes to the *same* crash signature, and the minimized intent is
itself admissible corpus material (wire-safe, round-trippable), so a triage
pass can rewrite corpus entries in place without corrupting the store.
"""

import dataclasses

import pytest

from repro.apps.catalog import build_wear_corpus
from repro.experiments.config import QUICK
from repro.guided import GuidedConfig, run_guided_study
from repro.guided.corpus import CorpusEntry, admissible
from repro.qgj.triage import CrashProber, minimize_intent
from repro.wear.device import WearDevice


@pytest.fixture(scope="module")
def crash_entries():
    """Corpus entries whose fingerprint is a crash, from a real guided run."""
    result = run_guided_study(
        QUICK,
        GuidedConfig(budget=2_500, block_size=125, arms_per_round=4),
        packages=["com.google.android.apps.fitness", "com.motorola.omega.body"],
    )
    entries = [
        entry for entry in result.corpus.entries() if entry.fingerprint.outcome == "crash"
    ]
    assert entries, "the guided run should bank at least one crashing entry"
    return entries


@pytest.fixture()
def watch():
    corpus = build_wear_corpus(seed=QUICK.corpus_seed)
    device = WearDevice("triage-corpus-watch")
    corpus.install(device)
    return device


def component_info(watch, entry):
    package = watch.packages.get_package(entry.package)
    flat = entry.fingerprint.component
    return next(
        info for info in package.components if info.name.flatten_to_string() == flat
    )


class TestMinimizeCorpusEntries:
    def test_minimized_intent_keeps_the_signature(self, crash_entries, watch):
        prober = CrashProber(watch)
        minimized_any = False
        for entry in crash_entries[:5]:
            info = component_info(watch, entry)
            signature = prober.signature_of(info, entry.intent)
            if signature is None:
                # Lifecycle-dependent crash: the fresh probe device is not
                # in the aged state the fingerprint recorded.  Fine -- the
                # corpus keys on state on purpose; skip it here.
                continue
            minimal = minimize_intent(prober, info, entry.intent, signature)
            assert prober.signature_of(info, minimal) == signature
            minimized_any = True
            # Minimisation only removes or shrinks fields.
            assert len(minimal.extras) <= len(entry.intent.extras)
        assert minimized_any, "no corpus crash reproduced on a fresh device"

    def test_minimized_entry_is_corpus_admissible(self, crash_entries, watch):
        prober = CrashProber(watch)
        for entry in crash_entries[:5]:
            info = component_info(watch, entry)
            signature = prober.signature_of(info, entry.intent)
            if signature is None:
                continue
            minimal = minimize_intent(prober, info, entry.intent, signature)
            rewritten = dataclasses.replace(entry, intent=minimal)
            assert admissible(rewritten)
            return
        pytest.skip("no corpus crash reproduced on a fresh device")

    def test_corpus_entries_are_admissible_as_stored(self, crash_entries):
        for entry in crash_entries:
            assert isinstance(entry, CorpusEntry)
            assert admissible(entry)
