"""Tests for the bandit budget schedulers."""

import pytest

from repro.guided.scheduler import (
    ArmState,
    ThompsonScheduler,
    UcbScheduler,
    make_scheduler,
)

ARMS = [("p1", "A"), ("p1", "B"), ("p2", "A"), ("p2", "B")]


class TestArmBookkeeping:
    def test_update_accumulates(self):
        scheduler = UcbScheduler(ARMS)
        scheduler.update(("p1", "A"), intents=100, novel=7)
        scheduler.update(("p1", "A"), intents=50, novel=1)
        state = scheduler.states[("p1", "A")]
        assert (state.plays, state.intents, state.novel) == (2, 150, 8)
        assert state.rate == pytest.approx(8 / 150)

    def test_duplicate_arms_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            UcbScheduler([("p", "A"), ("p", "A")])

    def test_empty_arms_rejected(self):
        with pytest.raises(ValueError):
            UcbScheduler([])

    def test_unplayed_rate_is_zero(self):
        assert ArmState().rate == 0.0


class TestAllocation:
    def test_unplayed_arms_funded_first_in_arm_order(self):
        scheduler = UcbScheduler(ARMS)
        assert scheduler.allocate(2) == [("p1", "A"), ("p1", "B")]
        scheduler.update(("p1", "A"), 10, 0)
        scheduler.update(("p1", "B"), 10, 0)
        # The remaining unplayed arms still jump the queue.
        assert scheduler.allocate(2) == [("p2", "A"), ("p2", "B")]

    def test_k_validated(self):
        with pytest.raises(ValueError):
            UcbScheduler(ARMS).allocate(0)

    def test_ucb_prefers_novel_yielding_arm(self):
        scheduler = UcbScheduler(ARMS, exploration=0.1)
        for arm in ARMS:
            scheduler.update(arm, 100, 20 if arm == ("p2", "A") else 0)
        assert scheduler.allocate(1) == [("p2", "A")]

    def test_ucb_exploration_revives_starved_arms(self):
        # With a big exploration weight, a lightly-sampled arm outranks a
        # heavily-sampled one of equal rate.
        scheduler = UcbScheduler(ARMS, exploration=10.0)
        scheduler.update(("p1", "A"), 10_000, 10)
        for arm in ARMS[1:]:
            scheduler.update(arm, 10, 0)
        assert scheduler.allocate(1)[0] != ("p1", "A")

    def test_ucb_ties_break_on_arm_order(self):
        scheduler = UcbScheduler(ARMS, exploration=0.0)
        for arm in ARMS:
            scheduler.update(arm, 100, 0)
        assert scheduler.allocate(4) == ARMS


class TestThompson:
    def test_same_seed_same_schedule(self):
        def run(seed):
            scheduler = ThompsonScheduler(ARMS, seed=seed)
            picks = []
            for _ in range(10):
                chosen = scheduler.allocate(2)
                picks.append(chosen)
                for arm in chosen:
                    scheduler.update(arm, 50, 1 if arm[0] == "p2" else 0)
            return picks

        assert run(7) == run(7)

    def test_different_seeds_diverge(self):
        def draws(seed):
            scheduler = ThompsonScheduler(ARMS, seed=seed)
            for arm in ARMS:
                scheduler.update(arm, 50, 5)
            return [tuple(scheduler.allocate(2)) for _ in range(10)]

        assert draws(1) != draws(2)

    def test_posterior_shifts_toward_novelty(self):
        scheduler = ThompsonScheduler(ARMS, seed=0)
        for arm in ARMS:
            scheduler.update(arm, 100, 90 if arm == ("p1", "B") else 0)
        wins = sum(scheduler.allocate(1) == [("p1", "B")] for _ in range(50))
        assert wins > 40


class TestSnapshotAndFactory:
    def test_snapshot_is_sorted_and_json_able(self):
        import json

        scheduler = UcbScheduler(ARMS)
        scheduler.update(("p2", "B"), 10, 2)
        snapshot = scheduler.snapshot()
        assert snapshot["kind"] == "ucb"
        packages = [arm["package"] for arm in snapshot["arms"]]
        assert packages == sorted(packages)
        json.dumps(snapshot)  # must not raise

    def test_factory_dispatches(self):
        assert isinstance(make_scheduler("ucb", ARMS), UcbScheduler)
        assert isinstance(make_scheduler("thompson", ARMS, seed=3), ThompsonScheduler)
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("greedy", ARMS)

    def test_exploration_validated(self):
        with pytest.raises(ValueError):
            UcbScheduler(ARMS, exploration=-1.0)
