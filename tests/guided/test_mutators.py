"""Tests for the pool mutators."""

import random

import pytest

from repro.android.actions import ALL_ACTIONS, URI_SAMPLES
from repro.guided.mutators import MUTATION_OPS, mutate_intent
from repro.qgj.campaigns import FuzzIntent

RICH = FuzzIntent(
    action="android.intent.action.VIEW",
    data="content://contacts/people/1",
    extras=(("extra_0", 1), ("extra_1", "x")),
)
BARE = FuzzIntent(action=None, data=None)
POOL = (
    FuzzIntent(action="android.intent.action.DIAL", data="tel:123"),
    FuzzIntent(action="android.intent.action.SEND", data=None, extras=(("e", 2),)),
)


class TestOperatorTable:
    def test_names_are_pinned(self):
        # The table is part of the observable mutation stream: appending is
        # fine, renaming or reordering replays differently.
        assert list(MUTATION_OPS) == [
            "swap_action",
            "garble_action",
            "drop_action",
            "swap_data",
            "garble_data",
            "scheme_slam",
            "drop_data",
            "add_extra",
            "drop_extra",
            "mutate_extra",
            "splice",
        ]

    def test_every_operator_yields_fuzz_intent_or_none(self):
        rng = random.Random(1)
        for name, op in MUTATION_OPS.items():
            for base in (RICH, BARE):
                mutated = op(base, rng, POOL)
                assert mutated is None or isinstance(mutated, FuzzIntent), name

    def test_swap_action_stays_in_valid_actions(self):
        rng = random.Random(2)
        mutated = MUTATION_OPS["swap_action"](RICH, rng, ())
        assert mutated.action in ALL_ACTIONS
        assert mutated.data == RICH.data

    def test_swap_data_uses_valid_samples(self):
        rng = random.Random(3)
        mutated = MUTATION_OPS["swap_data"](RICH, rng, ())
        assert mutated.data in set(URI_SAMPLES.values())

    def test_scheme_slam_keeps_scheme(self):
        rng = random.Random(4)
        mutated = MUTATION_OPS["scheme_slam"](RICH, rng, ())
        assert mutated.data.startswith("content:")
        assert mutated.data != RICH.data

    def test_inapplicable_operators_return_none(self):
        rng = random.Random(5)
        assert MUTATION_OPS["drop_action"](BARE, rng, ()) is None
        assert MUTATION_OPS["drop_data"](BARE, rng, ()) is None
        assert MUTATION_OPS["drop_extra"](BARE, rng, ()) is None
        assert MUTATION_OPS["mutate_extra"](BARE, rng, ()) is None
        assert MUTATION_OPS["scheme_slam"](BARE, rng, ()) is None
        assert MUTATION_OPS["splice"](RICH, rng, POOL[:1]) is None

    def test_splice_caps_extras(self):
        fat = FuzzIntent(
            action="a", data=None, extras=tuple((f"k{i}", i) for i in range(5))
        )
        pool = (fat, FuzzIntent(action="b", data=None, extras=(("x", 1), ("y", 2))))
        rng = random.Random(6)
        for _ in range(20):
            mutated = MUTATION_OPS["splice"](fat, rng, pool)
            assert len(mutated.extras) <= 5


class TestMutateIntent:
    def test_always_yields_an_intent(self):
        rng = random.Random(7)
        for _ in range(200):
            assert isinstance(mutate_intent(BARE, rng, ()), FuzzIntent)

    def test_deterministic_given_seed(self):
        stream_a = [mutate_intent(RICH, random.Random(42), POOL) for _ in range(1)]
        stream_b = [mutate_intent(RICH, random.Random(42), POOL) for _ in range(1)]
        assert stream_a == stream_b
        runs = [
            [mutate_intent(RICH, rng, POOL) for _ in range(50)]
            for rng in (random.Random(42), random.Random(42))
        ]
        assert runs[0] == runs[1]

    def test_different_seeds_diverge(self):
        a = [mutate_intent(RICH, random.Random(1), POOL) for _ in range(20)]
        b = [mutate_intent(RICH, random.Random(2), POOL) for _ in range(20)]
        assert a != b

    def test_mutation_changes_something_usually(self):
        rng = random.Random(8)
        changed = sum(mutate_intent(RICH, rng, POOL) != RICH for _ in range(100))
        assert changed > 80  # drop/garble/swap nearly always move a field

    def test_mutants_are_wire_safe(self):
        from repro.guided.corpus import intent_from_wire, intent_to_wire

        rng = random.Random(9)
        for _ in range(100):
            mutated = mutate_intent(RICH, rng, POOL)
            assert intent_from_wire(intent_to_wire(mutated)) == mutated
