"""End-to-end tests for the guided study: determinism, budget, coverage."""

import pytest

from repro import faults
from repro.apps.catalog import build_wear_corpus
from repro.experiments.config import QUICK
from repro.faults.plan import CompatMatrix, FaultPlan
from repro.guided import (
    GuidedConfig,
    blind_equivalent_budget,
    run_guided_study,
)
from repro.qgj.campaigns import Campaign, campaign_size


def packages(count):
    corpus = build_wear_corpus(seed=QUICK.corpus_seed)
    return [app.package.package for app in corpus.apps][:count]


SMALL = GuidedConfig(budget=2_000, block_size=100, arms_per_round=4)


class TestDeterminism:
    def test_worker_count_never_changes_the_result(self, tmp_path):
        pkgs = packages(3)
        artifacts = {}
        for workers in (1, 2, 4):
            result = run_guided_study(QUICK, SMALL, packages=pkgs, workers=workers)
            out = tmp_path / f"w{workers}"
            result.save(str(out))
            artifacts[workers] = (
                result.render(),
                (out / "corpus.jsonl").read_bytes(),
                (out / "schedule.jsonl").read_bytes(),
            )
        assert artifacts[1] == artifacts[2] == artifacts[4]

    def test_same_seed_same_run(self):
        pkgs = packages(2)
        a = run_guided_study(QUICK, SMALL, packages=pkgs)
        b = run_guided_study(QUICK, SMALL, packages=pkgs)
        assert a.render() == b.render()
        assert a.corpus.digest() == b.corpus.digest()

    def test_different_seed_diverges(self):
        pkgs = packages(2)
        a = run_guided_study(QUICK, SMALL, packages=pkgs)
        b = run_guided_study(
            QUICK,
            GuidedConfig(budget=2_000, block_size=100, arms_per_round=4, seed=99),
            packages=pkgs,
        )
        # The corpus keys on behaviour, which is fairly stable, but the
        # schedule must reflect the different mutation streams somewhere.
        assert a.render() != b.render() or a.corpus.digest() != b.corpus.digest()

    def test_thompson_is_deterministic_too(self, tmp_path):
        pkgs = packages(2)
        config = GuidedConfig(
            scheduler="thompson", budget=1_200, block_size=100, arms_per_round=3
        )
        runs = [
            run_guided_study(QUICK, config, packages=pkgs, workers=workers)
            for workers in (1, 2)
        ]
        assert runs[0].render() == runs[1].render()
        assert runs[0].corpus.digest() == runs[1].corpus.digest()


class TestBudget:
    def test_allocated_budget_is_exhausted_exactly(self):
        result = run_guided_study(QUICK, SMALL, packages=packages(2))
        allocated = sum(f[2] for record in result.rounds for f in record.funded)
        assert allocated == SMALL.budget
        assert result.total_sent <= SMALL.budget

    def test_round_zero_sweeps_every_arm(self):
        pkgs = packages(2)
        result = run_guided_study(QUICK, SMALL, packages=pkgs)
        funded_arms = {(f[0], f[1]) for record in result.rounds for f in record.funded}
        assert funded_arms == {
            (p, c.value) for p in pkgs for c in Campaign
        }

    def test_blind_equivalent_budget_matches_campaign_arithmetic(self):
        pkgs = packages(1)
        corpus = build_wear_corpus(seed=QUICK.corpus_seed)
        package = next(
            app.package for app in corpus.apps if app.package.package == pkgs[0]
        )
        per_component = sum(
            campaign_size(c, QUICK.fuzz.stride_for(c)) for c in Campaign
        )
        expected = len(package.components) * per_component
        assert blind_equivalent_budget(QUICK, pkgs) == expected

    def test_unknown_package_rejected(self):
        with pytest.raises(ValueError, match="not in the wear catalog"):
            run_guided_study(QUICK, SMALL, packages=["com.nonsense.app"])


class TestFeedback:
    def test_corpus_and_crashes_accumulate(self):
        result = run_guided_study(QUICK, SMALL, packages=packages(3))
        assert len(result.corpus) > 0
        assert result.total_sent > 0
        assert sum(result.outcomes.values()) == result.total_sent
        # Corpus growth is monotone round over round.
        sizes = [record.corpus_size for record in result.rounds]
        assert sizes == sorted(sizes)

    def test_budget_shifts_toward_novel_arms(self):
        # After the round-zero sweep the bandit must not keep funding arms
        # uniformly: at least one arm ends with more blocks than another.
        result = run_guided_study(
            QUICK,
            GuidedConfig(budget=6_000, block_size=100, arms_per_round=4),
            packages=packages(3),
        )
        plays = [arm["plays"] for arm in result.scheduler_snapshot["arms"]]
        assert max(plays) > min(plays)

    def test_report_mentions_the_essentials(self):
        result = run_guided_study(QUICK, SMALL, packages=packages(2))
        report = result.render()
        assert "Guided fuzzing study" in report
        assert f"budget: {SMALL.budget}" in report
        assert "corpus:" in report
        assert "distinct crash buckets:" in report


class TestChaosComposition:
    """``--guided`` composes with the chaos plane (``--fault-seed`` et al.):
    every round derives the same per-package plan a blind shard would get,
    so the worker count still never changes the result."""

    CHAOS = FaultPlan(
        seed=13,
        binder_every_ms=20_000.0,
        service_outage_every_ms=60_000.0,
        service_corrupt_every_ms=80_000.0,
        compat_mismatch_every_ms=60_000.0,
        compat=CompatMatrix.from_skew(2),
    )

    def test_worker_count_invariant_under_a_fault_plan(self):
        pkgs = packages(2)
        results = []
        for workers in (1, 2):
            with faults.session(self.CHAOS):
                results.append(
                    run_guided_study(QUICK, SMALL, packages=pkgs, workers=workers)
                )
        assert results[0].render() == results[1].render()
        assert results[0].corpus.digest() == results[1].corpus.digest()

    def test_faulted_and_clean_runs_are_both_deterministic(self):
        pkgs = packages(2)
        clean = run_guided_study(QUICK, SMALL, packages=pkgs)
        with faults.session(self.CHAOS):
            faulted_a = run_guided_study(QUICK, SMALL, packages=pkgs)
        with faults.session(self.CHAOS):
            faulted_b = run_guided_study(QUICK, SMALL, packages=pkgs)
        assert faulted_a.render() == faulted_b.render()
        # The plan genuinely reached the guided dispatch path: the faulted
        # run cannot be byte-identical to the clean one at these rates.
        assert faulted_a.render() != clean.render() or (
            faulted_a.corpus.digest() != clean.corpus.digest()
        )


class TestGuidedVsBlind:
    def test_equal_budget_guided_finds_at_least_blind_buckets(self):
        # The PR's acceptance bar, on a small-but-crashy catalog slice so the
        # test stays fast: guided >= blind on distinct (component, exception)
        # buckets at the blind study's own intent budget.
        from repro.experiments.ablations import ablate_guided_vs_blind

        pkgs = [
            "com.google.android.apps.fitness",
            "com.motorola.omega.body",
            "com.pulsetrack.wear",
        ]
        rows = ablate_guided_vs_blind(packages=pkgs)
        by_mode = {row.mode: row for row in rows}
        assert by_mode["guided"].intents == by_mode["blind"].intents
        assert (
            by_mode["guided"].distinct_buckets >= by_mode["blind"].distinct_buckets
        )
        assert by_mode["guided"].corpus_size > 0
