"""The fleet kernel's central contract: packing never changes the study.

A pair's summary is a pure function of its spec, lanes are strided slices
of the same plan, and the merge re-orders by pair id -- so the merged
fleet and the rendered population report must be byte-identical at any
``(lanes x workers)`` packing, with or without a chaos fault plan, blind
or guided, and through a kill/resume cycle.
"""

import pytest

from repro import faults, telemetry
from repro.experiments.config import ExperimentConfig
from repro.faults.errors import CampaignKilled
from repro.faults.plan import FaultPlan
from repro.fleet import run_fleet_study
from repro.guided.study import GuidedConfig
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig

#: Small per-component budget, full campaign structure: every pair still
#: crosses all four campaigns and every cohort appears many times, while a
#: 64-pair fleet stays inside a second of wall clock.
TINY = ExperimentConfig(
    name="tiny",
    fuzz=FuzzConfig(
        strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1},
        max_intents_per_component=2,
    ),
    ui_events=0,
)

#: Chaos plan without adb drops (their retry exhaustion would abort the
#: study identically everywhere but kill the comparison -- same caveat as
#: the farm equivalence tests).
CHAOS = FaultPlan(
    seed=97,
    binder_every_ms=8_000.0,
    lmkd_every_ms=30_000.0,
    logcat_truncate_every_ms=60_000.0,
)


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    faults.uninstall()


def _fingerprint(result):
    return {
        "summaries": [summary.to_record() for summary in result.summaries],
        "report": result.render_report(),
    }


class TestPackingInvariance:
    def test_64_pair_fleet_identical_across_lanes_and_workers(self):
        reference = _fingerprint(run_fleet_study(64, config=TINY, lanes=1))
        for lanes in (4, 16):
            for workers in (1, 2):
                run = run_fleet_study(64, config=TINY, lanes=lanes, workers=workers)
                assert _fingerprint(run) == reference, (lanes, workers)
        assert reference["summaries"][0]["sent"] > 0

    def test_packing_invariance_under_a_chaos_plan(self):
        with faults.session(CHAOS):
            reference = _fingerprint(run_fleet_study(32, config=TINY, lanes=1))
        with faults.session(CHAOS):
            strided = _fingerprint(run_fleet_study(32, config=TINY, lanes=4))
        with faults.session(CHAOS):
            fanned = _fingerprint(
                run_fleet_study(32, config=TINY, lanes=4, workers=2)
            )
        assert strided == reference
        assert fanned == reference
        # The chaos plan actually bit: lmkd pressure on every cohort.
        clean = _fingerprint(run_fleet_study(32, config=TINY, lanes=1))
        assert clean != reference

    def test_guided_fleet_keeps_the_packing_invariance(self):
        guided = GuidedConfig(scheduler="ucb", block_size=16, budget=48)
        reference = _fingerprint(
            run_fleet_study(12, config=TINY, lanes=1, guided=guided)
        )
        strided = _fingerprint(
            run_fleet_study(12, config=TINY, lanes=4, guided=guided)
        )
        fanned = _fingerprint(
            run_fleet_study(12, config=TINY, lanes=4, workers=2, guided=guided)
        )
        assert strided == reference
        assert fanned == reference
        assert all(s["sent"] == 48 for s in reference["summaries"])

    def test_telemetry_counters_are_packing_invariant(self):
        def counters(lanes, workers):
            with telemetry.session() as t:
                run_fleet_study(24, config=TINY, lanes=lanes, workers=workers)
                return {
                    (metric.name, tuple(sorted(labels.items()))): child.value
                    for metric in t.metrics.collect()
                    if metric.kind == "counter"
                    for labels, child in metric.samples()
                }

        reference = counters(1, 1)
        assert reference  # the fleet actually recorded counters
        assert counters(4, 1) == reference
        assert counters(4, 2) == reference


class TestKillResumeIdentity:
    def test_killed_fleet_resumes_to_the_identical_merged_fleet(self, tmp_path):
        journal = str(tmp_path / "fleet.jsonl")
        clean = run_fleet_study(16, config=TINY, lanes=4)
        reference = _fingerprint(clean)
        with pytest.raises(CampaignKilled):
            run_fleet_study(
                16,
                config=TINY,
                lanes=4,
                journal_path=journal,
                kill_after_injections=clean.intents_sent // 2,
            )
        resumed = run_fleet_study(
            0, config=TINY, journal_path=journal, resume=True
        )
        assert _fingerprint(resumed) == reference
        assert resumed.fleet_size == 16
        assert resumed.lanes == 4

    def test_resume_of_a_guided_fleet_restores_its_guided_config(self, tmp_path):
        journal = str(tmp_path / "fleet.jsonl")
        guided = GuidedConfig(scheduler="ucb", block_size=16, budget=48)
        clean = run_fleet_study(8, config=TINY, lanes=2, guided=guided)
        with pytest.raises(CampaignKilled):
            run_fleet_study(
                8,
                config=TINY,
                lanes=2,
                guided=guided,
                journal_path=journal,
                kill_after_injections=clean.intents_sent // 2,
            )
        # Resume does not re-pass guided: it must come back from the header.
        resumed = run_fleet_study(
            0, config=TINY, journal_path=journal, resume=True
        )
        assert _fingerprint(resumed) == _fingerprint(clean)

    def test_resume_rejects_a_wear_study_journal(self, tmp_path):
        from repro.experiments.wear_experiment import run_wear_study
        from repro.experiments.config import QUICK

        journal = str(tmp_path / "wear.jsonl")
        run_wear_study(
            QUICK,
            packages=["com.runmate.wear"],
            campaigns=(Campaign.B,),
            journal_path=journal,
        )
        with pytest.raises(ValueError, match="not a fleet study"):
            run_fleet_study(0, config=QUICK, journal_path=journal, resume=True)
