"""Unit coverage for the fleet kernel's planning, merge, and report layers."""

import dataclasses

import pytest

from repro.analysis.population import (
    nearest_rank,
    population_report,
    render_population,
)
from repro.apps.profiles import (
    DEFAULT_COHORT_SPEC,
    FLEET_COHORTS,
    cohort_cycle,
    parse_cohort_spec,
    profile_for_pair,
)
from repro.experiments.config import QUICK, ExperimentConfig
from repro.farm import merge_fleet, resolve_workers
from repro.faults.plan import FaultPlan
from repro.fleet import (
    cohort_plan,
    lane_fingerprint,
    pair_task,
    plan_lanes,
    plan_pairs,
    shared_corpus,
)
from repro.fleet.pairs import PairSummary
from repro.android.clock import Clock, FleetScheduler
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig

TINY = ExperimentConfig(
    name="tiny",
    fuzz=FuzzConfig(
        strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1},
        max_intents_per_component=2,
    ),
    ui_events=0,
)


def _summary(pair_id=0, cohort="flagship", **overrides):
    base = dict(
        pair_id=pair_id,
        cohort=cohort,
        model=FLEET_COHORTS[cohort].model,
        packages=("com.runmate.wear",),
        sent=100,
        delivered=90,
        crashes=2,
        anrs=1,
        not_found=3,
        security_exceptions=1,
        transport_failures=0,
        compat_mismatches=0,
        retries=0,
        quarantined=0,
        reboots=0,
        battery_end_pct=80,
        ambient_transitions=4,
        clock_ms=12_345.5,
    )
    base.update(overrides)
    return PairSummary(**base)


class TestCohortSpec:
    def test_default_spec_parses_to_every_cohort(self):
        parsed = parse_cohort_spec(DEFAULT_COHORT_SPEC)
        assert [name for name, _ in parsed] == [
            "flagship", "budget", "legacy", "aging",
        ]
        assert all(weight == 1 for _, weight in parsed)

    def test_weights_expand_the_cycle_in_order(self):
        parsed = parse_cohort_spec("flagship=2,legacy")
        assert cohort_cycle(parsed) == ("flagship", "flagship", "legacy")
        assert profile_for_pair(parsed, 0).cohort == "flagship"
        assert profile_for_pair(parsed, 2).cohort == "legacy"
        assert profile_for_pair(parsed, 3).cohort == "flagship"

    @pytest.mark.parametrize(
        "spec,message",
        [
            ("flagship,,legacy", "empty cohort entry"),
            ("fancywatch", "unknown cohort"),
            ("flagship,flagship", "listed twice"),
            ("flagship=x", "bad weight"),
            ("flagship=0", "weight must be >= 1"),
        ],
    )
    def test_bad_specs_rejected(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_cohort_spec(spec)


class TestCohortPlan:
    def test_flagship_without_base_plan_stays_planless(self):
        assert cohort_plan(FLEET_COHORTS["flagship"], None) is None

    def test_skewed_cohort_arms_matrix_and_mismatch_stream(self):
        plan = cohort_plan(FLEET_COHORTS["legacy"], None)
        assert plan is not None
        assert plan.compat is not None
        assert plan.compat.phone_api == 23 and plan.compat.wear_api == 25
        # Two majors of skew bite twice as often as one.
        assert plan.compat_mismatch_every_ms == pytest.approx(60_000.0)
        aging = cohort_plan(FLEET_COHORTS["aging"], None)
        assert aging.compat_mismatch_every_ms == pytest.approx(120_000.0)

    def test_base_plan_mismatch_cadence_is_respected(self):
        base = FaultPlan(compat_mismatch_every_ms=5_000.0)
        plan = cohort_plan(FLEET_COHORTS["legacy"], base)
        assert plan.compat_mismatch_every_ms == pytest.approx(5_000.0)

    def test_cohort_pressure_layers_onto_the_base_plan(self):
        base = FaultPlan(seed=7, binder_every_ms=8_000.0)
        plan = cohort_plan(FLEET_COHORTS["budget"], base)
        assert plan.binder_every_ms == pytest.approx(8_000.0)
        assert plan.lmkd_every_ms == pytest.approx(900_000.0)


class TestPlanning:
    def test_pair_derivations_depend_only_on_the_global_id(self):
        packages = ["com.a", "com.b", "com.c"]
        pairs = plan_pairs(8, DEFAULT_COHORT_SPEC, TINY, packages, (Campaign.B,))
        again = plan_pairs(8, DEFAULT_COHORT_SPEC, TINY, packages, (Campaign.B,))
        assert pairs == again
        assert [p.cohort for p in pairs[:4]] == [
            "flagship", "budget", "legacy", "aging",
        ]
        assert [p.packages[0] for p in pairs[:4]] == [
            "com.a", "com.b", "com.c", "com.a",
        ]
        assert len({p.seed for p in pairs}) == len(pairs)

    def test_plan_pairs_validates_inputs(self):
        with pytest.raises(ValueError, match="fleet size"):
            plan_pairs(0, DEFAULT_COHORT_SPEC, TINY, ["com.a"], (Campaign.B,))
        with pytest.raises(ValueError, match="at least one package"):
            plan_pairs(4, DEFAULT_COHORT_SPEC, TINY, [], (Campaign.B,))

    def test_plan_lanes_strides_and_clamps(self):
        pairs = plan_pairs(
            10, DEFAULT_COHORT_SPEC, TINY, ["com.a"], (Campaign.B,)
        )
        lanes = plan_lanes(pairs, 4)
        assert [tuple(p.pair_id for p in lane) for lane in lanes] == [
            (0, 4, 8), (1, 5, 9), (2, 6), (3, 7),
        ]
        # More lanes than pairs collapses to one pair per lane.
        assert len(plan_lanes(pairs, 64)) == 10
        with pytest.raises(ValueError, match="lanes"):
            plan_lanes(pairs, 0)


class TestMergeFleet:
    def test_merge_reorders_by_pair_id(self):
        lane_a = dataclasses.make_dataclass("R", ["fleet"])(
            fleet=[_summary(2), _summary(0)]
        )
        lane_b = dataclasses.make_dataclass("R", ["fleet"])(fleet=[_summary(1)])
        merged = merge_fleet([lane_a, None, lane_b])
        assert [s.pair_id for s in merged] == [0, 1, 2]

    def test_duplicate_pair_ids_rejected(self):
        result = dataclasses.make_dataclass("R", ["fleet"])(
            fleet=[_summary(3), _summary(3)]
        )
        with pytest.raises(ValueError, match="two lanes"):
            merge_fleet([result])


class TestPairSummary:
    def test_json_round_trip(self):
        import json

        summary = _summary(7, cohort="aging", compat_mismatches=5, reboots=1)
        wire = json.loads(json.dumps(summary.to_record()))
        assert PairSummary.from_record(wire) == summary

    def test_from_record_ignores_journal_framing_keys(self):
        record = _summary(1).to_record()
        record["type"] = "pair"
        assert PairSummary.from_record(record) == _summary(1)

    def test_crash_rate(self):
        assert _summary(sent=0, crashes=0).crash_rate == 0.0
        assert _summary(sent=500, crashes=2).crash_rate == pytest.approx(4.0)


class TestPopulationReport:
    def test_nearest_rank_never_interpolates(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert nearest_rank(values, 50.0) == 2.0
        assert nearest_rank(values, 95.0) == 4.0
        assert nearest_rank(values, 100.0) == 4.0
        assert nearest_rank([7.5], 99.0) == 7.5
        with pytest.raises(ValueError, match="at least one"):
            nearest_rank([], 50.0)
        with pytest.raises(ValueError, match="percentile"):
            nearest_rank(values, 0.0)

    def test_report_groups_by_cohort_in_sorted_order(self):
        summaries = [
            _summary(0, "legacy", sent=1000, crashes=10),
            _summary(1, "flagship", sent=1000, crashes=1),
            _summary(2, "legacy", sent=1000, crashes=30),
        ]
        report = population_report(summaries)
        assert [c.cohort for c in report.cohorts] == ["flagship", "legacy"]
        legacy = report.cohort("legacy")
        assert legacy.pairs == 2
        assert legacy.crashes == 40
        assert legacy.crash_rate_p50 == pytest.approx(10.0)
        assert legacy.crash_rate_p99 == pytest.approx(30.0)
        assert report.pairs == 3 and report.crashes == 41
        with pytest.raises(KeyError):
            report.cohort("budget")

    def test_render_is_deterministic_and_labelled(self):
        summaries = [_summary(0), _summary(1, "budget")]
        rendered = render_population(population_report(summaries))
        assert rendered == render_population(population_report(summaries))
        assert "Fleet population report" in rendered
        assert "nearest-rank" in rendered
        assert rendered.index("budget") < rendered.index("flagship")


class TestResolveWorkers:
    def test_integer_passthrough(self):
        assert resolve_workers(4) == 4
        assert resolve_workers("3") == 3
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(0)

    def test_auto_on_a_single_core_host_warns_and_runs_sequentially(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr("repro.farm.pool.os.cpu_count", lambda: 1)
        assert resolve_workers("auto", units=16) == 1
        err = capsys.readouterr().err
        assert "--workers auto resolved to 1" in err
        assert "cpu_count=1" in err

    def test_auto_never_exceeds_the_units_of_work(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.farm.pool.os.cpu_count", lambda: 8)
        assert resolve_workers("auto", units=3) == 3
        assert capsys.readouterr().err == ""
        assert resolve_workers("auto", units=1) == 1
        assert "only 1 unit(s) of work" in capsys.readouterr().err

    def test_auto_without_units_uses_the_core_count(self, monkeypatch):
        monkeypatch.setattr("repro.farm.pool.os.cpu_count", lambda: 6)
        assert resolve_workers("auto") == 6


class TestLaneFingerprint:
    def test_fingerprint_tracks_every_identity_input(self):
        pairs = plan_pairs(
            4, DEFAULT_COHORT_SPEC, TINY, ["com.a"], (Campaign.B,)
        )
        base = lane_fingerprint(pairs)
        assert base == lane_fingerprint(list(pairs))
        assert lane_fingerprint(pairs[:2]) != base
        reseeded = [dataclasses.replace(pairs[0], seed=pairs[0].seed + 1)] + list(
            pairs[1:]
        )
        assert lane_fingerprint(reseeded) != base
        from repro.guided.study import GuidedConfig

        guided = [
            dataclasses.replace(p, guided=GuidedConfig(scheduler="ucb"))
            for p in pairs
        ]
        assert lane_fingerprint(guided) != base


class TestTrampolineEquivalence:
    def test_blocking_trampoline_matches_a_scheduler_run(self):
        corpus = shared_corpus(TINY.corpus_seed)
        packages = [corpus.apps[0].package.package]
        spec = plan_pairs(1, "budget", TINY, packages, (Campaign.A, Campaign.B))[0]

        # Blocking drive: advance to every yielded deadline immediately --
        # exactly what clock.sleep does in a one-pair blocking run.
        clock = Clock()
        task = pair_task(spec, corpus, clock=clock)
        try:
            deadline = next(task)
            while True:
                clock.advance_to(deadline)
                deadline = task.send(None)
        except StopIteration as stop:
            blocking = stop.value

        sched = FleetScheduler()
        fleet_clock = Clock()
        sched.add(spec.name, fleet_clock, pair_task(spec, corpus, clock=fleet_clock))
        multiplexed = sched.run()[spec.name]

        assert multiplexed == blocking
        assert fleet_clock.now_ms() == clock.now_ms()


class TestRunnerValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["quick", "--cohorts", "flagship"],          # cohorts without --fleet
            ["quick", "--lanes", "4"],                   # lanes without --fleet
            ["quick", "--fleet", "0"],                   # fleet size floor
            ["quick", "--fleet", "4", "--lanes", "0"],   # lane floor
            ["quick", "--fleet", "4", "--cohorts", "nope"],
            ["quick", "--fleet", "4", "--json", "out.json"],
            ["quick", "--workers", "many"],
        ],
    )
    def test_bad_fleet_invocations_exit_2(self, argv, capsys):
        from repro.experiments import runner

        assert runner.main(argv) == 2
        capsys.readouterr()

    def test_fleet_run_prints_the_population_report(self, capsys):
        from repro.experiments import runner

        assert (
            runner.main(
                ["quick", "--fleet", "2", "--cohorts", "legacy", "--lanes", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fleet population report" in out
        assert "legacy" in out
        assert "2 pairs in 2 lane(s)" in out
