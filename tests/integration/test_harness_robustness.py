"""Failure-injection properties: the *simulator* must never fall over.

A fuzz-testing reproduction whose own harness crashes on weird input would
be untrustworthy.  These hypothesis properties throw adversarial garbage at
every public boundary -- adb shell lines, arbitrary intents, arbitrary log
text -- and assert the harness responds with modelled outcomes (Java-style
throwables, error results) rather than Python-level failures.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.logparse import parse_events
from repro.analysis.manifest import StudyCollector
from repro.android.component import ComponentKind
from repro.android.device import Device
from repro.android.intent import ComponentName, Intent
from repro.android.jtypes import Throwable
from repro.apps.catalog import build_wear_corpus
from repro.wear.device import WearDevice

# One shared device: hypothesis examples run fast against it, and shared
# state *is* the point (state accumulation must not break totality either).
_CORPUS = build_wear_corpus(seed=2018)
_WATCH = WearDevice("prop-watch")
_CORPUS.install(_WATCH)
_COMPONENTS = _WATCH.packages.all_components()

_TEXT = st.text(max_size=60)
_MAYBE_TEXT = st.one_of(st.none(), _TEXT)


def _extras(draw_values):
    return st.dictionaries(
        st.text(min_size=1, max_size=10), draw_values, max_size=4
    )


_EXTRA_VALUES = st.one_of(
    st.none(), st.text(max_size=20), st.integers(), st.floats(allow_nan=False), st.booleans()
)


@st.composite
def arbitrary_intents(draw):
    intent = Intent(draw(_MAYBE_TEXT))
    data = draw(_MAYBE_TEXT)
    if data is not None:
        intent.set_data_string(data)
    for key, value in draw(_extras(_EXTRA_VALUES)).items():
        intent.put_extra(key, value)
    index = draw(st.integers(min_value=0, max_value=len(_COMPONENTS) - 1))
    intent.set_component(_COMPONENTS[index].name)
    return intent


class TestDispatchTotality:
    @given(arbitrary_intents())
    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_start_activity_only_raises_throwables(self, intent):
        info = _WATCH.packages.resolve_component(intent.component)
        try:
            if info is not None and info.kind == ComponentKind.SERVICE:
                _WATCH.activity_manager.start_service("com.qgj.wear", intent)
            else:
                _WATCH.activity_manager.start_activity("com.qgj.wear", intent)
        except Throwable:
            pass  # modelled Java-world failure: fine

    @given(arbitrary_intents())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_broadcast_only_raises_throwables(self, intent):
        intent.set_component(None)
        try:
            _WATCH.activity_manager.send_broadcast("com.qgj.wear", intent)
        except Throwable:
            pass


class TestAdbTotality:
    @given(st.text(max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_shell_never_raises(self, command):
        result = _WATCH.adb.shell(command)
        assert isinstance(result.exit_code, int)
        assert isinstance(result.output, str)

    @given(
        st.sampled_from(["input", "am", "pm"]),
        st.lists(st.text(min_size=1, max_size=15), max_size=6),
    )
    @settings(max_examples=150, deadline=None)
    def test_known_tools_with_garbage_args(self, tool, args):
        quoted = " ".join("'" + a.replace("'", "") + "'" for a in args)
        result = _WATCH.adb.shell(f"{tool} {quoted}")
        assert isinstance(result.exit_code, int)


class TestAnalysisTotality:
    @given(st.text(max_size=800))
    @settings(max_examples=80, deadline=None)
    def test_collector_fold_never_raises(self, text):
        collector = StudyCollector(_CORPUS.packages())
        collector.fold(text, "com.runmate.wear", "A")
        assert collector.segments_folded == 1

    @given(st.lists(st.text(max_size=120), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_parser_on_shuffled_real_lines(self, noise):
        # Interleave real log lines with garbage: parser must survive and
        # still be a function of the text.
        real = _WATCH.adb.logcat().splitlines()[:20]
        merged = []
        for i, line in enumerate(real):
            merged.append(line)
            if i < len(noise):
                merged.append(noise[i])
        text = "\n".join(merged)
        assert parse_events(text) == parse_events(text)


class TestSeverityInvariants:
    def test_app_severity_is_max_of_component_severities(self):
        """Lattice law: an app/campaign severity never understates its
        components' behaviour in the same segment."""
        from repro.analysis.manifest import Manifestation
        from repro.qgj.campaigns import Campaign
        from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary

        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("lattice-watch")
        corpus.install(watch)
        collector = StudyCollector(corpus.packages())
        fuzzer = FuzzerLibrary(watch)
        adb = watch.adb
        adb.logcat_clear()
        for package in ("com.motorola.omega.body", "com.cardiowatch.wear"):
            for campaign in Campaign:
                fuzzer.fuzz_app(package, campaign, FuzzConfig(
                    strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1}
                ))
                collector.fold(adb.logcat(), package, campaign.value)
                adb.logcat_clear()
        for (package, campaign), severity in collector.app_campaign.items():
            component_max = max(
                (
                    record.manifestation()
                    for record in collector.component_records()
                    if record.package == package
                ),
                default=Manifestation.NO_EFFECT,
            )
            # App severity in one campaign can exceed any single component's
            # *final* state only via reboot windows; it must never exceed
            # the overall component max when that max is REBOOT.
            if component_max == Manifestation.REBOOT:
                assert severity <= component_max
