"""End-to-end integration tests over the experiment harnesses.

These run the real pipeline -- corpus → QGJ → logcat → parser → classifier
→ tables/figures -- on focused subsets so the suite stays fast; the full
corpus runs live in ``benchmarks/``.
"""

import pytest

from repro.analysis import figures, tables
from repro.analysis.manifest import Manifestation
from repro.apps.builtin import AMBIENT_BINDER_PACKAGE, GOOGLE_FIT_PACKAGE
from repro.apps.health import HEART_RATE_PACKAGE
from repro.experiments.config import QUICK, ExperimentConfig
from repro.experiments.phone_experiment import run_phone_study
from repro.experiments.ui_experiment import run_ui_study
from repro.experiments.wear_experiment import run_wear_study
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig

FOCUS_PACKAGES = (
    GOOGLE_FIT_PACKAGE,
    HEART_RATE_PACKAGE,
    AMBIENT_BINDER_PACKAGE,
    "com.cardiowatch.wear",
    "com.runmate.wear",
)


@pytest.fixture(scope="module")
def focused_study():
    return run_wear_study(QUICK, packages=FOCUS_PACKAGES)


class TestFocusedWearStudy:
    def test_both_reboots_reproduced(self, focused_study):
        assert focused_study.reboot_count == 2
        campaigns = sorted(pm.campaign for pm in focused_study.collector.reboots)
        assert campaigns == ["A", "D"]
        packages = {pm.package for pm in focused_study.collector.reboots}
        assert packages == {HEART_RATE_PACKAGE, AMBIENT_BINDER_PACKAGE}

    def test_reboot_culprits_are_three_classes(self, focused_study):
        data = figures.fig3b_rootcause_by_manifestation(focused_study.collector)
        reboot_shares = data[Manifestation.REBOOT.label]
        assert set(reboot_shares) == {
            "android.os.DeadObjectException",
            "java.lang.NullPointerException",
            "java.lang.RuntimeException",
        }
        for share in reboot_shares.values():
            assert share == pytest.approx(1 / 3)

    def test_four_reboot_components(self, focused_study):
        counts = focused_study.collector.manifestation_counts()
        assert counts[Manifestation.REBOOT] == 4

    def test_google_fit_crashes_every_campaign(self, focused_study):
        for campaign in "ABCD":
            severity = focused_study.collector.app_campaign[
                (GOOGLE_FIT_PACKAGE, campaign)
            ]
            assert severity == Manifestation.CRASH, campaign

    def test_hang_app_hangs_in_a_c_d_only(self, focused_study):
        app = "com.cardiowatch.wear"
        expected = {
            "A": Manifestation.HANG,
            "B": Manifestation.NO_EFFECT,
            "C": Manifestation.HANG,
            "D": Manifestation.HANG,
        }
        for campaign, severity in expected.items():
            assert focused_study.collector.app_campaign[(app, campaign)] == severity

    def test_summary_counters_consistent(self, focused_study):
        summary = focused_study.summary
        assert summary.total_sent > 0
        assert summary.total_security_exceptions > 0
        assert summary.total_reboots == 2

    def test_virtual_time_advanced(self, focused_study):
        assert focused_study.virtual_hours() > 0.5

    def test_table3_structure(self, focused_study):
        data = tables.table3_behaviors(focused_study.collector)
        assert set(data) == {"A", "B", "C", "D"}


class TestFocusedPhoneStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_phone_study(
            QUICK, packages=["com.android.chrome", "com.android.settings", "com.android.mms"]
        )

    def test_no_reboots_on_phone(self, study):
        assert study.phone.boot_count == 1
        assert not study.collector.reboots

    def test_crashes_observed(self, study):
        crashed = study.collector.crashing_packages()
        assert crashed, "phone study subset should produce some crashes"

    def test_table4_rows(self, study):
        rows = tables.table4_phone_crashes(study.collector)
        assert rows
        total_share = sum(row["share"] for row in rows)
        assert total_share == pytest.approx(1.0)


class TestUiStudy:
    @pytest.fixture(scope="class")
    def study(self):
        config = ExperimentConfig(
            name="tiny", fuzz=FuzzConfig(), ui_events=2500, ui_seed=25
        )
        return run_ui_study(config)

    def test_table5_shape(self, study):
        semi = study.semi_valid
        rand = study.random
        assert semi.injected_events == rand.injected_events == 2500
        assert semi.exceptions_raised > rand.exceptions_raised
        assert rand.crashes == 0
        assert 0 <= semi.crash_rate() < 0.005

    def test_emulator_never_reboots(self, study):
        assert study.emulator.boot_count == 1

    def test_emulator_is_vendor_free(self, study):
        assert study.emulator.is_emulator
        assert not any(
            p.vendor for p in study.emulator.packages.installed_packages()
        )

    def test_semi_valid_exception_rate_in_band(self, study):
        # Paper: 3.6%; accept a band around it at reduced scale.
        assert 0.01 < study.semi_valid.exception_rate() < 0.08

    def test_random_exception_rate_below_semi_valid(self, study):
        assert study.random.exception_rate() < study.semi_valid.exception_rate()


class TestCampaignSeparationInvariant:
    """Campaign-specific defects must not leak across campaigns."""

    def test_campaign_b_only_app_quiet_elsewhere(self):
        study = run_wear_study(QUICK, packages=["com.motorola.omega.body"])
        collector = study.collector
        assert collector.app_campaign[("com.motorola.omega.body", "B")] == Manifestation.CRASH
        assert collector.app_campaign[("com.motorola.omega.body", "C")] == Manifestation.CRASH
        assert collector.app_campaign[("com.motorola.omega.body", "A")] == Manifestation.NO_EFFECT
        assert collector.app_campaign[("com.motorola.omega.body", "D")] == Manifestation.NO_EFFECT
