"""Resilience tests: checkpoint/resume identity, reboot invariants, caching.

All runs here use a single small app (``com.pulsetrack.wear``) whose
campaign A deterministically triggers one device reboot -- the cheapest
scope that still exercises the full reboot/recovery path.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro import faults
from repro.experiments import runner
from repro.experiments.config import PAPER, QUICK
from repro.experiments.wear_experiment import run_wear_study
from repro.faults.errors import CampaignKilled
from repro.faults.plan import CHAOS_INTERVALS_MS, CompatMatrix, FaultKind, FaultPlan
from repro.qgj.campaigns import Campaign

PKG = "com.pulsetrack.wear"

#: Aggressive intervals (seconds, not the chaos defaults' tens of minutes)
#: so even the tiny test scope (one ~108-virtual-second segment) sees every
#: fault kind.  Drops stay sparse enough for the log-pull retry to absorb.
PLAN = FaultPlan(
    seed=13,
    adb_drop_every_ms=45_000.0,
    binder_every_ms=8_000.0,
    lmkd_every_ms=30_000.0,
    logcat_truncate_every_ms=60_000.0,
)

#: The transport plan widened with the OS-service and compat families, at
#: rates dense enough to manifest in-scope but sparse enough that compat
#: rejections never trip the consecutive-failure quarantine threshold.
OS_PLAN = dataclasses.replace(
    PLAN,
    service_outage_every_ms=30_000.0,
    service_corrupt_every_ms=40_000.0,
    system_restart_every_ms=120_000.0,
    compat_mismatch_every_ms=60_000.0,
    compat=CompatMatrix.from_skew(3),
)


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    faults.uninstall()


def _wire(result):
    return result.summary.to_wire()


class TestKillAndResume:
    def test_resume_reproduces_the_uninterrupted_summary(self, tmp_path):
        campaigns = (Campaign.A, Campaign.B)
        with faults.session(PLAN):
            base = run_wear_study(QUICK, packages=[PKG], campaigns=campaigns)
        journal = str(tmp_path / "run.jsonl")
        with faults.session(PLAN):
            # Campaign A sends ~670 intents, so 800 lands inside campaign B:
            # the kill hits after a snapshot exists, exercising the restore.
            with pytest.raises(CampaignKilled) as exc_info:
                run_wear_study(
                    QUICK,
                    packages=[PKG],
                    campaigns=campaigns,
                    journal_path=journal,
                    kill_after_injections=800,
                )
            assert exc_info.value.injections == 800
        with faults.session(PLAN):
            resumed = run_wear_study(QUICK, journal_path=journal, resume=True)
        assert _wire(resumed) == _wire(base)
        assert resumed.collector.reboots == base.collector.reboots
        assert resumed.watch.clock.now_ms() == base.watch.clock.now_ms()

    def test_resume_under_os_chaos_reproduces_the_summary(self, tmp_path):
        # Same identity bar as the transport-only plan, with outage windows,
        # corrupted replies, a possible system_server bounce, and compat
        # mismatches in the snapshot/restore path (SNAPSHOT_VERSION 3 state).
        campaigns = (Campaign.A, Campaign.B)
        with faults.session(OS_PLAN):
            base = run_wear_study(QUICK, packages=[PKG], campaigns=campaigns)
        journal = str(tmp_path / "run.jsonl")
        with faults.session(OS_PLAN):
            with pytest.raises(CampaignKilled):
                run_wear_study(
                    QUICK,
                    packages=[PKG],
                    campaigns=campaigns,
                    journal_path=journal,
                    kill_after_injections=800,
                )
        with faults.session(OS_PLAN):
            resumed = run_wear_study(QUICK, journal_path=journal, resume=True)
        assert _wire(resumed) == _wire(base)
        assert resumed.watch.clock.now_ms() == base.watch.clock.now_ms()

    def test_kill_before_first_checkpoint_restarts_from_scratch(self, tmp_path):
        with faults.session(PLAN):
            base = run_wear_study(QUICK, packages=[PKG], campaigns=(Campaign.A,))
        journal = str(tmp_path / "run.jsonl")
        with faults.session(PLAN):
            with pytest.raises(CampaignKilled):
                run_wear_study(
                    QUICK,
                    packages=[PKG],
                    campaigns=(Campaign.A,),
                    journal_path=journal,
                    kill_after_injections=50,
                )
        with faults.session(PLAN):
            resumed = run_wear_study(QUICK, journal_path=journal, resume=True)
        assert _wire(resumed) == _wire(base)

    def test_resume_requires_a_journal_path(self):
        with pytest.raises(ValueError, match="journal_path"):
            run_wear_study(QUICK, resume=True)

    def test_kill_after_works_at_two_workers(self, tmp_path):
        # The satellite fix: one shared kill switch counts injections
        # study-wide across worker processes, so --kill-after no longer
        # requires --workers 1.  The killed parallel run resumes (at the
        # same worker count) to the uninterrupted summary.
        packages = [PKG, "com.runmate.wear"]
        campaigns = (Campaign.A, Campaign.B)
        base = run_wear_study(QUICK, packages=packages, campaigns=campaigns, workers=2)
        journal = str(tmp_path / "run.jsonl")
        with pytest.raises(CampaignKilled) as exc_info:
            run_wear_study(
                QUICK,
                packages=packages,
                campaigns=campaigns,
                journal_path=journal,
                kill_after_injections=800,
                workers=2,
            )
        assert exc_info.value.injections >= 800
        resumed = run_wear_study(QUICK, journal_path=journal, resume=True, workers=2)
        assert _wire(resumed) == _wire(base)
        assert resumed.collector.reboots == base.collector.reboots

    def test_resume_rejects_a_different_config(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        with pytest.raises(CampaignKilled):
            run_wear_study(
                QUICK,
                packages=[PKG],
                campaigns=(Campaign.A,),
                journal_path=journal,
                kill_after_injections=50,
            )
        with pytest.raises(ValueError, match="config"):
            run_wear_study(PAPER, journal_path=journal, resume=True)

    def test_resume_rejects_a_different_fault_plan(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        with faults.session(PLAN):
            with pytest.raises(CampaignKilled):
                run_wear_study(
                    QUICK,
                    packages=[PKG],
                    campaigns=(Campaign.A,),
                    journal_path=journal,
                    kill_after_injections=50,
                )
        # No plan installed now: the fingerprints cannot match.
        with pytest.raises(ValueError, match="fault plan"):
            run_wear_study(QUICK, journal_path=journal, resume=True)


class TestRebootInvariant:
    """The paper's recovery rule: a reboot aborts the rest of the app's run
    and each triggering segment reboots exactly once."""

    def _check(self, result):
        (app,) = result.summary.apps
        assert app.aborted_by_reboot
        assert [c.rebooted for c in app.components].count(True) == 1
        assert app.components[-1].rebooted  # nothing fuzzed past the reboot
        assert result.reboot_count == 1

    def test_reboot_aborts_rest_of_app_without_faults(self):
        result = run_wear_study(QUICK, packages=[PKG], campaigns=(Campaign.A,))
        self._check(result)

    def test_reboot_invariant_holds_under_chaos(self):
        with faults.session(PLAN):
            result = run_wear_study(QUICK, packages=[PKG], campaigns=(Campaign.A,))
        self._check(result)


class TestEmptyPlanIsNoPlan:
    """Arming an empty plan must not perturb the simulation at all."""

    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=5, deadline=None)
    def test_empty_plan_matches_no_plan(self, seed, baseline):
        with faults.session(FaultPlan(seed=seed)):
            armed = run_wear_study(QUICK, packages=[PKG], campaigns=(Campaign.A,))
        assert _wire(armed) == _wire(baseline)
        assert armed.watch.clock.now_ms() == baseline.watch.clock.now_ms()

    def test_zero_skew_compat_stream_matches_no_plan(self, baseline):
        # Stronger than the empty plan: the compat stream is *armed* and
        # fires, but the matrix is matched, so every event drains silently
        # and the run stays byte-identical to an unfaulted one.
        plan = FaultPlan(
            seed=0,
            compat=CompatMatrix(),
            compat_mismatch_every_ms=CHAOS_INTERVALS_MS[FaultKind.COMPAT_MISMATCH],
        )
        with faults.session(plan):
            armed = run_wear_study(QUICK, packages=[PKG], campaigns=(Campaign.A,))
        assert _wire(armed) == _wire(baseline)
        assert armed.watch.clock.now_ms() == baseline.watch.clock.now_ms()

    @pytest.fixture(scope="class")
    def baseline(self):
        return run_wear_study(QUICK, packages=[PKG], campaigns=(Campaign.A,))


class TestRunnerCacheKeying:
    def test_cache_keys_on_fault_fingerprint(self, monkeypatch):
        calls = []

        def fake_run(config, **kwargs):
            calls.append((config.name, faults.fingerprint(), kwargs))
            return object()

        monkeypatch.setattr(runner, "run_wear_study", fake_run)
        runner.wear_study.cache_clear()
        plain = runner.wear_study("quick")
        assert runner.wear_study("quick") is plain
        faults.install(FaultPlan.chaos(seed=7))
        faulted = runner.wear_study("quick")
        assert faulted is not plain
        assert runner.wear_study("quick") is faulted
        faults.uninstall()
        # Back to the unfaulted key: served from cache, no third run.
        assert runner.wear_study("quick") is plain
        assert len(calls) == 2
        runner.wear_study.cache_clear()

    def test_stateful_kwargs_bypass_the_cache(self, monkeypatch, tmp_path):
        calls = []

        def fake_run(config, **kwargs):
            calls.append(kwargs)
            return object()

        monkeypatch.setattr(runner, "run_wear_study", fake_run)
        runner.wear_study.cache_clear()
        journal = str(tmp_path / "run.jsonl")
        first = runner.wear_study("quick", journal_path=journal)
        second = runner.wear_study("quick", journal_path=journal)
        assert first is not second
        assert calls == [{"journal_path": journal}, {"journal_path": journal}]
        runner.wear_study.cache_clear()
