"""Tests for the cached study runners and the report entry point."""

import pytest

from repro.experiments import runner
from repro.experiments.config import QUICK


class TestCaching:
    def test_wear_study_is_memoised(self, monkeypatch):
        calls = []

        def fake_run(config):
            calls.append(config)
            return object()

        monkeypatch.setattr(runner, "run_wear_study", fake_run)
        runner.wear_study.cache_clear()
        first = runner.wear_study("quick")
        second = runner.wear_study("quick")
        assert first is second
        assert len(calls) == 1
        runner.wear_study.cache_clear()

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            runner.wear_study("bogus")
        runner.wear_study.cache_clear()


class TestMain:
    def test_main_validates_config_name(self):
        with pytest.raises(ValueError):
            runner.main(["not-a-config"])

    def test_main_prints_report(self, monkeypatch, capsys):
        monkeypatch.setattr(runner, "full_report", lambda name: f"REPORT[{name}]")
        assert runner.main(["quick"]) == 0
        assert "REPORT[quick]" in capsys.readouterr().out

    def test_main_defaults_to_quick(self, monkeypatch, capsys):
        monkeypatch.setattr(runner, "full_report", lambda name: f"REPORT[{name}]")
        assert runner.main([]) == 0
        assert "REPORT[quick]" in capsys.readouterr().out


class TestFullReportAssembly:
    def test_full_report_stitches_all_sections(self, monkeypatch):
        class FakeWear:
            intents_sent = 10
            reboot_count = 2

            def virtual_hours(self):
                return 1.5

            class summary:  # noqa: N801 - stand-in attribute
                pass

        # Assembling the real report needs real studies; check the section
        # list indirectly through the quick study in integration/benchmarks.
        # Here we only verify the seams: by_name validation and defaults.
        assert QUICK.name == "quick"
        assert QUICK.ui_events == 4000


class TestJsonCli:
    def test_json_flag_requires_path(self, capsys):
        import repro.experiments.runner as runner_module

        assert runner_module.main(["quick", "--json"]) == 2

    def test_json_flag_writes_file(self, monkeypatch, tmp_path, capsys):
        import repro.experiments.runner as runner_module

        written = {}

        def fake_export(config_name, path=None):
            written["args"] = (config_name, path)
            return "{}"

        monkeypatch.setattr(runner_module, "export_json", fake_export)
        target = str(tmp_path / "out.json")
        assert runner_module.main(["quick", "--json", target]) == 0
        assert written["args"] == ("quick", target)
        assert "wrote" in capsys.readouterr().out


class TestOsChaosCli:
    @pytest.fixture(autouse=True)
    def _no_leaked_plane(self):
        from repro import faults

        yield
        faults.uninstall()

    def test_compat_skew_range_validated(self, capsys):
        assert runner.main(["quick", "--compat-skew", "-1"]) == 2
        assert "--compat-skew must be in" in capsys.readouterr().err
        assert runner.main(["quick", "--compat-skew", "99"]) == 2

    def test_service_fault_seed_arms_the_service_streams(self, monkeypatch):
        from repro import faults
        from repro.faults.plan import FaultKind

        monkeypatch.setattr(runner, "full_report", lambda name: "REPORT")
        assert runner.main(["quick", "--service-fault-seed", "5"]) == 0
        plan = faults.get().plan
        assert plan.seed == 5
        assert plan.interval_for(FaultKind.SERVICE_OUTAGE) is not None
        assert plan.interval_for(FaultKind.SYSTEM_RESTART) is not None
        assert plan.interval_for(FaultKind.BINDER) is None  # transport off

    def test_all_three_flags_compose_into_one_plan(self, monkeypatch):
        from repro import faults
        from repro.faults.plan import FaultKind

        monkeypatch.setattr(runner, "full_report", lambda name: "REPORT")
        assert (
            runner.main(
                [
                    "quick",
                    "--fault-seed",
                    "7",
                    "--service-fault-seed",
                    "5",
                    "--compat-skew",
                    "3",
                ]
            )
            == 0
        )
        plan = faults.get().plan
        assert plan.seed == 7  # the chaos base keeps its seed
        for kind in FaultKind:
            assert plan.interval_for(kind) is not None
        assert plan.compat is not None and plan.compat.skew == 3

    def test_compat_skew_alone_arms_only_the_compat_stream(self, monkeypatch):
        from repro import faults
        from repro.faults.plan import FaultKind

        monkeypatch.setattr(runner, "full_report", lambda name: "REPORT")
        assert runner.main(["quick", "--compat-skew", "2"]) == 0
        plan = faults.get().plan
        armed = {k for k in FaultKind if plan.interval_for(k) is not None}
        assert armed == {FaultKind.COMPAT_MISMATCH}
        assert plan.compat.skew == 2

    def test_guided_composes_with_chaos_flags(self, monkeypatch, capsys):
        # --guided used to reject --fault-seed outright; now the plan rides
        # into the guided study (per-package derived plans, see study.py).
        from repro import faults

        calls = {}

        def fake_guided(config, guided_config, **kwargs):
            calls["fingerprint"] = faults.fingerprint()

            class R:
                def render(self):
                    return "GUIDED REPORT"

                def save(self, path):
                    pass

            return R()

        monkeypatch.setattr(
            "repro.guided.run_guided_study", fake_guided, raising=False
        )
        assert (
            runner.main(
                ["quick", "--guided", "--fault-seed", "7", "--compat-skew", "2"]
            )
            == 0
        )
        assert calls["fingerprint"] != "none"
        assert "compat=23/25" in calls["fingerprint"]
        assert "GUIDED REPORT" in capsys.readouterr().out


class TestTelemetryCli:
    def test_sample_flag_requires_telemetry_dir(self, capsys):
        assert runner.main(["quick", "--telemetry-sample", "10"]) == 2
        assert "--telemetry-sample requires --telemetry" in capsys.readouterr().err

    def test_profile_flag_requires_telemetry_dir(self, capsys):
        assert runner.main(["quick", "--profile"]) == 2
        assert "--profile requires --telemetry" in capsys.readouterr().err

    def test_sample_rate_validated(self, capsys):
        assert (
            runner.main(["quick", "--telemetry", "/tmp/x", "--telemetry-sample", "0"])
            == 2
        )
        assert "--telemetry-sample must be >= 1" in capsys.readouterr().err

    def test_telemetry_dir_exports_snapshot(self, monkeypatch, tmp_path, capsys):
        from repro import telemetry

        monkeypatch.setattr(runner, "full_report", lambda name: f"REPORT[{name}]")
        out = tmp_path / "tele"
        assert runner.main(["quick", "--telemetry", str(out)]) == 0
        assert (out / "metrics.prom").exists()
        assert (out / "trace.jsonl").exists()
        assert (out / "summary.txt").exists()
        assert not (out / "profile.collapsed").exists()
        assert not telemetry.get().enabled  # session closed on the way out

    def test_profile_flag_writes_collapsed_stacks(self, monkeypatch, tmp_path):
        monkeypatch.setattr(runner, "full_report", lambda name: f"REPORT[{name}]")
        out = tmp_path / "tele"
        assert runner.main(["quick", "--telemetry", str(out), "--profile"]) == 0
        assert (out / "profile.collapsed").exists()

    def test_sampling_session_armed_from_flag(self, monkeypatch, tmp_path):
        from repro import telemetry

        seen = {}

        def fake_report(name):
            seen["sample_every"] = telemetry.get().tracer.sample_every
            return "REPORT"

        monkeypatch.setattr(runner, "full_report", fake_report)
        out = tmp_path / "tele"
        assert (
            runner.main(
                ["quick", "--telemetry", str(out), "--telemetry-sample", "25"]
            )
            == 0
        )
        assert seen["sample_every"] == 25
