"""Tests for experiment configs and the ablation sweeps."""

import pytest

from repro.experiments.ablations import (
    AblationRow,
    ablate_os_chaos,
    ablate_pacing,
    ablate_stride,
    ablate_wedge_deliveries,
    render_os_chaos_rows,
    render_rows,
)
from repro.experiments.config import PAPER, QUICK, by_name
from repro.qgj.campaigns import Campaign


class TestConfigs:
    def test_by_name(self):
        assert by_name("quick") is QUICK
        assert by_name("paper") is PAPER
        with pytest.raises(ValueError):
            by_name("nope")

    def test_paper_scale_is_full_stride(self):
        for campaign in Campaign:
            assert PAPER.fuzz.stride_for(campaign) == 1
        assert PAPER.ui_events == 41_405

    def test_quick_preserves_campaign_structure(self):
        # B and D run in full; A's stride of 12 keeps one data URI per action.
        assert QUICK.fuzz.stride_for(Campaign.B) == 1
        assert QUICK.fuzz.stride_for(Campaign.D) == 1
        assert QUICK.fuzz.stride_for(Campaign.A) == 12
        assert QUICK.fuzz.stride_for(Campaign.C) == 2


class TestWedgeAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablate_wedge_deliveries(values=(1, 25, 200))

    def test_reboot_vanishes_beyond_campaign_volume(self, rows):
        by_value = {row.value: row for row in rows}
        # One mismatched intent suffices at 1 and 25...
        assert by_value[1].reboots == 1
        assert by_value[25].reboots == 1
        # ...but 200 exceeds the per-component quick volume (129): the state
        # never accumulates, so no reboot -- "specific states of the device".
        assert by_value[200].reboots == 0

    def test_render(self, rows):
        text = render_rows(rows)
        assert "wedge_deliveries" in text
        assert "no reboot" in text


class TestPacingAblation:
    def test_slow_pacing_outruns_the_crash_loop(self):
        rows = ablate_pacing(delays_ms=(100.0, 16_000.0))
        by_value = {row.value: row for row in rows}
        assert by_value[100.0].reboots == 1
        assert by_value[16_000.0].reboots == 0
        # Without the reboot the campaign keeps crashing the component.
        assert by_value[16_000.0].crashes_seen > by_value[100.0].crashes_seen


class TestStrideAblation:
    def test_crash_sets_stable_across_scales(self):
        rows = ablate_stride(
            scales=(
                {Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1},
                {Campaign.A: 36, Campaign.B: 1, Campaign.C: 6, Campaign.D: 1},
            ),
            packages=("com.runmate.wear", "com.fitband.wear"),
        )
        assert len(rows) == 2
        # Campaign B and D are full-volume at both scales; their crash-app
        # counts cannot differ.
        assert rows[0].health_crash_apps["B"] == rows[1].health_crash_apps["B"]
        assert rows[0].health_crash_apps["D"] == rows[1].health_crash_apps["D"]


class TestRenderEdgeCases:
    def test_render_empty(self):
        assert "empty" in render_rows([])

    def test_row_dataclass(self):
        row = AblationRow(parameter="p", value=1.0, reboots=0, crashes_seen=2)
        assert row.notes == ""


class TestVendorAblation:
    def test_vendor_crashes_only_on_hardware(self):
        from repro.experiments.ablations import ablate_vendor_layer

        rows = ablate_vendor_layer()
        hardware = next(r for r in rows if "vendor layer" in r.device_label)
        emulator = next(r for r in rows if "no vendor" in r.device_label)
        # The emulator drops the vendor app entirely...
        assert emulator.builtin_apps == hardware.builtin_apps - 1
        # ...so its crashes exist only on hardware: the blind spot the
        # paper's threats-to-validity section names.
        assert hardware.vendor_crashing_apps == 1
        assert emulator.vendor_crashing_apps == 0
        assert hardware.builtin_crashing_apps > emulator.builtin_crashing_apps


class TestOsChaosAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablate_os_chaos()

    def test_outcome_separation_holds_per_family(self, rows):
        by_scenario = {row.scenario: row for row in rows}
        baseline = by_scenario["baseline"]
        # Infrastructure stays out of the behavioural signal: every fault
        # family leaves the app-level crash and reboot shape untouched.
        for scenario in ("transport", "service", "compat", "all"):
            row = by_scenario[scenario]
            assert row.crashes_seen == baseline.crashes_seen
            assert row.reboots == baseline.reboots
        # ...while each family shows up in its own counters.
        assert by_scenario["baseline"].retries == 0
        assert by_scenario["baseline"].compat_mismatches == 0
        assert by_scenario["transport"].retries > 0
        assert by_scenario["transport"].compat_mismatches == 0
        assert (
            by_scenario["service"].retries > 0
            or by_scenario["service"].transport_failures > 0
        )
        assert by_scenario["compat"].compat_mismatches > 0
        assert by_scenario["compat"].retries == 0
        assert by_scenario["all"].compat_mismatches > 0

    def test_sweep_is_deterministic(self, rows):
        assert ablate_os_chaos() == rows

    def test_render(self, rows):
        text = render_os_chaos_rows(rows)
        assert "OS chaos fault families" in text
        assert "baseline" in text and "compat" in text
