"""The serve/submit/status surface, driven in-process through cli.main."""

import json

import pytest

from repro import faults, telemetry
from repro.experiments import runner
from repro.service import StudySpec
from repro.service.cli import (
    EXIT_NO_DAEMON,
    EXIT_OK,
    EXIT_POISONED,
    EXIT_REJECTED,
    EXIT_USAGE,
    main,
)
from repro.service.lock import WriterLock

PKG = "com.pulsetrack.wear"
SPEC = StudySpec(packages=(PKG,), campaigns=("A",))


@pytest.fixture(autouse=True)
def _clean_planes():
    yield
    faults.uninstall()
    telemetry.disable()


class TestSubmitAndServe:
    def test_offline_submit_then_until_idle_serve_then_status(
        self, tmp_path, capsys
    ):
        root = str(tmp_path / "svc")
        code = main(
            ["submit", root, "quick", "--packages", PKG, "--campaigns", "A"]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert SPEC.fingerprint() in out
        assert "queued" in out

        code = main(["serve", root, "--until-idle", "--no-http", "--no-telemetry"])
        assert code == EXIT_OK
        assert "1 done" in capsys.readouterr().out

        code = main(["status", root])
        assert code == EXIT_OK
        assert "done 1" in capsys.readouterr().out

        code = main(["status", root, "--report", SPEC.fingerprint()])
        assert code == EXIT_OK
        assert "QGJ fuzz summary" in capsys.readouterr().out

    def test_cached_resubmission_prints_the_stored_report(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        main(["submit", root, "quick", "--packages", PKG, "--campaigns", "A"])
        main(["serve", root, "--until-idle", "--no-http", "--no-telemetry"])
        capsys.readouterr()
        code = main(
            ["submit", root, "quick", "--packages", PKG, "--campaigns", "A"]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "cached" in out
        assert "QGJ fuzz summary" in out  # served without re-running

    def test_status_json_is_machine_readable(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        main(["submit", root, "quick", "--packages", PKG, "--campaigns", "A"])
        capsys.readouterr()
        assert main(["status", root, "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["offline"] is True
        assert payload["queue"]["queued"] == 1


class TestExitCodes:
    def test_usage_errors_exit_2(self, capsys):
        assert main([]) == EXIT_USAGE
        assert main(["vaporize"]) == EXIT_USAGE
        assert main(["serve"]) == EXIT_USAGE  # missing ROOT
        capsys.readouterr()

    def test_bad_spec_is_a_usage_error(self, tmp_path, capsys):
        code = main(["submit", str(tmp_path), "no-such-scale"])
        assert code == EXIT_USAGE
        capsys.readouterr()

    def test_backpressure_exits_5(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        # The offline queue uses the default capacity (16): fill it with
        # distinct fingerprints, then the 17th submission must be refused.
        for seed in range(16):
            assert (
                main(
                    [
                        "submit", root, "quick",
                        "--packages", PKG, "--campaigns", "A",
                        "--fault-seed", str(seed),
                    ]
                )
                == EXIT_OK
            )
        code = main(
            [
                "submit", root, "quick",
                "--packages", PKG, "--campaigns", "A",
                "--fault-seed", "99",
            ]
        )
        assert code == EXIT_REJECTED
        assert "rejected" in capsys.readouterr().err

    def test_wait_on_a_poisoned_study_exits_6(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        bad = ["submit", root, "quick", "--packages", "com.not.installed"]
        assert main(bad) == EXIT_OK
        main(
            [
                "serve", root, "--until-idle", "--no-http", "--no-telemetry",
                "--max-attempts", "1",
            ]
        )
        capsys.readouterr()
        code = main(bad + ["--wait"])
        assert code == EXIT_POISONED
        assert "poison" in capsys.readouterr().err

    def test_wait_with_no_live_daemon_exits_7(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        code = main(
            [
                "submit", root, "quick",
                "--packages", PKG, "--campaigns", "A", "--wait",
            ]
        )
        assert code == EXIT_NO_DAEMON
        captured = capsys.readouterr()
        # The submission itself was admitted and survives in the WAL.
        assert "queued" in captured.out
        assert "no live daemon" in captured.err

    def test_submit_to_a_live_no_http_daemon_exits_7(self, tmp_path, capsys):
        import json as _json
        import os

        # A live daemon without an HTTP surface: discovery names our own
        # pid but publishes no port.  Submission must refuse cleanly --
        # appending offline would hand the WAL a record the daemon's
        # in-memory queue never learns about.
        root = tmp_path / "svc"
        root.mkdir()
        (root / "daemon.json").write_text(
            _json.dumps({"pid": os.getpid(), "port": None})
        )
        code = main(
            ["submit", str(root), "quick", "--packages", PKG, "--campaigns", "A"]
        )
        assert code == EXIT_NO_DAEMON
        assert "cannot submit" in capsys.readouterr().err
        assert not (root / "wal.jsonl").exists()

    def test_serve_on_a_locked_root_exits_2(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        with WriterLock(root) as lock:
            lock.acquire()
            code = main(["serve", root, "--until-idle", "--no-http"])
        assert code == EXIT_USAGE
        assert "writer lock" in capsys.readouterr().err


class TestRunnerDispatch:
    def test_the_batch_entry_point_routes_service_subcommands(
        self, tmp_path, capsys
    ):
        root = str(tmp_path / "svc")
        code = runner.main(
            ["submit", root, "quick", "--packages", PKG, "--campaigns", "A"]
        )
        assert code == EXIT_OK
        assert SPEC.fingerprint() in capsys.readouterr().out

    def test_the_runner_usage_documents_the_service_exit_codes(self):
        assert "5    service submission rejected" in runner.USAGE
        assert "6    service submit --wait: study quarantined" in runner.USAGE
        assert "7    service submit --wait: no live daemon" in runner.USAGE
        assert "serve|submit|status" in runner.USAGE
