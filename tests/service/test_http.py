"""The HTTP status API: live observation and submission over loopback."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import faults, telemetry
from repro.service import ServiceDaemon, StudySpec

PKG = "com.pulsetrack.wear"
SPEC = StudySpec(packages=(PKG,), campaigns=("A",))


@pytest.fixture(autouse=True)
def _clean_planes():
    yield
    faults.uninstall()
    telemetry.disable()


@pytest.fixture
def daemon(tmp_path):
    daemon = ServiceDaemon(str(tmp_path / "svc"), capacity=2, http_port=0)
    daemon.start()
    yield daemon
    if daemon._server is not None:
        daemon._server.stop()
        daemon._server = None
    telemetry.disable()


def _get(daemon, path):
    url = f"http://127.0.0.1:{daemon._server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _post(daemon, path, payload):
    url = f"http://127.0.0.1:{daemon._server.port}{path}"
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_status_reports_the_daemon_identity_and_queue(self, daemon):
        status, body = _get(daemon, "/status")
        assert status == 200
        payload = json.loads(body)
        assert payload["owner"] == daemon.owner
        assert payload["queue"]["queued"] == 0
        assert payload["capacity"] == 2

    def test_submit_then_studies_then_report(self, daemon):
        status, answer = _post(daemon, "/submit", SPEC.to_wire())
        assert status == 200
        assert answer["state"] == "queued"
        fingerprint = answer["fingerprint"]

        status, body = _get(daemon, "/studies")
        assert status == 200
        assert json.loads(body)[0]["fingerprint"] == fingerprint

        status, body = _get(daemon, f"/studies/{fingerprint}")
        assert json.loads(body)["state"] == "queued"

        # No report yet: the study has not run.
        status, _ = _get(daemon, f"/studies/{fingerprint}/report")
        assert status == 404

        # Serve in the background (as the real daemon does) and watch the
        # report appear on the live API.
        loop = threading.Thread(
            target=daemon.serve_forever, kwargs={"until_idle": False}, daemon=True
        )
        loop.start()
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                status, body = _get(daemon, f"/studies/{fingerprint}/report")
                if status == 200:
                    break
                time.sleep(0.1)
        finally:
            daemon.request_stop()
            loop.join(timeout=10.0)
        assert status == 200
        assert b"QGJ fuzz summary" in body

    def test_live_prometheus_and_dumpsys_expositions(self, daemon):
        _post(daemon, "/submit", SPEC.to_wire())
        status, body = _get(daemon, "/metrics")
        assert status == 200
        assert b"service_queue_depth" in body
        status, body = _get(daemon, "/dumpsys")
        assert status == 200
        assert body  # the human exposition renders

    def test_unknown_paths_and_studies_404(self, daemon):
        assert _get(daemon, "/nope")[0] == 404
        assert _get(daemon, "/studies/ffffffffffffffff")[0] == 404


class TestSubmissionEdges:
    def test_bad_spec_is_a_400(self, daemon):
        status, answer = _post(daemon, "/submit", {"kind": "phone"})
        assert status == 400
        assert "bad spec" in answer["error"]

    def test_backpressure_is_a_429_with_the_numbers(self, daemon):
        for seed in (1, 2):
            assert _post(
                daemon, "/submit",
                StudySpec(packages=(PKG,), campaigns=("A",), fault_seed=seed).to_wire(),
            )[0] == 200
        status, answer = _post(
            daemon, "/submit",
            StudySpec(packages=(PKG,), campaigns=("A",), fault_seed=3).to_wire(),
        )
        assert status == 429
        assert answer["capacity"] == 2
        assert answer["backlog"] == 2

    def test_concurrent_submissions_serialize_on_the_queue_lock(self, daemon):
        answers = []

        def submit(seed):
            answers.append(
                _post(
                    daemon, "/submit",
                    StudySpec(
                        packages=(PKG,), campaigns=("A",), fault_seed=seed
                    ).to_wire(),
                )
            )

        threads = [threading.Thread(target=submit, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        codes = sorted(code for code, _ in answers)
        # Capacity 2: exactly two admitted, two explicitly rejected.
        assert codes == [200, 200, 429, 429]
