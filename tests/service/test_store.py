"""ResultStore: idempotent persistence, segment queries, corpus merging."""

import os

import pytest

from repro.guided.corpus import BehaviorCorpus, CorpusEntry
from repro.guided.fingerprint import BehaviorFingerprint
from repro.qgj.campaigns import FuzzIntent
from repro.service.store import ResultStore, SegmentRecord


def _segment(app="com.pulsetrack.wear", campaign="A", seed=17, fp="f" * 16):
    return SegmentRecord(
        app=app, campaign=campaign, seed=seed, fingerprint=fp,
        counts={"sent": 10, "crashes": 2},
    )


class TestStudies:
    def test_put_then_get_round_trips(self, tmp_path):
        store = ResultStore(str(tmp_path))
        stored = store.put_study("ab" * 8, {"kind": "wear"}, "the report\n")
        assert stored.report_text() == "the report\n"
        assert store.get("ab" * 8).digest == stored.digest
        assert store.get("cd" * 8) is None

    def test_put_is_idempotent_per_fingerprint(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = store.put_study("ab" * 8, {}, "the report\n", [_segment()])
        again = store.put_study("ab" * 8, {}, "the report\n", [_segment()])
        assert again.digest == first.digest
        # No duplicate index records: a reload sees one study, one segment.
        reloaded = ResultStore(str(tmp_path))
        assert len(reloaded.studies()) == 1
        assert len(reloaded.segments()) == 1

    def test_store_survives_reload(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_study("ab" * 8, {"kind": "wear"}, "report A\n", [_segment()])
        store.put_study("cd" * 8, {"kind": "guided"}, "report B\n")
        reloaded = ResultStore(str(tmp_path))
        assert [s.fingerprint for s in reloaded.studies()] == ["ab" * 8, "cd" * 8]
        assert reloaded.get("ab" * 8).report_text() == "report A\n"

    def test_read_only_store_neither_creates_nor_writes(self, tmp_path):
        root = tmp_path / "never-served"
        reader = ResultStore(str(root), writer=False)
        assert reader.studies() == []
        assert reader.get("ab" * 8) is None
        assert not root.exists()
        with pytest.raises(RuntimeError, match="read-only"):
            reader.put_study("ab" * 8, {}, "r\n")
        with pytest.raises(RuntimeError, match="read-only"):
            reader.merge_corpus(BehaviorCorpus())

    def test_read_only_store_serves_an_existing_index(self, tmp_path):
        ResultStore(str(tmp_path)).put_study("ab" * 8, {}, "the report\n")
        reader = ResultStore(str(tmp_path), writer=False)
        assert reader.get("ab" * 8).report_text() == "the report\n"

    def test_vanished_report_reads_as_absent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        stored = store.put_study("ab" * 8, {}, "the report\n")
        os.remove(stored.report_path)
        # Indexed but gone: report absent, so the daemon re-runs instead
        # of serving a dangling pointer.
        assert ResultStore(str(tmp_path)).get("ab" * 8) is None


class TestSegments:
    def test_segments_query_by_app_campaign_seed(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_study(
            "ab" * 8,
            {},
            "r\n",
            [
                _segment(campaign="A", seed=17),
                _segment(campaign="B", seed=17),
                _segment(app="com.stridelog.wear", campaign="A", seed=3),
            ],
        )
        assert len(store.segments()) == 3
        assert len(store.segments(campaign="A")) == 2
        assert len(store.segments(app="com.stridelog.wear")) == 1
        assert len(store.segments(seed=17)) == 2
        assert store.segments(campaign="B")[0].counts["sent"] == 10


class TestCorpus:
    def _corpus(self):
        entry = CorpusEntry(
            package="com.pulsetrack.wear",
            campaign="A",
            fingerprint=BehaviorFingerprint(
                component="com.pulsetrack.wear/svc",
                outcome="crash",
                exception="java.lang.NullPointerException",
                frame="Tracker.onStartCommand",
                log_signature="npe",
                lifecycle="fresh",
            ),
            intent=FuzzIntent(action="android.intent.action.VIEW", data=None),
        )
        return BehaviorCorpus([entry])

    def test_merge_accumulates_and_persists(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert len(store.corpus()) == 0
        merged = store.merge_corpus(self._corpus())
        assert len(merged) == 1
        assert len(ResultStore(str(tmp_path)).corpus()) == 1

    def test_re_merging_after_a_crash_cannot_change_the_bytes(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.merge_corpus(self._corpus())
        before = open(store.corpus_path, "rb").read()
        store.merge_corpus(self._corpus())  # the recovery re-run's merge
        assert open(store.corpus_path, "rb").read() == before
