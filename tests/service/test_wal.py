"""ServiceWAL: write-ahead durability and torn-tail-tolerant replay."""

import pytest

from repro.service.spec import StudySpec
from repro.service.wal import DONE, LEASED, POISONED, QUEUED, ServiceWAL

SPEC = StudySpec(packages=("com.pulsetrack.wear",), campaigns=("A",))
FP = SPEC.fingerprint()


def _wal(tmp_path):
    return ServiceWAL(str(tmp_path / "wal.jsonl"), writer=True)


class TestReplay:
    def test_submit_lease_complete_folds_to_done(self, tmp_path):
        wal = _wal(tmp_path)
        wal.ensure()
        wal.submit(FP, SPEC.to_wire())
        wal.lease(FP, "daemon-1", 1, 60.0)
        wal.complete(FP, "digest", "report.txt")
        jobs, order = wal.replay()
        assert order == [FP]
        job = jobs[FP]
        assert job.state == DONE
        assert job.owner == ""
        assert job.digest == "digest"
        assert StudySpec.from_wire(job.spec_wire) == SPEC

    def test_requeue_and_poison_transitions(self, tmp_path):
        wal = _wal(tmp_path)
        wal.ensure()
        wal.submit(FP, SPEC.to_wire())
        wal.lease(FP, "daemon-1", 1, 60.0)
        wal.requeue(FP, "lease expired")
        jobs, _ = wal.replay()
        assert jobs[FP].state == QUEUED
        wal.lease(FP, "daemon-2", 2, 60.0)
        wal.poison(FP, "kept dying")
        jobs, _ = wal.replay()
        assert jobs[FP].state == POISONED
        assert jobs[FP].error == "kept dying"

    def test_duplicate_submit_replays_as_a_no_op(self, tmp_path):
        wal = _wal(tmp_path)
        wal.ensure()
        wal.submit(FP, SPEC.to_wire())
        wal.submit(FP, SPEC.to_wire())
        jobs, order = wal.replay()
        assert order == [FP]
        assert jobs[FP].attempts == 0

    def test_lease_survives_replay_with_its_owner(self, tmp_path):
        # The recovering daemon decides liveness by incarnation identity,
        # so the owner string must survive the round trip exactly.
        wal = _wal(tmp_path)
        wal.ensure()
        wal.submit(FP, SPEC.to_wire())
        wal.lease(FP, "host:123:abcd", 2, 60.0)
        jobs, _ = wal.replay()
        assert jobs[FP].state == LEASED
        assert jobs[FP].owner == "host:123:abcd"
        assert jobs[FP].attempts == 2


class TestDurabilityEdges:
    def test_torn_final_record_is_truncated_and_surfaced(self, tmp_path):
        wal = _wal(tmp_path)
        wal.ensure()
        wal.submit(FP, SPEC.to_wire())
        wal.lease(FP, "daemon-1", 1, 60.0)
        with open(wal.path, "ab") as fh:
            fh.write(b'{"type": "complete", "fingerp')  # kill -9 mid-append
        jobs, _ = wal.replay()
        # The torn transition never happened: the lease is still the tail.
        assert jobs[FP].state == LEASED
        assert wal.recovered_bytes == len(b'{"type": "complete", "fingerp')

    def test_transition_for_never_submitted_study_raises(self, tmp_path):
        wal = _wal(tmp_path)
        wal.ensure()
        wal.lease(FP, "daemon-1", 1, 60.0)
        with pytest.raises(ValueError, match="never-submitted"):
            wal.replay()

    def test_unknown_record_type_raises(self, tmp_path):
        wal = _wal(tmp_path)
        wal.ensure()
        wal.submit(FP, SPEC.to_wire())
        wal._append({"type": "vaporize", "fingerprint": FP})
        with pytest.raises(ValueError, match="unknown WAL record type"):
            wal.replay()

    def test_foreign_header_is_rejected(self, tmp_path):
        from repro.faults.journal import CheckpointJournal

        path = str(tmp_path / "other.jsonl")
        CheckpointJournal(path).start({"kind": "study-manifest"})
        with pytest.raises(ValueError, match="not a service WAL"):
            ServiceWAL(path).replay()


class TestReaderHandles:
    def test_reader_cannot_append(self, tmp_path):
        wal = _wal(tmp_path)
        wal.ensure()
        reader = ServiceWAL(wal.path)
        with pytest.raises(RuntimeError, match="read-only"):
            reader.submit(FP, SPEC.to_wire())

    def test_reader_replay_of_missing_wal_is_empty_and_creates_nothing(
        self, tmp_path
    ):
        reader = ServiceWAL(str(tmp_path / "wal.jsonl"))
        jobs, order = reader.replay()
        assert (jobs, order) == ({}, [])
        assert not (tmp_path / "wal.jsonl").exists()

    def test_reader_replay_leaves_a_torn_tail_on_disk(self, tmp_path):
        # What looks torn to a reader may be a live writer's append in
        # flight -- truncating it could destroy a committed record.
        wal = _wal(tmp_path)
        wal.ensure()
        wal.submit(FP, SPEC.to_wire())
        with open(wal.path, "ab") as fh:
            fh.write(b'{"type": "lease", "fingerp')
        size = (tmp_path / "wal.jsonl").stat().st_size
        reader = ServiceWAL(wal.path)
        jobs, _ = reader.replay()
        assert jobs[FP].state == QUEUED  # in-flight record dropped from parse
        assert (tmp_path / "wal.jsonl").stat().st_size == size
        # The writer's own replay then truncates it for real.
        jobs, _ = wal.replay()
        assert jobs[FP].state == QUEUED
        assert (tmp_path / "wal.jsonl").stat().st_size < size
