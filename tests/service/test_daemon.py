"""ServiceDaemon: crash anywhere, recover everywhere, never double-run.

The central property (ISSUE acceptance): ``kill -9`` the daemon at *any*
durability boundary and a restarted daemon completes the study to a
byte-identical report.  :class:`CrashPoint` enumerates the boundaries --
first a counting pass, then one simulated crash per boundary -- so the
property is checked exhaustively rather than sampled.

Everything runs the cheapest real scope (one package, campaign A) so the
whole file stays in test-suite territory while still driving the actual
study pipeline, WAL, store, and journals end to end.
"""

import pytest

from repro import faults, telemetry
from repro.experiments import wear_experiment
from repro.faults.errors import CampaignKilled
from repro.service import ServiceDaemon, SimulatedCrash, StudySpec
from repro.service.daemon import CrashPoint, EXIT_DRAINED, EXIT_IDLE, RootLockedError
from repro.service.lock import WriterLock
from repro.service.wal import DONE, POISONED

PKG = "com.pulsetrack.wear"
SPEC = StudySpec(kind="wear", config="quick", packages=(PKG,), campaigns=("A",))


@pytest.fixture(autouse=True)
def _clean_planes():
    yield
    faults.uninstall()
    telemetry.disable()


def _daemon(root, **kwargs):
    kwargs.setdefault("enable_telemetry", False)
    return ServiceDaemon(str(root), **kwargs)


def _reference_report(tmp_path):
    daemon = _daemon(tmp_path / "ref")
    daemon.start()
    daemon.submit(SPEC)
    assert daemon.serve_forever(until_idle=True) == EXIT_IDLE
    return daemon.store.get(SPEC.fingerprint()).report_text()


class TestCrashRecovery:
    def test_crash_at_every_boundary_recovers_byte_identical(self, tmp_path):
        reference = _reference_report(tmp_path)

        # Pass 1: count the durability boundaries of a clean run.
        counting = CrashPoint()
        daemon = _daemon(tmp_path / "count", crash_point=counting)
        daemon.start()
        daemon.submit(SPEC)
        daemon.serve_forever(until_idle=True)
        assert counting.count >= 4, counting.labels

        # Pass 2: simulate kill -9 at each boundary, then recover.
        for boundary in range(1, counting.count + 1):
            root = tmp_path / f"crash-{boundary}"
            first = _daemon(root, crash_point=CrashPoint(limit=boundary))
            crashed = False
            try:
                first.start()
                first.submit(SPEC)
                first.serve_forever(until_idle=True)
            except SimulatedCrash:
                crashed = True
            assert crashed, f"boundary {boundary} did not fire"

            second = _daemon(root)
            second.start()
            if second.queue.job(SPEC.fingerprint()) is None:
                second.submit(SPEC)  # crash predated the submit record
            assert second.serve_forever(until_idle=True) == EXIT_IDLE
            stored = second.store.get(SPEC.fingerprint())
            assert stored is not None, f"boundary {boundary}: no report"
            assert stored.report_text() == reference, (
                f"boundary {boundary} ({counting.labels[boundary - 1]}): "
                "recovered report differs"
            )

    def test_a_completed_study_is_never_double_run(self, tmp_path):
        # Crash *after* the WAL complete record: the restarted daemon must
        # not execute anything -- the job replays as DONE.
        counting = CrashPoint()
        daemon = _daemon(tmp_path / "count", crash_point=counting)
        daemon.start()
        daemon.submit(SPEC)
        daemon.serve_forever(until_idle=True)
        last = counting.count  # ...the post-complete boundary

        root = tmp_path / "after-complete"
        first = _daemon(root, crash_point=CrashPoint(limit=last))
        with pytest.raises(SimulatedCrash):
            first.start()
            first.submit(SPEC)
            first.serve_forever(until_idle=True)

        second = _daemon(root)
        second.start()
        assert second.queue.job(SPEC.fingerprint()).state == DONE
        assert second.serve_forever(until_idle=True) == EXIT_IDLE
        assert second.studies_completed == 0

    def test_crash_between_store_and_wal_complete_serves_the_store(self, tmp_path):
        # The torn window between "report persisted" and "complete logged":
        # recovery re-claims, finds the stored report, and completes the
        # WAL without re-running the study.
        counting = CrashPoint()
        daemon = _daemon(tmp_path / "count", crash_point=counting)
        daemon.start()
        daemon.submit(SPEC)
        daemon.serve_forever(until_idle=True)
        boundary = counting.labels.index("store:report") + 1

        root = tmp_path / "window"
        first = _daemon(root, crash_point=CrashPoint(limit=boundary))
        with pytest.raises(SimulatedCrash):
            first.start()
            first.submit(SPEC)
            first.serve_forever(until_idle=True)
        report_before = (root / "store" / "reports" / f"{SPEC.fingerprint()}.txt")
        mtime = report_before.stat().st_mtime_ns

        second = _daemon(root)
        second.start()
        assert second.serve_forever(until_idle=True) == EXIT_IDLE
        assert second.queue.job(SPEC.fingerprint()).state == DONE
        # Served from the store: the report bytes were never rewritten.
        assert report_before.stat().st_mtime_ns == mtime


class TestRetryAndResume:
    def test_failed_attempt_requeues_and_resumes_from_the_journal(
        self, tmp_path, monkeypatch
    ):
        reference = _reference_report(tmp_path)
        real_run = wear_experiment.run_wear_study
        calls = {"n": 0}

        def dying_first_attempt(config, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                # The host dies mid-study: segments already checkpointed.
                kwargs["kill_after_injections"] = 120
                with pytest.raises(CampaignKilled):
                    real_run(config, **kwargs)
                raise CampaignKilled("host died after 120 injections")
            return real_run(config, **kwargs)

        monkeypatch.setattr(wear_experiment, "run_wear_study", dying_first_attempt)
        daemon = _daemon(tmp_path / "svc")
        daemon.start()
        daemon.submit(SPEC)
        assert daemon.serve_forever(until_idle=True) == EXIT_IDLE
        job = daemon.queue.job(SPEC.fingerprint())
        assert job.state == DONE
        assert job.attempts == 2
        assert "host died" in job.error  # the failure stays on the record
        assert calls["n"] == 2
        assert daemon.store.get(SPEC.fingerprint()).report_text() == reference

    def test_poison_quarantine_completes_the_rest_degraded(self, tmp_path):
        bad = StudySpec(packages=("com.not.installed",), campaigns=("A",))
        daemon = _daemon(tmp_path / "svc", max_attempts=2)
        daemon.start()
        daemon.submit(bad)
        daemon.submit(SPEC)
        assert daemon.serve_forever(until_idle=True) == EXIT_IDLE
        assert daemon.queue.job(bad.fingerprint()).state == POISONED
        assert "not installed" in daemon.queue.job(bad.fingerprint()).error
        # The healthy study completed despite the poison ahead of it.
        assert daemon.queue.job(SPEC.fingerprint()).state == DONE


class TestServiceSemantics:
    def test_resubmitting_a_completed_spec_is_served_without_rerunning(
        self, tmp_path
    ):
        root = tmp_path / "svc"
        daemon = _daemon(root)
        daemon.start()
        daemon.submit(SPEC)
        daemon.serve_forever(until_idle=True)

        second = _daemon(root)
        second.start()
        result = second.submit(SPEC)
        assert result.cached
        assert second.serve_forever(until_idle=True) == EXIT_IDLE
        assert second.studies_completed == 0  # nothing executed

    def test_guided_studies_merge_their_corpus_into_the_store(self, tmp_path):
        spec = StudySpec(
            kind="guided", config="quick", packages=(PKG,), guided_budget=300
        )
        daemon = _daemon(tmp_path / "svc")
        daemon.start()
        daemon.submit(spec)
        assert daemon.serve_forever(until_idle=True) == EXIT_IDLE
        assert len(daemon.store.corpus()) > 0
        assert daemon.store.segments(app=PKG)
        report = daemon.store.get(spec.fingerprint()).report_text()
        assert report.startswith("Guided fuzzing study")

    def test_request_drain_exits_130_with_the_queue_released(self, tmp_path):
        daemon = _daemon(tmp_path / "svc")
        daemon.start()
        daemon.submit(SPEC)
        daemon.request_drain()
        assert daemon.serve_forever(until_idle=True) == EXIT_DRAINED
        # Nothing leased, nothing lost: the WAL still holds the study.
        job = daemon.queue.job(SPEC.fingerprint())
        assert job.state == "queued"

    def test_discovery_file_lifecycle(self, tmp_path):
        root = tmp_path / "svc"
        daemon = _daemon(root)
        daemon.start()
        assert (root / "daemon.json").exists()
        daemon.serve_forever(until_idle=True)
        # Clean exit removes discovery; SIGKILL would leave it, and the
        # client's pid probe treats the stale file as "no daemon".
        assert not (root / "daemon.json").exists()

    def test_config_leftovers_survive_shutdown(self, tmp_path):
        import json

        root = tmp_path / "svc"
        daemon = _daemon(root, capacity=5, max_attempts=2)
        daemon.start()
        daemon.serve_forever(until_idle=True)
        # Unlike discovery, service.json stays: offline clients admit
        # against the configured bounds, not hardcoded defaults.
        with open(root / "service.json", encoding="utf-8") as fh:
            config = json.load(fh)
        assert config["capacity"] == 5
        assert config["max_attempts"] == 2


class TestWriterLock:
    def test_second_daemon_on_a_served_root_fails_fast(self, tmp_path):
        root = tmp_path / "svc"
        first = _daemon(root)
        with pytest.raises(RootLockedError, match="writer lock"):
            _daemon(root)
        # ...and the loser's failed acquire did not break the holder.
        first.start()
        first.submit(SPEC)
        assert first.serve_forever(until_idle=True) == EXIT_IDLE

    def test_lock_is_released_after_serve_forever(self, tmp_path):
        root = tmp_path / "svc"
        daemon = _daemon(root)
        daemon.start()
        daemon.serve_forever(until_idle=True)
        replacement = _daemon(root)  # would raise were the lock leaked
        replacement.serve_forever(until_idle=True)

    def test_simulated_crash_releases_the_lock_like_a_real_kill(self, tmp_path):
        # A real SIGKILL drops the flock with the process; the in-process
        # simulation must end in the same lock state or restarts deadlock.
        root = tmp_path / "svc"
        first = _daemon(root, crash_point=CrashPoint(limit=1))
        with pytest.raises(SimulatedCrash):
            first.start()
        second = _daemon(root)
        second.serve_forever(until_idle=True)


class TestSignalRobustness:
    def test_interrupt_between_claims_exits_drained(self, tmp_path, monkeypatch):
        # A second SIGTERM can land while the loop is between claims (poll
        # sleep, expire): it must take the documented drain exit, not
        # escape serve_forever as a traceback.
        daemon = _daemon(tmp_path / "svc")
        daemon.start()

        def interrupting_expire():
            raise KeyboardInterrupt

        monkeypatch.setattr(daemon.queue, "expire", interrupting_expire)
        assert daemon.serve_forever(until_idle=True) == EXIT_DRAINED
