"""StudySpec: canonical encoding, fingerprints, validation."""

import pytest

from repro.service.spec import StudySpec


class TestFingerprint:
    def test_defaults_elided_so_explicit_defaults_fingerprint_identically(self):
        assert (
            StudySpec().fingerprint()
            == StudySpec(kind="wear", config="quick", workers=1).fingerprint()
        )

    def test_any_output_determining_knob_changes_the_fingerprint(self):
        base = StudySpec().fingerprint()
        assert StudySpec(config="paper").fingerprint() != base
        assert StudySpec(fault_seed=7).fingerprint() != base
        assert StudySpec(campaigns=("A",)).fingerprint() != base
        assert StudySpec(workers=4).fingerprint() != base

    def test_guided_knobs_only_count_for_guided_studies(self):
        # scheduler is meaningless for kind="wear": it must not leak into
        # the identity, or equal studies would cache-miss each other.
        assert (
            StudySpec(kind="wear", scheduler="ucb").fingerprint()
            == StudySpec(kind="wear", scheduler="thompson").fingerprint()
        )
        assert (
            StudySpec(kind="guided", scheduler="ucb").fingerprint()
            != StudySpec(kind="guided", scheduler="thompson").fingerprint()
        )

    def test_wire_round_trip_preserves_identity(self):
        spec = StudySpec(
            kind="guided",
            config="quick",
            packages=("b", "a"),
            campaigns=("A", "C"),
            fault_seed=3,
            compat_skew=2,
            workers=2,
            scheduler="thompson",
            guided_budget=500,
        )
        again = StudySpec.from_wire(spec.to_wire())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()


class TestValidation:
    def test_unknown_wire_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            StudySpec.from_wire({"kind": "wear", "config": "quick", "extra": 1})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "phone"},
            {"config": "no-such-scale"},
            {"packages": ()},
            {"campaigns": ("E",)},
            {"workers": 0},
            {"scheduler": "random"},
            {"guided_budget": 0},
            {"compat_skew": -1},
        ],
    )
    def test_bad_knobs_are_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            StudySpec(**kwargs)

    def test_chaos_knobs_compose_into_one_plan(self):
        plan = StudySpec(fault_seed=5, service_fault_seed=9, compat_skew=2).build_plan()
        assert plan is not None
        assert plan.compat is not None
        assert StudySpec().build_plan() is None
