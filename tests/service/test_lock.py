"""WriterLock: exclusive, idempotent, kernel-scoped writer role."""

from repro.service.lock import LOCK_FILENAME, WriterLock


class TestWriterLock:
    def test_exclusive_between_handles(self, tmp_path):
        # flock conflicts are per open file description, so two handles in
        # one process model two processes faithfully.
        first = WriterLock(str(tmp_path))
        second = WriterLock(str(tmp_path))
        assert first.acquire()
        assert not second.acquire()
        first.release()
        assert second.acquire()
        second.release()

    def test_acquire_is_idempotent_for_the_holder(self, tmp_path):
        lock = WriterLock(str(tmp_path))
        assert lock.acquire()
        assert lock.acquire()
        assert lock.held
        lock.release()
        assert not lock.held
        lock.release()  # double release is a no-op

    def test_lock_file_persists_across_release(self, tmp_path):
        # The file is never removed: unlinking would let a racer lock a
        # fresh inode while the old holder still holds the old one.
        lock = WriterLock(str(tmp_path))
        lock.acquire()
        lock.release()
        assert (tmp_path / LOCK_FILENAME).exists()

    def test_context_manager_releases(self, tmp_path):
        with WriterLock(str(tmp_path)) as lock:
            assert lock.acquire()
        assert not lock.held
        assert WriterLock(str(tmp_path)).acquire()
