"""StudyQueue: admission control, monotonic leases, retries, recovery."""

import pytest

from repro.service.queue import AdmissionError, StudyQueue
from repro.service.spec import StudySpec
from repro.service.wal import DONE, LEASED, POISONED, QUEUED, ServiceWAL

PKG = "com.pulsetrack.wear"


def _spec(index):
    """Distinct, cheap-to-validate specs (the seed varies the identity)."""
    return StudySpec(packages=(PKG,), campaigns=("A",), fault_seed=index)


class FakeClock:
    """A controllable monotonic clock: only ever advances."""

    def __init__(self):
        self.now = 1000.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    wal = ServiceWAL(str(tmp_path / "wal.jsonl"), writer=True)
    return StudyQueue(
        wal, capacity=3, max_attempts=2, lease_ttl_s=60.0, clock=clock
    )


class TestAdmission:
    def test_bounded_queue_rejects_past_capacity(self, queue):
        for i in range(3):
            queue.submit(_spec(i))
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(_spec(99))
        assert excinfo.value.capacity == 3
        assert excinfo.value.backlog == 3
        assert queue.rejections == 1

    def test_resubmission_is_idempotent_not_rejected(self, queue):
        for i in range(3):
            queue.submit(_spec(i))
        # A known fingerprint is always admitted, even at capacity.
        result = queue.submit(_spec(0))
        assert result.state == QUEUED
        assert not result.cached
        assert queue.rejections == 0

    def test_completed_study_resubmits_as_cached(self, queue):
        fingerprint = queue.submit(_spec(0)).fingerprint
        queue.claim("me")
        queue.complete(fingerprint, "digest", "report")
        result = queue.submit(_spec(0))
        assert result.cached
        assert result.state == DONE


class TestLeases:
    def test_claims_run_in_admission_order(self, queue):
        fps = [queue.submit(_spec(i)).fingerprint for i in range(3)]
        assert queue.claim("me").fingerprint == fps[0]
        assert queue.claim("me").fingerprint == fps[1]

    def test_lease_expires_on_the_monotonic_deadline(self, queue, clock):
        fingerprint = queue.submit(_spec(0)).fingerprint
        queue.claim("me")
        clock.advance(59.0)
        assert queue.expire() == []
        clock.advance(2.0)
        assert queue.expire() == [fingerprint]
        assert queue.job(fingerprint).state == QUEUED
        assert queue.lease_expiries == 1

    def test_heartbeats_keep_a_slow_lease_alive(self, tmp_path, clock):
        wal = ServiceWAL(str(tmp_path / "wal.jsonl"), writer=True)
        queue = StudyQueue(
            wal, lease_ttl_s=1000.0, heartbeat_timeout_s=10.0, clock=clock
        )
        fingerprint = queue.submit(_spec(0)).fingerprint
        queue.claim("me")
        for _ in range(5):
            clock.advance(8.0)
            queue.heartbeat(fingerprint)
        assert queue.expire() == []
        clock.advance(11.0)  # heartbeat stops: presumed wedged
        assert queue.expire() == [fingerprint]

    def test_retries_are_bounded_then_poison(self, queue, clock):
        fingerprint = queue.submit(_spec(0)).fingerprint
        queue.claim("me")          # attempt 1
        clock.advance(61.0)
        queue.expire()
        assert queue.job(fingerprint).state == QUEUED
        queue.claim("me")          # attempt 2 == max_attempts
        clock.advance(61.0)
        queue.expire()
        job = queue.job(fingerprint)
        assert job.state == POISONED
        assert "expired" in job.error
        # The queue completes degraded: the poison job is never claimable.
        assert queue.claim("me") is None

    def test_fail_counts_toward_the_retry_bound(self, queue):
        fingerprint = queue.submit(_spec(0)).fingerprint
        queue.claim("me")
        assert queue.fail(fingerprint, "boom") == QUEUED
        queue.claim("me")
        assert queue.fail(fingerprint, "boom again") == POISONED

    def test_drained_release_is_not_a_failure(self, queue):
        fingerprint = queue.submit(_spec(0)).fingerprint
        queue.claim("me")
        queue.release_drained(fingerprint, "me")
        job = queue.job(fingerprint)
        assert job.state == QUEUED
        assert job.error == ""


class TestRecovery:
    def test_recover_reclaims_only_foreign_leases(self, tmp_path):
        wal = ServiceWAL(str(tmp_path / "wal.jsonl"), writer=True)
        queue = StudyQueue(wal)
        mine = queue.submit(_spec(0)).fingerprint
        dead = queue.submit(_spec(1)).fingerprint
        queue.claim("incarnation-2")  # FIFO: leases `mine`
        queue.claim("incarnation-1")  # leases `dead`
        # Rebuild from the WAL as incarnation-2 would see it after a crash.
        queue2 = StudyQueue(ServiceWAL(str(tmp_path / "wal.jsonl"), writer=True))
        reclaimed = queue2.recover("incarnation-2")
        assert reclaimed == [dead]
        assert queue2.job(mine).state == LEASED  # still ours, still live
        assert queue2.job(dead).state == QUEUED

    def test_recovered_state_survives_a_second_replay(self, tmp_path):
        wal = ServiceWAL(str(tmp_path / "wal.jsonl"), writer=True)
        queue = StudyQueue(wal)
        fingerprint = queue.submit(_spec(0)).fingerprint
        queue.claim("dead-incarnation")
        queue2 = StudyQueue(ServiceWAL(str(tmp_path / "wal.jsonl"), writer=True))
        queue2.recover("live-incarnation")
        # The requeue was WAL-first: a third replay agrees without recover().
        queue3 = StudyQueue(ServiceWAL(str(tmp_path / "wal.jsonl"), writer=True))
        assert queue3.job(fingerprint).state == QUEUED


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"max_attempts": 0},
            {"lease_ttl_s": 0.0},
            {"heartbeat_timeout_s": 0.0},
        ],
    )
    def test_bad_knobs_are_rejected(self, tmp_path, kwargs):
        wal = ServiceWAL(str(tmp_path / "wal.jsonl"), writer=True)
        with pytest.raises(ValueError):
            StudyQueue(wal, **kwargs)
