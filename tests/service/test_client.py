"""ServiceClient offline semantics: read-only reads, lock-gated writes.

The review-driven contract under test: a client that falls back to the
files must never modify what might be a live daemon's WAL (the "torn
tail" it sees could be an append in flight), offline submission happens
only under the root's writer flock, and offline admission honours the
capacity the root's daemon was actually configured with.
"""

import json

import pytest

from repro.service.client import ServiceClient
from repro.service.lock import WriterLock
from repro.service.queue import AdmissionError, DEFAULT_CAPACITY
from repro.service.spec import StudySpec
from repro.service.wal import ServiceWAL

PKG = "com.pulsetrack.wear"


def _spec(seed=None):
    return StudySpec(packages=(PKG,), campaigns=("A",), fault_seed=seed)


def _seeded_wal(root):
    """A root whose WAL holds one submitted study, ending in a torn tail."""
    root.mkdir(parents=True, exist_ok=True)
    wal = ServiceWAL(str(root / "wal.jsonl"), writer=True)
    wal.ensure()
    wal.submit(_spec().fingerprint(), _spec().to_wire())
    with open(wal.path, "ab") as fh:
        fh.write(b'{"type": "lease", "fingerp')  # a writer mid-append
    return root / "wal.jsonl"


class TestOfflineReads:
    def test_status_leaves_a_torn_wal_untouched(self, tmp_path):
        wal_path = _seeded_wal(tmp_path / "svc")
        size = wal_path.stat().st_size
        status = ServiceClient(str(tmp_path / "svc")).status()
        assert status["offline"] is True
        assert status["queue"]["queued"] == 1  # in-flight append dropped
        assert wal_path.stat().st_size == size  # ...but never truncated

    def test_status_of_a_virgin_root_creates_nothing(self, tmp_path):
        root = tmp_path / "never-served"
        status = ServiceClient(str(root)).status()
        assert status["depth"] == 0
        assert not root.exists()

    def test_report_of_a_virgin_root_is_none(self, tmp_path):
        root = tmp_path / "never-served"
        assert ServiceClient(str(root)).report("no-such-fp") is None
        assert not root.exists()


class TestOfflineSubmission:
    def test_submit_takes_the_writer_lock_and_repairs(self, tmp_path):
        wal_path = _seeded_wal(tmp_path / "svc")
        torn_size = wal_path.stat().st_size
        client = ServiceClient(str(tmp_path / "svc"))
        answer = client.submit(_spec(seed=7))
        assert answer["state"] == "queued"
        # As the lock-holding writer it truncated the torn tail before
        # appending, so the log parses clean end to end...
        jobs, order = ServiceWAL(str(wal_path)).replay()
        assert len(order) == 2
        assert wal_path.stat().st_size != torn_size
        # ...and released the lock on the way out.
        assert WriterLock(str(tmp_path / "svc")).acquire()

    def test_submit_times_out_when_the_lock_is_held_without_discovery(
        self, tmp_path
    ):
        # A held lock with no published discovery is a daemon mid-startup
        # or running --no-http: the client must not append, and says so.
        root = tmp_path / "svc"
        holder = WriterLock(str(root))
        assert holder.acquire()
        try:
            client = ServiceClient(str(root), timeout_s=0.2)
            with pytest.raises(ConnectionError, match="writer lock is held"):
                client.submit(_spec())
            assert not (root / "wal.jsonl").exists()
        finally:
            holder.release()


class TestOfflineAdmission:
    def test_capacity_comes_from_the_service_config(self, tmp_path):
        root = tmp_path / "svc"
        root.mkdir()
        (root / "service.json").write_text(
            json.dumps({"capacity": 2, "max_attempts": 3})
        )
        client = ServiceClient(str(root))
        assert client.service_config() == (2, 3)
        client.submit(_spec(seed=0))
        client.submit(_spec(seed=1))
        with pytest.raises(AdmissionError) as excinfo:
            client.submit(_spec(seed=2))
        assert excinfo.value.capacity == 2

    def test_missing_or_garbage_config_falls_back_to_defaults(self, tmp_path):
        root = tmp_path / "svc"
        client = ServiceClient(str(root))
        assert client.service_config()[0] == DEFAULT_CAPACITY
        root.mkdir()
        (root / "service.json").write_text("not json{")
        assert client.service_config()[0] == DEFAULT_CAPACITY
        (root / "service.json").write_text(json.dumps({"capacity": 0}))
        assert client.service_config()[0] == DEFAULT_CAPACITY
