"""Tests for the corpus builders and calibration profiles."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.apps.behavior import Outcome, Trigger
from repro.apps.builtin import (
    AMBIENT_BINDER_PACKAGE,
    GOOGLE_FIT_PACKAGE,
    MOTOROLA_BODY_PACKAGE,
)
from repro.apps.catalog import (
    build_phone_corpus,
    build_wear_corpus,
    emulator_packages,
    partition,
    _assign_quota_slots,
)
from repro.apps.health import GRID_PAGER_PACKAGE, HEART_RATE_PACKAGE
from repro.apps.profiles import (
    PHONE_CRASH_COMPONENTS,
    PHONE_POPULATION,
    WEAR_POPULATION,
    allocate_by_mix,
)
from repro.android.package_manager import AppCategory, AppOrigin


class TestAllocateByMix:
    def test_exact_total(self):
        counts = allocate_by_mix({"a": 0.5, "b": 0.3, "c": 0.2}, 10)
        assert sum(counts.values()) == 10
        assert counts["a"] >= counts["b"] >= counts["c"]

    def test_zero_total(self):
        counts = allocate_by_mix({"a": 1.0}, 0)
        assert sum(counts.values()) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            allocate_by_mix({"a": 1.0}, -1)

    def test_unnormalised_weights(self):
        counts = allocate_by_mix({"a": 5, "b": 5}, 4)
        assert counts == {"a": 2, "b": 2}

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.floats(min_value=0.01, max_value=10),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=500),
    )
    def test_total_always_exact(self, mix, total):
        assert sum(allocate_by_mix(mix, total).values()) == total


class TestPartition:
    def test_sums_exactly(self):
        rng = random.Random(1)
        parts = partition(100, 7, rng, minimum=3)
        assert sum(parts) == 100
        assert all(p >= 3 for p in parts)

    def test_minimum_violation_rejected(self):
        with pytest.raises(ValueError):
            partition(5, 3, random.Random(0), minimum=2)

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            partition(5, 0, random.Random(0))


class TestQuotaSlots:
    def test_quota_exact_and_distinct_per_campaign(self):
        quota = {"A": 3, "B": 2}
        apps = ["p", "q", "r", "s"]
        slots = _assign_quota_slots(quota, apps, random.Random(3))
        for campaign, count in quota.items():
            members = [app for app, c in slots if c == campaign]
            assert len(members) == count
            assert len(set(members)) == count

    def test_every_app_gets_a_slot(self):
        slots = _assign_quota_slots({"A": 3, "B": 3}, ["p", "q", "r"], random.Random(0))
        assert {app for app, _ in slots} == {"p", "q", "r"}

    def test_overflow_quota_rejected(self):
        with pytest.raises(ValueError):
            _assign_quota_slots({"A": 5}, ["p", "q"], random.Random(0))


class TestWearCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_wear_corpus(seed=2018)

    def test_table2_population_exact(self, corpus):
        by_cell = {}
        for app in corpus.apps:
            key = (app.package.category.value, app.package.origin.value)
            cell = by_cell.setdefault(key, [0, 0, 0])
            cell[0] += 1
            cell[1] += len(app.package.activities())
            cell[2] += len(app.package.services())
        for key, expected in WEAR_POPULATION.items():
            assert by_cell[key] == [
                expected.apps,
                expected.activities,
                expected.services,
            ], key

    def test_deterministic_given_seed(self):
        a = build_wear_corpus(seed=7)
        b = build_wear_corpus(seed=7)
        assert [app.package.package for app in a.apps] == [
            app.package.package for app in b.apps
        ]
        assert [
            (c.name.flatten_to_string(), c.exported, c.behavior_key)
            for app in a.apps
            for c in app.package.components
        ] == [
            (c.name.flatten_to_string(), c.exported, c.behavior_key)
            for app in b.apps
            for c in app.package.components
        ]

    def test_different_seed_differs(self):
        a = build_wear_corpus(seed=7)
        b = build_wear_corpus(seed=8)
        layout = lambda corpus: [  # noqa: E731
            len(app.package.activities()) for app in corpus.apps
        ]
        assert layout(a) != layout(b)

    def test_named_apps_present_with_roles(self, corpus):
        assert corpus.app(HEART_RATE_PACKAGE).roles >= {"reboot_sensor"}
        assert corpus.app(AMBIENT_BINDER_PACKAGE).roles >= {"ambient_binder"}
        assert "hang" in corpus.app("com.cardiowatch.wear").roles
        assert corpus.app(GRID_PAGER_PACKAGE).crash_campaigns >= {"A"}
        assert corpus.app(GOOGLE_FIT_PACKAGE).crash_campaigns == {"A", "B", "C", "D"}
        assert corpus.app(MOTOROLA_BODY_PACKAGE).crash_campaigns == {"B", "C"}

    def test_motorola_is_vendor(self, corpus):
        assert corpus.app(MOTOROLA_BODY_PACKAGE).package.vendor

    def test_fig4_crash_app_targets(self, corpus):
        builtin_crashers = [
            app
            for app in corpus.apps
            if app.package.is_built_in
            and (app.crash_campaigns or "ambient_binder" in app.roles)
        ]
        third_crashers = [
            app
            for app in corpus.apps
            if not app.package.is_built_in and app.crash_campaigns
        ]
        assert len(builtin_crashers) == 7          # 64% of 11
        assert len(third_crashers) == 16           # 46% of 35

    def test_third_party_download_floor(self, corpus):
        for app in corpus.apps:
            if app.package.origin == AppOrigin.THIRD_PARTY:
                assert app.package.downloads >= 1_000_000

    def test_launchers_carry_no_generic_intent_defects(self, corpus):
        for app in corpus.apps:
            launcher = app.package.launcher_activity()
            if launcher is None or launcher.behavior_key is None:
                continue
            if launcher.behavior_key.startswith("gen."):
                spec = corpus.registry.get(launcher.behavior_key)
                crash_vulns = [
                    v for v in spec.vulnerabilities if v.outcome == Outcome.CRASH
                ]
                assert not crash_vulns, launcher.name

    def test_reboot_apps_have_no_generic_quirks(self, corpus):
        for package_name in (HEART_RATE_PACKAGE, AMBIENT_BINDER_PACKAGE):
            app = corpus.app(package_name)
            for component in app.package.components:
                key = component.behavior_key
                assert key is None or not key.startswith("gen."), component.name

    def test_hang_app_components(self, corpus):
        app = corpus.app("com.cardiowatch.wear")
        hang_specs = [
            corpus.registry.get(c.behavior_key)
            for c in app.package.components
            if c.behavior_key is not None
        ]
        hang_vulns = [
            v
            for spec in hang_specs
            for v in spec.vulnerabilities
            if v.outcome == Outcome.HANG
        ]
        assert len(hang_vulns) >= 5
        triggers = {v.trigger for v in hang_vulns}
        # Table III: health hangs appear in campaigns A, C and D, never B.
        assert Trigger.MISSING_ACTION not in triggers
        assert Trigger.MISSING_DATA not in triggers


class TestPhoneCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_phone_corpus(seed=711)

    def test_population(self, corpus):
        assert len(corpus.apps) == PHONE_POPULATION.apps
        activities, services = corpus.component_count()
        assert activities == PHONE_POPULATION.activities
        assert services == PHONE_POPULATION.services

    def test_all_built_in_com_android(self, corpus):
        for app in corpus.apps:
            assert app.package.package.startswith("com.android.")
            assert app.package.origin == AppOrigin.BUILT_IN

    def test_crash_component_quota(self, corpus):
        crash_components = 0
        for app in corpus.apps:
            for component in app.package.components:
                key = component.behavior_key
                if key is None:
                    continue
                spec = corpus.registry.get(key)
                if any(v.outcome == Outcome.CRASH for v in spec.vulnerabilities):
                    crash_components += 1
        assert crash_components == PHONE_CRASH_COMPONENTS


class TestEmulatorSelection:
    def test_excludes_vendor_and_caps_third_party(self):
        corpus = build_wear_corpus(seed=2018)
        selection = emulator_packages(corpus, top_third_party=20)
        assert all(not p.vendor for p in selection)
        third = [p for p in selection if not p.is_built_in]
        assert len(third) == 20
        downloads = [p.downloads for p in third]
        assert downloads == sorted(downloads, reverse=True)

    def test_launchers_gain_ui_quirks(self):
        corpus = build_wear_corpus(seed=2018)
        selection = emulator_packages(corpus)
        with_ui = 0
        for package in selection:
            launcher = package.launcher_activity()
            if launcher is None or launcher.behavior_key is None:
                continue
            spec = corpus.registry.get(launcher.behavior_key)
            if spec.ui_vulnerabilities:
                with_ui += 1
        assert with_ui >= 20

    def test_fragile_apps_are_third_party(self):
        corpus = build_wear_corpus(seed=2018)
        selection = emulator_packages(corpus, fragile_apps=3)
        fragile = []
        for package in selection:
            launcher = package.launcher_activity()
            if launcher is None or launcher.behavior_key is None:
                continue
            spec = corpus.registry.get(launcher.behavior_key)
            if any(v.outcome == Outcome.CRASH for v in spec.ui_vulnerabilities):
                fragile.append(package)
        assert len(fragile) == 3
        assert all(not p.is_built_in for p in fragile)
