"""Tests for the hand-modelled apps: the paper's four case studies."""

import pytest

from repro.android.intent import ComponentName, Intent
from repro.android.jtypes import (
    ArithmeticException,
    IllegalArgumentException,
)
from repro.apps.builtin import AMBIENT_BINDER_PACKAGE, GOOGLE_FIT_PACKAGE
from repro.apps.catalog import build_wear_corpus
from repro.apps.health import GRID_PAGER_PACKAGE, HEART_RATE_PACKAGE
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.complications import ACTION_ALL_APP, EXTRA_PROVIDER_INFO
from repro.wear.device import WearDevice


@pytest.fixture()
def watch():
    corpus = build_wear_corpus(seed=2018)
    device = WearDevice("watch")
    corpus.install(device)
    return device


def start(device, intent):
    return device.activity_manager.start_activity("com.qgj.wear", intent)


class TestGoogleFitAllApp:
    COMPONENT = ComponentName(
        GOOGLE_FIT_PACKAGE, GOOGLE_FIT_PACKAGE + ".ComplicationsAllAppActivity"
    )

    def test_action_all_app_without_provider_extra_crashes_with_iae(self, watch):
        # The paper's case study: {act=ACTION_ALL_APP} without the expected
        # Complication Provider message.
        intent = Intent(ACTION_ALL_APP).set_component(self.COMPONENT)
        result = start(watch, intent)
        assert result.crashed
        assert isinstance(result.throwable, IllegalArgumentException)
        assert "FATAL EXCEPTION: main" in watch.adb.logcat()

    def test_garbage_provider_extra_also_crashes(self, watch):
        intent = (
            Intent(ACTION_ALL_APP)
            .set_component(self.COMPONENT)
            .put_extra(EXTRA_PROVIDER_INFO, 42)
        )
        result = start(watch, intent)
        assert result.crashed
        assert isinstance(result.throwable, IllegalArgumentException)

    def test_valid_provider_extra_is_handled(self, watch):
        from repro.wear.complications import (
            ComplicationProviderInfo,
            ComplicationType,
        )

        info = ComplicationProviderInfo(
            provider=ComponentName("com.fit", "com.fit.Steps"),
            supported_types=(ComplicationType.SHORT_TEXT,),
        )
        intent = (
            Intent(ACTION_ALL_APP)
            .set_component(self.COMPONENT)
            .put_extra(EXTRA_PROVIDER_INFO, info.to_extra())
        )
        result = start(watch, intent)
        assert result.delivered and not result.crashed

    def test_other_actions_ignored(self, watch):
        intent = Intent("android.intent.action.VIEW").set_component(self.COMPONENT)
        result = start(watch, intent)
        assert not result.crashed


class TestGridPagerLegacy:
    def test_mismatched_intent_raises_arithmetic_exception(self, watch):
        package = watch.packages.get_package(GRID_PAGER_PACKAGE)
        target = next(
            c for c in package.activities()
            if c.behavior_key == "health.stridelog.gridpager"
        )
        mismatch = Intent(
            "android.intent.action.DIAL", data="https://foo.com/"
        ).set_component(target.name)
        result = start(watch, mismatch)
        assert result.crashed
        assert isinstance(result.throwable, ArithmeticException)
        text = watch.adb.logcat()
        assert "java.lang.ArithmeticException: divide by zero" in text
        assert "GridViewPager" in text

    def test_valid_intent_pages_fine(self, watch):
        package = watch.packages.get_package(GRID_PAGER_PACKAGE)
        target = next(
            c for c in package.activities()
            if c.behavior_key == "health.stridelog.gridpager"
        )
        ok = Intent("android.intent.action.VIEW", data="https://foo.com/").set_component(
            target.name
        )
        result = start(watch, ok)
        assert not result.crashed


class TestHeartRateReboot:
    def test_campaign_a_triggers_exactly_one_reboot(self, watch):
        fuzzer = FuzzerLibrary(watch)
        result = fuzzer.fuzz_app(
            HEART_RATE_PACKAGE,
            Campaign.A,
            FuzzConfig(strides={Campaign.A: 12}),
        )
        assert result.aborted_by_reboot
        assert watch.boot_count == 2
        text = watch.adb.logcat()
        assert "Fatal signal 6 (SIGABRT)" in text
        assert "libsensorservice" in text
        assert "ANR in com.pulsetrack.wear" in text
        assert "SYSTEM REBOOT" in text

    def test_no_exceptions_before_the_anr(self, watch):
        # The paper: "There were no exceptions raised before the crash,
        # which means the malformed intents were not rejected by the app."
        fuzzer = FuzzerLibrary(watch)
        fuzzer.fuzz_app(HEART_RATE_PACKAGE, Campaign.A, FuzzConfig(strides={Campaign.A: 12}))
        lines = watch.adb.logcat().splitlines()
        anr_index = next(i for i, l in enumerate(lines) if "ANR in" in l)
        app_exceptions = [
            line
            for line in lines[:anr_index]
            if "Exception" in line and "SecurityException" not in line
        ]
        # System-side SecurityExceptions are "the specified and secure
        # behavior"; the *app* raised nothing before it wedged.
        assert app_exceptions == []

    def test_other_campaigns_leave_heart_rate_app_alone(self, watch):
        fuzzer = FuzzerLibrary(watch)
        for campaign in (Campaign.B, Campaign.C, Campaign.D):
            result = fuzzer.fuzz_app(HEART_RATE_PACKAGE, campaign, FuzzConfig())
            assert not result.aborted_by_reboot, campaign
            assert result.crashes_seen == 0, campaign
        assert watch.boot_count == 1

    def test_sensor_service_recovers_after_reboot(self, watch):
        fuzzer = FuzzerLibrary(watch)
        fuzzer.fuzz_app(HEART_RATE_PACKAGE, Campaign.A, FuzzConfig(strides={Campaign.A: 12}))
        assert watch.sensor_service.alive


class TestAmbientReboot:
    def test_campaign_d_triggers_exactly_one_reboot(self, watch):
        fuzzer = FuzzerLibrary(watch)
        result = fuzzer.fuzz_app(AMBIENT_BINDER_PACKAGE, Campaign.D, FuzzConfig())
        assert result.aborted_by_reboot
        assert watch.boot_count == 2
        text = watch.adb.logcat()
        assert "Fatal signal 11 (SIGSEGV)" in text
        assert "ambient bind" in text.lower()
        # The crash loop precedes the reboot.
        assert text.count("FATAL EXCEPTION: main") >= 3

    def test_other_campaigns_do_not_reboot(self, watch):
        fuzzer = FuzzerLibrary(watch)
        for campaign in (Campaign.A, Campaign.B, Campaign.C):
            result = fuzzer.fuzz_app(
                AMBIENT_BINDER_PACKAGE,
                campaign,
                FuzzConfig(strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2}),
            )
            assert not result.aborted_by_reboot, campaign
        assert watch.boot_count == 1

    def test_whole_study_produces_exactly_two_reboots(self, watch):
        fuzzer = FuzzerLibrary(watch)
        config = FuzzConfig(
            strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1}
        )
        for package in (HEART_RATE_PACKAGE, AMBIENT_BINDER_PACKAGE):
            for campaign in Campaign:
                fuzzer.fuzz_app(package, campaign, config)
        assert watch.boot_count == 3  # initial boot + exactly two reboots
