"""Tests for the input-validation behaviour models."""

import pytest
from hypothesis import given, strategies as st

from repro.android.component import ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.context import Context
from repro.android.intent import ComponentName, Intent
from repro.android.jtypes import (
    IllegalArgumentException,
    NullPointerException,
    RuntimeException,
)
from repro.apps.behavior import (
    BLOCK_MS,
    BehaviorRegistry,
    BehaviorSpec,
    ModeledActivity,
    ModeledService,
    Outcome,
    Trigger,
    UiVulnerability,
    Vulnerability,
    stable_fraction,
    trigger_matches,
)


def info(kind=ComponentKind.ACTIVITY, name="com.a/com.a.Main"):
    return ComponentInfo(name=ComponentName.parse(name), kind=kind)


class TestTriggers:
    def test_mismatch_requires_both_valid(self):
        mismatch = Intent("android.intent.action.DIAL", data="https://foo.com/")
        assert trigger_matches(Trigger.ACTION_DATA_MISMATCH, mismatch, 0)

    def test_compatible_pair_is_not_mismatch(self):
        ok = Intent("android.intent.action.DIAL", data="tel:123")
        assert not trigger_matches(Trigger.ACTION_DATA_MISMATCH, ok, 0)

    def test_unknown_action_is_not_mismatch(self):
        garbage = Intent("S0me.r@ndom", data="tel:123")
        assert not trigger_matches(Trigger.ACTION_DATA_MISMATCH, garbage, 0)
        assert trigger_matches(Trigger.UNKNOWN_ACTION, garbage, 0)

    def test_missing_action(self):
        assert trigger_matches(Trigger.MISSING_ACTION, Intent(data="tel:1"), 0)
        assert not trigger_matches(Trigger.MISSING_ACTION, Intent("a", data="tel:1"), 0)

    def test_missing_data_excludes_extras(self):
        bare = Intent("android.intent.action.VIEW")
        assert trigger_matches(Trigger.MISSING_DATA, bare, 0)
        with_extras = Intent("android.intent.action.VIEW").put_extra("k", "v")
        assert not trigger_matches(Trigger.MISSING_DATA, with_extras, 0)

    def test_malformed_data(self):
        assert trigger_matches(
            Trigger.MALFORMED_DATA, Intent("a", data="just garbage"), 0
        )
        assert not trigger_matches(
            Trigger.MALFORMED_DATA, Intent("a", data="https://x/"), 0
        )

    def test_unexpected_extras(self):
        assert trigger_matches(
            Trigger.UNEXPECTED_EXTRAS, Intent("a").put_extra("k", "v"), 0
        )
        assert not trigger_matches(Trigger.UNEXPECTED_EXTRAS, Intent("a"), 0)

    def test_extra_type_confusion_needs_non_string(self):
        assert trigger_matches(
            Trigger.EXTRA_TYPE_CONFUSION, Intent("a").put_extra("k", 3), 0
        )
        assert not trigger_matches(
            Trigger.EXTRA_TYPE_CONFUSION, Intent("a").put_extra("k", "s"), 0
        )

    def test_any_intent(self):
        assert trigger_matches(Trigger.ANY_INTENT, Intent(), 0)


class TestStableFraction:
    def test_deterministic(self):
        assert stable_fraction("a", 1) == stable_fraction("a", 1)

    def test_range(self):
        for i in range(50):
            assert 0.0 <= stable_fraction("x", i) < 1.0

    @given(st.text(max_size=30), st.integers())
    def test_always_in_range(self, text, number):
        assert 0.0 <= stable_fraction(text, number) < 1.0


class TestVulnerability:
    def test_fires_and_builds(self):
        vuln = Vulnerability(
            trigger=Trigger.MISSING_DATA,
            exception="java.lang.NullPointerException",
            outcome=Outcome.CRASH,
            message="null uri",
        )
        i = info()
        assert vuln.fires_on(i, Intent("a"), 0)
        exc = vuln.build_throwable(i)
        assert isinstance(exc, NullPointerException)
        assert exc.frames[0].class_name == "com.a.Main"

    def test_min_deliveries_gate(self):
        vuln = Vulnerability(
            trigger=Trigger.ANY_INTENT,
            exception="java.lang.IllegalStateException",
            outcome=Outcome.CRASH,
            min_deliveries=3,
        )
        i = info()
        assert not vuln.fires_on(i, Intent(), 2)
        assert vuln.fires_on(i, Intent(), 3)

    def test_fire_fraction_gates_deterministically(self):
        vuln = Vulnerability(
            trigger=Trigger.ANY_INTENT,
            exception="java.lang.NullPointerException",
            outcome=Outcome.CRASH,
            fire_fraction=0.5,
        )
        i = info()
        intents = [Intent(f"action.{n}") for n in range(200)]
        fired = [vuln.fires_on(i, intent, 0) for intent in intents]
        again = [vuln.fires_on(i, intent, 0) for intent in intents]
        assert fired == again
        assert 40 < sum(fired) < 160  # roughly half

    def test_runtime_wrapper(self):
        vuln = Vulnerability(
            trigger=Trigger.ANY_INTENT,
            exception="java.lang.NullPointerException",
            outcome=Outcome.CRASH,
            wrap_in_runtime=True,
        )
        exc = vuln.build_throwable(info())
        assert isinstance(exc, RuntimeException)
        assert isinstance(exc.cause, NullPointerException)
        assert "Unable to start activity" in exc.message


@pytest.fixture
def device():
    return Device("test")


def make_activity(device, spec, name="com.a/com.a.Main"):
    return ModeledActivity(info(name=name), Context("com.a", device), spec)


class TestModeledComponents:
    def test_crash_outcome_raises(self, device):
        spec = BehaviorSpec(
            vulnerabilities=[
                Vulnerability(
                    trigger=Trigger.MISSING_DATA,
                    exception="java.lang.NullPointerException",
                    outcome=Outcome.CRASH,
                )
            ]
        )
        activity = make_activity(device, spec)
        with pytest.raises(NullPointerException):
            activity.on_handle_intent(Intent("a"), "onCreate")

    def test_hang_outcome_returns_block_and_logs(self, device):
        spec = BehaviorSpec(
            vulnerabilities=[
                Vulnerability(
                    trigger=Trigger.ANY_INTENT,
                    exception="java.lang.IllegalStateException",
                    outcome=Outcome.HANG,
                )
            ]
        )
        activity = make_activity(device, spec)
        cost = activity.on_handle_intent(Intent("a"), "onCreate")
        assert cost == BLOCK_MS
        assert "IllegalStateException" in device.logcat.dump()

    def test_handled_outcome_logs_and_continues(self, device):
        spec = BehaviorSpec(
            vulnerabilities=[
                Vulnerability(
                    trigger=Trigger.ANY_INTENT,
                    exception="java.lang.IllegalArgumentException",
                    outcome=Outcome.HANDLED,
                )
            ]
        )
        activity = make_activity(device, spec)
        cost = activity.on_handle_intent(Intent("a"), "onCreate")
        assert cost == spec.base_cost_ms
        assert "rejected intent" in device.logcat.dump()

    def test_clean_intent_no_effect(self, device):
        spec = BehaviorSpec(
            vulnerabilities=[
                Vulnerability(
                    trigger=Trigger.MISSING_DATA,
                    exception="java.lang.NullPointerException",
                    outcome=Outcome.CRASH,
                )
            ]
        )
        activity = make_activity(device, spec)
        cost = activity.on_handle_intent(
            Intent("android.intent.action.VIEW", data="https://x/"), "onCreate"
        )
        assert cost == spec.base_cost_ms

    def test_first_matching_vulnerability_wins(self, device):
        spec = BehaviorSpec(
            vulnerabilities=[
                Vulnerability(
                    trigger=Trigger.ANY_INTENT,
                    exception="java.lang.IllegalArgumentException",
                    outcome=Outcome.HANDLED,
                ),
                Vulnerability(
                    trigger=Trigger.ANY_INTENT,
                    exception="java.lang.NullPointerException",
                    outcome=Outcome.CRASH,
                ),
            ]
        )
        activity = make_activity(device, spec)
        # HANDLED is first; the crash never happens.
        assert activity.on_handle_intent(Intent("a"), "x") == spec.base_cost_ms

    def test_delivery_counter_increments(self, device):
        spec = BehaviorSpec(
            vulnerabilities=[
                Vulnerability(
                    trigger=Trigger.ANY_INTENT,
                    exception="java.lang.IllegalStateException",
                    outcome=Outcome.CRASH,
                    min_deliveries=3,
                )
            ]
        )
        activity = make_activity(device, spec)
        activity.on_handle_intent(Intent(), "x")
        activity.on_handle_intent(Intent(), "x")
        with pytest.raises(Exception):
            activity.on_handle_intent(Intent(), "x")

    def test_service_model(self, device):
        spec = BehaviorSpec(
            vulnerabilities=[
                Vulnerability(
                    trigger=Trigger.MISSING_ACTION,
                    exception="java.lang.NullPointerException",
                    outcome=Outcome.CRASH,
                )
            ]
        )
        service = ModeledService(
            info(kind=ComponentKind.SERVICE, name="com.a/com.a.Svc"),
            Context("com.a", device),
            spec,
        )
        with pytest.raises(NullPointerException):
            service.on_handle_intent(Intent(data="tel:1"), "onStartCommand")

    def test_ui_vulnerability_handled(self, device):
        spec = BehaviorSpec(
            ui_vulnerabilities=[
                UiVulnerability(
                    kinds=("tap",),
                    exception="java.lang.IllegalArgumentException",
                    outcome=Outcome.HANDLED,
                    fire_fraction=1.0,
                )
            ]
        )
        activity = make_activity(device, spec)
        assert activity.on_ui_event("tap", x=1, y=2) == spec.base_cost_ms
        assert "rejected ui event tap" in device.logcat.dump()

    def test_ui_vulnerability_crash(self, device):
        spec = BehaviorSpec(
            ui_vulnerabilities=[
                UiVulnerability(
                    kinds=("tap",),
                    exception="java.lang.NullPointerException",
                    outcome=Outcome.CRASH,
                    fire_fraction=1.0,
                )
            ]
        )
        activity = make_activity(device, spec)
        with pytest.raises(NullPointerException):
            activity.on_ui_event("tap", x=1, y=2)

    def test_ui_vulnerability_kind_filter(self, device):
        spec = BehaviorSpec(
            ui_vulnerabilities=[
                UiVulnerability(
                    kinds=("tap",),
                    exception="java.lang.NullPointerException",
                    outcome=Outcome.CRASH,
                    fire_fraction=1.0,
                )
            ]
        )
        activity = make_activity(device, spec)
        assert activity.on_ui_event("text", text="hi") == 0.5  # no crash


class TestBehaviorRegistry:
    def test_register_and_install(self, device):
        registry = BehaviorRegistry()
        key = registry.register("k", BehaviorSpec())
        assert key == "k"
        assert len(registry) == 1
        registry.install(device.activity_manager)
        factory = device.activity_manager._factories["k"]
        component = factory(info(), Context("com.a", device))
        assert isinstance(component, ModeledActivity)

    def test_duplicate_key_rejected(self):
        registry = BehaviorRegistry()
        registry.register("k", BehaviorSpec())
        with pytest.raises(ValueError):
            registry.register("k", BehaviorSpec())

    def test_factory_respects_kind(self, device):
        registry = BehaviorRegistry()
        registry.register("k", BehaviorSpec())
        registry.install(device.activity_manager)
        factory = device.activity_manager._factories["k"]
        service = factory(
            info(kind=ComponentKind.SERVICE, name="com.a/com.a.S"),
            Context("com.a", device),
        )
        assert isinstance(service, ModeledService)
