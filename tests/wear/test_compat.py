"""Tests for the phone/wear API-compatibility plane.

A skewed :class:`CompatMatrix` pins the phone behind the wearable; the pair
can only rely on the older half's API surface.  Version-gated calls fail at
the injection boundary (``NoSuchMethodError``-style, permanent, never
retried) and data-sync replication degrades -- but never on the harness's
own ``/qgj/`` protocol paths, and never at zero skew.
"""

import pytest

from repro import faults
from repro.faults.errors import CompatMismatchError, InfrastructureError
from repro.faults.plan import (
    BASE_WEAR_API,
    COMPAT_MISSING_METHOD,
    COMPAT_SYNC_DELTA,
    CompatMatrix,
    FaultEvent,
    FaultKind,
    FaultPlan,
)
from repro.android.jtypes import NoSuchMethodError
from repro.wear.compat import API_SEND_REQUEST, require_api
from repro.wear.device import PhoneDevice, WearDevice, pair
from repro.wear.node import ERROR_DISCONNECTED, SUCCESS, DataClient, MessageClient


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    faults.uninstall()


def _compat_plan(skew, param, at_ms=5.0):
    return FaultPlan(
        seed=0,
        compat=CompatMatrix.from_skew(skew),
        oneshots=(FaultEvent(at_ms, FaultKind.COMPAT_MISMATCH, param),),
    )


class TestRequireApi:
    def test_no_matrix_passes(self):
        require_api(None, "MessageClient.sendRequest", API_SEND_REQUEST)

    def test_matched_pair_passes(self):
        require_api(CompatMatrix(), "MessageClient.sendRequest", API_SEND_REQUEST)

    def test_skewed_pair_raises_with_the_pinned_level(self):
        matrix = CompatMatrix.from_skew(2)
        with pytest.raises(CompatMismatchError) as exc_info:
            require_api(matrix, "MessageClient.sendRequest", API_SEND_REQUEST)
        exc = exc_info.value
        assert exc.feature == "MessageClient.sendRequest"
        assert exc.required_api == API_SEND_REQUEST
        assert exc.effective_api == BASE_WEAR_API - 2
        # The error is a Java-shaped throwable *and* infrastructure noise.
        assert isinstance(exc, NoSuchMethodError)
        assert isinstance(exc, InfrastructureError)


class TestPairing:
    def test_pair_picks_the_matrix_up_from_the_armed_plan(self):
        plan = FaultPlan(seed=0, compat=CompatMatrix.from_skew(3))
        with faults.session(plan):
            phone, watch = PhoneDevice(), WearDevice()
            link = pair(phone, watch)
        assert link.compat == CompatMatrix.from_skew(3)
        assert "API skew on pair" in watch.adb.logcat()

    def test_matched_pair_logs_no_skew_warning(self):
        phone, watch = PhoneDevice(), WearDevice()
        link = pair(phone, watch, compat=CompatMatrix())
        assert link.compat is not None
        assert "API skew on pair" not in watch.adb.logcat()

    def test_unarmed_pair_has_no_matrix(self):
        link = pair(PhoneDevice(), WearDevice())
        assert link.compat is None


class TestSendRequestGate:
    def test_skewed_link_rejects_before_any_traffic(self):
        phone, watch = PhoneDevice(), WearDevice()
        link = pair(phone, watch, compat=CompatMatrix.from_skew(1))
        client = MessageClient(watch.node)
        with pytest.raises(CompatMismatchError, match="sendRequest"):
            client.send_request(phone.node.node_id, "/app/ping", b"x")
        assert link.messages_carried == 0
        # Plain fire-and-forget messaging predates the gate and still works.
        assert client.send_message(phone.node.node_id, "/app/ping", b"x") == SUCCESS

    def test_matched_link_passes_the_gate(self):
        phone, watch = PhoneDevice(), WearDevice()
        pair(phone, watch, compat=CompatMatrix())
        client = MessageClient(watch.node)
        assert client.send_request(phone.node.node_id, "/app/ping", b"x") == SUCCESS


class TestSyncDelta:
    def test_delta_drops_replication_but_keeps_the_local_write(self):
        with faults.session(_compat_plan(3, COMPAT_SYNC_DELTA)):
            phone, watch = PhoneDevice(), WearDevice()
            pair(phone, watch)
            watch.clock.sleep(10.0)
            client = DataClient(watch.node)
            assert client.put_data_item("/app/steps", {"n": 1}) == ERROR_DISCONNECTED
            assert watch.node.get_data_item("/app/steps") is not None
            assert phone.node.get_data_item("/app/steps") is None
            # One-shot consumed: the next write replicates.
            assert client.put_data_item("/app/steps", {"n": 2}) == SUCCESS
            assert phone.node.get_data_item("/app/steps").data == {"n": 2}

    def test_harness_paths_are_never_degraded(self):
        with faults.session(_compat_plan(3, COMPAT_SYNC_DELTA)):
            phone, watch = PhoneDevice(), WearDevice()
            pair(phone, watch)
            watch.clock.sleep(10.0)
            client = DataClient(watch.node)
            # The harness's own protocol traffic ignores the pending delta...
            assert client.put_data_item("/qgj/summary", {"ok": True}) == SUCCESS
            assert phone.node.get_data_item("/qgj/summary") is not None
            # ...which stays pending and bites the next *app* write.
            assert client.put_data_item("/app/x", {"n": 1}) == ERROR_DISCONNECTED

    def test_zero_skew_stream_is_inert(self):
        # The compat stream is armed and an event is due, but the matrix is
        # matched: the event drains silently and replication is untouched.
        with faults.session(_compat_plan(0, COMPAT_SYNC_DELTA)):
            phone, watch = PhoneDevice(), WearDevice()
            pair(phone, watch)
            watch.clock.sleep(10.0)
            client = DataClient(watch.node)
            assert client.put_data_item("/app/steps", {"n": 1}) == SUCCESS
            assert phone.node.get_data_item("/app/steps") is not None


class TestMissingMethodManifestation:
    def test_manifests_at_the_dispatch_boundary(self):
        from repro.android.component import ComponentInfo, ComponentKind
        from repro.android.intent import ComponentName, Intent, launcher_filter
        from repro.android.package_manager import (
            AppCategory,
            AppOrigin,
            PackageInfo,
        )

        pkg = "com.example.app"
        with faults.session(_compat_plan(2, COMPAT_MISSING_METHOD)):
            watch = WearDevice()
            watch.install(
                PackageInfo(
                    package=pkg,
                    label="Example",
                    category=AppCategory.OTHER,
                    origin=AppOrigin.THIRD_PARTY,
                    components=[
                        ComponentInfo(
                            name=ComponentName(pkg, f"{pkg}.MainActivity"),
                            kind=ComponentKind.ACTIVITY,
                            intent_filters=[launcher_filter()],
                        )
                    ],
                )
            )
            watch.clock.sleep(10.0)
            intent = Intent(component=ComponentName(pkg, f"{pkg}.MainActivity"))
            with pytest.raises(CompatMismatchError) as exc_info:
                watch.activity_manager.start_activity(pkg, intent)
            assert exc_info.value.feature == "ActivityManager.startRemoteActivity"
            assert exc_info.value.effective_api == BASE_WEAR_API - 2
            # Consumed: the same dispatch now goes through.
            assert watch.activity_manager.start_activity(pkg, intent).delivered
