"""Tests for the wearable network (MessageAPI / DataAPI / pairing)."""

import pytest

from repro.android.jtypes import IllegalStateException
from repro.wear.device import PhoneDevice, WearDevice, pair
from repro.wear.node import (
    ERROR_DISCONNECTED,
    ERROR_UNKNOWN_NODE,
    SUCCESS,
    BluetoothLink,
    DataClient,
    MessageClient,
    WearableNode,
)


@pytest.fixture
def paired():
    phone = PhoneDevice("phone")
    watch = WearDevice("watch")
    link = pair(phone, watch)
    return phone, watch, link


class TestMessageClient:
    def test_send_and_receive(self, paired):
        phone, watch, _ = paired
        received = []
        watch.node.add_message_listener("/qgj", lambda e: received.append(e))
        client = MessageClient(phone.node)
        status = client.send_message(watch.node.node_id, "/qgj/start", b"payload")
        assert status == SUCCESS
        assert len(received) == 1
        assert received[0].payload == b"payload"
        assert received[0].source_node == phone.node.node_id

    def test_path_prefix_filtering(self, paired):
        phone, watch, _ = paired
        qgj, other = [], []
        watch.node.add_message_listener("/qgj", lambda e: qgj.append(e))
        watch.node.add_message_listener("/other", lambda e: other.append(e))
        MessageClient(phone.node).send_message(watch.node.node_id, "/qgj/x", b"")
        assert len(qgj) == 1 and len(other) == 0

    def test_path_must_start_with_slash(self, paired):
        phone, watch, _ = paired
        with pytest.raises(IllegalStateException):
            MessageClient(phone.node).send_message(watch.node.node_id, "qgj", b"")

    def test_disconnected_link(self, paired):
        phone, watch, link = paired
        link.disconnect()
        status = MessageClient(phone.node).send_message(watch.node.node_id, "/x", b"")
        assert status == ERROR_DISCONNECTED
        link.reconnect()
        assert MessageClient(phone.node).send_message(watch.node.node_id, "/x", b"") == SUCCESS

    def test_unknown_node(self, paired):
        phone, watch, _ = paired
        from repro.wear.node import NodeId

        status = MessageClient(phone.node).send_message(NodeId("node-nope"), "/x", b"")
        assert status == ERROR_UNKNOWN_NODE

    def test_latency_advances_sender_clock(self, paired):
        phone, watch, _ = paired
        before = phone.clock.now_ms()
        MessageClient(phone.node).send_message(watch.node.node_id, "/x", b"")
        assert phone.clock.now_ms() == before + 40.0

    def test_connected_nodes(self, paired):
        phone, watch, link = paired
        assert MessageClient(phone.node).connected_nodes() == [watch.node.node_id]
        link.disconnect()
        assert MessageClient(phone.node).connected_nodes() == []

    def test_unpaired_node_has_no_peers(self):
        node = WearableNode("lonely", PhoneDevice("p").clock)
        assert MessageClient(node).connected_nodes() == []


class TestDataClient:
    def test_put_replicates_to_peer(self, paired):
        phone, watch, _ = paired
        DataClient(watch.node).put_data_item("/qgj/summary", {"crashes": 3})
        item = phone.node.get_data_item("/qgj/summary")
        assert item is not None
        assert item.data == {"crashes": 3}
        assert item.source_node == watch.node.node_id

    def test_data_listeners_fire(self, paired):
        phone, watch, _ = paired
        seen = []
        phone.node.add_data_listener("/qgj", lambda item: seen.append(item.path))
        DataClient(watch.node).put_data_item("/qgj/summary", {})
        assert seen == ["/qgj/summary"]

    def test_put_is_local_even_when_disconnected(self, paired):
        phone, watch, link = paired
        link.disconnect()
        status = DataClient(watch.node).put_data_item("/x", {"a": 1})
        assert status == ERROR_DISCONNECTED
        assert watch.node.get_data_item("/x") is not None
        assert phone.node.get_data_item("/x") is None

    def test_data_is_value_copied(self, paired):
        phone, watch, _ = paired
        payload = {"n": 1}
        DataClient(watch.node).put_data_item("/x", payload)
        payload["n"] = 2
        assert phone.node.get_data_item("/x").data == {"n": 1}

    def test_items_sorted_by_path(self, paired):
        _, watch, _ = paired
        client = DataClient(watch.node)
        client.put_data_item("/b", {})
        client.put_data_item("/a", {})
        assert [i.path for i in watch.node.data_items()] == ["/a", "/b"]


class TestPairing:
    def test_pair_logs_on_both(self, paired):
        phone, watch, _ = paired
        assert "paired with node-watch" in phone.adb.logcat()
        assert "paired with node-phone" in watch.adb.logcat()

    def test_self_link_rejected(self):
        phone = PhoneDevice("p")
        with pytest.raises(ValueError):
            BluetoothLink(phone.node, phone.node)

    def test_peer_of_foreign_node_rejected(self, paired):
        _, _, link = paired
        foreign = WearableNode("x", PhoneDevice("q").clock)
        with pytest.raises(ValueError):
            link.peer_of(foreign)

    def test_screen_geometries(self, paired):
        phone, watch, _ = paired
        assert (watch.screen_width, watch.screen_height) == (400, 400)
        assert (phone.screen_width, phone.screen_height) == (1440, 2560)

    def test_wear_services_registered(self, paired):
        _, watch, _ = paired
        for service in ("ambient", "fit", "complications", "wearable_message", "sensor"):
            assert watch.has_system_service(service), service
