"""Tests for the two-part-app (companion) extension."""

import pytest

from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig
from repro.wear.companion import (
    REQUIRED_FIELDS,
    CompanionApp,
    WearSyncPublisher,
    companion_path,
    run_companion_study,
)
from repro.wear.device import PhoneDevice, WearDevice, pair


@pytest.fixture()
def rig():
    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("watch")
    phone = PhoneDevice("phone")
    pair(phone, watch)
    corpus.install(watch)
    return corpus, watch, phone


class TestPublisher:
    def test_healthy_publish_is_complete(self, rig):
        _, watch, phone = rig
        publisher = WearSyncPublisher(watch, "com.runmate.wear")
        snapshot = publisher.publish()
        assert all(snapshot.get(field) is not None for field in REQUIRED_FIELDS)
        item = phone.node.get_data_item(companion_path("com.runmate.wear"))
        assert item is not None
        assert item.data["sequence"] == 1

    def test_sequence_increments(self, rig):
        _, watch, _ = rig
        publisher = WearSyncPublisher(watch, "com.runmate.wear")
        publisher.publish()
        snapshot = publisher.publish()
        assert snapshot["sequence"] == 2

    def test_crash_truncates_next_snapshot(self, rig):
        _, watch, _ = rig
        publisher = WearSyncPublisher(watch, "com.motorola.omega.body")
        publisher.publish()
        # Crash the wear app with a campaign-B blank intent at its NPE
        # component (behaviour defined in the corpus).
        from repro.android.intent import Intent
        from repro.qgj.fuzzer import FuzzerLibrary

        fuzzer = FuzzerLibrary(watch)
        result = fuzzer.fuzz_app(
            "com.motorola.omega.body", Campaign.B, FuzzConfig(max_intents_per_component=20)
        )
        assert result.crashes_seen > 0
        snapshot = publisher.publish()
        assert snapshot.get("payload") is None or snapshot.get("status") is None

    def test_recovers_after_crash_cycle(self, rig):
        _, watch, _ = rig
        publisher = WearSyncPublisher(watch, "com.motorola.omega.body")
        from repro.qgj.fuzzer import FuzzerLibrary

        FuzzerLibrary(watch).fuzz_app(
            "com.motorola.omega.body", Campaign.B, FuzzConfig(max_intents_per_component=20)
        )
        publisher.publish()           # the truncated one
        snapshot = publisher.publish()  # healthy again
        assert all(snapshot.get(field) is not None for field in REQUIRED_FIELDS)


class TestCompanionApp:
    def test_robust_companion_rejects_partial_snapshot(self, rig):
        _, watch, phone = rig
        companion = CompanionApp(phone, "com.runmate.wear", robust=True)
        from repro.wear.node import DataClient

        DataClient(watch.node).put_data_item(
            companion_path("com.runmate.wear"), {"sequence": 1, "status": None}
        )
        assert companion.stats.malformed_received == 1
        assert companion.stats.handled_rejections == 1
        assert companion.stats.crashes == 0
        assert "rejected partial snapshot" in phone.adb.logcat()

    def test_fragile_companion_crashes_on_phone(self, rig):
        _, watch, phone = rig
        companion = CompanionApp(phone, "com.runmate.wear", robust=False)
        from repro.wear.node import DataClient

        DataClient(watch.node).put_data_item(
            companion_path("com.runmate.wear"), {"sequence": 1}
        )
        assert companion.stats.crashes == 1
        assert "FATAL EXCEPTION: main" in phone.adb.logcat()

    def test_well_formed_snapshot_is_quiet(self, rig):
        _, watch, phone = rig
        companion = CompanionApp(phone, "com.runmate.wear", robust=False)
        from repro.wear.node import DataClient

        DataClient(watch.node).put_data_item(
            companion_path("com.runmate.wear"),
            {"sequence": 1, "status": "ok", "payload": "steps=5"},
        )
        assert companion.stats.snapshots_received == 1
        assert companion.stats.crashes == 0


class TestCompanionStudy:
    def test_propagation_with_robust_companions(self, rig):
        _, watch, phone = rig
        result = run_companion_study(
            watch, phone, ["com.motorola.omega.body"], robust_companions=True
        )
        assert result.wear_crashes > 0
        assert result.malformed_snapshots > 0
        assert result.phone_crashes == 0
        assert 0 < result.propagation_rate <= 1.0

    def test_propagation_with_fragile_companions(self, rig):
        _, watch, phone = rig
        result = run_companion_study(
            watch, phone, ["com.motorola.omega.body"], robust_companions=False
        )
        # Watch-side crashes now kill the phone-side companion too: the
        # inter-device propagation the paper's future work asks about.
        assert result.phone_crashes > 0
        assert "FATAL EXCEPTION" in phone.adb.logcat()

    def test_quiet_app_propagates_nothing(self, rig):
        _, watch, phone = rig
        result = run_companion_study(
            watch, phone, ["com.cyclemate.wear"], robust_companions=False
        )
        assert result.wear_crashes == 0
        assert result.malformed_snapshots == 0
        assert result.propagation_rate == 0.0

    def test_unknown_package_rejected(self, rig):
        _, watch, phone = rig
        with pytest.raises(ValueError):
            run_companion_study(watch, phone, ["com.nope"])

    def test_render(self, rig):
        _, watch, phone = rig
        result = run_companion_study(watch, phone, ["com.motorola.omega.body"])
        text = result.render()
        assert "CROSS-DEVICE PROPAGATION STUDY" in text
        assert "propagation rate" in text
