"""Tests for ambient mode, Google Fit, complications, and wear widgets."""

import warnings

import pytest

from repro.android.intent import ComponentName, Intent
from repro.android.jtypes import (
    ArithmeticException,
    DeadObjectException,
    IllegalArgumentException,
    IllegalStateException,
    IndexOutOfBoundsException,
    NullPointerException,
)
from repro.wear.ambient import DisplayState
from repro.wear.complications import (
    EXTRA_PROVIDER_INFO,
    ComplicationManager,
    ComplicationProviderInfo,
    ComplicationType,
    provider_info_from_intent,
)
from repro.wear.device import WearDevice
from repro.wear.fit import (
    DATA_TYPE_HEART_RATE,
    DATA_TYPE_STEP_COUNT,
    DataPoint,
)
from repro.wear.ui_widgets import (
    GridPagerAdapter,
    GridViewPager,
    Notification,
    NotificationStream,
    WatchFace,
)


@pytest.fixture
def watch():
    return WearDevice("watch")


class TestAmbient:
    def test_state_machine(self, watch):
        watch.ambient.enter_ambient()
        assert watch.ambient.state == DisplayState.AMBIENT
        watch.ambient.exit_ambient()
        assert watch.ambient.state == DisplayState.INTERACTIVE

    def test_double_enter_raises_ise(self, watch):
        watch.ambient.enter_ambient()
        with pytest.raises(IllegalStateException):
            watch.ambient.enter_ambient()

    def test_exit_without_enter_raises_ise(self, watch):
        with pytest.raises(IllegalStateException):
            watch.ambient.exit_ambient()

    def test_bind_bookkeeping(self, watch):
        watch.ambient.bind("com.face")
        assert watch.ambient.is_bound("com.face")
        assert watch.ambient.bind_count["com.face"] == 1
        watch.ambient.unbind("com.face")
        assert not watch.ambient.is_bound("com.face")

    def test_unbind_unbound_raises_ise(self, watch):
        with pytest.raises(IllegalStateException):
            watch.ambient.unbind("com.nope")

    def test_expect_binder_registers_with_system_server(self, watch):
        watch.ambient.expect_binder("com.builtin.face")
        assert "com.builtin.face" in watch.ambient.expected_binders()
        assert "com.builtin.face" in watch.system_server._ambient_binders

    def test_reset_keeps_expectations(self, watch):
        watch.ambient.expect_binder("com.face")
        watch.ambient.bind("com.face")
        watch.ambient.enter_ambient()
        watch.ambient.reset()
        assert watch.ambient.state == DisplayState.INTERACTIVE
        assert not watch.ambient.is_bound("com.face")
        assert "com.face" in watch.ambient.expected_binders()


class TestGoogleFit:
    def test_session_lifecycle(self, watch):
        client = watch.get_system_service("fit", "com.health")
        session = client.start_session("running")
        assert session.active
        stopped = client.stop_session()
        assert stopped is session and not session.active

    def test_double_start_raises_ise(self, watch):
        client = watch.get_system_service("fit", "com.health")
        client.start_session("running")
        with pytest.raises(IllegalStateException):
            client.start_session("walking")

    def test_stop_without_start_raises_ise(self, watch):
        client = watch.get_system_service("fit", "com.health")
        with pytest.raises(IllegalStateException):
            client.stop_session()

    def test_null_activity_type_raises_npe(self, watch):
        client = watch.get_system_service("fit", "com.health")
        with pytest.raises(NullPointerException):
            client.start_session(None)

    def test_empty_activity_type_raises_iae(self, watch):
        client = watch.get_system_service("fit", "com.health")
        with pytest.raises(IllegalArgumentException):
            client.start_session("")

    def test_sessions_are_per_package(self, watch):
        a = watch.get_system_service("fit", "com.a")
        b = watch.get_system_service("fit", "com.b")
        a.start_session("running")
        b.start_session("walking")  # no ISE: different package

    def test_subscribe_registers_sensor_listener(self, watch):
        client = watch.get_system_service("fit", "com.health")
        client.subscribe(DATA_TYPE_HEART_RATE)
        assert watch.sensor_service.has_listeners("com.health")

    def test_subscribe_unknown_type_raises_iae(self, watch):
        client = watch.get_system_service("fit", "com.health")
        with pytest.raises(IllegalArgumentException):
            client.subscribe("com.nope.type")

    def test_dead_sensor_service_propagates(self, watch):
        watch.sensor_service.process.kill()
        client = watch.get_system_service("fit", "com.health")
        with pytest.raises(DeadObjectException):
            client.start_session("running")

    def test_history_and_daily_steps(self, watch):
        service = watch.fit_service
        watch.clock.sleep(1000)
        service.insert(DataPoint(DATA_TYPE_STEP_COUNT, watch.clock.now_ms(), 500))
        service.insert(DataPoint(DATA_TYPE_STEP_COUNT, watch.clock.now_ms(), 250))
        client = watch.get_system_service("fit", "com.health")
        assert client.read_daily_steps() == 750

    def test_bad_time_range_raises_iae(self, watch):
        with pytest.raises(IllegalArgumentException):
            watch.fit_service.read_history(DATA_TYPE_STEP_COUNT, 100, 50)

    def test_reboot_closes_sessions(self, watch):
        client = watch.get_system_service("fit", "com.health")
        session = client.start_session("running")
        watch.perform_reboot("test")
        assert not session.active


class TestComplications:
    def _info(self):
        return ComplicationProviderInfo(
            provider=ComponentName("com.fit", "com.fit.StepsProvider"),
            supported_types=(ComplicationType.SHORT_TEXT, ComplicationType.RANGED_VALUE),
        )

    def test_round_trip_through_extra(self):
        info = self._info()
        intent = Intent("a").put_extra(EXTRA_PROVIDER_INFO, info.to_extra())
        parsed = provider_info_from_intent(intent)
        assert parsed == info

    def test_missing_extra_returns_none(self):
        assert provider_info_from_intent(Intent("a")) is None

    def test_malformed_extra_raises_iae(self):
        intent = Intent("a").put_extra(EXTRA_PROVIDER_INFO, "garbage")
        with pytest.raises(IllegalArgumentException):
            provider_info_from_intent(intent)

    def test_bad_types_raise_iae(self):
        intent = Intent("a").put_extra(
            EXTRA_PROVIDER_INFO, {"provider": "a/b", "types": [999]}
        )
        with pytest.raises(IllegalArgumentException):
            provider_info_from_intent(intent)

    def test_manager_registry(self):
        manager = ComplicationManager()
        info = self._info()
        manager.register(info)
        assert manager.provider_for(info.provider) == info
        assert manager.providers_supporting(ComplicationType.SHORT_TEXT) == [info]
        assert manager.providers_supporting(ComplicationType.ICON) == []
        manager.unregister(info.provider)
        assert len(manager) == 0


class TestGridViewPager:
    def test_deprecation_warning(self):
        adapter = GridPagerAdapter([["p"]])
        with pytest.warns(DeprecationWarning):
            GridViewPager(adapter)

    def _pager(self, pages):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return GridViewPager(GridPagerAdapter(pages))

    def test_normal_paging(self):
        pager = self._pager([["a", "b", "c"]])
        assert pager.page_for_scroll_offset(0, 0) == "a"
        assert pager.page_for_scroll_offset(0, 640) == "c"

    def test_divide_by_zero_on_empty_row(self):
        # The paper's ArithmeticException crash: zero columns in a row.
        pager = self._pager([[]])
        with pytest.raises(ArithmeticException) as excinfo:
            pager.page_for_scroll_offset(0, 100)
        assert excinfo.value.message == "divide by zero"
        assert any("GridViewPager" in str(f) for f in excinfo.value.frames)

    def test_null_adapter_raises_npe(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(NullPointerException):
                GridViewPager(None)

    def test_out_of_bounds(self):
        pager = self._pager([["a"]])
        with pytest.raises(IndexOutOfBoundsException):
            pager.set_current_item(5, 0)


class TestNotificationsAndWatchFace:
    def test_post_and_dismiss(self):
        stream = NotificationStream()
        stream.post(Notification("com.a", "Title", "Body"))
        assert len(stream) == 1
        assert stream.dismiss("com.a", "Title")
        assert not stream.dismiss("com.a", "Title")

    def test_null_title_raises_npe(self):
        with pytest.raises(NullPointerException):
            NotificationStream().post(Notification("com.a", None, "Body"))

    def test_dismiss_all(self):
        stream = NotificationStream()
        stream.post(Notification("com.a", "One", ""))
        stream.post(Notification("com.a", "Two", ""))
        stream.post(Notification("com.b", "Three", ""))
        assert stream.dismiss_all("com.a") == 2
        assert len(stream) == 1

    def test_watch_face_render(self):
        face = WatchFace("Classic")
        face.update_complication(0, "8,500 steps")
        assert "8,500 steps" in face.render("10:00")

    def test_watch_face_null_complication(self):
        with pytest.raises(NullPointerException):
            WatchFace("Classic").update_complication(0, None)
