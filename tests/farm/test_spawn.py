"""Shard specs and results must survive the ``spawn`` start method.

``fork`` is the farm's preferred context, but macOS/Windows default to
``spawn``, where nothing is inherited: the spec must round-trip through a
real pickle and the worker must rebuild the entire device tree from it.
These tests force ``spawn`` explicitly so the portability contract is
exercised even on Linux CI.
"""

import pickle

import pytest

from repro.experiments.config import QUICK
from repro.farm import plan_shards, run_shard, supervise_shards
from repro.farm.supervisor import SupervisionPolicy, mp_context
from repro.qgj.campaigns import Campaign

PKG = "com.pulsetrack.wear"


def _spec():
    (spec,) = plan_shards(
        "wear", QUICK, [PKG], (Campaign.A,), base_plan=None, telemetry_enabled=False
    )
    return spec


def test_shard_spec_round_trips_through_pickle():
    spec = _spec()
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec


def test_shard_result_round_trips_through_pickle():
    result = run_shard(_spec())
    clone = pickle.loads(pickle.dumps(result))
    assert clone.key == result.key
    assert clone.summary.to_wire() == result.summary.to_wire()
    assert clone.clock_ms == result.clock_ms


@pytest.mark.skipif(
    "spawn" not in __import__("multiprocessing").get_all_start_methods(),
    reason="spawn start method unavailable",
)
def test_spawned_worker_reproduces_the_in_process_shard():
    reference = run_shard(_spec())
    with mp_context("spawn").Pool(processes=1) as pool:
        (spawned,) = pool.map(run_shard, [_spec()])
    assert spawned.summary.to_wire() == reference.summary.to_wire()
    assert spawned.clock_ms == reference.clock_ms


@pytest.mark.skipif(
    "spawn" not in __import__("multiprocessing").get_all_start_methods(),
    reason="spawn start method unavailable",
)
def test_supervised_execution_works_under_spawn():
    reference = supervise_shards([_spec()], workers=1)
    spawned = supervise_shards(
        [_spec()], workers=2, policy=SupervisionPolicy(start_method="spawn")
    )
    (ref_result,) = reference.results
    (spawn_result,) = spawned.results
    assert spawn_result.summary.to_wire() == ref_result.summary.to_wire()
