"""The farm's central contract: worker count never changes the study.

``workers=1`` (sequential, in-process) is the reference; every other
worker count must reproduce its tables bit-for-bit -- with and without an
armed fault plan, and through a journalled resume.  The scope is kept to
two small apps and two campaigns: enough to cross package and campaign
boundaries (and trigger one reboot) without simulating the full corpus.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import faults, telemetry
from repro.experiments.config import QUICK
from repro.experiments.phone_experiment import run_phone_study
from repro.experiments.wear_experiment import run_wear_study
from repro.faults.plan import FaultPlan
from repro.qgj.campaigns import Campaign
from repro.telemetry.metrics import INTENTS_INJECTED

#: com.pulsetrack.wear reboots deterministically in campaign A;
#: com.runmate.wear is well-behaved.  Together they cross every merge path.
PACKAGES = ["com.pulsetrack.wear", "com.runmate.wear"]
CAMPAIGNS = (Campaign.A, Campaign.B)


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    faults.uninstall()


def _fingerprint(study):
    return {
        "wire": study.summary.to_wire(),
        "app_campaign": {
            key: value.value for key, value in study.collector.app_campaign.items()
        },
        "reboots": [
            (reboot.time_ms, reboot.package, reboot.campaign)
            for reboot in study.collector.reboots
        ],
        "segments": study.collector.segments_folded,
        "clock": study.shard_clock_ms,
    }


class TestWorkerCountEquivalence:
    def test_wear_study_identical_at_1_2_and_4_workers(self):
        runs = {
            workers: run_wear_study(
                QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=workers
            )
            for workers in (1, 2, 4)
        }
        reference = _fingerprint(runs[1])
        assert _fingerprint(runs[2]) == reference
        assert _fingerprint(runs[4]) == reference

    def test_phone_study_identical_across_workers(self):
        phone_packages = ["com.android.settings", "com.android.contacts"]
        serial = run_phone_study(QUICK, packages=phone_packages, campaigns=CAMPAIGNS)
        fanned = run_phone_study(
            QUICK, packages=phone_packages, campaigns=CAMPAIGNS, workers=2
        )
        assert fanned.summary.to_wire() == serial.summary.to_wire()
        assert fanned.collector.app_campaign == serial.collector.app_campaign
        assert fanned.shard_clock_ms == serial.shard_clock_ms

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_equivalence_holds_under_fault_plans(self, seed):
        # No adb drops here: their expovariate gaps can cluster enough at an
        # adversarial seed to exhaust the 6-attempt log-pull retry, aborting
        # the study (identically at every worker count, but killing the
        # comparison).  Drop handling is covered deterministically by
        # tests/experiments/test_resume.py and the CI chaos smoke; the
        # remaining kinds are absorbed in-harness and can never escape.
        plan = FaultPlan(
            seed=seed,
            binder_every_ms=8_000.0,
            lmkd_every_ms=30_000.0,
            logcat_truncate_every_ms=60_000.0,
        )
        with faults.session(plan):
            serial = run_wear_study(QUICK, packages=PACKAGES, campaigns=CAMPAIGNS)
        with faults.session(plan):
            fanned = run_wear_study(
                QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=2
            )
        assert _fingerprint(fanned) == _fingerprint(serial)


class TestCrashedWorkerEquivalence:
    """A retried shard merges byte-identical to a clean run.

    Supervision's half of the determinism contract: re-running the same
    pure function of the same spec after a worker death produces the same
    shard result, so the merged study cannot tell a crash happened -- only
    the health report can.
    """

    def test_crash_injected_first_attempt_merges_identically(self, monkeypatch):
        clean = run_wear_study(QUICK, packages=PACKAGES, campaigns=CAMPAIGNS)
        monkeypatch.setenv("REPRO_FARM_CRASH", "com.pulsetrack.wear=raise@1")
        crashed = run_wear_study(
            QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=2
        )
        assert _fingerprint(crashed) == _fingerprint(clean)
        assert crashed.health is not None
        assert crashed.health.retries_total == 1
        assert not crashed.health.degraded
        row = next(s for s in crashed.health.shards if s.key == "com.pulsetrack.wear")
        assert [attempt.outcome for attempt in row.attempts] == ["exception", "ok"]

    def test_hard_exit_crash_merges_identically(self, monkeypatch):
        clean = run_wear_study(QUICK, packages=PACKAGES, campaigns=CAMPAIGNS)
        monkeypatch.setenv("REPRO_FARM_CRASH", "com.runmate.wear=exit@0")
        crashed = run_wear_study(
            QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=2
        )
        assert _fingerprint(crashed) == _fingerprint(clean)
        row = next(s for s in crashed.health.shards if s.key == "com.runmate.wear")
        assert [attempt.outcome for attempt in row.attempts] == ["crash", "ok"]


class TestTelemetryEquivalence:
    @staticmethod
    def _projection(tracer):
        # Worker merges re-issue span ids (and sever cross-shard parents),
        # so equivalence is judged on the id-less deterministic view.
        return [
            (
                span.name,
                tuple(sorted(span.attributes.items())),
                span.start_virtual_ms,
                span.end_virtual_ms,
            )
            for span in tracer.spans()
        ]

    def test_worker_local_telemetry_merges_to_the_in_process_totals(self):
        with telemetry.session() as t:
            run_wear_study(QUICK, packages=PACKAGES, campaigns=CAMPAIGNS)
            serial_intents = t.metrics.get(INTENTS_INJECTED).total()
            serial_spans = [span.name for span in t.tracer.spans()]
        with telemetry.session() as t:
            run_wear_study(QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=2)
            fanned_intents = t.metrics.get(INTENTS_INJECTED).total()
            fanned_spans = [span.name for span in t.tracer.spans()]
        assert fanned_intents == serial_intents
        assert fanned_spans == serial_spans

    def test_sampled_telemetry_identical_at_1_2_and_4_workers(self):
        runs = {}
        for workers in (1, 2, 4):
            with telemetry.session(sample_every=7) as t:
                run_wear_study(
                    QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=workers
                )
                runs[workers] = (
                    t.metrics.get(INTENTS_INJECTED).total(),
                    t.tracer.sampled_out,
                    self._projection(t.tracer),
                )
        intents, sampled_out, projection = runs[1]
        assert sampled_out > 0  # sampling actually engaged
        assert projection  # and retained a deterministic residue
        assert runs[2] == runs[1]
        assert runs[4] == runs[1]

    def test_sampled_out_accounting_matches_the_unsampled_span_count(self):
        # retained + dropped + sampled_out must equal the spans an
        # unsampled run of the same study opens -- exact accounting, not
        # an estimate, and invariant under fan-out.
        with telemetry.session() as t:
            run_wear_study(QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=2)
            opened = len(t.tracer) + t.tracer.dropped
        with telemetry.session(sample_every=5) as t:
            run_wear_study(QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=2)
            accounted = len(t.tracer) + t.tracer.dropped + t.tracer.sampled_out
        assert accounted == opened

    def test_sampled_equivalence_holds_under_a_fault_plan(self):
        # Same no-adb-drop caveat as the fingerprint fault test above.
        plan = FaultPlan(
            seed=2018,
            binder_every_ms=8_000.0,
            lmkd_every_ms=30_000.0,
            logcat_truncate_every_ms=60_000.0,
        )
        runs = {}
        for workers in (1, 2):
            with faults.session(plan), telemetry.session(sample_every=7) as t:
                run_wear_study(
                    QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=workers
                )
                runs[workers] = (
                    t.metrics.get(INTENTS_INJECTED).total(),
                    t.tracer.sampled_out,
                    self._projection(t.tracer),
                )
        assert runs[2] == runs[1]


class TestShardedResume:
    def test_journalled_sharded_study_resumes_to_the_same_summary(self, tmp_path):
        journal = str(tmp_path / "study.jsonl")
        base = run_wear_study(QUICK, packages=PACKAGES, campaigns=CAMPAIGNS, workers=2)
        recorded = run_wear_study(
            QUICK,
            packages=PACKAGES,
            campaigns=CAMPAIGNS,
            journal_path=journal,
            workers=2,
        )
        resumed = run_wear_study(
            QUICK, journal_path=journal, resume=True, workers=2
        )
        assert recorded.summary.to_wire() == base.summary.to_wire()
        assert resumed.summary.to_wire() == base.summary.to_wire()
        assert resumed.shard_clock_ms == base.shard_clock_ms

    def test_resume_with_a_different_worker_count_is_rejected(self, tmp_path):
        journal = str(tmp_path / "study.jsonl")
        run_wear_study(
            QUICK,
            packages=PACKAGES,
            campaigns=CAMPAIGNS,
            journal_path=journal,
            workers=2,
        )
        with pytest.raises(ValueError, match="--workers 2"):
            run_wear_study(QUICK, journal_path=journal, resume=True, workers=4)

    def test_resume_without_journal_is_rejected(self):
        with pytest.raises(ValueError, match="journal_path"):
            run_wear_study(QUICK, packages=PACKAGES, resume=True)
