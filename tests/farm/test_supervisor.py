"""The supervised executor: deadlines, retries, poison, drain, legacy pool.

Worker crashes here are injected deterministically through
:class:`CrashPolicy` on the shard spec (the env hook is covered by the
equivalence tests), so every failure mode -- hard exit, raise, hang -- is
reproducible and each retry's behaviour is known in advance.
"""

import dataclasses

import pytest

from repro.experiments.config import QUICK
from repro.farm import plan_shards, run_shards, supervise_shards
from repro.farm.health import (
    OUTCOME_CRASH,
    OUTCOME_EXCEPTION,
    OUTCOME_OK,
    OUTCOME_STALLED,
    OUTCOME_TIMEOUT,
    SHARD_DRAINED,
    SHARD_OK,
    SHARD_POISONED,
    CrashPolicy,
    ShardFailedError,
    ShardPoisonedError,
    StudyHealthReport,
    StudyInterrupted,
    parse_crash_env,
)
from repro.farm.supervisor import DEFAULT_POLICY, SupervisionPolicy, _Supervisor
from repro.qgj.campaigns import Campaign

#: com.pulsetrack.wear reboots deterministically in campaign A;
#: com.runmate.wear is well-behaved.
PACKAGES = ["com.pulsetrack.wear", "com.runmate.wear"]


def _specs(campaigns=(Campaign.A, Campaign.B), packages=PACKAGES):
    return plan_shards("wear", QUICK, packages, tuple(campaigns), base_plan=None,
                       telemetry_enabled=False)


def _with_crash(specs, key, crash):
    return [
        dataclasses.replace(spec, crash=crash) if spec.key == key else spec
        for spec in specs
    ]


def _wires(results):
    return [r.summary.to_wire() if r is not None else None for r in results]


class TestRetry:
    def test_hard_exit_is_retried_to_an_identical_result(self):
        reference = supervise_shards(_specs(), workers=1)
        crashed = supervise_shards(
            _with_crash(_specs(), "com.pulsetrack.wear", CrashPolicy("exit", segment=1)),
            workers=2,
        )
        assert _wires(crashed.results) == _wires(reference.results)
        row = next(s for s in crashed.health.shards if s.key == "com.pulsetrack.wear")
        assert [a.outcome for a in row.attempts] == [OUTCOME_CRASH, OUTCOME_OK]
        assert row.outcome == SHARD_OK
        assert crashed.health.retries_total == 1
        assert not crashed.health.degraded

    def test_worker_exception_is_retried(self):
        run = supervise_shards(
            _with_crash(_specs(), "com.runmate.wear", CrashPolicy("raise", segment=0)),
            workers=2,
        )
        row = next(s for s in run.health.shards if s.key == "com.runmate.wear")
        assert [a.outcome for a in row.attempts] == [OUTCOME_EXCEPTION, OUTCOME_OK]
        assert "InjectedWorkerCrash" in row.attempts[0].detail

    def test_retry_of_a_journalled_shard_resumes_from_its_checkpoint(self, tmp_path):
        from repro.farm import StudyManifest

        reference = supervise_shards(_specs(), workers=1)
        manifest = StudyManifest(str(tmp_path / "study.jsonl"))
        specs = plan_shards(
            "wear", QUICK, PACKAGES, (Campaign.A, Campaign.B), base_plan=None,
            telemetry_enabled=False, manifest=manifest,
        )
        manifest.start(
            config=QUICK.name, fault_fingerprint="none", packages=PACKAGES,
            campaigns=[c.value for c in (Campaign.A, Campaign.B)], workers=2,
            shards=specs,
        )
        # Crash at segment 1: segment 0 is already durable in the shard
        # journal, so the retry resumes past it rather than restarting.
        run = supervise_shards(
            _with_crash(specs, "com.pulsetrack.wear", CrashPolicy("exit", segment=1)),
            workers=2,
        )
        assert _wires(run.results) == _wires(reference.results)
        assert run.health.retries_total == 1


class TestLiveness:
    def test_hung_worker_trips_the_heartbeat_deadline_and_retries(self):
        run = supervise_shards(
            _with_crash(
                _specs(campaigns=(Campaign.A,)),
                "com.runmate.wear",
                CrashPolicy("hang", segment=0),
            ),
            workers=2,
            policy=SupervisionPolicy(heartbeat_timeout_s=1.0),
        )
        row = next(s for s in run.health.shards if s.key == "com.runmate.wear")
        assert [a.outcome for a in row.attempts] == [OUTCOME_STALLED, OUTCOME_OK]
        assert row.outcome == SHARD_OK

    def test_hung_worker_trips_the_wall_clock_deadline_and_retries(self):
        run = supervise_shards(
            _with_crash(
                _specs(campaigns=(Campaign.A,)),
                "com.runmate.wear",
                CrashPolicy("hang", segment=0),
            ),
            workers=2,
            policy=SupervisionPolicy(shard_timeout_s=2.0),
        )
        row = next(s for s in run.health.shards if s.key == "com.runmate.wear")
        assert [a.outcome for a in row.attempts] == [OUTCOME_TIMEOUT, OUTCOME_OK]


class TestPoison:
    def test_shard_failing_every_attempt_is_quarantined(self):
        run = supervise_shards(
            _with_crash(
                _specs(),
                "com.pulsetrack.wear",
                CrashPolicy("exit", segment=0, attempts=2),
            ),
            workers=2,
        )
        positions = {spec.key: i for i, spec in enumerate(_specs())}
        poisoned_pos = positions["com.pulsetrack.wear"]
        assert run.results[poisoned_pos] is None
        assert run.results[positions["com.runmate.wear"]] is not None
        row = run.health.shards[poisoned_pos]
        assert row.outcome == SHARD_POISONED
        assert len(row.attempts) == DEFAULT_POLICY.max_attempts
        assert run.health.degraded
        assert run.health.dropped_packages() == ["com.pulsetrack.wear"]
        assert run.health.dropped_segments() == 2  # two campaigns dropped
        assert "poisoned" in run.health.render()

    def test_run_shards_facade_raises_on_poison(self):
        with pytest.raises(ShardPoisonedError, match="com.pulsetrack.wear"):
            run_shards(
                _with_crash(
                    _specs(campaigns=(Campaign.A,)),
                    "com.pulsetrack.wear",
                    CrashPolicy("exit", segment=0, attempts=2),
                ),
                workers=2,
            )

    def test_max_attempts_three_outlasts_a_two_attempt_crash(self):
        run = supervise_shards(
            _with_crash(
                _specs(campaigns=(Campaign.A,)),
                "com.pulsetrack.wear",
                CrashPolicy("exit", segment=0, attempts=2),
            ),
            workers=2,
            policy=SupervisionPolicy(max_attempts=3),
        )
        row = next(s for s in run.health.shards if s.key == "com.pulsetrack.wear")
        assert [a.outcome for a in row.attempts] == [
            OUTCOME_CRASH, OUTCOME_CRASH, OUTCOME_OK,
        ]
        assert not run.health.degraded


class TestLegacyPool:
    def test_unsupervised_failure_names_the_shard_and_keeps_the_rest(self):
        specs = _with_crash(
            _specs(campaigns=(Campaign.A,)),
            "com.pulsetrack.wear",
            CrashPolicy("raise", segment=0, attempts=99),
        )
        with pytest.raises(ShardFailedError, match="com.pulsetrack.wear") as exc_info:
            run_shards(specs, workers=2, supervised=False)
        error = exc_info.value
        assert [f.key for f in error.failures] == ["com.pulsetrack.wear"]
        assert "InjectedWorkerCrash" in error.failures[0].detail
        assert [r.key for r in error.completed] == ["com.runmate.wear"]

    def test_legacy_pool_rejects_a_kill_switch(self):
        from repro.faults.journal import KillSwitch

        with pytest.raises(ValueError, match="supervised"):
            run_shards(_specs(), workers=2, supervised=False,
                       kill_switch=KillSwitch(10))


class TestDrain:
    def _supervisor(self, specs, policy=None):
        policy = policy or DEFAULT_POLICY
        health = StudyHealthReport.for_specs(
            specs, study="wear", workers=2, max_attempts=policy.max_attempts
        )
        return _Supervisor(specs, 2, policy, None, None, health)

    def test_drain_before_dispatch_marks_every_shard_drained(self):
        supervisor = self._supervisor(_specs(campaigns=(Campaign.A,)))
        supervisor._on_signal(2, None)  # first signal: request drain
        with pytest.raises(StudyInterrupted):
            supervisor.run()
        assert all(
            row.outcome == SHARD_DRAINED for row in supervisor._health.shards
        )
        assert supervisor._health.interrupted

    def test_second_signal_escalates_to_keyboard_interrupt(self):
        supervisor = self._supervisor(_specs(campaigns=(Campaign.A,)))
        supervisor._on_signal(2, None)
        with pytest.raises(KeyboardInterrupt):
            supervisor._on_signal(2, None)


class TestVocabulary:
    def test_parse_crash_env_grammar(self):
        policies = parse_crash_env("com.a.wear=exit@1,com.b.wear=hang@0x2")
        assert policies["com.a.wear"] == CrashPolicy("exit", segment=1, attempts=1)
        assert policies["com.b.wear"] == CrashPolicy("hang", segment=0, attempts=2)
        assert parse_crash_env("") == {}
        with pytest.raises(ValueError, match="key=mode@segment"):
            parse_crash_env("justakey")
        with pytest.raises(ValueError, match="mode"):
            parse_crash_env("com.a.wear=explode@0")

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            SupervisionPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="shard_timeout"):
            SupervisionPolicy(shard_timeout_s=0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            SupervisionPolicy(heartbeat_timeout_s=-1)

    def test_health_report_round_trips_to_wire(self):
        run = supervise_shards(
            _with_crash(
                _specs(campaigns=(Campaign.A,)),
                "com.runmate.wear",
                CrashPolicy("raise", segment=0),
            ),
            workers=2,
        )
        wire = run.health.to_wire()
        assert wire["study"] == "wear"
        assert wire["degraded"] is False
        assert wire["retries_total"] == 1
        assert wire["dropped_packages"] == []
        shard_wire = next(
            s for s in wire["shards"] if s["key"] == "com.runmate.wear"
        )
        assert [a["outcome"] for a in shard_wire["attempts"]] == [
            OUTCOME_EXCEPTION, OUTCOME_OK,
        ]

    def test_shared_kill_switch_fires_at_its_limit(self):
        from repro.faults.errors import CampaignKilled
        from repro.faults.journal import SharedKillSwitch
        from repro.farm.supervisor import mp_context

        switch = SharedKillSwitch.create(3, mp_context())
        switch.tick()
        switch.tick()
        with pytest.raises(CampaignKilled) as exc_info:
            switch.tick()
        assert exc_info.value.injections == 3
        assert switch.count == 3
