"""Unit tests for the farm's merge layer.

The merge operations are the trust boundary of the sharded engine: if they
are associative and overlap-rejecting, the sharded study is exactly the
serial study.  Each is exercised on empty input, a single shard (identity),
and overlapping shards (partitioning-bug rejection).
"""

import pytest

from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import build_wear_corpus
from repro.experiments.config import QUICK
from repro.farm import derive_plan, derive_seed, shard_packages
from repro.faults.plan import FaultPlan
from repro.qgj.campaigns import Campaign
from repro.qgj.results import AppRunResult, FuzzSummary
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Span, Tracer


def _summary(*apps):
    return FuzzSummary(device="moto360", apps=list(apps))


class TestSummaryMerge:
    def test_empty_merge_is_rejected(self):
        with pytest.raises(ValueError, match="nothing to merge"):
            FuzzSummary.merge([])

    def test_single_summary_round_trips(self):
        one = _summary(AppRunResult(package="a", campaign=Campaign.A))
        merged = FuzzSummary.merge([one])
        assert merged.to_wire() == one.to_wire()

    def test_shards_concatenate_in_order(self):
        left = _summary(AppRunResult(package="a", campaign=Campaign.A))
        right = _summary(
            AppRunResult(package="b", campaign=Campaign.A),
            AppRunResult(package="b", campaign=Campaign.B),
        )
        merged = FuzzSummary.merge([left, right])
        assert [(app.package, app.campaign) for app in merged.apps] == [
            ("a", Campaign.A),
            ("b", Campaign.A),
            ("b", Campaign.B),
        ]

    def test_overlapping_segments_are_rejected(self):
        left = _summary(AppRunResult(package="a", campaign=Campaign.A))
        right = _summary(AppRunResult(package="a", campaign=Campaign.A))
        with pytest.raises(ValueError, match="overlapping shard results"):
            FuzzSummary.merge([left, right])

    def test_device_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="different devices"):
            FuzzSummary.merge(
                [FuzzSummary(device="moto360"), FuzzSummary(device="nexus6")]
            )


@pytest.fixture(scope="module")
def universe():
    return build_wear_corpus(seed=QUICK.corpus_seed).packages()


class TestCollectorMerge:
    def test_empty_merge_is_rejected(self, universe):
        with pytest.raises(ValueError, match="nothing to merge"):
            StudyCollector.merge([])

    def test_single_collector_round_trips(self, universe):
        one = StudyCollector(universe)
        one.fold("", universe[0].package, "A")
        merged = StudyCollector.merge([one])
        assert merged.app_campaign == one.app_campaign
        assert merged.segments_folded == 1
        assert len(merged.component_records()) == len(one.component_records())

    def test_disjoint_segments_sum(self, universe):
        left = StudyCollector(universe)
        left.fold("", universe[0].package, "A")
        right = StudyCollector(universe)
        right.fold("", universe[1].package, "A")
        right.fold("", universe[1].package, "B")
        merged = StudyCollector.merge([left, right])
        assert merged.segments_folded == 3
        assert set(merged.app_campaign) == {
            (universe[0].package, "A"),
            (universe[1].package, "A"),
            (universe[1].package, "B"),
        }

    def test_overlapping_segments_are_rejected(self, universe):
        left = StudyCollector(universe)
        left.fold("", universe[0].package, "A")
        right = StudyCollector(universe)
        right.fold("", universe[0].package, "A")
        with pytest.raises(ValueError, match="overlapping shard results"):
            StudyCollector.merge([left, right])

    def test_universe_mismatch_is_rejected(self, universe):
        with pytest.raises(ValueError, match="different component universes"):
            StudyCollector.merge(
                [StudyCollector(universe), StudyCollector(universe[:1])]
            )


class TestMetricsMerge:
    def test_counters_sum_per_label_set(self):
        live, shard = MetricsRegistry(), MetricsRegistry()
        live.counter("intents", "sent", ("campaign",)).labels(campaign="A").inc(3)
        shard.counter("intents", "sent", ("campaign",)).labels(campaign="A").inc(4)
        shard.counter("intents", "sent", ("campaign",)).labels(campaign="B").inc(1)
        live.merge_from(shard)
        counter = live.get("intents")
        assert counter.total_where(campaign="A") == 7
        assert counter.total_where(campaign="B") == 1

    def test_gauges_take_the_last_merged_value(self):
        live, shard = MetricsRegistry(), MetricsRegistry()
        live.gauge("depth", "open spans").set(5)
        shard.gauge("depth", "open spans").set(2)
        live.merge_from(shard)
        ((_, child),) = live.get("depth").samples()
        assert child.value == 2

    def test_histograms_add_elementwise(self):
        buckets = (1.0, 10.0)
        live, shard = MetricsRegistry(), MetricsRegistry()
        live.histogram("lat", "latency", buckets=buckets).observe(0.5)
        shard.histogram("lat", "latency", buckets=buckets).observe(5.0)
        shard.histogram("lat", "latency", buckets=buckets).observe(50.0)
        live.merge_from(shard)
        hist = live.get("lat")
        assert hist.total_count() == 3
        ((_, child),) = hist.samples()
        assert child.sum == 55.5
        assert child.count == 3
        assert sum(child.counts) == 2  # 50.0 overflows the top bucket

    def test_bucket_mismatch_is_rejected(self):
        live, shard = MetricsRegistry(), MetricsRegistry()
        live.histogram("lat", "latency", buckets=(1.0, 10.0))
        shard.histogram("lat", "latency", buckets=(2.0, 20.0)).observe(1.0)
        with pytest.raises(ValueError, match="cannot merge histograms"):
            live.merge_from(shard)

    def test_kind_conflict_is_rejected(self):
        live, shard = MetricsRegistry(), MetricsRegistry()
        live.counter("x", "")
        shard.gauge("x", "").set(1)
        with pytest.raises(ValueError):
            live.merge_from(shard)


def _span(span_id, parent_id, name="s"):
    return Span(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        attributes={},
        start_wall_s=0.0,
        start_virtual_ms=0.0,
    )


class TestTracerAbsorb:
    def test_ids_rebase_onto_the_live_sequence(self):
        tracer = Tracer(capacity=16)
        with tracer.span("live"):
            pass
        tracer.absorb([_span(1, None, "campaign"), _span(2, 1, "package")])
        spans = tracer.spans()
        assert [span.name for span in spans] == ["live", "campaign", "package"]
        live, campaign, package = spans
        assert campaign.span_id != live.span_id
        assert package.parent_id == campaign.span_id

    def test_out_of_batch_parents_become_roots(self):
        tracer = Tracer(capacity=16)
        tracer.absorb([_span(7, 99, "orphan")])
        assert tracer.spans()[0].parent_id is None

    def test_dropped_counts_accumulate(self):
        tracer = Tracer(capacity=2)
        tracer.absorb([_span(i, None) for i in range(1, 5)], dropped=3)
        # capacity 2: two of the four absorbed spans overflow, plus the
        # shard's own pre-merge drops.
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 2 + 3


class TestShardDerivation:
    def test_one_shard_per_package(self):
        assert shard_packages(["a", "b"]) == [("a", ("a",)), ("b", ("b",))]

    def test_seed_is_stable_and_key_unique(self):
        assert derive_seed(2018, "com.foo") == derive_seed(2018, "com.foo")
        assert derive_seed(2018, "com.foo") != derive_seed(2018, "com.bar")
        assert 0 <= derive_seed(2018, "com.foo") <= 0xFFFFFFFF

    def test_plan_derivation_reseeds_but_keeps_intervals(self):
        plan = FaultPlan(seed=13, binder_every_ms=8_000.0)
        derived = derive_plan(plan, derive_seed(2018, "com.foo"))
        assert derived.binder_every_ms == plan.binder_every_ms
        assert derived.seed != plan.seed
        assert derive_plan(None, 123) is None
