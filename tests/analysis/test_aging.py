"""Tests for the software-aging analytics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.aging import (
    ErrorSample,
    aging_report,
    damage_trajectory,
    error_series,
    mann_kendall_trend,
    peak_damage,
    plan_rejuvenation,
    windowed_intensity,
)
from repro.analysis.logparse import (
    AnrEvent,
    FatalExceptionEvent,
    HandledExceptionEvent,
    NativeSignalEvent,
    RebootEvent,
)


def fatal(t):
    return FatalExceptionEvent(
        time_ms=t, process="p", pid=1, exception_chain=["x.X"], messages=[""], frames=[]
    )


def handled(t):
    return HandledExceptionEvent(
        time_ms=t, pid=1, tag="T", exception_class="x.X", message=None, frames=[]
    )


class TestErrorSeries:
    def test_weights_by_kind(self):
        events = [
            fatal(0),
            AnrEvent(time_ms=10, process="p", component="p/.C", reason=""),
            handled(20),
            NativeSignalEvent(time_ms=30, signal="SIGABRT", number=6, process="x", reason=""),
        ]
        samples = error_series(events)
        assert [s.kind for s in samples] == ["fatal", "anr", "handled", "native"]
        assert samples[3].weight > samples[1].weight > samples[0].weight > samples[2].weight

    def test_sorted_by_time(self):
        samples = error_series([fatal(100), fatal(5), fatal(50)])
        assert [s.time_ms for s in samples] == [5, 50, 100]

    def test_reboot_events_not_samples(self):
        assert error_series([RebootEvent(time_ms=0, reason="x")]) == []


class TestWindowedIntensity:
    def test_bucketing(self):
        samples = [ErrorSample(t, 1.0, "fatal") for t in (0, 100, 15_000)]
        centres, weights = windowed_intensity(samples, window_ms=10_000)
        assert len(centres) == 2
        assert weights[0] == 2.0
        assert weights[1] == 1.0

    def test_empty(self):
        centres, weights = windowed_intensity([])
        assert centres.size == 0 and weights.size == 0

    def test_bad_window(self):
        with pytest.raises(ValueError):
            windowed_intensity([ErrorSample(0, 1, "fatal")], window_ms=0)


class TestTrend:
    def test_growing_intensity_is_aging(self):
        samples = []
        t = 0.0
        for window in range(12):
            for _ in range(window + 1):  # monotone growth
                samples.append(ErrorSample(t, 1.0, "fatal"))
                t += 100
            t = (window + 1) * 10_000.0
        trend = mann_kendall_trend(samples)
        assert trend.is_aging
        assert trend.kendall_tau > 0.5
        assert trend.slope_per_minute > 0

    def test_flat_intensity_is_not_aging(self):
        samples = [
            ErrorSample(window * 10_000.0 + 10, 1.0, "fatal") for window in range(12)
        ]
        trend = mann_kendall_trend(samples)
        assert not trend.is_aging

    def test_too_few_windows_neutral(self):
        trend = mann_kendall_trend([ErrorSample(0, 1.0, "fatal")])
        assert not trend.is_aging
        assert trend.windows <= 3

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6), min_size=0, max_size=40
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_never_raises(self, times):
        samples = sorted(
            (ErrorSample(t, 1.0, "fatal") for t in times), key=lambda s: s.time_ms
        )
        trend = mann_kendall_trend(list(samples))
        assert -1.0 <= trend.kendall_tau <= 1.0
        assert 0.0 <= trend.p_value <= 1.0


class TestDamage:
    def test_single_event_decays_by_half_life(self):
        samples = [ErrorSample(0.0, 4.0, "fatal")]
        times, damage = damage_trajectory(samples, half_life_ms=60_000, resolution_ms=60_000)
        assert damage[0] == pytest.approx(4.0)
        assert damage[1] == pytest.approx(2.0, rel=0.01)

    def test_accumulation_exceeds_single_weight(self):
        samples = [ErrorSample(i * 100.0, 2.0, "fatal") for i in range(4)]
        assert peak_damage(samples) > 7.5  # ~8 with negligible decay

    def test_empty_series(self):
        assert peak_damage([]) == 0.0


class TestRejuvenation:
    def test_no_plan_needed_below_threshold(self):
        plan = plan_rejuvenation([ErrorSample(0, 1.0, "fatal")], threshold=8.0)
        assert not plan.exceeds_threshold
        assert plan.recommended_interval_ms is None

    def test_plan_when_damage_exceeds(self):
        # 10 crashes of weight 2 in 1 second: peak ~20.
        samples = [ErrorSample(i * 100.0, 2.0, "fatal") for i in range(10)]
        plan = plan_rejuvenation(samples, threshold=8.0)
        assert plan.exceeds_threshold
        assert plan.peak_damage > 8.0
        assert plan.recommended_interval_ms is not None

    def test_recommended_interval_actually_works(self):
        samples = [ErrorSample(i * 5_000.0, 3.0, "fatal") for i in range(20)]
        plan = plan_rejuvenation(samples, threshold=8.0)
        if plan.recommended_interval_ms is not None:
            from repro.analysis.aging import _max_interval_damage

            assert (
                _max_interval_damage(samples, plan.recommended_interval_ms, 60_000.0)
                < 8.0
            )


class TestReportAndIntegration:
    def test_report_renders(self):
        events = [fatal(i * 1000.0) for i in range(20)]
        events.append(RebootEvent(time_ms=25_000, reason="x"))
        text = aging_report(events)
        assert "SOFTWARE AGING ANALYSIS" in text
        assert "reboots observed: 1" in text

    def test_real_reboot_log_shows_damage_spike(self):
        """The ambient crash-loop log should show super-threshold damage."""
        from repro.analysis.logparse import parse_events
        from repro.apps.builtin import AMBIENT_BINDER_PACKAGE
        from repro.apps.catalog import build_wear_corpus
        from repro.qgj.campaigns import Campaign
        from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
        from repro.wear.device import WearDevice

        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("aging-watch")
        corpus.install(watch)
        FuzzerLibrary(watch).fuzz_app(AMBIENT_BINDER_PACKAGE, Campaign.D, FuzzConfig())
        events = parse_events(watch.adb.logcat())
        samples = error_series(events)
        # Built-in crashes weigh 2.0 in the system server; the analytics use
        # 1.0 per fatal, so the spike threshold here is lower but present.
        assert peak_damage(samples) >= 3.0
        assert any(isinstance(e, RebootEvent) for e in events)
