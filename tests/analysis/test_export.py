"""Tests for the JSON export of study results."""

import json

import pytest

from repro.analysis.export import SCHEMA_VERSION, assert_json_safe, dump_json, export_results
from repro.experiments.config import QUICK
from repro.experiments.phone_experiment import run_phone_study
from repro.experiments.ui_experiment import run_ui_study
from repro.experiments.wear_experiment import run_wear_study
from repro.qgj.fuzzer import FuzzConfig
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    wear = run_wear_study(QUICK, packages=["com.pulsetrack.wear", "com.motorola.omega.body"])
    phone = run_phone_study(QUICK, packages=["com.android.chrome"])
    ui = run_ui_study(ExperimentConfig(name="tiny", fuzz=FuzzConfig(), ui_events=600))
    return export_results(wear, phone, ui)


class TestExport:
    def test_schema_and_round_trip(self, exported):
        assert exported["schema_version"] == SCHEMA_VERSION
        assert_json_safe(exported)
        round_tripped = json.loads(json.dumps(exported))
        assert round_tripped["totals"]["wear_reboots"] == 1

    def test_sections_present(self, exported):
        for key in (
            "table1_campaigns", "table2_population", "table3_behaviors",
            "table4_phone_crashes", "table5_ui", "fig2_exceptions",
            "fig3a_manifestations", "fig3b_rootcause", "fig4_app_class",
            "reboot_postmortems",
        ):
            assert key in exported, key

    def test_postmortem_serialised(self, exported):
        postmortems = exported["reboot_postmortems"]
        assert len(postmortems) == 1
        assert postmortems[0]["campaign"] == "A"
        assert postmortems[0]["native_signal"] == "SIGABRT"

    def test_dump_to_file(self, exported, tmp_path):
        path = tmp_path / "results.json"
        text = dump_json(exported, path=str(path))
        assert path.exists()
        assert json.loads(path.read_text()) == json.loads(text)
