"""Tests for the longitudinal cross-study comparison."""

import pytest

from repro.analysis.compare import (
    JJB_2012_BASELINE,
    ComparisonVerdict,
    crash_share_distribution,
    evolution_table,
    render_evolution,
    verdict,
)
from repro.analysis.manifest import StudyCollector
from repro.android.component import ComponentInfo, ComponentKind
from repro.android.intent import ComponentName
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo


def collector_with_crashes(class_counts):
    components = []
    index = 0
    for _cls, count in class_counts.items():
        for _ in range(count):
            components.append(
                ComponentInfo(
                    name=ComponentName("com.a", f"com.a.C{index}"),
                    kind=ComponentKind.ACTIVITY,
                )
            )
            index += 1
    package = PackageInfo(
        package="com.a",
        label="A",
        category=AppCategory.OTHER,
        origin=AppOrigin.THIRD_PARTY,
        components=components,
    )
    collector = StudyCollector([package])
    index = 0
    for cls, count in class_counts.items():
        for _ in range(count):
            record = collector.record_for(f"com.a/com.a.C{index}")
            record.fatal_root_classes[cls] += 1
            index += 1
    return collector


NPE = "java.lang.NullPointerException"
ISE = "java.lang.IllegalStateException"
CNFE = "java.lang.ClassNotFoundException"
IAE = "java.lang.IllegalArgumentException"


class TestBaseline:
    def test_baseline_headline(self):
        # The paper quotes 46% NPE for the 2012 study.
        assert JJB_2012_BASELINE[NPE] == pytest.approx(0.46)

    def test_baseline_normalised(self):
        assert sum(JJB_2012_BASELINE.values()) == pytest.approx(1.0)


class TestDistribution:
    def test_share_distribution(self):
        collector = collector_with_crashes({NPE: 3, ISE: 1})
        shares = crash_share_distribution(collector)
        assert shares[NPE] == pytest.approx(0.75)
        assert shares[ISE] == pytest.approx(0.25)

    def test_empty_collector(self):
        collector = collector_with_crashes({})
        assert crash_share_distribution(collector) == {}


class TestEvolution:
    def _studies(self):
        wear = collector_with_crashes({NPE: 30, IAE: 25, ISE: 20, CNFE: 5})
        phone = collector_with_crashes({NPE: 31, CNFE: 26, IAE: 18, ISE: 6})
        return wear, phone

    def test_table_rows(self):
        wear, phone = self._studies()
        rows = evolution_table(wear, phone)
        by_class = {row.exception: row for row in rows}
        assert by_class[NPE].android_2012 == pytest.approx(0.46)
        assert by_class[NPE].wear_20 == pytest.approx(30 / 80)
        assert by_class[NPE].trend_2012_to_wear == "shrank"
        assert by_class[ISE].trend_2012_to_wear == "grew"

    def test_verdict_holds_on_paper_shaped_data(self):
        wear, phone = self._studies()
        result = verdict(wear, phone)
        assert isinstance(result, ComparisonVerdict)
        assert result.npe_shrank_since_2012
        assert result.ise_grew_on_wear
        assert result.cnfe_phone_heavy
        assert result.all_hold()

    def test_verdict_fails_on_inverted_data(self):
        wear = collector_with_crashes({NPE: 60, ISE: 1})
        phone = collector_with_crashes({NPE: 10, ISE: 10})
        result = verdict(wear, phone)
        assert not result.npe_shrank_since_2012
        assert not result.all_hold()

    def test_render(self):
        wear, phone = self._studies()
        text = render_evolution(evolution_table(wear, phone))
        assert "2012" in text and "Wear" in text
        assert "NullPointerException" in text
        assert "shrank" in text


class TestVerdictOnRealStudies:
    def test_real_quick_studies_support_the_conclusion(self):
        """The paper's longitudinal claims hold on the actual pipeline."""
        from repro.experiments.config import QUICK
        from repro.experiments.phone_experiment import run_phone_study
        from repro.experiments.wear_experiment import run_wear_study

        wear = run_wear_study(
            QUICK,
            packages=[
                "com.google.android.apps.fitness",
                "com.motorola.omega.body",
                "com.runmate.wear",
                "com.fitband.wear",
                "com.chatterbox.wear",
                "com.skycast.wear",
            ],
        )
        phone = run_phone_study(
            QUICK,
            packages=[
                "com.android.chrome",
                "com.android.settings",
                "com.android.mms",
                "com.android.email",
                "com.android.calendar",
                "com.android.camera",
            ],
        )
        result = verdict(wear.collector, phone.collector)
        assert result.npe_shrank_since_2012
        assert result.ise_grew_on_wear
