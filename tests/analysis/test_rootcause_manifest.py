"""Tests for root-cause attribution and the manifestation classifier."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.logparse import (
    AnrEvent,
    FatalExceptionEvent,
    HandledExceptionEvent,
    RebootEvent,
)
from repro.analysis.manifest import (
    ComponentRecord,
    Manifestation,
    StudyCollector,
)
from repro.analysis.rootcause import (
    app_frame,
    attribute_anr,
    equal_blame,
    guilty_class,
    reboot_culprit_classes,
    reboot_window_events,
)
from repro.android.clock import Clock
from repro.android.component import ComponentInfo, ComponentKind
from repro.android.intent import ComponentName
from repro.android.jtypes import (
    IllegalStateException,
    NullPointerException,
    frame,
)
from repro.android.log import Logcat
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo


def fatal(time_ms, chain, frames=("com.a.Main",), process="com.a"):
    return FatalExceptionEvent(
        time_ms=time_ms,
        process=process,
        pid=1,
        exception_chain=list(chain),
        messages=[""] * len(chain),
        frames=list(frames),
    )


def handled(time_ms, cls, frames=("com.a.Main",)):
    return HandledExceptionEvent(
        time_ms=time_ms, pid=1, tag="T", exception_class=cls, message=None, frames=list(frames)
    )


class TestRootCauseRules:
    def test_guilty_class_is_innermost(self):
        event = fatal(0, ["java.lang.RuntimeException", "java.lang.NullPointerException"])
        assert guilty_class(event) == "java.lang.NullPointerException"

    def test_app_frame_skips_framework(self):
        frames = ["android.app.ActivityThread", "java.lang.Thread", "com.a.Main"]
        assert app_frame(frames) == "com.a.Main"
        assert app_frame(["android.app.X"]) is None

    def test_attribute_anr_picks_latest_in_window(self):
        anr = AnrEvent(time_ms=1000, process="com.a", component="com.a/.S", reason="")
        events = [
            handled(100, "java.lang.IllegalArgumentException"),   # too old
            handled(900, "java.lang.IllegalStateException"),
            handled(950, "android.os.DeadObjectException"),
            handled(1100, "java.lang.NullPointerException"),      # after the ANR
            anr,
        ]
        assert attribute_anr(anr, events) == "android.os.DeadObjectException"

    def test_attribute_anr_none_when_silent(self):
        anr = AnrEvent(time_ms=1000, process="com.a", component="com.a/.S", reason="")
        assert attribute_anr(anr, [anr]) is None

    def test_reboot_window_bounds(self):
        reboot = RebootEvent(time_ms=20_000, reason="x")
        events = [
            handled(1_000, "a.b.TooOldException"),
            handled(6_000, "a.b.InWindowException"),
            fatal(19_999, ["a.b.AlsoInException"]),
            handled(20_001, "a.b.AfterException"),
            reboot,
        ]
        window = reboot_window_events(reboot, events)
        classes = reboot_culprit_classes(window)
        assert "a.b.InWindowException" in classes
        assert "a.b.AlsoInException" in classes
        assert "a.b.TooOldException" not in classes
        assert "a.b.AfterException" not in classes

    def test_culprits_include_cause_chain(self):
        window = [fatal(0, ["java.lang.RuntimeException", "java.lang.NullPointerException"])]
        classes = reboot_culprit_classes(window)
        assert set(classes) == {
            "java.lang.RuntimeException",
            "java.lang.NullPointerException",
        }

    def test_equal_blame(self):
        blame = equal_blame(["a", "b", "c"])
        assert blame == {"a": pytest.approx(1 / 3), "b": pytest.approx(1 / 3), "c": pytest.approx(1 / 3)}
        assert equal_blame([]) == {}

    @given(st.lists(st.text(min_size=1, max_size=6), unique=True, min_size=1, max_size=12))
    def test_equal_blame_sums_to_one(self, classes):
        assert sum(equal_blame(classes).values()) == pytest.approx(1.0)


class TestManifestationLattice:
    def test_order(self):
        assert (
            Manifestation.NO_EFFECT
            < Manifestation.HANG
            < Manifestation.CRASH
            < Manifestation.REBOOT
        )

    def test_record_severity_rules(self):
        record = ComponentRecord("com.a/com.a.M", ComponentKind.ACTIVITY, "com.a")
        assert record.manifestation() == Manifestation.NO_EFFECT
        record.anr_count = 1
        assert record.manifestation() == Manifestation.HANG
        record.fatal_root_classes["java.lang.NullPointerException"] = 1
        assert record.manifestation() == Manifestation.CRASH
        record.reboot_involved = True
        assert record.manifestation() == Manifestation.REBOOT

    def test_dominant_crash_class_tie_break(self):
        record = ComponentRecord("c", ComponentKind.ACTIVITY, "com.a")
        record.fatal_root_classes.update({"b.B": 2, "a.A": 2})
        assert record.dominant_crash_class() == "a.A"

    def test_exception_classes_dedup_per_class(self):
        record = ComponentRecord("c", ComponentKind.ACTIVITY, "com.a")
        record.fatal_root_classes["x.X"] = 5
        record.handled_classes["x.X"] = 3
        assert record.exception_classes()["x.X"] == 1


def make_collector():
    main = ComponentInfo(
        name=ComponentName("com.a", "com.a.Main"), kind=ComponentKind.ACTIVITY
    )
    svc = ComponentInfo(
        name=ComponentName("com.a", "com.a.Svc"), kind=ComponentKind.SERVICE
    )
    package = PackageInfo(
        package="com.a",
        label="A",
        category=AppCategory.HEALTH_FITNESS,
        origin=AppOrigin.THIRD_PARTY,
        components=[main, svc],
    )
    return StudyCollector([package])


class TestStudyCollector:
    def _log_crash(self, logcat, cls=NullPointerException, component_cls="com.a.Main"):
        exc = cls("boom")
        exc.with_frames([frame(component_cls, "onCreate", 1)], "activity")
        logcat.fatal_exception("com.a", 7, exc)

    def test_fold_crash(self):
        collector = make_collector()
        logcat = Logcat(Clock())
        self._log_crash(logcat)
        collector.fold(logcat.dump(), "com.a", "A")
        record = collector.record_for("com.a/com.a.Main")
        assert record.crash_count == 1
        assert record.manifestation() == Manifestation.CRASH
        assert collector.app_campaign[("com.a", "A")] == Manifestation.CRASH

    def test_fold_anr(self):
        collector = make_collector()
        logcat = Logcat(Clock())
        logcat.anr("com.a", 7, "com.a/.Svc", "blocked")
        collector.fold(logcat.dump(), "com.a", "C")
        record = collector.record_for("com.a/com.a.Svc")
        assert record.anr_count == 1
        assert collector.app_campaign[("com.a", "C")] == Manifestation.HANG

    def test_anr_cause_attribution(self):
        collector = make_collector()
        clock = Clock()
        logcat = Logcat(clock)
        exc = IllegalStateException("queue full")
        exc.frames = [frame("com.a.Svc", "onStartCommand", 9)]
        logcat.handled_exception("T", 7, exc, context="slow path")
        clock.sleep(500)
        logcat.anr("com.a", 7, "com.a/.Svc", "blocked")
        collector.fold(logcat.dump(), "com.a", "A")
        record = collector.record_for("com.a/com.a.Svc")
        assert record.anr_cause_classes == {"java.lang.IllegalStateException": 1}

    def test_fold_security_denial(self):
        collector = make_collector()
        logcat = Logcat(Clock())
        logcat.security_denial(0, "broadcasting protected action X to com.a/.Main")
        collector.fold(logcat.dump(), "com.a", "A")
        record = collector.record_for("com.a/com.a.Main")
        assert record.security_denials == 1
        assert record.manifestation() == Manifestation.NO_EFFECT

    def test_fold_reboot_marks_involved_components(self):
        collector = make_collector()
        clock = Clock()
        logcat = Logcat(clock)
        self._log_crash(logcat)
        clock.sleep(500)
        logcat.reboot_marker("escalation")
        collector.fold(logcat.dump(), "com.a", "D")
        record = collector.record_for("com.a/com.a.Main")
        assert record.reboot_involved
        assert record.manifestation() == Manifestation.REBOOT
        assert collector.app_campaign[("com.a", "D")] == Manifestation.REBOOT
        assert len(collector.reboots) == 1
        post_mortem = collector.reboots[0]
        assert post_mortem.campaign == "D"
        assert "java.lang.NullPointerException" in post_mortem.culprit_classes

    def test_old_crash_outside_reboot_window(self):
        collector = make_collector()
        clock = Clock()
        logcat = Logcat(clock)
        self._log_crash(logcat)
        clock.sleep(60_000)
        logcat.reboot_marker("later")
        collector.fold(logcat.dump(), "com.a", "D")
        record = collector.record_for("com.a/com.a.Main")
        assert not record.reboot_involved
        assert record.manifestation() == Manifestation.CRASH

    def test_most_severe_wins_per_app_campaign(self):
        collector = make_collector()
        logcat = Logcat(Clock())
        logcat.anr("com.a", 7, "com.a/.Svc", "blocked")
        self._log_crash(logcat)
        collector.fold(logcat.dump(), "com.a", "B")
        assert collector.app_campaign[("com.a", "B")] == Manifestation.CRASH

    def test_security_share(self):
        collector = make_collector()
        logcat = Logcat(Clock())
        logcat.security_denial(0, "broadcasting protected action X to com.a/.Main")
        logcat.security_denial(0, "broadcasting protected action Y to com.a/.Svc")
        self._log_crash(logcat)
        collector.fold(logcat.dump(), "com.a", "A")
        # 3 distinct (component, class) exceptions, 2 are SecurityException.
        assert collector.security_share() == pytest.approx(2 / 3)

    def test_unknown_component_events_ignored(self):
        collector = make_collector()
        logcat = Logcat(Clock())
        self._log_crash(logcat, component_cls="com.unknown.Elsewhere")
        collector.fold(logcat.dump(), "com.a", "A")
        for record in collector.component_records():
            assert record.crash_count == 0
        # Severity still noted at app level (the segment did crash).
        assert collector.app_campaign[("com.a", "A")] == Manifestation.CRASH

    def test_manifestation_counts(self):
        collector = make_collector()
        logcat = Logcat(Clock())
        self._log_crash(logcat)
        collector.fold(logcat.dump(), "com.a", "A")
        counts = collector.manifestation_counts()
        assert counts[Manifestation.CRASH] == 1
        assert counts[Manifestation.NO_EFFECT] == 1
