"""Tests for the ASCII report renderers (edge cases and formatting)."""

import pytest

from repro.analysis import report
from repro.analysis.figures import NO_EXCEPTION
from repro.analysis.manifest import StudyCollector
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo


class TestShorten:
    def test_strips_package(self):
        assert report._shorten("java.lang.NullPointerException") == "NullPointerException"

    def test_bare_name_unchanged(self):
        assert report._shorten("NoDots") == "NoDots"


class TestBarRendering:
    def test_sorted_by_share_then_name(self):
        lines = report._render_bar({"b.Bbb": 0.2, "a.Aaa": 0.2, "c.Ccc": 0.6})
        assert "Ccc" in lines[0]
        assert "Aaa" in lines[1]
        assert "Bbb" in lines[2]

    def test_zero_share_has_no_bar(self):
        lines = report._render_bar({"a.A": 0.0})
        assert lines[0].rstrip().endswith("0.0%")

    def test_small_share_gets_minimum_bar(self):
        lines = report._render_bar({"a.A": 0.001})
        assert lines[0].rstrip().endswith("#")


class TestTableRenderers:
    def test_table5_empty_rows(self):
        text = report.render_table5([])
        assert "TABLE V" in text

    def test_table4_totals_row(self):
        rows = [
            {"exception": "x.X", "crashes": 3, "share": 0.75},
            {"exception": "Others", "crashes": 1, "share": 0.25},
        ]
        text = report.render_table4(rows)
        assert "Total" in text and "4" in text

    def test_fig3b_handles_empty_bars(self):
        text = report.render_fig3b(
            {"No Effect": {}, "Hang": {}, "Crash": {}, "Reboot": {}},
            {"No Effect": 0, "Hang": 0, "Crash": 0, "Reboot": 0},
        )
        assert text.count("(none)") == 4

    def test_fig3b_renders_no_exception_label(self):
        text = report.render_fig3b(
            {
                "No Effect": {NO_EXCEPTION: 1.0},
                "Hang": {},
                "Crash": {},
                "Reboot": {},
            },
            {"No Effect": 5, "Hang": 0, "Crash": 0, "Reboot": 0},
        )
        assert "(no exception)" in text

    def test_reboot_postmortems_empty(self):
        collector = StudyCollector(
            [
                PackageInfo(
                    package="com.a",
                    label="A",
                    category=AppCategory.OTHER,
                    origin=AppOrigin.THIRD_PARTY,
                    components=[],
                )
            ]
        )
        assert report.render_reboot_postmortems(collector) == "No device reboots observed."
