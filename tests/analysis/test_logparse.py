"""Tests for the logcat parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.logparse import (
    AnrEvent,
    FatalExceptionEvent,
    HandledExceptionEvent,
    NativeSignalEvent,
    RebootEvent,
    SecurityDenialEvent,
    attach_handled_frames,
    parse_events,
    parse_lines,
)
from repro.android.clock import Clock
from repro.android.jtypes import (
    IllegalArgumentException,
    NullPointerException,
    RuntimeException,
    frame,
    sigabrt,
)
from repro.android.log import Logcat


@pytest.fixture()
def logcat():
    return Logcat(Clock())


def events_of(logcat, kind=None):
    events = parse_events(logcat.dump())
    if kind is None:
        return events
    return [e for e in events if isinstance(e, kind)]


class TestLineParsing:
    def test_round_trip_basic_line(self, logcat):
        logcat.i("MyTag", "hello world", pid=42)
        lines = list(parse_lines(logcat.dump()))
        assert len(lines) == 1
        assert lines[0].tag == "MyTag"
        assert lines[0].pid == 42
        assert lines[0].message == "hello world"
        assert lines[0].level == "I"

    def test_time_round_trip(self):
        clock = Clock()
        logcat = Logcat(clock)
        clock.sleep(3_723_456)  # 1h 2m 3.456s
        logcat.i("T", "x")
        line = next(parse_lines(logcat.dump()))
        assert line.time_ms == pytest.approx(3_723_456)

    def test_garbage_lines_skipped(self):
        assert list(parse_lines("not a log line\n\nanother one")) == []

    @given(st.text(max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_parser_total(self, text):
        parse_events(text)  # must never raise


class TestFatalBlocks:
    def test_simple_fatal(self, logcat):
        exc = NullPointerException("null deref")
        exc.frames = [frame("com.a.MainActivity", "onCreate", 10)]
        exc.with_frames(exc.frames, "activity")
        logcat.fatal_exception("com.a", 77, exc)
        events = events_of(logcat, FatalExceptionEvent)
        assert len(events) == 1
        event = events[0]
        assert event.process == "com.a"
        assert event.pid == 77
        assert event.exception_chain == ["java.lang.NullPointerException"]
        assert "com.a.MainActivity" in event.frames

    def test_cause_chain_order(self, logcat):
        inner = NullPointerException("inner")
        inner.frames = [frame("com.a.Helper", "work", 5)]
        outer = RuntimeException("Unable to start activity", cause=inner)
        outer.frames = [frame("android.app.ActivityThread", "performLaunchActivity", 2778)]
        logcat.fatal_exception("com.a", 5, outer)
        event = events_of(logcat, FatalExceptionEvent)[0]
        assert event.exception_chain == [
            "java.lang.RuntimeException",
            "java.lang.NullPointerException",
        ]
        assert event.outer_class == "java.lang.RuntimeException"
        assert event.root_class == "java.lang.NullPointerException"

    def test_two_fatal_blocks(self, logcat):
        for i in range(2):
            exc = NullPointerException(f"crash {i}")
            exc.with_frames([frame("com.a.Main", "onCreate", 1)], "activity")
            logcat.fatal_exception("com.a", 77, exc)
        assert len(events_of(logcat, FatalExceptionEvent)) == 2

    def test_fatal_messages_captured(self, logcat):
        exc = IllegalArgumentException("bad uri scheme")
        exc.with_frames([frame("com.a.Main", "onCreate", 1)], "activity")
        logcat.fatal_exception("com.a", 1, exc)
        event = events_of(logcat, FatalExceptionEvent)[0]
        assert event.messages[0] == "bad uri scheme"


class TestOtherEvents:
    def test_anr(self, logcat):
        logcat.anr("com.a", 5, "com.a/.Main", "blocked 9000ms")
        events = events_of(logcat, AnrEvent)
        assert len(events) == 1
        assert events[0].process == "com.a"
        assert events[0].component == "com.a/.Main"
        assert events[0].reason == "blocked 9000ms"

    def test_security_denial_with_component(self, logcat):
        logcat.security_denial(
            0, "broadcasting protected action X from com.qgj to com.a/.Main"
        )
        events = events_of(logcat, SecurityDenialEvent)
        assert len(events) == 1
        assert events[0].component == "com.a/com.a.Main"

    def test_security_denial_with_cmp_string(self, logcat):
        logcat.security_denial(
            0,
            "starting Intent { act=x cmp=com.a/.Main } from com.qgj not exported",
        )
        events = events_of(logcat, SecurityDenialEvent)
        assert events[0].component == "com.a/com.a.Main"

    def test_native_signal(self, logcat):
        logcat.native_crash(sigabrt("/system/lib/libsensorservice.so", "wedged"), pid=3)
        events = events_of(logcat, NativeSignalEvent)
        assert len(events) == 1
        assert events[0].signal == "SIGABRT"
        assert events[0].number == 6
        assert "libsensorservice" in events[0].process

    def test_reboot_marker(self, logcat):
        logcat.reboot_marker("aging collapse")
        events = events_of(logcat, RebootEvent)
        assert len(events) == 1
        assert events[0].reason == "aging collapse"

    def test_handled_exception(self, logcat):
        exc = IllegalArgumentException("rejected")
        exc.frames = [frame("com.a.SyncService", "validateIntent", 31)]
        logcat.handled_exception("AppTag", 9, exc, context="rejected intent")
        events = events_of(logcat, HandledExceptionEvent)
        assert len(events) == 1
        assert events[0].exception_class == "java.lang.IllegalArgumentException"

    def test_attach_handled_frames(self, logcat):
        exc = IllegalArgumentException("rejected")
        exc.frames = [frame("com.a.SyncService", "validateIntent", 31)]
        logcat.handled_exception("AppTag", 9, exc, context="rejected intent")
        text = logcat.dump()
        events = parse_events(text)
        attach_handled_frames(text, events)
        handled = [e for e in events if isinstance(e, HandledExceptionEvent)][0]
        assert "com.a.SyncService" in handled.frames

    def test_attach_frames_separates_same_class_blocks(self, logcat):
        for cls_name in ("com.a.One", "com.a.Two"):
            exc = IllegalArgumentException("rejected")
            exc.frames = [frame(cls_name, "validate", 1)]
            logcat.handled_exception("AppTag", 9, exc)
        text = logcat.dump()
        events = parse_events(text)
        attach_handled_frames(text, events)
        handled = [e for e in events if isinstance(e, HandledExceptionEvent)]
        assert handled[0].frames[0] == "com.a.One"
        assert handled[1].frames[0] == "com.a.Two"

    def test_security_exception_in_warning_not_double_counted(self, logcat):
        logcat.security_denial(0, "broadcasting protected action X to com.a/.Main")
        events = events_of(logcat)
        assert len([e for e in events if isinstance(e, SecurityDenialEvent)]) == 1
        assert len([e for e in events if isinstance(e, HandledExceptionEvent)]) == 0


class TestMixedStream:
    def test_interleaved_events(self, logcat):
        exc = NullPointerException("x")
        exc.with_frames([frame("com.a.Main", "onCreate", 1)], "activity")
        logcat.i("ActivityManager", "START u0 {Intent { act=a cmp=com.a/.Main }} from com.a")
        logcat.fatal_exception("com.a", 7, exc)
        logcat.anr("com.b", 8, "com.b/.Svc", "slow")
        logcat.reboot_marker("test")
        events = events_of(logcat)
        kinds = [type(e).__name__ for e in events]
        assert kinds == ["FatalExceptionEvent", "AnrEvent", "RebootEvent"]
