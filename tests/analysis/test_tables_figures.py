"""Tests for the table and figure builders over a synthetic collector."""

import pytest

from repro.analysis import figures, report, tables
from repro.analysis.manifest import Manifestation, StudyCollector
from repro.android.clock import Clock
from repro.android.component import ComponentInfo, ComponentKind
from repro.android.intent import ComponentName, launcher_filter
from repro.android.jtypes import (
    IllegalArgumentException,
    IllegalStateException,
    NullPointerException,
    frame,
)
from repro.android.log import Logcat
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.qgj.ui_fuzzer import UiInjectionResult


def make_package(pkg, category, origin, n_components=4):
    components = [
        ComponentInfo(
            name=ComponentName(pkg, f"{pkg}.C{i}"),
            kind=ComponentKind.ACTIVITY if i % 2 == 0 else ComponentKind.SERVICE,
            intent_filters=[launcher_filter()] if i == 0 else [],
        )
        for i in range(n_components)
    ]
    return PackageInfo(
        package=pkg, label=pkg, category=category, origin=origin, components=components
    )


@pytest.fixture()
def collector():
    packages = [
        make_package("com.health", AppCategory.HEALTH_FITNESS, AppOrigin.THIRD_PARTY),
        make_package("com.builtin", AppCategory.OTHER, AppOrigin.BUILT_IN),
        make_package("com.other", AppCategory.OTHER, AppOrigin.THIRD_PARTY),
    ]
    collector = StudyCollector(packages)
    clock = Clock()
    logcat = Logcat(clock)

    # Crash in the health app (campaign A).
    exc = NullPointerException("x")
    exc.with_frames([frame("com.health.C1", "onStartCommand", 1)], "service")
    logcat.fatal_exception("com.health", 1, exc)
    collector.fold(logcat.dump(), "com.health", "A")
    logcat.clear()

    # Crash in the built-in app (campaign B).
    exc = IllegalStateException("y")
    exc.with_frames([frame("com.builtin.C0", "onCreate", 2)], "activity")
    logcat.fatal_exception("com.builtin", 2, exc)
    collector.fold(logcat.dump(), "com.builtin", "B")
    logcat.clear()

    # Handled exception in the other app (no effect, campaign B).
    handled = IllegalArgumentException("rejected")
    handled.frames = [frame("com.other.C2", "validateIntent", 3)]
    logcat.handled_exception("T", 3, handled)
    collector.fold(logcat.dump(), "com.other", "B")
    logcat.clear()

    # ANR in the other app (campaign C).
    logcat.anr("com.other", 3, "com.other/.C1", "blocked")
    collector.fold(logcat.dump(), "com.other", "C")
    return collector


class TestFig2:
    def test_distribution_excludes_security(self, collector):
        data = figures.fig2_exception_distribution(collector)
        assert "java.lang.SecurityException" not in data["overall"]
        assert data["overall"]["java.lang.NullPointerException"] == 1
        assert data["overall"]["java.lang.IllegalArgumentException"] == 1

    def test_grouped_by_kind(self, collector):
        data = figures.fig2_exception_distribution(collector)
        assert data["by_kind"]["service"]["java.lang.NullPointerException"] == 1
        assert data["by_kind"]["activity"]["java.lang.IllegalStateException"] == 1

    def test_render(self, collector):
        text = report.render_fig2(figures.fig2_exception_distribution(collector))
        assert "SecurityException share" in text


class TestFig3:
    def test_manifestation_counts(self, collector):
        data = figures.fig3a_manifestations(collector)
        assert data["total_components"] == 12
        assert data["counts"]["Crash"] == 2
        assert data["counts"]["Hang"] == 1
        assert data["counts"]["No Effect"] == 9
        assert sum(data["counts"].values()) == 12

    def test_shares_sum_to_one(self, collector):
        data = figures.fig3a_manifestations(collector)
        assert sum(data["shares"].values()) == pytest.approx(1.0)

    def test_rootcause_by_manifestation(self, collector):
        data = figures.fig3b_rootcause_by_manifestation(collector)
        assert data["Crash"]["java.lang.NullPointerException"] == pytest.approx(0.5)
        assert data["Crash"]["java.lang.IllegalStateException"] == pytest.approx(0.5)
        # The silent ANR shows up as (no exception).
        assert data["Hang"][figures.NO_EXCEPTION] == pytest.approx(1.0)
        # 8 silent no-effect components + 1 with a handled IAE.
        assert data["No Effect"][figures.NO_EXCEPTION] == pytest.approx(8 / 9)

    def test_each_bar_normalised(self, collector):
        data = figures.fig3b_rootcause_by_manifestation(collector)
        for label, shares in data.items():
            if shares:
                assert sum(shares.values()) == pytest.approx(1.0), label

    def test_render(self, collector):
        text = report.render_fig3b(
            figures.fig3b_rootcause_by_manifestation(collector),
            figures.fig3b_base_counts(collector),
        )
        assert "Crash (n=2 components)" in text


class TestFig4:
    def test_app_crash_rates(self, collector):
        data = figures.fig4_crashes_by_app_class(collector)
        assert data["app_crash_rate"]["Built-in"] == pytest.approx(1.0)   # 1/1
        assert data["app_crash_rate"]["Third Party"] == pytest.approx(0.5)  # 1/2

    def test_class_shares_over_both_classes_together(self, collector):
        data = figures.fig4_crashes_by_app_class(collector)
        total = sum(
            share for shares in data["class_shares"].values() for share in shares.values()
        )
        assert total == pytest.approx(1.0)

    def test_render(self, collector):
        text = report.render_fig4(figures.fig4_crashes_by_app_class(collector))
        assert "apps crashed" in text


class TestTables:
    def test_table2(self, collector):
        packages = [
            make_package("com.x", AppCategory.HEALTH_FITNESS, AppOrigin.BUILT_IN, 3)
        ]
        rows = tables.table2_population(packages)
        assert rows[0]["apps"] == 1
        assert rows[0]["activities"] == 2
        assert rows[0]["services"] == 1
        assert rows[-1]["category"] == "Total"

    def test_table3_shares(self, collector):
        data = tables.table3_behaviors(collector)
        # Campaign A: the only health app crashed -> 100% crash for health.
        assert data["A"]["Crash"]["Health/Fitness"] == pytest.approx(1.0)
        assert data["A"]["Crash"]["Not Health/Fitness"] == pytest.approx(0.0)
        # Campaign C: 1 of 2 not-health apps hung.
        assert data["C"]["Hang"]["Not Health/Fitness"] == pytest.approx(0.5)

    def test_table3_rows_sum_to_one_per_category(self, collector):
        data = tables.table3_behaviors(collector)
        for campaign, per_manifestation in data.items():
            for category in ("Health/Fitness", "Not Health/Fitness"):
                total = sum(
                    per_manifestation[m.label][category] for m in Manifestation
                )
                assert total == pytest.approx(1.0), (campaign, category)

    def test_table4_per_component_dedup(self, collector):
        rows = tables.table4_phone_crashes(collector)
        total = sum(row["crashes"] for row in rows)
        assert total == 2  # two crash components, one class each
        assert rows[-1]["exception"] == "Others" or len(rows) >= 1

    def test_table5(self):
        results = {
            "semi-valid": UiInjectionResult(
                mode="semi-valid", injected_events=1000, tool_exceptions=10,
                app_exceptions=26, crashes=1,
            ),
            "random": UiInjectionResult(
                mode="random", injected_events=1000, tool_exceptions=15,
                app_exceptions=0, crashes=0,
            ),
        }
        rows = tables.table5_ui(results)
        assert rows[0]["experiment"] == "semi-valid"
        assert rows[0]["exceptions_raised"] == 36
        assert rows[0]["exception_rate"] == pytest.approx(0.036)
        assert rows[1]["crashes"] == 0
        text = report.render_table5(rows)
        assert "semi-valid" in text

    def test_table1_includes_measured_volumes(self):
        from repro.qgj.campaigns import Campaign
        from repro.qgj.results import AppRunResult, ComponentRunResult, FuzzSummary

        summary = FuzzSummary(device="w")
        app = AppRunResult(package="com.a", campaign=Campaign.A)
        app.components.append(
            ComponentRunResult(
                component="com.a/.M", kind=ComponentKind.ACTIVITY,
                campaign=Campaign.A, sent=42,
            )
        )
        summary.apps.append(app)
        rows = tables.table1_campaigns(summary)
        row_a = next(r for r in rows if r["campaign"] == Campaign.A)
        assert row_a["intents_sent"] == 42
        text = report.render_table1(rows)
        assert "measured this run: 42" in text
