"""Tests for crash triage, bucketing, and intent minimisation."""

import pytest

from repro.apps.catalog import build_wear_corpus
from repro.apps.builtin import GOOGLE_FIT_PACKAGE
from repro.qgj.campaigns import Campaign, FuzzIntent
from repro.qgj.fuzzer import FuzzConfig
from repro.qgj.triage import (
    CrashProber,
    CrashSignature,
    minimize_intent,
    triage_app,
)
from repro.wear.complications import ACTION_ALL_APP
from repro.wear.device import WearDevice


@pytest.fixture()
def watch():
    corpus = build_wear_corpus(seed=2018)
    device = WearDevice("triage-watch")
    corpus.install(device)
    return device


def fit_allapp_info(watch):
    package = watch.packages.get_package(GOOGLE_FIT_PACKAGE)
    return next(
        c for c in package.components
        if c.name.simple_class == "ComplicationsAllAppActivity"
    )


class TestProber:
    def test_crashing_intent_yields_signature(self, watch):
        info = fit_allapp_info(watch)
        signature = CrashProber(watch).signature_of(
            info, FuzzIntent(action=ACTION_ALL_APP, data=None)
        )
        assert signature is not None
        assert signature.exception == "java.lang.IllegalArgumentException"
        assert signature.component == info.name.flatten_to_string()

    def test_benign_intent_yields_none(self, watch):
        info = fit_allapp_info(watch)
        signature = CrashProber(watch).signature_of(
            info, FuzzIntent(action="android.intent.action.VIEW", data=None)
        )
        assert signature is None

    def test_probe_leaves_no_residue(self, watch):
        info = fit_allapp_info(watch)
        prober = CrashProber(watch)
        for _ in range(6):  # would crash-loop if state leaked
            prober.signature_of(info, FuzzIntent(action=ACTION_ALL_APP, data=None))
        assert watch.boot_count == 1
        assert watch.system_server.aging.score() == 0.0
        assert watch.processes.get(GOOGLE_FIT_PACKAGE) is None

    def test_security_blocked_probe_is_none(self, watch):
        info = fit_allapp_info(watch)
        signature = CrashProber(watch).signature_of(
            info, FuzzIntent(action="android.intent.action.BATTERY_LOW", data=None)
        )
        assert signature is None

    def test_signatures_are_stable(self, watch):
        info = fit_allapp_info(watch)
        prober = CrashProber(watch)
        a = prober.signature_of(info, FuzzIntent(action=ACTION_ALL_APP, data=None))
        b = prober.signature_of(info, FuzzIntent(action=ACTION_ALL_APP, data="tel:123"))
        assert a == b  # same defect, different triggering intents


class TestMinimisation:
    def test_strips_irrelevant_fields(self, watch):
        info = fit_allapp_info(watch)
        prober = CrashProber(watch)
        noisy = FuzzIntent(
            action=ACTION_ALL_APP,
            data="https://foo.com/",
            extras=(("extra_0", 42), ("extra_1", "junk")),
        )
        signature = prober.signature_of(info, noisy)
        assert signature is not None
        minimal = minimize_intent(prober, info, noisy, signature)
        # The defect needs only the action; everything else is noise.
        assert minimal.action == ACTION_ALL_APP
        assert minimal.data is None
        assert minimal.extras == ()
        # And the minimal intent still reproduces.
        assert prober.signature_of(info, minimal) == signature

    def test_keeps_fields_the_crash_needs(self, watch):
        # Motorola Body's NPE defect triggers on MISSING_DATA: the *absence*
        # of data is essential, so minimisation must not add anything and
        # must keep the action (dropping it changes the trigger).
        package = watch.packages.get_package("com.motorola.omega.body")
        from repro.apps.behavior import Outcome

        corpus_info = next(
            c
            for c in package.components
            if c.behavior_key and c.behavior_key.startswith("gen.")
        )
        prober = CrashProber(watch)
        intent = FuzzIntent(action="android.intent.action.VIEW", data=None)
        signature = prober.signature_of(corpus_info, intent)
        if signature is None:
            pytest.skip("seeded defect on this component is not MISSING_DATA")
        minimal = minimize_intent(prober, corpus_info, intent, signature)
        assert prober.signature_of(corpus_info, minimal) == signature


class TestTriageApp:
    def test_buckets_deduplicate(self, watch):
        report = triage_app(
            watch,
            GOOGLE_FIT_PACKAGE,
            campaigns=(Campaign.B,),
            config=FuzzConfig(strides={Campaign.B: 1}),
        )
        assert report.intents_probed > 0
        # Campaign B hits the ALL_APP defect through one signature bucket.
        fit_buckets = [
            b for b in report.buckets if "ComplicationsAllApp" in b.signature.component
        ]
        assert len(fit_buckets) == 1
        assert fit_buckets[0].count >= 1

    def test_minimized_reproducer_rendered(self, watch):
        report = triage_app(
            watch,
            GOOGLE_FIT_PACKAGE,
            campaigns=(Campaign.D,),
            config=FuzzConfig(strides={Campaign.D: 1}),
        )
        text = report.render()
        assert "CRASH TRIAGE" in text
        assert "repro: am start" in text
        bucket = next(
            b for b in report.buckets if "ComplicationsAllApp" in b.signature.component
        )
        # Campaign D found it with data+extras; minimisation strips both.
        assert bucket.minimized is not None
        assert bucket.minimized.extras == ()

    def test_unknown_package_rejected(self, watch):
        with pytest.raises(ValueError):
            triage_app(watch, "com.nope")

    def test_triage_never_reboots_the_device(self, watch):
        # Even the reboot-scenario app is safe to triage: probes reset the
        # aging state, so the escalation never fires.
        from repro.apps.builtin import AMBIENT_BINDER_PACKAGE

        report = triage_app(
            watch,
            AMBIENT_BINDER_PACKAGE,
            campaigns=(Campaign.D,),
            config=FuzzConfig(strides={Campaign.D: 2}),
            minimize=False,
        )
        assert watch.boot_count == 1
        assert any(
            "SettingsActivity" in b.signature.component for b in report.buckets
        )
