"""Tests for the fuzzer library and the QGJ Mobile/Wear protocol."""

import pytest

from repro.android.component import ComponentKind
from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import (
    QGJ_WEAR_PACKAGE,
    FuzzConfig,
    FuzzerLibrary,
    QUICK_CONFIG,
)
from repro.qgj.master import deploy
from repro.wear.device import PhoneDevice, WearDevice, pair


@pytest.fixture(scope="module")
def corpus():
    return build_wear_corpus(seed=2018)


@pytest.fixture()
def watch(corpus):
    device = WearDevice("watch")
    # Corpora are reusable across devices; install a fresh device each test.
    fresh = build_wear_corpus(seed=2018)
    fresh.install(device)
    return device


class TestFuzzConfig:
    def test_defaults(self):
        config = FuzzConfig()
        assert config.stride_for(Campaign.A) == 1

    def test_per_campaign_override(self):
        config = FuzzConfig(stride=5, strides={Campaign.B: 1})
        assert config.stride_for(Campaign.B) == 1
        assert config.stride_for(Campaign.A) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(stride=0)
        with pytest.raises(ValueError):
            FuzzConfig(strides={Campaign.A: 0})
        with pytest.raises(ValueError):
            FuzzConfig(max_intents_per_component=0)


class TestFuzzComponent:
    def test_counts_add_up(self, watch):
        info = watch.packages.get_package("com.runmate.wear").activities()[1]
        fuzzer = FuzzerLibrary(watch)
        result = fuzzer.fuzz_component(info, Campaign.B, FuzzConfig())
        assert result.sent == 141  # |Action| (129) + |URI types| (12)
        assert (
            result.delivered + result.security_exceptions + result.not_found
            == result.sent
        )

    def test_security_exceptions_counted(self, watch):
        info = watch.packages.get_package("com.runmate.wear").activities()[1]
        fuzzer = FuzzerLibrary(watch)
        result = fuzzer.fuzz_component(info, Campaign.B, FuzzConfig())
        # Protected actions are in campaign B's action list.
        assert result.security_exceptions > 30

    def test_max_intents_cap(self, watch):
        info = watch.packages.get_package("com.runmate.wear").activities()[1]
        fuzzer = FuzzerLibrary(watch)
        result = fuzzer.fuzz_component(
            info, Campaign.A, FuzzConfig(max_intents_per_component=10)
        )
        assert result.sent == 10

    def test_pacing_advances_virtual_clock(self, watch):
        info = watch.packages.get_package("com.runmate.wear").activities()[1]
        fuzzer = FuzzerLibrary(watch)
        before = watch.clock.now_ms()
        result = fuzzer.fuzz_component(
            info, Campaign.B, FuzzConfig(max_intents_per_component=100)
        )
        elapsed = watch.clock.now_ms() - before
        # 100 intents x 100ms + one 250ms batch pause (+ handler costs).
        assert elapsed >= 100 * 100 + 250

    def test_not_exported_component_yields_security(self, watch):
        hidden = [
            c
            for c in watch.packages.all_components()
            if not c.exported
        ]
        assert hidden, "the corpus always contains not-exported components"
        fuzzer = FuzzerLibrary(watch)
        result = fuzzer.fuzz_component(
            hidden[0], Campaign.B, FuzzConfig(max_intents_per_component=5)
        )
        assert result.security_exceptions == result.sent


class TestFuzzApp:
    def test_covers_activities_and_services(self, watch):
        fuzzer = FuzzerLibrary(watch)
        result = fuzzer.fuzz_app(
            "com.runmate.wear", Campaign.B, FuzzConfig(max_intents_per_component=3)
        )
        package = watch.packages.get_package("com.runmate.wear")
        assert len(result.components) == len(package.components)
        kinds = {c.kind for c in result.components}
        assert kinds == {ComponentKind.ACTIVITY, ComponentKind.SERVICE}

    def test_unknown_package_rejected(self, watch):
        with pytest.raises(ValueError):
            FuzzerLibrary(watch).fuzz_app("com.nope", Campaign.A)

    def test_fuzz_device_excludes_qgj_itself(self, watch):
        fuzzer = FuzzerLibrary(watch)
        watch.packages.install(
            __import__("repro.qgj.master", fromlist=["_qgj_package"])._qgj_package(
                QGJ_WEAR_PACKAGE, "QGJ Wear"
            )
        )
        summary = fuzzer.fuzz_device(
            FuzzConfig(max_intents_per_component=1),
            campaigns=[Campaign.B],
            packages=None,
        )
        assert all(app.package != QGJ_WEAR_PACKAGE for app in summary.apps)

    def test_summary_render(self, watch):
        fuzzer = FuzzerLibrary(watch)
        summary = fuzzer.fuzz_device(
            FuzzConfig(max_intents_per_component=2),
            campaigns=[Campaign.B],
            packages=["com.runmate.wear"],
        )
        text = summary.render()
        assert "intents sent" in text
        assert summary.total_sent > 0

    def test_wire_format_round_trip(self, watch):
        import json

        fuzzer = FuzzerLibrary(watch)
        summary = fuzzer.fuzz_device(
            FuzzConfig(max_intents_per_component=2),
            campaigns=[Campaign.B],
            packages=["com.runmate.wear"],
        )
        wire = summary.to_wire()
        assert json.loads(json.dumps(wire)) == wire


class TestMasterProtocol:
    @pytest.fixture()
    def deployed(self):
        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("watch")
        phone = PhoneDevice("phone")
        pair(phone, watch)
        corpus.install(watch)
        mobile, wear = deploy(phone, watch)
        return phone, watch, mobile, wear

    def test_component_inventory(self, deployed):
        _, watch, mobile, _ = deployed
        mobile.refresh_components()
        # 912 corpus components; QGJ's own packages are filtered out.
        assert len(mobile.component_listing) == 912
        assert "com.pulsetrack.wear" in mobile.packages_on_watch()

    def test_fuzz_round_trip(self, deployed):
        _, watch, mobile, wear = deployed
        mobile.refresh_components()
        summary = mobile.start_fuzz(
            ["com.runmate.wear"],
            campaigns="B",
            config=FuzzConfig(max_intents_per_component=2),
        )
        assert summary["total_sent"] > 0
        assert "QGJ run against watch" in mobile.render_summary()
        assert wear.last_summary is not None

    def test_disconnected_link_raises(self, deployed):
        phone, watch, mobile, _ = deployed
        phone.node.link.disconnect()
        with pytest.raises(ConnectionError):
            mobile.refresh_components()

    def test_qgj_apps_installed(self, deployed):
        phone, watch, _, _ = deployed
        assert watch.packages.is_installed("com.qgj.wear")
        assert phone.packages.is_installed("com.qgj.mobile")

    def test_stale_summary_not_returned_when_run_fails_to_report(self, deployed):
        """A run that never reports must raise, not echo the previous summary.

        Regression: ``start_fuzz`` used to leave ``last_summary`` from the
        prior run in place, so a silent wearable-side failure returned stale
        results as if they were fresh.
        """
        _, watch, mobile, wear = deployed
        config = FuzzConfig(max_intents_per_component=2)
        first = mobile.start_fuzz(["com.runmate.wear"], campaigns="B", config=config)
        assert first["total_sent"] > 0
        # The wearable stops shipping summaries back over the DataAPI.
        wear._data_client.put_data_item = lambda path, data: None
        with pytest.raises(RuntimeError, match="no summary received"):
            mobile.start_fuzz(["com.runmate.wear"], campaigns="B", config=config)
        assert mobile.last_summary is None
