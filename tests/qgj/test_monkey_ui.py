"""Tests for the Monkey event generator and QGJ-UI."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.catalog import build_wear_corpus, emulator_packages
from repro.qgj.monkey import (
    EVENT_KINDS,
    EVENT_SCHEMAS,
    Monkey,
    MonkeyEvent,
    format_event,
    parse_monkey_log,
)
from repro.qgj.ui_fuzzer import (
    EventMutator,
    MutationMode,
    QGJUi,
    event_to_shell,
    render_table5,
)
from repro.wear.device import WearDevice


@pytest.fixture()
def emulator():
    corpus = build_wear_corpus(seed=2018)
    device = WearDevice("emu", is_emulator=True)
    selection = emulator_packages(corpus)
    corpus.registry.install(device.activity_manager)
    from repro.apps.builtin import google_fit_spec_key
    from repro.apps.health import register_health_factories

    register_health_factories(device.activity_manager)
    google_fit_spec_key(corpus.registry, device.activity_manager)
    for package in selection:
        device.install(package)
    return device


class TestMonkey:
    def test_generates_requested_count(self, emulator):
        events = Monkey(emulator, seed=1).generate(500)
        assert len(events) == 500

    def test_equal_percentages_cover_all_kinds(self, emulator):
        events = Monkey(emulator, seed=1).generate(2000)
        counts = {kind: 0 for kind in EVENT_KINDS}
        for event in events:
            counts[event.kind] += 1
        for kind, count in counts.items():
            assert count > 100, f"{kind} underrepresented: {count}"

    def test_custom_percentages(self, emulator):
        events = Monkey(emulator, seed=1, percentages={"touch": 1.0}).generate(50)
        assert all(event.kind == "touch" for event in events)

    def test_unknown_kind_rejected(self, emulator):
        with pytest.raises(ValueError):
            Monkey(emulator, percentages={"frobnicate": 1.0})

    def test_negative_count_rejected(self, emulator):
        with pytest.raises(ValueError):
            Monkey(emulator).generate(-1)

    def test_touches_are_on_screen(self, emulator):
        events = Monkey(emulator, seed=1).generate(1000)
        for event in events:
            if event.kind == "touch":
                assert 0 <= event.args["x"] < emulator.screen_width
                assert 0 <= event.args["y"] < emulator.screen_height

    def test_appswitch_uses_installed_launchers(self, emulator):
        launchers = {
            c.name.flatten_to_short_string()
            for c in emulator.packages.launcher_activities()
        }
        events = Monkey(emulator, seed=1).generate(1000)
        for event in events:
            if event.kind == "appswitch":
                assert event.args["component"] in launchers

    def test_deterministic(self, emulator):
        a = Monkey(emulator, seed=9).generate(100)
        b = Monkey(emulator, seed=9).generate(100)
        assert [e.args for e in a] == [e.args for e in b]

    def test_log_round_trip(self, emulator):
        monkey = Monkey(emulator, seed=4)
        events = monkey.generate(300)
        text = "\n".join(format_event(e) for e in events)
        parsed = parse_monkey_log(text)
        assert len(parsed) == len(events)
        for original, recovered in zip(events, parsed):
            assert recovered.kind == original.kind
            assert recovered.args == original.args

    def test_run_produces_parseable_log_with_banner(self, emulator):
        text = Monkey(emulator, seed=4).run(50)
        assert text.startswith(":Monkey:")
        assert "// Monkey finished" in text
        assert len(parse_monkey_log(text)) == 50

    def test_parser_skips_garbage(self):
        garbage = "random noise\n:NotAnEvent: x\n\n:Sending Touch (ACTION_DOWN): 0:(1.0,2.0)"
        events = parse_monkey_log(garbage)
        assert len(events) == 1
        assert events[0].kind == "touch"

    @given(st.text(max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_parser_total_on_arbitrary_text(self, text):
        parse_monkey_log(text)  # must never raise


class TestEventToShell:
    def test_all_kinds_lower(self):
        samples = {
            "touch": {"x": 1.0, "y": 2.0},
            "swipe": {"x1": 0.0, "y1": 0.0, "x2": 5.0, "y2": 5.0},
            "trackball": {"dx": 1.0, "dy": -1.0},
            "keyevent_nav": {"code": 4},
            "keyevent_sys": {"code": 3},
            "text": {"text": "hi"},
            "appswitch": {"component": "com.a/.Main"},
            "permission": {"package": "com.a", "permission": "android.permission.VIBRATE"},
        }
        for kind, args in samples.items():
            line = event_to_shell(MonkeyEvent(kind, args))
            assert line.split()[0] in ("input", "am", "pm")

    def test_paper_example_random_tap(self):
        line = event_to_shell(MonkeyEvent("touch", {"x": -8803.85, "y": 4668.17}))
        assert line == "input tap -8803.85 4668.17"


class TestMutator:
    def _events(self, emulator, n=400):
        return Monkey(emulator, seed=2).generate(n)

    def test_semi_valid_swaps_within_observed_pool(self, emulator):
        events = self._events(emulator)
        mutator = EventMutator(events, seed=1)
        observed_x = {e.args["x"] for e in events if e.kind == "touch"}
        for event in events:
            if event.kind != "touch":
                continue
            mutant = mutator.mutate(event, MutationMode.SEMI_VALID)
            assert mutant.args["x"] in observed_x
            assert mutant.args["y"] in {e.args["y"] for e in events if e.kind == "touch"}

    def test_random_respects_slot_types(self, emulator):
        events = self._events(emulator)
        mutator = EventMutator(events, seed=1)
        for event in events[:100]:
            mutant = mutator.mutate(event, MutationMode.RANDOM)
            for slot, slot_type in event.schema():
                assert isinstance(mutant.args[slot], slot_type), (event.kind, slot)

    def test_mutation_does_not_alias_original(self, emulator):
        events = self._events(emulator, 10)
        mutator = EventMutator(events, seed=1)
        original = dict(events[0].args)
        mutator.mutate(events[0], MutationMode.RANDOM)
        assert events[0].args == original

    def test_unknown_mode_rejected(self, emulator):
        events = self._events(emulator, 5)
        with pytest.raises(ValueError):
            EventMutator(events).mutate(events[0], "weird")


class TestQGJUi:
    def test_small_run_shapes(self, emulator):
        results = QGJUi(emulator, seed=3).run(1200)
        semi = results[MutationMode.SEMI_VALID]
        rand = results[MutationMode.RANDOM]
        assert semi.injected_events == rand.injected_events == 1200
        # Table V's shape: semi-valid raises clearly more exceptions;
        # random injections never crash anything.
        assert semi.exceptions_raised > rand.exceptions_raised
        assert rand.crashes == 0
        assert semi.crash_rate() < 0.01  # well under 1%

    def test_no_reboot_during_ui_fuzzing(self, emulator):
        QGJUi(emulator, seed=3).run(800)
        assert emulator.boot_count == 1

    def test_render_table5(self, emulator):
        results = QGJUi(emulator, seed=3).run(300)
        text = render_table5(results)
        assert "semi-valid" in text and "random" in text
