"""Tests for the Fuzz Intent Campaign generators (Table I)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.android.actions import (
    ALL_ACTIONS,
    URI_TYPES,
    is_compatible,
    is_known_action,
    is_known_scheme,
    valid_pairs,
)
from repro.android.intent import ComponentName
from repro.android.uri import Uri
from repro.qgj.campaigns import (
    CAMPAIGN_C_ROUNDS,
    Campaign,
    campaign_size,
    generate,
    table1_rows,
)

CMP = ComponentName("com.a", "com.a.Main")


class TestActionRegistry:
    def test_over_100_actions(self):
        # "The fuzzer has over 100 different Actions ... configured."
        assert len(ALL_ACTIONS) > 100
        assert len(set(ALL_ACTIONS)) == len(ALL_ACTIONS)

    def test_exactly_12_uri_types(self):
        assert len(URI_TYPES) == 12

    def test_compatibility_is_consistent(self):
        from repro.android.actions import URI_SAMPLES, compatible_schemes

        for action in ALL_ACTIONS:
            for scheme in compatible_schemes(action):
                uri = Uri.parse(URI_SAMPLES[scheme])
                assert is_compatible(action, uri)

    def test_none_data_compatible_with_everything(self):
        assert is_compatible("android.intent.action.VIEW", None)
        assert is_compatible(None, None)

    def test_valid_pairs_cover_every_action(self):
        actions = {action for action, _ in valid_pairs()}
        assert actions == set(ALL_ACTIONS)

    def test_valid_pairs_really_are_valid(self):
        for action, data in valid_pairs():
            if data:
                assert is_compatible(action, Uri.parse(data)), (action, data)


class TestGenerators:
    def test_campaign_a_structure(self):
        intents = list(generate(Campaign.A, component=CMP))
        assert len(intents) == len(ALL_ACTIONS) * len(URI_TYPES)
        for fi in intents:
            assert is_known_action(fi.action)
            assert is_known_scheme(Uri.parse(fi.data).scheme)
            assert not fi.extras

    def test_campaign_a_contains_invalid_combinations(self):
        intents = list(generate(Campaign.A, component=CMP))
        invalid = [
            fi for fi in intents if not is_compatible(fi.action, Uri.parse(fi.data))
        ]
        assert invalid, "semi-valid campaign must contain invalid pairs"

    def test_campaign_b_one_field_only(self):
        intents = list(generate(Campaign.B, component=CMP))
        assert len(intents) == len(ALL_ACTIONS) + len(URI_TYPES)
        for fi in intents:
            assert (fi.action is None) != (fi.data is None)
            assert not fi.extras

    def test_campaign_c_one_side_garbage(self):
        intents = list(generate(Campaign.C, component=CMP))
        assert len(intents) == CAMPAIGN_C_ROUNDS * (len(ALL_ACTIONS) + len(URI_TYPES))
        for fi in intents:
            action_known = is_known_action(fi.action)
            data_known = is_known_scheme(Uri.parse(fi.data).scheme) if fi.data else False
            assert action_known or data_known
            assert fi.action is not None and fi.data is not None

    def test_campaign_d_valid_pairs_with_extras(self):
        intents = list(generate(Campaign.D, component=CMP))
        for fi in intents:
            assert is_known_action(fi.action)
            if fi.data:
                assert is_compatible(fi.action, Uri.parse(fi.data))
            assert 1 <= len(fi.extras) <= 5

    def test_deterministic_per_component_and_seed(self):
        a = [fi for fi in generate(Campaign.D, seed=1, component=CMP)]
        b = [fi for fi in generate(Campaign.D, seed=1, component=CMP)]
        assert a == b

    def test_different_components_get_different_randoms(self):
        other = ComponentName("com.b", "com.b.Main")
        a = list(generate(Campaign.C, seed=1, component=CMP))
        b = list(generate(Campaign.C, seed=1, component=other))
        assert a != b

    def test_stride_subsamples(self):
        full = list(generate(Campaign.B, component=CMP))
        half = list(generate(Campaign.B, component=CMP, stride=2))
        assert len(half) == (len(full) + 1) // 2
        assert half == full[::2]

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            list(generate(Campaign.B, component=CMP, stride=0))

    def test_campaign_a_stride_12_keeps_every_action(self):
        # The quick config's structural guarantee.
        intents = list(generate(Campaign.A, component=CMP, stride=12))
        assert {fi.action for fi in intents} == set(ALL_ACTIONS)

    def test_campaign_c_stride_2_keeps_every_valid_action(self):
        intents = list(generate(Campaign.C, component=CMP, stride=2))
        valid_actions = {fi.action for fi in intents if is_known_action(fi.action)}
        assert valid_actions == set(ALL_ACTIONS)

    @given(st.sampled_from(list(Campaign)), st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_campaign_size_matches_generator(self, campaign, stride):
        generated = sum(1 for _ in generate(campaign, component=CMP, stride=stride))
        assert generated == campaign_size(campaign, stride)

    def test_build_sets_component(self):
        fi = next(iter(generate(Campaign.A, component=CMP)))
        intent = fi.build(CMP)
        assert intent.component == CMP
        assert intent.is_explicit()

    def test_extras_reach_the_intent(self):
        for fi in generate(Campaign.D, component=CMP):
            intent = fi.build(CMP)
            assert len(intent.extras) == len(fi.extras)
            break


class TestTable1:
    def test_rows_cover_all_campaigns(self):
        rows = table1_rows()
        assert [row["campaign"] for row in rows] == list(Campaign)
        for row in rows:
            assert row["intents_per_component"] > 0
            assert "cmp=some.component.name" in row["example"]

    def test_volume_ordering_matches_paper(self):
        # Paper: A (~1M) >> C (~300K) > D (~250K) > B (~100K).
        sizes = {row["campaign"]: row["intents_per_component"] for row in table1_rows()}
        assert sizes[Campaign.A] > sizes[Campaign.C] > sizes[Campaign.D] > sizes[Campaign.B]

    def test_paper_scale_total_volume(self):
        # ~2261 intents x 912 components ~ 2M, the paper's "over a million
        # and half intents ... to over 900 components".
        per_component = sum(campaign_size(c) for c in Campaign)
        assert 1_500_000 < per_component * 912 < 2_500_000
