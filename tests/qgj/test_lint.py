"""Tests for QGJ-Lint, the static robustness inspection."""

import pytest

from repro.android.component import ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.intent import ComponentName, IntentFilter, launcher_filter
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.apps.catalog import build_wear_corpus
from repro.qgj.lint import (
    LintFinding,
    Severity,
    correlate,
    lint_device,
    lint_package,
    render_report,
)
from repro.wear.device import WearDevice


def package_with(components, origin=AppOrigin.THIRD_PARTY, **kwargs):
    return PackageInfo(
        package="com.a",
        label="A",
        category=AppCategory.OTHER,
        origin=origin,
        components=components,
        **kwargs,
    )


def component(name="com.a.Main", kind=ComponentKind.ACTIVITY, **kwargs):
    return ComponentInfo(name=ComponentName("com.a", name), kind=kind, **kwargs)


class TestChecks:
    def test_exported_unguarded_flagged(self):
        findings = lint_package(package_with([component(exported=True)]))
        checks = [f.check for f in findings]
        assert "exported-unguarded" in checks

    def test_guarded_component_clean(self):
        findings = lint_package(
            package_with(
                [component(exported=True, permission="android.permission.BODY_SENSORS")]
            )
        )
        assert all(f.check != "exported-unguarded" for f in findings)

    def test_launcher_exempt_from_exported_check(self):
        findings = lint_package(
            package_with([component(intent_filters=[launcher_filter()])])
        )
        assert all(f.check != "exported-unguarded" for f in findings)

    def test_large_attack_surface(self):
        components = [component(name=f"com.a.C{i}") for i in range(25)]
        findings = lint_package(package_with(components))
        assert any(f.check == "large-attack-surface" for f in findings)

    def test_protected_action_filter(self):
        comp = component(
            intent_filters=[
                IntentFilter(actions=["android.intent.action.BOOT_COMPLETED"])
            ]
        )
        findings = lint_package(package_with([comp]))
        protected = [f for f in findings if f.check == "protected-action-filter"]
        assert len(protected) == 1
        assert "BOOT_COMPLETED" in protected[0].message

    def test_legacy_widget(self):
        findings = lint_package(package_with([component()], targets_wear2=False))
        legacy = [f for f in findings if f.check == "legacy-widget"]
        assert len(legacy) == 1
        assert legacy[0].severity == Severity.ERROR
        assert "GridViewPager" in legacy[0].message

    def test_sensor_direct(self):
        findings = lint_package(package_with([component()], uses_sensor_manager=True))
        assert any(f.check == "sensor-direct" for f in findings)

    def test_signature_permission_third_party_only(self):
        device = Device()
        pkg = package_with(
            [component()],
            requested_permissions=["android.permission.DEVICE_POWER"],
        )
        findings = lint_package(pkg, device.permissions)
        assert any(f.check == "signature-permission" for f in findings)

        builtin = package_with(
            [component()],
            origin=AppOrigin.BUILT_IN,
            requested_permissions=["android.permission.DEVICE_POWER"],
        )
        findings = lint_package(builtin, device.permissions)
        assert all(f.check != "signature-permission" for f in findings)


class TestCorpusLint:
    @pytest.fixture(scope="class")
    def watch(self):
        corpus = build_wear_corpus(seed=2018)
        device = WearDevice("lint-watch")
        corpus.install(device)
        return device

    def test_flags_the_named_problem_apps(self, watch):
        findings = lint_device(watch)
        by_package = {}
        for finding in findings:
            by_package.setdefault(finding.package, set()).add(finding.check)
        assert "legacy-widget" in by_package["com.stridelog.wear"]
        assert "sensor-direct" in by_package["com.pulsetrack.wear"]

    def test_every_app_has_findings(self, watch):
        findings = lint_device(watch)
        packages = {f.package for f in findings}
        # Every corpus app exposes unguarded components somewhere.
        assert len(packages) >= 40

    def test_render_report(self, watch):
        text = render_report(lint_device(watch), limit=5)
        assert "QGJ-LINT REPORT" in text
        assert "exported-unguarded" in text
        assert "... and" in text


class TestCorrelation:
    def test_lint_catches_all_dynamic_crashes(self):
        """Every component QGJ crashed was statically flaggable.

        The study's crashes all entered through exported, unguarded
        components -- so lint recall over the dynamic findings must be 1.0
        (with lint's known cost: a high flag rate).
        """
        from repro.analysis.manifest import StudyCollector
        from repro.qgj.campaigns import Campaign
        from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary

        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("corr-watch")
        corpus.install(watch)
        collector = StudyCollector(corpus.packages())
        fuzzer = FuzzerLibrary(watch)
        adb = watch.adb
        adb.logcat_clear()
        for package in ("com.runmate.wear", "com.fitband.wear", "com.motorola.omega.body"):
            for campaign in Campaign:
                fuzzer.fuzz_app(
                    package,
                    campaign,
                    FuzzConfig(strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1}),
                )
                collector.fold(adb.logcat(), package, campaign.value)
                adb.logcat_clear()
        result = correlate(lint_device(watch), collector)
        assert result.crashed_components > 0
        assert result.recall == pytest.approx(1.0)
        assert 0 < result.flag_rate < 1
