"""Property tests for FuzzIntent construction and the triage reproducers."""

import shlex

import pytest
from hypothesis import given, settings, strategies as st

from repro.android.actions import ALL_ACTIONS, URI_SAMPLES
from repro.android.intent import ComponentName
from repro.qgj.campaigns import Campaign, FuzzIntent, generate, random_ascii
from repro.qgj.triage import CrashBucket, CrashSignature

CMP = ComponentName("com.a", "com.a.MainActivity")

maybe_action = st.one_of(st.none(), st.sampled_from(ALL_ACTIONS), st.text(min_size=1, max_size=20))
maybe_data = st.one_of(st.none(), st.sampled_from(sorted(URI_SAMPLES.values())), st.text(max_size=20))
extras = st.lists(
    st.tuples(st.text(min_size=1, max_size=8), st.one_of(st.text(max_size=8), st.integers(), st.none())),
    max_size=4,
).map(tuple)


class TestFuzzIntentBuild:
    @given(maybe_action, maybe_data, extras)
    @settings(max_examples=100, deadline=None)
    def test_build_reflects_fields(self, action, data, extra_items):
        fuzz_intent = FuzzIntent(action=action, data=data, extras=extra_items)
        intent = fuzz_intent.build(CMP)
        assert intent.component == CMP
        assert intent.action == action
        if data:
            assert intent.data_string == data
        else:
            assert intent.data is None
        assert len(intent.extras) <= len(extra_items)

    @given(st.sampled_from(list(Campaign)))
    @settings(max_examples=8, deadline=None)
    def test_generated_intents_always_buildable(self, campaign):
        for i, fuzz_intent in enumerate(generate(campaign, component=CMP, stride=7)):
            intent = fuzz_intent.build(CMP)
            assert intent.is_explicit()
            if i > 40:
                break

    def test_random_ascii_length_bounds(self):
        import random

        rng = random.Random(1)
        for _ in range(100):
            text = random_ascii(rng, min_len=3, max_len=24)
            assert 3 <= len(text) <= 24


class TestReproducerLines:
    def _bucket(self, intent, component="com.a/com.a.MainActivity"):
        signature = CrashSignature(
            component=component,
            exception="java.lang.NullPointerException",
            frame="com.a.MainActivity.onCreate",
        )
        return CrashBucket(signature=signature, count=1, example=intent)

    def test_activity_reproducer_uses_am_start(self):
        line = self._bucket(FuzzIntent(action="a.X", data="tel:1")).reproducer()
        assert line.startswith("am start ")
        assert "-a a.X" in line and "-d tel:1" in line
        assert "-n com.a/com.a.MainActivity" in line

    def test_service_reproducer_uses_startservice(self):
        bucket = self._bucket(
            FuzzIntent(action="a.X", data=None),
            component="com.a/com.a.SyncService",
        )
        assert bucket.reproducer().startswith("am startservice ")

    def test_empty_bucket(self):
        bucket = self._bucket(None)
        assert "no example" in bucket.reproducer()

    @given(maybe_action, maybe_data)
    @settings(max_examples=60, deadline=None)
    def test_reproducer_is_single_line(self, action, data):
        line = self._bucket(FuzzIntent(action=action, data=data)).reproducer()
        assert "\n" not in line

    def test_minimized_takes_precedence(self):
        bucket = self._bucket(FuzzIntent(action="a.X", data="tel:1"))
        bucket.minimized = FuzzIntent(action="a.X", data=None)
        assert "-d" not in bucket.reproducer()

    def test_reproducer_round_trips_through_adb(self):
        """The emitted line is genuinely runnable against the simulator."""
        from repro.apps.catalog import build_wear_corpus
        from repro.apps.builtin import GOOGLE_FIT_PACKAGE
        from repro.qgj.triage import CrashProber
        from repro.wear.complications import ACTION_ALL_APP
        from repro.wear.device import WearDevice

        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("repro-watch")
        corpus.install(watch)
        package = watch.packages.get_package(GOOGLE_FIT_PACKAGE)
        info = next(
            c for c in package.components
            if c.name.simple_class == "ComplicationsAllAppActivity"
        )
        intent = FuzzIntent(action=ACTION_ALL_APP, data=None)
        signature = CrashProber(watch).signature_of(info, intent)
        bucket = CrashBucket(signature=signature, count=1, example=intent)
        result = watch.adb.shell(bucket.reproducer())
        assert result.caused_crash
