"""Tests for the QGJ master protocol's wire format details."""

import json

import pytest

from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig
from repro.qgj.master import (
    PATH_START_FUZZ,
    PATH_SUMMARY,
    QGJMobile,
    QGJWear,
    deploy,
)
from repro.wear.device import PhoneDevice, WearDevice, pair
from repro.wear.node import MessageClient


@pytest.fixture()
def rig():
    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("watch")
    phone = PhoneDevice("phone")
    pair(phone, watch)
    corpus.install(watch)
    mobile, wear = deploy(phone, watch)
    return phone, watch, mobile, wear


class TestStartFuzzWire:
    def test_strides_survive_the_wire(self, rig):
        phone, watch, mobile, wear = rig
        config = FuzzConfig(strides={Campaign.A: 50, Campaign.B: 7})
        mobile.start_fuzz(["com.runmate.wear"], campaigns="AB", config=config)
        summary = wear.last_summary
        # Campaign A at stride 50 → ceil(1548/50)=31 per component;
        # campaign B at stride 7 → ceil(141/7)=21 per component.
        per_campaign = {}
        for app in summary.apps:
            for comp in app.components:
                per_campaign.setdefault(comp.campaign, set()).add(comp.sent)
        assert per_campaign[Campaign.A] == {31}
        assert per_campaign[Campaign.B] == {21}

    def test_max_intents_survives_the_wire(self, rig):
        _, _, mobile, wear = rig
        mobile.start_fuzz(
            ["com.runmate.wear"],
            campaigns="A",
            config=FuzzConfig(max_intents_per_component=5),
        )
        for app in wear.last_summary.apps:
            for comp in app.components:
                assert comp.sent <= 5

    def test_raw_protocol_message(self, rig):
        """A hand-built JSON request drives the wear app directly."""
        phone, watch, _, wear = rig
        request = {
            "packages": ["com.runmate.wear"],
            "campaigns": "B",
            "strides": {"B": 20},
            "seed": 3,
        }
        MessageClient(phone.node).send_message(
            watch.node.node_id, PATH_START_FUZZ, json.dumps(request).encode()
        )
        assert wear.last_summary is not None
        assert wear.last_summary.total_sent > 0
        # The summary came back over the DataAPI.
        item = phone.node.get_data_item(PATH_SUMMARY)
        assert item is not None
        assert item.data["total_sent"] == wear.last_summary.total_sent

    def test_summary_arrives_on_phone_data_layer(self, rig):
        phone, _, mobile, _ = rig
        mobile.start_fuzz(
            ["com.runmate.wear"],
            campaigns="B",
            config=FuzzConfig(max_intents_per_component=2),
        )
        assert mobile.last_summary["device"] == "watch"

    def test_render_summary_before_any_run(self, rig):
        phone, watch, _, _ = rig
        fresh_mobile = QGJMobile(phone, watch.node.node_id)
        assert fresh_mobile.render_summary() == "no fuzz run yet"
