"""Tests for the fuzzer result records."""

from repro.android.component import ComponentKind
from repro.qgj.campaigns import Campaign
from repro.qgj.results import AppRunResult, ComponentRunResult, FuzzSummary


def component_result(sent=10, crashes=0, security=0, rebooted=False):
    return ComponentRunResult(
        component="com.a/.Main",
        kind=ComponentKind.ACTIVITY,
        campaign=Campaign.A,
        sent=sent,
        delivered=sent - security,
        security_exceptions=security,
        crashes_seen=crashes,
        rebooted=rebooted,
    )


class TestComponentRunResult:
    def test_merge_counts(self):
        result = component_result(sent=10, crashes=2, security=3)
        counts = result.merge_counts()
        assert counts["sent"] == 10
        assert counts["crashes_seen"] == 2
        assert counts["security_exceptions"] == 3


class TestAppRunResult:
    def test_aggregates(self):
        app = AppRunResult(package="com.a", campaign=Campaign.A)
        app.components.append(component_result(sent=5, crashes=1))
        app.components.append(component_result(sent=7, crashes=2, rebooted=True))
        assert app.sent == 12
        assert app.crashes_seen == 3
        assert app.rebooted

    def test_empty_app(self):
        app = AppRunResult(package="com.a", campaign=Campaign.B)
        assert app.sent == 0
        assert not app.rebooted


class TestFuzzSummary:
    def _summary(self):
        summary = FuzzSummary(device="watch")
        app_a = AppRunResult(package="com.a", campaign=Campaign.A)
        app_a.components.append(component_result(sent=10, crashes=1, security=4))
        app_b = AppRunResult(
            package="com.b", campaign=Campaign.D, aborted_by_reboot=True
        )
        app_b.components.append(component_result(sent=3, crashes=3, rebooted=True))
        summary.apps.extend([app_a, app_b])
        return summary

    def test_totals(self):
        summary = self._summary()
        assert summary.total_sent == 13
        assert summary.total_security_exceptions == 4
        assert summary.total_crashes_seen == 4
        assert summary.total_reboots == 1

    def test_wire_is_json_safe(self):
        import json

        wire = self._summary().to_wire()
        round_tripped = json.loads(json.dumps(wire))
        assert round_tripped["total_sent"] == 13
        assert round_tripped["apps"][1]["aborted_by_reboot"] is True
        assert round_tripped["apps"][0]["campaign"] == "A"

    def test_render_counts_unique_apps(self):
        summary = self._summary()
        summary.apps.append(AppRunResult(package="com.a", campaign=Campaign.B))
        text = summary.render()
        assert "apps fuzzed:         2" in text
