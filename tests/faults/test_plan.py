"""Tests for fault plans and their deterministic execution streams."""

import pickle

import pytest

from repro.faults.plan import (
    BASE_WEAR_API,
    BINDER_DEAD_OBJECT,
    BINDER_TOO_LARGE,
    CHAOS_INTERVALS_MS,
    COMPAT_MISSING_METHOD,
    COMPAT_SYNC_DELTA,
    CORRUPTIONS,
    OUTAGE_SERVICES,
    CompatMatrix,
    FaultEvent,
    FaultKind,
    FaultPlan,
    PlanExecution,
)


class TestFaultPlan:
    def test_default_plan_is_empty(self):
        assert FaultPlan().is_empty()

    def test_chaos_plan_enables_every_stream(self):
        plan = FaultPlan.chaos(seed=3)
        assert not plan.is_empty()
        for kind in FaultKind:
            assert plan.interval_for(kind) == CHAOS_INTERVALS_MS[kind]

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(binder_every_ms=0)
        with pytest.raises(ValueError):
            FaultPlan(adb_drop_every_ms=-5.0)

    def test_fingerprint_distinguishes_seed_and_streams(self):
        fingerprints = {
            FaultPlan.chaos(seed=1).fingerprint(),
            FaultPlan.chaos(seed=2).fingerprint(),
            FaultPlan(seed=1).fingerprint(),
            FaultPlan(seed=1, binder_every_ms=100.0).fingerprint(),
            FaultPlan(
                seed=1, oneshots=(FaultEvent(50.0, FaultKind.ADB_DROP),)
            ).fingerprint(),
        }
        assert len(fingerprints) == 5

    def test_fingerprint_is_stable(self):
        assert FaultPlan.chaos(seed=7).fingerprint() == FaultPlan.chaos(seed=7).fingerprint()


class TestTaxonomyCoverage:
    """Adding a ``FaultKind`` without wiring it everywhere must fail loudly."""

    def test_chaos_intervals_cover_every_kind(self):
        assert set(CHAOS_INTERVALS_MS) == set(FaultKind)

    def test_interval_for_is_wired_for_every_kind(self):
        chaos = FaultPlan.chaos(seed=0)
        empty = FaultPlan()
        for kind in FaultKind:
            assert chaos.interval_for(kind) == CHAOS_INTERVALS_MS[kind]
            assert empty.interval_for(kind) is None

    def test_fingerprint_names_every_armed_kind(self):
        fp = FaultPlan.chaos(seed=0).fingerprint()
        for kind in FaultKind:
            assert kind.value in fp

    def test_execution_streams_exist_for_every_kind(self):
        execution = PlanExecution(FaultPlan.chaos(seed=0))
        assert set(execution.streams) == set(FaultKind)

    def test_service_stream_params_cover_the_taxonomy(self):
        plan = FaultPlan(
            seed=1,
            service_outage_every_ms=50.0,
            service_corrupt_every_ms=50.0,
            compat_mismatch_every_ms=50.0,
        )
        execution = PlanExecution(plan)
        horizon = 50_000.0
        outages = execution.take_due(FaultKind.SERVICE_OUTAGE, horizon)
        corruptions = execution.take_due(FaultKind.SERVICE_CORRUPT, horizon)
        mismatches = execution.take_due(FaultKind.COMPAT_MISMATCH, horizon)
        assert {e.param for e in outages} == set(OUTAGE_SERVICES)
        assert {e.param for e in corruptions} == set(CORRUPTIONS)
        assert {e.param for e in mismatches} == {
            COMPAT_MISSING_METHOD,
            COMPAT_SYNC_DELTA,
        }


class TestCompatMatrix:
    def test_from_skew_pins_the_phone_behind(self):
        matrix = CompatMatrix.from_skew(3)
        assert matrix.phone_api == BASE_WEAR_API - 3
        assert matrix.wear_api == BASE_WEAR_API
        assert matrix.skew == 3
        assert matrix.effective_api == BASE_WEAR_API - 3

    def test_zero_skew_is_a_matched_pair(self):
        matrix = CompatMatrix.from_skew(0)
        assert matrix.skew == 0
        assert matrix.effective_api == BASE_WEAR_API

    def test_validation(self):
        with pytest.raises(ValueError):
            CompatMatrix.from_skew(-1)
        with pytest.raises(ValueError):
            CompatMatrix(phone_api=0)

    def test_matrix_is_part_of_the_plan_fingerprint(self):
        bare = FaultPlan(seed=1)
        matched = FaultPlan(seed=1, compat=CompatMatrix())
        skewed = FaultPlan(seed=1, compat=CompatMatrix.from_skew(2))
        assert len({p.fingerprint() for p in (bare, matched, skewed)}) == 3


class TestPlanExecution:
    def test_identical_seeds_produce_identical_streams(self):
        plan = FaultPlan.chaos(seed=11)
        a, b = PlanExecution(plan), PlanExecution(plan)
        for now in (10_000.0, 500_000.0, 2_000_000.0, 9_000_000.0):
            for kind in FaultKind:
                assert a.take_due(kind, now) == b.take_due(kind, now)
        assert a.fired == b.fired > 0

    def test_events_independent_of_polling_pattern(self):
        plan = FaultPlan(seed=5, binder_every_ms=1_000.0)
        coarse, fine = PlanExecution(plan), PlanExecution(plan)
        horizon = 50_000.0
        coarse_events = coarse.take_due(FaultKind.BINDER, horizon)
        fine_events = []
        now = 0.0
        while now < horizon:
            now += 137.0
            fine_events.extend(fine.take_due(FaultKind.BINDER, min(now, horizon)))
        assert coarse_events == fine_events

    def test_limit_defers_rather_than_drops(self):
        plan = FaultPlan(seed=5, adb_drop_every_ms=100.0)
        limited, unlimited = PlanExecution(plan), PlanExecution(plan)
        drained = []
        while True:
            batch = limited.take_due(FaultKind.ADB_DROP, 5_000.0, limit=1)
            if not batch:
                break
            drained.extend(batch)
        assert drained == unlimited.take_due(FaultKind.ADB_DROP, 5_000.0)

    def test_oneshots_fire_once_at_their_time(self):
        plan = FaultPlan(
            seed=0,
            oneshots=(
                FaultEvent(100.0, FaultKind.LMKD_KILL),
                FaultEvent(200.0, FaultKind.LMKD_KILL),
            ),
        )
        execution = PlanExecution(plan)
        assert execution.take_due(FaultKind.LMKD_KILL, 50.0) == []
        assert [e.at_ms for e in execution.take_due(FaultKind.LMKD_KILL, 150.0)] == [100.0]
        assert [e.at_ms for e in execution.take_due(FaultKind.LMKD_KILL, 1e9)] == [200.0]
        assert execution.take_due(FaultKind.LMKD_KILL, 1e9) == []

    def test_binder_params_name_both_transport_exceptions(self):
        plan = FaultPlan(seed=1, binder_every_ms=100.0)
        events = PlanExecution(plan).take_due(FaultKind.BINDER, 100_000.0)
        params = {event.param for event in events}
        assert params == {BINDER_DEAD_OBJECT, BINDER_TOO_LARGE}

    def test_pickle_roundtrip_continues_identically(self):
        plan = FaultPlan.chaos(seed=9)
        execution = PlanExecution(plan)
        for kind in FaultKind:
            execution.take_due(kind, 3_000_000.0)
        clone = pickle.loads(pickle.dumps(execution))
        for now in (5_000_000.0, 20_000_000.0):
            for kind in FaultKind:
                assert execution.take_due(kind, now) == clone.take_due(kind, now)
        assert execution.victim_rng.random() == clone.victim_rng.random()
