"""Tests for the checkpoint journal: durability, torn tails, snapshots."""

import json

import pytest

from repro.faults.errors import CampaignKilled
from repro.faults.journal import JOURNAL_VERSION, CheckpointJournal, KillSwitch


class TestKillSwitch:
    def test_raises_at_limit_with_count(self):
        switch = KillSwitch(limit=3)
        switch.tick()
        switch.tick()
        with pytest.raises(CampaignKilled) as exc_info:
            switch.tick()
        assert exc_info.value.injections == 3

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            KillSwitch(limit=0)


class TestJournal:
    def test_header_and_segments_roundtrip(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "run.jsonl"))
        journal.start({"config": "quick", "fault_fingerprint": "none"})
        journal.append({"type": "segment", "index": 0, "package": "com.a"})
        journal.append({"type": "segment", "index": 1, "package": "com.b"})
        header = journal.header()
        assert header["type"] == "header"
        assert header["version"] == JOURNAL_VERSION
        assert header["config"] == "quick"
        assert [s["package"] for s in journal.segments()] == ["com.a", "com.b"]

    def test_start_truncates_previous_run_and_stale_state(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "run.jsonl"))
        journal.start({"config": "quick"})
        journal.append({"type": "segment", "index": 0})
        journal.save_state({"index": 1})
        journal.start({"config": "quick"})
        assert journal.segments() == []
        assert journal.load_state() is None

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(str(path))
        journal.start({"config": "quick"})
        journal.append({"type": "segment", "index": 0})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "segment", "index": 1, "pack')  # crash mid-write
        records = CheckpointJournal.load(str(path))
        assert [r.get("index") for r in records if r["type"] == "segment"] == [0]

    def test_torn_tail_is_truncated_and_noted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(str(path))
        journal.start({"config": "quick"})
        journal.append({"type": "segment", "index": 0})
        durable = path.stat().st_size
        torn = '{"type": "segment", "index": 1, "pack'
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(torn)
        records = CheckpointJournal.load(str(path), truncate=True)
        assert records[0]["recovered_bytes"] == len(torn)
        # The file shrank back to its durable prefix...
        assert path.stat().st_size == durable
        # ...the on-disk header carries no synthesized note...
        assert "recovered_bytes" not in CheckpointJournal.load(str(path))[0]
        # ...and the journal keeps working: appends after recovery parse.
        journal.append({"type": "segment", "index": 1})
        assert [s["index"] for s in journal.segments()] == [0, 1]

    def test_terminated_but_unparsable_final_line_is_recovered(self, tmp_path):
        # fsync guarantees ordering, not atomicity: a torn append can land
        # with its trailing newline but only part of its content.
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(str(path))
        journal.start({"config": "quick"})
        journal.append({"type": "segment", "index": 0})
        durable = path.stat().st_size
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "segment", "ind\n')
        records = CheckpointJournal.load(str(path), truncate=True)
        assert records[0]["recovered_bytes"] == len('{"type": "segment", "ind\n')
        assert path.stat().st_size == durable
        assert [r.get("index") for r in records if r["type"] == "segment"] == [0]

    def test_load_leaves_the_file_alone_by_default(self, tmp_path):
        # Readers may be observing a live writer's in-flight append, so
        # the default load never modifies the file -- only the owning
        # writer truncates (truncate=True, or repair()).
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(str(path))
        journal.start({"config": "quick"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        size = path.stat().st_size
        records = CheckpointJournal.load(str(path))
        assert records[0]["recovered_bytes"] == len('{"torn')
        assert path.stat().st_size == size

    def test_repair_truncates_the_torn_tail_for_the_owner(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(str(path))
        journal.start({"config": "quick"})
        journal.append({"type": "segment", "index": 0})
        durable = path.stat().st_size
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        assert journal.repair() == len('{"torn')
        assert path.stat().st_size == durable
        # Clean file: repair is a no-op, and a missing file reports 0.
        assert journal.repair() == 0
        assert CheckpointJournal(str(tmp_path / "absent.jsonl")).repair() == 0

    def test_corrupt_interior_record_is_an_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(str(path))
        journal.start({"config": "quick"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"type": "segment", "index": 0}) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            CheckpointJournal.load(str(path))

    def test_missing_header_is_an_error(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text(json.dumps({"type": "segment", "index": 0}) + "\n")
        with pytest.raises(ValueError, match="header"):
            CheckpointJournal.load(str(path))

    def test_state_snapshot_roundtrip_and_absence(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "run.jsonl"))
        assert journal.load_state() is None
        payload = {"index": 3, "blob": list(range(10))}
        journal.save_state(payload)
        assert journal.load_state() == payload
        journal.save_state({"index": 4})
        assert journal.load_state() == {"index": 4}
