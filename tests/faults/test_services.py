"""End-to-end tests for the OS-service fault family.

Outage windows, corrupted replies, and system_server restarts ride the same
seeded fault plane as the transport family; these tests drive them through
the real android hook sites (activity manager dispatch, package manager
resolution, sensor registration) with pinned one-shot events.
"""

import pytest

from repro import faults
from repro.android.component import ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.intent import ComponentName, Intent, launcher_filter
from repro.android.jtypes import DeadObjectException
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.android.sensor import TYPE_HEART_RATE
from repro.faults.errors import (
    TRANSIENT_ERRORS,
    CompatMismatchError,
    ServiceRestarted,
    ServiceUnavailable,
    StaleBinderReply,
)
from repro.faults.plan import (
    CHAOS_INTERVALS_MS,
    CORRUPT_DROP_LISTENER,
    CORRUPT_DUP_LISTENER,
    CORRUPT_STALE_COMPONENT,
    FaultEvent,
    FaultKind,
    FaultPlan,
)
from repro.faults.services import SERVICE_OUTAGE_WINDOW_MS, ServiceFaultPlan

PKG = "com.example.app"


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    faults.uninstall()


def _device():
    dev = Device("watch")
    main = ComponentInfo(
        name=ComponentName(PKG, f"{PKG}.MainActivity"),
        kind=ComponentKind.ACTIVITY,
        intent_filters=[launcher_filter()],
    )
    dev.install(
        PackageInfo(
            package=PKG,
            label="Example",
            category=AppCategory.OTHER,
            origin=AppOrigin.THIRD_PARTY,
            components=[main],
        )
    )
    return dev


def _intent():
    return Intent(component=ComponentName(PKG, f"{PKG}.MainActivity"))


def _oneshot_plan(kind, at_ms=5.0, param=""):
    return FaultPlan(seed=0, oneshots=(FaultEvent(at_ms, kind, param),))


class TestServiceFaultPlanProfile:
    def test_standalone_plan_arms_only_the_service_streams(self):
        plan = ServiceFaultPlan(seed=4).plan()
        armed = {kind for kind in FaultKind if plan.interval_for(kind) is not None}
        assert armed == {
            FaultKind.SERVICE_OUTAGE,
            FaultKind.SERVICE_CORRUPT,
            FaultKind.SYSTEM_RESTART,
        }
        for kind in armed:
            assert plan.interval_for(kind) == CHAOS_INTERVALS_MS[kind]
        assert plan.seed == 4

    def test_apply_layers_onto_a_transport_plan(self):
        base = FaultPlan(seed=9, binder_every_ms=1_000.0)
        plan = ServiceFaultPlan(seed=4, outage_every_ms=50.0).apply(base)
        assert plan.seed == 9  # the base's streams keep their seed
        assert plan.binder_every_ms == 1_000.0
        assert plan.service_outage_every_ms == 50.0
        assert (
            plan.service_corrupt_every_ms
            == CHAOS_INTERVALS_MS[FaultKind.SERVICE_CORRUPT]
        )


class TestServiceOutage:
    def test_activity_outage_opens_then_closes(self):
        device = _device()
        plan = _oneshot_plan(FaultKind.SERVICE_OUTAGE, param="activity")
        with faults.session(plan):
            device.clock.sleep(10.0)
            with pytest.raises(ServiceUnavailable, match="activity"):
                device.activity_manager.start_activity(PKG, _intent())
            # Still inside the window: the service stays down.
            with pytest.raises(ServiceUnavailable):
                device.activity_manager.start_activity(PKG, _intent())
            device.clock.sleep(SERVICE_OUTAGE_WINDOW_MS + 10.0)
            result = device.activity_manager.start_activity(PKG, _intent())
            assert result.delivered

    def test_sensor_outage_hits_registration_in_flight(self):
        device = _device()
        plan = _oneshot_plan(FaultKind.SERVICE_OUTAGE, param="sensor")
        with faults.session(plan):
            device.clock.sleep(10.0)
            with pytest.raises(ServiceUnavailable, match="sensor"):
                device.sensor_service.register_listener(PKG, TYPE_HEART_RATE)
            device.clock.sleep(SERVICE_OUTAGE_WINDOW_MS + 10.0)
            device.sensor_service.register_listener(PKG, TYPE_HEART_RATE)
            assert device.sensor_service.has_listeners(PKG)

    def test_outage_errors_are_transient_dead_objects(self):
        # The retry layer keys on DeadObjectException; the whole service
        # family must stay inside that umbrella so outages get retried.
        exc = ServiceUnavailable("activity", 400.0)
        assert isinstance(exc, DeadObjectException)
        assert isinstance(exc, TRANSIENT_ERRORS)
        assert isinstance(ServiceRestarted("activity"), TRANSIENT_ERRORS)
        assert isinstance(StaleBinderReply("package", "mangled"), TRANSIENT_ERRORS)
        # Version skew is permanent: never retried.
        assert not isinstance(
            CompatMismatchError("f", 25, 23), TRANSIENT_ERRORS
        )


class TestCorruptedReplies:
    def test_stale_component_parcel_fails_resolution_once(self):
        device = _device()
        plan = _oneshot_plan(
            FaultKind.SERVICE_CORRUPT, param=CORRUPT_STALE_COMPONENT
        )
        with faults.session(plan):
            device.clock.sleep(10.0)
            with pytest.raises(StaleBinderReply, match="ComponentInfo"):
                device.activity_manager.start_activity(PKG, _intent())
            # Consumed: the same dispatch now resolves cleanly.
            result = device.activity_manager.start_activity(PKG, _intent())
            assert result.delivered

    def test_drop_listener_silently_loses_the_registration(self):
        device = _device()
        plan = _oneshot_plan(FaultKind.SERVICE_CORRUPT, param=CORRUPT_DROP_LISTENER)
        with faults.session(plan):
            device.clock.sleep(10.0)
            device.sensor_service.register_listener(PKG, TYPE_HEART_RATE)
            assert not device.sensor_service.has_listeners(PKG)
            assert "dropped listener registration" in device.adb.logcat()
            # One-shot consumed: the next registration sticks.
            device.sensor_service.register_listener(PKG, TYPE_HEART_RATE)
            assert device.sensor_service.has_listeners(PKG)

    def test_dup_listener_registers_twice(self):
        device = _device()
        plan = _oneshot_plan(FaultKind.SERVICE_CORRUPT, param=CORRUPT_DUP_LISTENER)
        with faults.session(plan):
            device.clock.sleep(10.0)
            device.sensor_service.register_listener(PKG, TYPE_HEART_RATE)
            assert len(device.sensor_service.listeners_of(PKG)) == 2


class TestSystemRestart:
    def test_restart_bounces_services_without_a_reboot(self):
        device = _device()
        device.sensor_service.register_listener(PKG, TYPE_HEART_RATE)
        boots = device.boot_count
        plan = _oneshot_plan(FaultKind.SYSTEM_RESTART)
        with faults.session(plan):
            device.clock.sleep(10.0)
            with pytest.raises(ServiceRestarted):
                device.activity_manager.start_activity(PKG, _intent())
            # A soft bounce, not a reboot: boot_count must not move (the
            # paper's reboot counts come from it) and no watchdog line lands.
            assert device.boot_count == boots
            assert "system_server died" in device.adb.logcat()
            assert "WATCHDOG" not in device.adb.logcat()
            # Every service restarted: registered listeners are gone.
            assert not device.sensor_service.has_listeners(PKG)
            assert device.sensor_service.alive
            # The system recovers: the next dispatch goes through.
            result = device.activity_manager.start_activity(PKG, _intent())
            assert result.delivered

    def test_restart_clears_open_outage_windows(self):
        device = _device()
        plan = FaultPlan(
            seed=0,
            oneshots=(
                FaultEvent(5.0, FaultKind.SERVICE_OUTAGE, "activity"),
                FaultEvent(6.0, FaultKind.SYSTEM_RESTART),
            ),
        )
        with faults.session(plan):
            device.clock.sleep(10.0)
            # The restart drains first and wipes the pending outage with
            # the rest of the in-flight service state.
            with pytest.raises(ServiceRestarted):
                device.activity_manager.start_activity(PKG, _intent())
            result = device.activity_manager.start_activity(PKG, _intent())
            assert result.delivered


class TestDeterminism:
    def test_same_plan_same_manifestation_sequence(self):
        plan = ServiceFaultPlan(
            seed=21, outage_every_ms=5_000.0, corrupt_every_ms=7_000.0
        ).plan()

        def run():
            device = _device()
            observed = []
            with faults.session(plan):
                for _ in range(40):
                    device.clock.sleep(1_000.0)
                    try:
                        device.activity_manager.start_activity(PKG, _intent())
                        observed.append("ok")
                    except (ServiceUnavailable, StaleBinderReply, ServiceRestarted) as exc:
                        observed.append(type(exc).__name__)
            return observed

        first, second = run(), run()
        assert first == second
        assert set(first) > {"ok"}  # faults actually manifested
