"""Tests for the per-package transport circuit breaker."""

import pytest

from repro.faults.quarantine import DEFAULT_THRESHOLD, CircuitBreaker


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_failure("com.a", "AdbSessionDropped")
        assert not breaker.record_failure("com.a", "AdbSessionDropped")
        assert breaker.record_failure("com.a", "DeadObjectException")
        assert breaker.is_quarantined("com.a")
        assert breaker.quarantined() == ("com.a",)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("com.a")
        breaker.record_success("com.a")
        assert not breaker.record_failure("com.a")
        assert breaker.failure_streak("com.a") == 1
        assert not breaker.is_quarantined("com.a")

    def test_packages_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("com.a")
        assert breaker.is_quarantined("com.a")
        assert not breaker.is_quarantined("com.b")
        assert breaker.failure_streak("com.b") == 0

    def test_failures_after_quarantine_are_inert(self):
        breaker = CircuitBreaker(threshold=1)
        assert breaker.record_failure("com.a")
        assert not breaker.record_failure("com.a")
        assert len(breaker.events()) == 1

    def test_event_records_count_and_error(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("com.a", "AdbSessionDropped")
        breaker.record_failure("com.a", "TransactionTooLargeException")
        (event,) = breaker.events()
        assert event.package == "com.a"
        assert event.consecutive_failures == 2
        assert event.last_error == "TransactionTooLargeException"

    def test_default_threshold(self):
        breaker = CircuitBreaker()
        assert breaker.threshold == DEFAULT_THRESHOLD

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
