"""End-to-end tests for the fault-plane hooks inside the android layer."""

import pytest

from repro import faults
from repro.android.component import ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.intent import ComponentName, Intent, launcher_filter
from repro.android.jtypes import DeadObjectException, TransactionTooLargeException
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.faults.errors import AdbSessionDropped
from repro.faults.plan import (
    BINDER_DEAD_OBJECT,
    BINDER_TOO_LARGE,
    FaultEvent,
    FaultKind,
    FaultPlan,
    PlanExecution,
)
from repro.faults.plane import NOOP_PLANE, FaultPlane


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    faults.uninstall()


def _device():
    dev = Device("watch")
    main = ComponentInfo(
        name=ComponentName("com.example.app", "com.example.app.MainActivity"),
        kind=ComponentKind.ACTIVITY,
        intent_filters=[launcher_filter()],
    )
    dev.install(
        PackageInfo(
            package="com.example.app",
            label="Example",
            category=AppCategory.OTHER,
            origin=AppOrigin.THIRD_PARTY,
            components=[main],
        )
    )
    return dev


def _oneshot_plan(kind, at_ms=5.0, param=""):
    return FaultPlan(seed=0, oneshots=(FaultEvent(at_ms, kind, param),))


class TestInstallSemantics:
    def test_default_is_the_noop_plane(self):
        assert faults.get() is NOOP_PLANE
        assert not faults.enabled()
        assert faults.fingerprint() == "none"

    def test_install_and_uninstall(self):
        plan = FaultPlan.chaos(seed=1)
        plane = faults.install(plan)
        assert faults.get() is plane
        assert faults.enabled()
        assert faults.fingerprint() == plan.fingerprint()
        faults.uninstall()
        assert faults.get() is NOOP_PLANE

    def test_session_disarms_on_exit_even_on_error(self):
        with pytest.raises(RuntimeError):
            with faults.session(FaultPlan(seed=2)):
                assert faults.enabled()
                raise RuntimeError("boom")
        assert not faults.enabled()

    def test_session_with_none_keeps_current_plane(self):
        with faults.session(None) as plane:
            assert plane is NOOP_PLANE
        assert faults.get() is NOOP_PLANE


class TestAdoptGuards:
    def test_noop_plane_rejects_faulted_checkpoint_state(self):
        device = _device()
        execution = PlanExecution(FaultPlan.chaos(seed=1))
        with pytest.raises(ValueError, match="install the same plan"):
            NOOP_PLANE.adopt(device.clock, execution)
        NOOP_PLANE.adopt(device.clock, None)  # unfaulted state is fine

    def test_plane_rejects_state_from_a_different_plan(self):
        device = _device()
        plane = FaultPlane(FaultPlan.chaos(seed=1))
        execution = PlanExecution(FaultPlan.chaos(seed=2))
        with pytest.raises(ValueError, match="different fault plan"):
            plane.adopt(device.clock, execution)


class TestAdbDrop:
    def test_session_drop_fires_once_then_recovers(self):
        device = _device()
        with faults.session(_oneshot_plan(FaultKind.ADB_DROP)):
            assert device.adb.shell("pm list packages").ok  # not due yet
            device.clock.sleep(10.0)
            with pytest.raises(AdbSessionDropped, match="session dropped"):
                device.adb.shell("pm list packages")
            assert device.adb.shell("pm list packages").ok
            device.adb.logcat()  # logcat pull shares the hook and survives


class TestBinderFaults:
    @pytest.mark.parametrize(
        "param,expected",
        [
            (BINDER_DEAD_OBJECT, DeadObjectException),
            (BINDER_TOO_LARGE, TransactionTooLargeException),
        ],
    )
    def test_am_dispatch_raises_named_transport_exception(self, param, expected):
        device = _device()
        intent = Intent(
            component=ComponentName("com.example.app", "com.example.app.MainActivity")
        )
        with faults.session(_oneshot_plan(FaultKind.BINDER, param=param)):
            device.clock.sleep(10.0)
            with pytest.raises(expected):
                device.activity_manager.start_activity("com.example.app", intent)
            # The fault was consumed; the same dispatch now goes through.
            result = device.activity_manager.start_activity("com.example.app", intent)
            assert result.delivered


class TestLmkdKill:
    def test_victim_is_reaped_and_restarts_cold(self):
        device = _device()
        with faults.session(_oneshot_plan(FaultKind.LMKD_KILL, at_ms=1_000.0)):
            device.adb.shell("am start -n com.example.app/.MainActivity")
            first_pid = device.processes.get("com.example.app").pid
            device.clock.sleep(2_000.0)
            device.adb.shell("am start -n com.example.app/.MainActivity")
            proc = device.processes.get("com.example.app")
            assert proc is not None and proc.pid > first_pid
            assert device.processes.lmkd_kills == 1
            assert "lowmemorykiller" in device.adb.logcat()
            assert f"({first_pid})" in device.adb.logcat()


class TestLogcatTruncate:
    def test_buffer_halved_on_next_adb_pull(self):
        device = _device()
        with faults.session(_oneshot_plan(FaultKind.LOGCAT_TRUNCATE, at_ms=1_000.0)):
            for _ in range(4):
                device.adb.shell("am start -n com.example.app/.MainActivity")
            buffered = len(device.logcat)
            assert buffered >= 4
            device.clock.sleep(2_000.0)
            device.adb.logcat()
            assert len(device.logcat) == buffered - buffered // 2
            assert device.logcat.dropped == buffered // 2
