"""Tests for the retry policy, including the backoff-schedule properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.android.clock import Clock
from repro.android.jtypes import DeadObjectException, NullPointerException
from repro.faults.errors import AdbSessionDropped
from repro.faults.retry import MAX_ATTEMPTS_CAP, RetryPolicy

_policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=MAX_ATTEMPTS_CAP),
    base_delay_ms=st.floats(min_value=1.0, max_value=500.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay_ms=st.floats(min_value=500.0, max_value=10_000.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**32),
)
_keys = st.tuples(st.text(max_size=12), st.integers(min_value=0, max_value=10**6))


class TestScheduleProperties:
    @given(policy=_policies, key=_keys)
    @settings(max_examples=120, deadline=None)
    def test_schedule_monotone_and_bounded(self, policy, key):
        schedule = policy.schedule(key)
        assert len(schedule) == policy.max_attempts - 1
        ceiling = policy.max_delay_ms * (1.0 + policy.jitter)
        previous = 0.0
        for delay in schedule:
            assert delay >= previous
            assert delay <= ceiling
            previous = delay

    @given(policy=_policies, key=_keys)
    @settings(max_examples=60, deadline=None)
    def test_schedule_is_pure_function_of_policy_and_key(self, policy, key):
        twin = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay_ms=policy.base_delay_ms,
            multiplier=policy.multiplier,
            max_delay_ms=policy.max_delay_ms,
            jitter=policy.jitter,
            seed=policy.seed,
        )
        assert policy.schedule(key) == twin.schedule(key)

    def test_different_keys_decorrelate_jitter(self):
        policy = RetryPolicy(jitter=1.0)
        assert policy.schedule(("a",)) != policy.schedule(("b",))


class TestValidation:
    def test_rejects_bad_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=MAX_ATTEMPTS_CAP + 1)

    def test_rejects_bad_delays(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=100.0, max_delay_ms=50.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestRun:
    def test_transient_errors_retried_until_success(self):
        clock = Clock()
        attempts = []

        def flaky():
            attempts.append(clock.now_ms())
            if len(attempts) < 3:
                raise AdbSessionDropped("gone")
            return "ok"

        policy = RetryPolicy(max_attempts=4, seed=1)
        assert policy.run(flaky, clock) == "ok"
        assert len(attempts) == 3
        # Each retry slept its backoff delay on the virtual clock.
        assert clock.now_ms() == pytest.approx(sum(policy.schedule()[:2]))

    def test_exhaustion_reraises_last_transient_error(self):
        clock = Clock()

        def always_down():
            raise DeadObjectException("still dead")

        with pytest.raises(DeadObjectException):
            RetryPolicy(max_attempts=3).run(always_down, clock)

    def test_non_transient_errors_propagate_immediately(self):
        clock = Clock()
        calls = []

        def appish():
            calls.append(1)
            raise NullPointerException("app bug")

        with pytest.raises(NullPointerException):
            RetryPolicy(max_attempts=5).run(appish, clock)
        assert len(calls) == 1
        assert clock.now_ms() == 0.0

    def test_on_retry_observes_each_backoff(self):
        clock = Clock()
        seen = []

        def flaky():
            if len(seen) < 2:
                raise AdbSessionDropped("gone")
            return 42

        policy = RetryPolicy(max_attempts=4, seed=2)
        policy.run(flaky, clock, key=("x",), on_retry=lambda a, d, e: seen.append((a, d)))
        assert [a for a, _ in seen] == [0, 1]
        assert [d for _, d in seen] == list(policy.schedule(("x",))[:2])

    def test_single_attempt_policy_never_sleeps(self):
        clock = Clock()
        with pytest.raises(AdbSessionDropped):
            RetryPolicy(max_attempts=1).run(
                lambda: (_ for _ in ()).throw(AdbSessionDropped("x")), clock
            )
        assert clock.now_ms() == 0.0
