"""Telemetry visibility of the OS-service and compat fault counters.

The counters follow the plane's lazy-registration discipline: a series only
exists once a fault actually fired, so a clean run's telemetry export stays
byte-identical whether or not the new code paths are compiled in.
"""

import pytest

from repro import faults, telemetry
from repro.faults.plan import (
    COMPAT_MISSING_METHOD,
    CompatMatrix,
    FaultEvent,
    FaultKind,
    FaultPlan,
)
from repro.telemetry.exporters import render_prometheus
from repro.telemetry.metrics import COMPAT_MISMATCHES, SERVICE_FAULTS_INJECTED
from tests.faults.test_services import PKG, _device, _intent


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    yield
    faults.uninstall()


def test_service_fault_counter_reaches_exports_and_dumpsys():
    plan = FaultPlan(
        seed=0, oneshots=(FaultEvent(5.0, FaultKind.SERVICE_OUTAGE, "activity"),)
    )
    with telemetry.session() as t:
        with faults.session(plan):
            device = _device()
            device.clock.sleep(10.0)
            with pytest.raises(Exception):
                device.activity_manager.start_activity(PKG, _intent())
            counter = t.metrics.get(SERVICE_FAULTS_INJECTED)
            assert counter is not None
            assert counter.total_where(kind="service_outage") == 1
            prom = render_prometheus(t.metrics)
            assert 'service_faults_injected_total{kind="service_outage"} 1' in prom
            dumpsys = device.adb.shell("dumpsys telemetry --prometheus")
            assert "service_faults_injected_total" in dumpsys.output


def test_compat_counter_reaches_exports():
    plan = FaultPlan(
        seed=0,
        compat=CompatMatrix.from_skew(2),
        oneshots=(
            FaultEvent(5.0, FaultKind.COMPAT_MISMATCH, COMPAT_MISSING_METHOD),
        ),
    )
    with telemetry.session() as t:
        with faults.session(plan):
            device = _device()
            device.clock.sleep(10.0)
            with pytest.raises(Exception):
                device.activity_manager.start_activity(PKG, _intent())
            assert t.metrics.get(COMPAT_MISMATCHES).total() == 1
            assert "compat_mismatches_total 1" in render_prometheus(t.metrics)


def test_clean_run_registers_no_fault_series():
    # Lazy registration: without a manifested fault the series must not
    # exist, keeping clean-run exports byte-identical.
    with telemetry.session() as t:
        device = _device()
        device.activity_manager.start_activity(PKG, _intent())
        assert t.metrics.get(SERVICE_FAULTS_INJECTED) is None
        assert t.metrics.get(COMPAT_MISMATCHES) is None
        prom = render_prometheus(t.metrics)
        assert "service_faults_injected_total" not in prom
        assert "compat_mismatches_total" not in prom
