#!/usr/bin/env python3
"""Reproduce and dissect the paper's two device reboots (Section IV-B).

Reboot #1 -- the SensorService path: a sequence of mismatched intents to a
heart-rate app silently accumulates until its handler wedges; the ANR, with
sensor listeners held, makes the system SIGABRT the native SensorService
(/system/lib/libsensorservice.so); losing the core sensor process reboots
the watch.

Reboot #2 -- the Ambient path: campaign D's random extras crash-loop a
built-in watch-face component; the loop starves Ambient-service binding on
an already-aged system and the system process takes a SIGSEGV.

Both are *emergent*: no single intent is deadly; the reboot happens at a
specific accumulated state (the paper's software-aging observation).

Run:  python examples/reboot_postmortem.py
"""

from repro.analysis.manifest import StudyCollector
from repro.analysis.report import render_reboot_postmortems
from repro.apps.builtin import AMBIENT_BINDER_PACKAGE
from repro.apps.catalog import build_wear_corpus
from repro.apps.health import HEART_RATE_PACKAGE
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.device import WearDevice


def show_log_excerpt(watch, needles, context=1) -> None:
    lines = watch.adb.logcat().splitlines()
    for i, line in enumerate(lines):
        if any(needle in line for needle in needles):
            for excerpt in lines[max(0, i - context) : i + context + 1]:
                print("    " + excerpt)
            print("    ...")


def main() -> None:
    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("moto360")
    corpus.install(watch)
    collector = StudyCollector(corpus.packages())
    fuzzer = FuzzerLibrary(watch)
    adb = watch.adb
    adb.logcat_clear()

    print("=== Scenario 1: heart-rate app, campaign A (SensorService SIGABRT) ===")
    aging_before = watch.system_server.aging.score()
    fuzzer.fuzz_app(
        HEART_RATE_PACKAGE, Campaign.A, FuzzConfig(strides={Campaign.A: 12})
    )
    log_text = adb.logcat()
    show_log_excerpt(watch, ["ANR in", "Fatal signal 6", "SYSTEM REBOOT"])
    collector.fold(log_text, HEART_RATE_PACKAGE, "A")
    adb.logcat_clear()
    print(f"  boot count is now {watch.boot_count} (aging score was {aging_before:.1f} at start)\n")

    print("=== Scenario 2: watch-face app, campaign D (ambient starvation SIGSEGV) ===")
    fuzzer.fuzz_app(AMBIENT_BINDER_PACKAGE, Campaign.D, FuzzConfig())
    log_text = adb.logcat()
    show_log_excerpt(watch, ["unable to bind Ambient", "Fatal signal 11", "SYSTEM REBOOT"])
    collector.fold(log_text, AMBIENT_BINDER_PACKAGE, "D")
    print(f"  boot count is now {watch.boot_count}\n")

    print(render_reboot_postmortems(collector))

    print(
        "\nNote the paper's observation holds here: neither reboot came from a"
        "\nsingle 'deadly' intent -- scenario 1 needed ~25 silently-absorbed"
        "\nmismatches, scenario 2 needed a crash loop on an aged system."
    )


if __name__ == "__main__":
    main()
