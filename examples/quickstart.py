#!/usr/bin/env python3
"""Quickstart: fuzz one Android Wear app with QGJ.

This walks the paper's Fig. 1a workflow end to end on simulated hardware:

1. boot a phone and a watch and pair them over (virtual) Bluetooth;
2. install the synthetic 46-app corpus on the watch;
3. deploy QGJ Mobile + QGJ Wear;
4. from the phone, retrieve the watch's component inventory (step ①);
5. start a fuzzing session against one app over the MessageAPI (steps ②-④);
6. print the result summary QGJ Mobile receives back over the DataAPI.

Run:  python examples/quickstart.py
"""

from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig
from repro.qgj.master import deploy
from repro.wear.device import PhoneDevice, WearDevice, pair


def main() -> None:
    # 1. Hardware: an LG Nexus 4 paired with a Moto 360 (AW 2.0).
    phone = PhoneDevice("nexus4", model="LG Nexus 4")
    watch = WearDevice("moto360", model="Moto 360")
    pair(phone, watch)
    print(f"paired {phone.model} <-> {watch.model} (AW {watch.wear_version})")

    # 2. The app corpus (Table II population: 46 apps, 912 components).
    corpus = build_wear_corpus(seed=2018)
    corpus.install(watch)
    activities, services = corpus.component_count()
    print(f"installed {len(corpus.apps)} apps: {activities} activities, {services} services")

    # 3-4. Deploy QGJ and pull the component inventory from the phone.
    mobile, wear = deploy(phone, watch)
    mobile.refresh_components()
    print(f"QGJ Mobile sees {len(mobile.component_listing)} components on the watch")

    # 5. Fuzz Google Fit with all four campaigns (thinned for a quick demo).
    target = "com.google.android.apps.fitness"
    # Structure-preserving quick strides: every action still reaches every
    # component (A keeps one data URI per action; C keeps one of each
    # action's three random rounds).
    config = FuzzConfig(
        strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1}
    )
    print(f"\nfuzzing {target} with campaigns A-D ...")
    mobile.start_fuzz([target], campaigns="ABCD", config=config)

    # 6. The summary, as rendered by QGJ Mobile.
    print()
    print(mobile.render_summary())

    # Bonus: the crash evidence is ordinary logcat text.
    fatal_lines = [
        line for line in watch.adb.logcat().splitlines() if "FATAL EXCEPTION" in line
    ]
    print(f"\nlogcat contains {len(fatal_lines)} FATAL EXCEPTION entries; first stack:")
    lines = watch.adb.logcat().splitlines()
    start = next(
        (i for i, line in enumerate(lines) if "FATAL EXCEPTION" in line), None
    )
    if start is None:
        print("  (none this run)")
    else:
        for line in lines[start : start + 5]:
            print("  " + line)


if __name__ == "__main__":
    main()
