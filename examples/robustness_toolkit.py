#!/usr/bin/env python3
"""The robustness toolkit: QGJ-Lint, crash triage, and companion study.

Three extensions straight out of the paper's discussion:

1. **QGJ-Lint** (Section IV-E, "better tool support") statically inspects
   every installed manifest and flags the patterns behind the dynamic
   findings -- then we *measure* how well the static warnings predicted the
   crashes QGJ actually provoked.

2. **Crash triage** turns a campaign's raw FATAL blocks into deduplicated
   per-defect buckets, each with a delta-debugged one-line reproducer --
   what a developer actually needs from "automated robustness testing
   tools (such as QGJ)".

3. **Companion propagation** (the threats-to-validity section: "we have
   ignored the inter-device interactions"): fuzz the wearable half of a
   two-part app while its phone-side companion consumes the DataAPI sync
   stream, and watch watch-side crashes corrupt snapshots -- and, with a
   fragile companion, crash the *phone*.

Run:  python examples/robustness_toolkit.py
"""

from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.qgj.lint import correlate, lint_device, render_report
from repro.wear.companion import run_companion_study
from repro.wear.device import PhoneDevice, WearDevice, pair

QUICK = FuzzConfig(strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1})


def main() -> None:
    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("moto360")
    phone = PhoneDevice("nexus6")
    pair(phone, watch)
    corpus.install(watch)

    # --- 1. static lint over every installed manifest -------------------------
    findings = lint_device(watch)
    print(render_report(findings, limit=8))

    # ... then fuzz a few apps and correlate static vs dynamic.
    collector = StudyCollector(corpus.packages())
    fuzzer = FuzzerLibrary(watch)
    adb = watch.adb
    adb.logcat_clear()
    for package in ("com.runmate.wear", "com.fitband.wear", "com.motorola.omega.body"):
        for campaign in Campaign:
            fuzzer.fuzz_app(package, campaign, QUICK)
            collector.fold(adb.logcat(), package, campaign.value)
            adb.logcat_clear()
    corr = correlate(findings, collector)
    print(
        f"\nstatic-vs-dynamic: lint flagged {corr.flagged_components} components "
        f"({corr.flag_rate:.0%} of all); QGJ crashed {corr.crashed_components}; "
        f"lint recall over the crashed set: {corr.recall:.0%}"
    )
    print(
        "(high recall, low precision -- which is exactly why the paper wants"
        "\n lint *integrated with* dynamic tools like QGJ, not replacing them)"
    )

    # --- 2. crash triage with minimised reproducers ----------------------------
    print("\n" + "=" * 60)
    from repro.qgj.triage import triage_app

    report = triage_app(watch, "com.google.android.apps.fitness",
                        campaigns=(Campaign.B, Campaign.D))
    print(report.render())

    # --- 3. cross-device propagation ------------------------------------------
    print("\n" + "=" * 60)
    result = run_companion_study(
        watch, phone, ["com.motorola.omega.body"], robust_companions=False
    )
    print(result.render())
    print(
        "\nwith a fragile companion, malformed intents injected ONLY on the"
        "\nwatch end up crashing a process on the PHONE -- the inter-device"
        "\npropagation the paper's future work calls out."
    )


if __name__ == "__main__":
    main()
