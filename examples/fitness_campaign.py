#!/usr/bin/env python3
"""Fuzz the Health/Fitness category and classify every app's behaviour.

The paper's motivating question: are health/fitness apps -- which depend on
the Google Fit API and the sensor stack -- less robust than other wearable
apps?  This example runs all four Fuzz Intent Campaigns against the 13
Health/Fitness apps, folds the logs through the analysis pipeline, and
prints each app's most severe manifestation per campaign (the Table III
view, restricted to the health column).

Run:  python examples/fitness_campaign.py
"""

from repro.analysis.manifest import Manifestation, StudyCollector
from repro.android.package_manager import AppCategory
from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.device import WearDevice

QUICK = FuzzConfig(strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1})


def main() -> None:
    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("moto360")
    corpus.install(watch)

    health_apps = [
        app.package.package
        for app in corpus.apps
        if app.package.category == AppCategory.HEALTH_FITNESS
    ]
    print(f"fuzzing {len(health_apps)} Health/Fitness apps with campaigns A-D\n")

    collector = StudyCollector(corpus.packages())
    fuzzer = FuzzerLibrary(watch)
    adb = watch.adb
    adb.logcat_clear()

    for package in health_apps:
        for campaign in Campaign:
            fuzzer.fuzz_app(package, campaign, QUICK)
            collector.fold(adb.logcat(), package, campaign.value)
            adb.logcat_clear()

    # Per-app manifestation matrix.
    header = f"{'app':<28}" + "".join(f"{c.value:>12}" for c in Campaign)
    print(header)
    print("-" * len(header))
    for package in health_apps:
        label = corpus.app(package).package.label
        row = f"{label:<28}"
        for campaign in Campaign:
            severity = collector.app_campaign.get(
                (package, campaign.value), Manifestation.NO_EFFECT
            )
            row += f"{severity.label:>12}"
        print(row)

    reboots = collector.reboots
    print(f"\ndevice reboots during the sweep: {len(reboots)}")
    for post_mortem in reboots:
        print(
            f"  campaign {post_mortem.campaign}: {post_mortem.reason}"
        )

    # The paper's conclusion for this comparison:
    crashed = {pkg for (pkg, _), m in collector.app_campaign.items() if m >= Manifestation.CRASH}
    print(
        f"\n{len(crashed)}/{len(health_apps)} health apps showed a crash or worse -- "
        "comparable to the Not-Health category (Table III), so the Google Fit "
        "dependency does not make the category measurably less robust."
    )


if __name__ == "__main__":
    main()
