#!/usr/bin/env python3
"""QGJ-UI: mutational UI-event fuzzing on the Watch emulator (Fig. 1b).

Shows the full pipeline with its intermediate artifacts:

* the Monkey log (the real tool's grammar -- QGJ-UI parses it back);
* a few semi-valid and random mutants side by side with their adb shell
  lowering (including the paper's famous off-screen tap);
* the Table V summary for both mutation modes.

Run:  python examples/ui_monkey.py
"""

from repro.apps.builtin import google_fit_spec_key
from repro.apps.catalog import build_wear_corpus, emulator_packages
from repro.apps.health import register_health_factories
from repro.qgj.monkey import Monkey, parse_monkey_log
from repro.qgj.ui_fuzzer import (
    EventMutator,
    MutationMode,
    QGJUi,
    event_to_shell,
    render_table5,
)
from repro.wear.device import PhoneDevice, WearDevice, pair


def build_emulator() -> WearDevice:
    corpus = build_wear_corpus(seed=2018)
    emulator = WearDevice(
        "watch-emulator", model="Android Watch Emulator (API 25)", is_emulator=True
    )
    phone = PhoneDevice("nexus6")
    pair(phone, emulator)
    selection = emulator_packages(corpus)
    corpus.registry.install(emulator.activity_manager)
    register_health_factories(emulator.activity_manager)
    google_fit_spec_key(corpus.registry, emulator.activity_manager)
    for package in selection:
        emulator.install(package)
    print(
        f"emulator carries {len(selection)} apps "
        "(all non-vendor built-ins + top-20 third-party)\n"
    )
    return emulator


def main() -> None:
    emulator = build_emulator()

    # Step 5-6: run monkey, show its log, parse it back.
    monkey = Monkey(emulator, seed=7)
    log_text = monkey.run(12)
    print("monkey log excerpt:")
    for line in log_text.splitlines()[:8]:
        print("  " + line)
    events = parse_monkey_log(log_text)
    print(f"parsed {len(events)} events back out of the log\n")

    # Step 7: mutate a few events both ways.
    mutator = EventMutator(events, seed=1)
    print(f"{'original':<42} {'semi-valid':<42} random")
    for event in events[:6]:
        semi = mutator.mutate(event, MutationMode.SEMI_VALID)
        rand = mutator.mutate(event, MutationMode.RANDOM)
        print(
            f"{event_to_shell(event):<42.41} "
            f"{event_to_shell(semi):<42.41} "
            f"{event_to_shell(rand):.41}"
        )

    # Step 8: the full experiment at reduced volume.
    print("\nrunning QGJ-UI, both modes ...\n")
    results = QGJUi(emulator, seed=25).run(4000)
    print(render_table5(results))
    print(
        f"\nno system crash during UI injection (boot count: {emulator.boot_count})"
        " -- UI handlers and the adb tools validate far better than intent"
        " handlers do."
    )


if __name__ == "__main__":
    main()
