#!/usr/bin/env python3
"""The paper's headline comparison: Android phone vs Android Wear crashes.

Runs the four Fuzz Intent Campaigns against a slice of both ecosystems --
``com.android.*`` apps on a Nexus 6 (Android 7.1.1) and the wearable corpus
on a Moto 360 (AW 2.0) -- and compares the crash-cause distributions.

Expected shape (Sections IV-A and IV-C): NullPointerException leads on both,
but its share on Wear has shrunk relative to older Android studies, with
IllegalArgument/IllegalStateException grown; ClassNotFoundException is far
more prominent on the phone.

Run:  python examples/phone_vs_wear.py
"""

from collections import Counter

from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import build_phone_corpus, build_wear_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.device import PhoneDevice, WearDevice

QUICK = FuzzConfig(strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1})


def crash_distribution(device, corpus, app_limit) -> Counter:
    """Fuzz up to *app_limit* apps and count crash components per class."""
    collector = StudyCollector(corpus.packages())
    fuzzer = FuzzerLibrary(device)
    adb = device.adb
    adb.logcat_clear()
    packages = [app.package.package for app in corpus.apps][:app_limit]
    for package in packages:
        for campaign in Campaign:
            fuzzer.fuzz_app(package, campaign, QUICK)
            collector.fold(adb.logcat(), package, campaign.value)
            adb.logcat_clear()
    distribution: Counter = Counter()
    for record in collector.component_records():
        for cls in record.fatal_root_classes:
            distribution[cls] += 1
    return distribution


def show(title: str, distribution: Counter) -> None:
    total = sum(distribution.values())
    print(f"{title} ({total} crash components)")
    for cls, count in distribution.most_common(8):
        short = cls.rsplit(".", 1)[-1]
        print(f"  {short:<34} {count:>4}  {count / total:>6.1%}")
    print()


def main() -> None:
    print("building and fuzzing both ecosystems (a few minutes of virtual days)...\n")

    wear_corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("moto360")
    wear_corpus.install(watch)
    wear_crashes = crash_distribution(watch, wear_corpus, app_limit=20)

    phone_corpus = build_phone_corpus(seed=711)
    phone = PhoneDevice("nexus6")
    phone_corpus.install(phone)
    phone_crashes = crash_distribution(phone, phone_corpus, app_limit=25)

    show("Android Wear 2.0 (Moto 360)", wear_crashes)
    show("Android 7.1.1 (Nexus 6, com.android.*)", phone_crashes)

    npe = "java.lang.NullPointerException"
    cnfe = "java.lang.ClassNotFoundException"
    ise = "java.lang.IllegalStateException"
    wear_total = sum(wear_crashes.values())
    phone_total = sum(phone_crashes.values())
    print("observations (cf. paper Sections IV-A / IV-C):")
    print(
        f"  NPE share: wear {wear_crashes[npe] / wear_total:.1%} "
        f"vs phone {phone_crashes[npe] / phone_total:.1%}"
    )
    print(
        f"  ClassNotFound: wear {wear_crashes[cnfe] / wear_total:.1%} "
        f"vs phone {phone_crashes[cnfe] / phone_total:.1%} (phone-heavy)"
    )
    print(
        f"  IllegalState: wear {wear_crashes[ise] / wear_total:.1%} "
        f"vs phone {phone_crashes[ise] / phone_total:.1%} (wear-heavy)"
    )


if __name__ == "__main__":
    main()
