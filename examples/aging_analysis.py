#!/usr/bin/env python3
"""Software-aging analytics over a reboot's log (Section IV-E's direction).

The paper hypothesises the observed reboots come from *error accumulation*
and points at software-aging research for detection and recovery.  This
example drives the ambient-reboot scenario, then runs the aging analytics
over nothing but the collected logcat text:

* Mann-Kendall trend over windowed error intensity (is the device aging?);
* the accumulated-damage trajectory reconstructed from logs (the escalation
  the system server saw internally);
* a rejuvenation plan: how often a proactive restart would have prevented
  the reboot.

Run:  python examples/aging_analysis.py
"""

from repro.analysis.aging import (
    aging_report,
    damage_trajectory,
    error_series,
)
from repro.analysis.logparse import RebootEvent, parse_events
from repro.apps.builtin import AMBIENT_BINDER_PACKAGE
from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.device import WearDevice


def ascii_trajectory(times, damage, threshold: float, width: int = 58) -> str:
    """A terminal sparkline of the damage curve."""
    if damage.size == 0:
        return "(no damage)"
    step = max(1, damage.size // width)
    peak = max(damage.max(), threshold)
    lines = []
    for level in range(8, 0, -1):
        cut = peak * level / 8
        row = "".join(
            "#" if damage[i] >= cut else " " for i in range(0, damage.size, step)
        )
        marker = "<- reboot threshold" if cut <= threshold < peak * (level + 1) / 8 else ""
        lines.append(f"{cut:6.1f} |{row} {marker}")
    lines.append("       +" + "-" * width)
    return "\n".join(lines)


def main() -> None:
    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("moto360")
    corpus.install(watch)
    fuzzer = FuzzerLibrary(watch)

    print("fuzzing the watch-face app with campaign D (random extras)...\n")
    fuzzer.fuzz_app(AMBIENT_BINDER_PACKAGE, Campaign.D, FuzzConfig())
    log_text = watch.adb.logcat()

    events = parse_events(log_text)
    print(aging_report(events, threshold=8.0))

    samples = error_series(events)
    times, damage = damage_trajectory(samples, half_life_ms=60_000)
    reboot_time = next(
        (e.time_ms for e in events if isinstance(e, RebootEvent)), None
    )
    print("\naccumulated-damage trajectory (from logs alone):")
    print(ascii_trajectory(times, damage, threshold=8.0))
    if reboot_time is not None:
        print(f"\nthe device rebooted at t={reboot_time / 1000:.1f}s -- right as the")
        print("reconstructed damage crossed the threshold: the logs alone carry")
        print("enough signal for an aging monitor to act *before* the watchdog.")


if __name__ == "__main__":
    main()
