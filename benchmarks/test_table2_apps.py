"""Bench: regenerate Table II (application stats).

Paper reference (Table II):

    Health/Fitness     Built-in      2   81 activities   34 services
    Health/Fitness     Third Party  11   80 activities   59 services
    Not Health/Fitness Built-in      9  168 activities  188 services
    Not Health/Fitness Third Party  24  185 activities  117 services
    Total                           46  514 activities  398 services

The synthetic corpus reproduces this population *exactly*.
"""

from repro.analysis.report import render_table2
from repro.analysis.tables import table2_population

PAPER_TABLE2 = {
    ("Health/Fitness", "Built-in"): (2, 81, 34),
    ("Health/Fitness", "Third Party"): (11, 80, 59),
    ("Not Health/Fitness", "Built-in"): (9, 168, 188),
    ("Not Health/Fitness", "Third Party"): (24, 185, 117),
}


def test_table2_regenerates(benchmark, wear):
    rows = benchmark(table2_population, wear.corpus.packages())
    print()
    print(render_table2(rows))

    by_cell = {
        (row["category"], row["classification"]): (
            row["apps"],
            row["activities"],
            row["services"],
        )
        for row in rows
        if row["category"] != "Total"
    }
    assert by_cell == PAPER_TABLE2

    totals = next(row for row in rows if row["category"] == "Total")
    assert (totals["apps"], totals["activities"], totals["services"]) == (46, 514, 398)
