"""Bench: regenerate Table III (behaviour distribution per campaign).

Paper reference (Table III), percentages of apps per category:

    campaign   Reboot H/NH   Crash H/NH   Hang H/NH   No Effect H/NH
    A          8% / 0%       23% / 30%    8% / 0%     62% / 70%
    B          0% / 0%       31% / 24%    0% / 0%     69% / 76%
    C          0% / 0%       31% / 33%    8% / 0%     62% / 67%
    D          0% / 3%       15% / 30%    8% / 0%     77% / 67%

Key shapes: reboots are rare and appear for Health in A and Not-Health in
D; hangs are a Health-only phenomenon absent from campaign B; both
categories sit near 70% no-effect ("no clear indication that Health/Fitness
apps ... are less robust than others").
"""

import pytest

from repro.analysis.report import render_table3
from repro.analysis.tables import table3_behaviors

H = "Health/Fitness"
NH = "Not Health/Fitness"


def test_table3_regenerates(benchmark, wear):
    data = benchmark(table3_behaviors, wear.collector)
    print()
    print(render_table3(data))

    # Reboots: Health in campaign A, Not-Health in campaign D, nowhere else.
    assert data["A"]["Reboot"][H] > 0
    assert data["D"]["Reboot"][NH] > 0
    for campaign in "ABCD":
        if campaign != "A":
            assert data[campaign]["Reboot"][H] == 0
        if campaign != "D":
            assert data[campaign]["Reboot"][NH] == 0

    # Hangs: Health-only, absent from campaign B.
    for campaign in "ACD":
        assert data[campaign]["Hang"][H] > 0
        assert data[campaign]["Hang"][NH] == 0
    assert data["B"]["Hang"][H] == 0

    # Crash rates within the paper's band; no category dominates.
    for campaign in "ABCD":
        assert 0.10 <= data[campaign]["Crash"][H] <= 0.40
        assert 0.15 <= data[campaign]["Crash"][NH] <= 0.40

    # Both categories mostly unaffected, at roughly the same rate.
    for campaign in "ABCD":
        assert data[campaign]["No Effect"][H] >= 0.55
        assert data[campaign]["No Effect"][NH] >= 0.55
        gap = abs(data[campaign]["No Effect"][H] - data[campaign]["No Effect"][NH])
        assert gap < 0.20, campaign
