"""Measure serial vs sharded wall-clock for the study farm.

Writes ``BENCH_farm.json`` at the repo root: full-report wall-clock at
``--workers 1`` and ``--workers 4`` for both experiment scales, plus the
host's CPU count.  On a single-core host the sharded run is expected to be
*slightly slower* than the serial one (process spawn + result pickling with
zero parallel speedup); the point of recording it is honesty about where
the crossover lies, not a victory lap.  ``--workers auto`` exists for
exactly this host: it resolves to 1 and says so.

The ``fleet`` section records the scaling story that *does* work on one
core -- cooperative lane multiplexing (serial blocking shards vs lanes=8
vs lanes=32 of the fleet kernel); see ``benchmarks/bench_fleet.py`` for
the methodology and the CI-gated lanes=16 number.

Run with: ``PYTHONPATH=src python benchmarks/bench_farm.py``
"""

import json
import os
import sys
import time

from repro.experiments.runner import full_report, phone_study, ui_study, wear_study

try:  # script execution puts benchmarks/ itself on sys.path
    from benchmarks.bench_fleet import measure as measure_fleet
except ImportError:  # pragma: no cover - script-path fallback
    from bench_fleet import measure as measure_fleet


def _timed_report(config_name: str, workers: int) -> float:
    for study in (wear_study, phone_study, ui_study):
        study.cache_clear()
    start = time.perf_counter()
    full_report(config_name, workers=workers)
    return round(time.perf_counter() - start, 2)


def main() -> None:
    results = {
        "bench": "farm_sharding",
        "cpu_count": os.cpu_count(),
        "workers_compared": [1, 4],
        "configs": {},
    }
    for config_name in ("quick", "paper"):
        serial = _timed_report(config_name, workers=1)
        sharded = _timed_report(config_name, workers=4)
        results["configs"][config_name] = {
            "serial_s": serial,
            "workers4_s": sharded,
            "speedup": round(serial / sharded, 3),
        }
    fleet = measure_fleet(lane_counts=(8, 32))
    results["fleet"] = {
        "fleet_size": fleet["fleet_size"],
        "serial_pairs_per_sec": fleet["serial_pairs_per_sec"],
        "lanes_pairs_per_sec": fleet["lanes_pairs_per_sec"],
    }
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_farm.json")
    with open(out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    json.dump(results, sys.stdout, indent=2)
    print()


if __name__ == "__main__":
    main()
