"""Bench: regenerate Fig. 3a (error manifestations over components).

Paper reference (Fig. 3a / Section IV-A): "almost 90% of the components are
not affected at all.  The most dominant error class is crash, which is more
than 8X the next error class, unresponsive.  The most severe error class,
device reboot, affects 4 of the components."
"""

from repro.analysis.figures import fig3a_manifestations
from repro.analysis.report import render_fig3a


def test_fig3a_regenerates(benchmark, wear):
    data = benchmark(fig3a_manifestations, wear.collector)
    print()
    print(render_fig3a(data))

    counts = data["counts"]
    shares = data["shares"]

    # The population is the paper's 912 components.
    assert data["total_components"] == 912

    # ~90% unaffected.
    assert 0.85 <= shares["No Effect"] <= 0.95

    # Crash dominates the error classes, well above unresponsive.
    assert counts["Crash"] >= 6 * max(counts["Hang"], 1)

    # Exactly 4 components implicated in the device reboots.
    assert counts["Reboot"] == 4

    assert sum(counts.values()) == data["total_components"]
