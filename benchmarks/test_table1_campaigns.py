"""Bench: regenerate Table I (the Fuzz Intent Campaign definitions).

Paper reference (Table I): campaign volumes per component follow
|Action| x |TypeOf(Data)| for A, |Action| + |TypeOf(Data)| for B, three
randomised rounds for C, and one valid {Action, Data} pair (plus 1-5 random
extras) per action for D -- overall A (~1M) >> C (~300K) > D (~250K) >
B (~100K) at paper scale.
"""

from repro.analysis.report import render_table1
from repro.analysis.tables import table1_campaigns
from repro.qgj.campaigns import Campaign


def test_table1_regenerates(benchmark, wear):
    rows = benchmark(table1_campaigns, wear.summary)
    print()
    print(render_table1(rows))

    volumes = {row["campaign"]: row["intents_per_component"] for row in rows}
    # The paper's volume ordering must hold at any scale.
    assert volumes[Campaign.A] > volumes[Campaign.C] > volumes[Campaign.D] > volumes[Campaign.B]

    measured = {row["campaign"]: row["intents_sent"] for row in rows}
    assert all(count > 0 for count in measured.values())
    if all(wear.config.fuzz.stride_for(c) == 1 for c in Campaign):
        # At paper scale campaign A dominates the measured volume too (the
        # quick config deliberately thins A 12x while keeping B/D in full).
        assert measured[Campaign.A] == max(measured.values())
