"""Bench: regenerate Fig. 3b (root-cause exceptions per manifestation).

Paper reference (Fig. 3b / Section IV-A):

* **Crash**: NullPointerException still dominates "as in all prior studies
  on Android reliability", but its share has shrunk in favour of
  IllegalArgumentException and IllegalStateException.
* **No effect**: "in about 90% of the cases, there is no exception thrown
  …  In the remaining 10% … an exception is thrown but that is handled by
  the app gracefully."
* **Unresponsive**: IllegalStateException dominates, with
  android.os.DeadObjectException present.
* **Reboot**: "three exception classes are equally culpable."
"""

import pytest

from repro.analysis.figures import (
    NO_EXCEPTION,
    fig3b_base_counts,
    fig3b_rootcause_by_manifestation,
)
from repro.analysis.report import render_fig3b

NPE = "java.lang.NullPointerException"
IAE = "java.lang.IllegalArgumentException"
ISE = "java.lang.IllegalStateException"
DOE = "android.os.DeadObjectException"


def test_fig3b_regenerates(benchmark, wear):
    data = benchmark(fig3b_rootcause_by_manifestation, wear.collector)
    print()
    print(render_fig3b(data, fig3b_base_counts(wear.collector)))

    crash = data["Crash"]
    # NPE leads the crash causes, but below Android-2012's 46%.
    assert max(crash, key=crash.get) == NPE
    assert crash[NPE] < 0.46
    assert crash[IAE] > 0.10
    assert crash[ISE] > 0.10

    no_effect = data["No Effect"]
    assert 0.80 <= no_effect[NO_EXCEPTION] <= 0.97
    handled_share = 1.0 - no_effect[NO_EXCEPTION]
    assert 0.03 <= handled_share <= 0.20        # paper: ~10%

    hang = data["Hang"]
    assert max(hang, key=hang.get) == ISE
    assert DOE in hang                          # "garbage collection can have
                                                #  the undesirable effect"

    reboot = data["Reboot"]
    assert len(reboot) == 3
    for share in reboot.values():
        assert share == pytest.approx(1 / 3)
