"""Bench: regenerate Fig. 2 (uncaught exception types by component kind).

Paper reference (Fig. 2 + Section IV-A): SecurityException accounts for
81.3% of *all* exceptions (excluded from the figure); of the rest,
IllegalArgumentException holds the largest share, with NullPointerException
and IllegalStateException prominent, over both Activities and Services.
"""

from repro.analysis.figures import fig2_exception_distribution
from repro.analysis.report import render_fig2

IAE = "java.lang.IllegalArgumentException"
NPE = "java.lang.NullPointerException"
ISE = "java.lang.IllegalStateException"


def test_fig2_regenerates(benchmark, wear):
    data = benchmark(fig2_exception_distribution, wear.collector)
    print()
    print(render_fig2(data))

    # SecurityException dominates overall (paper: 81.3%).
    assert 0.70 <= data["security_share"] <= 0.93

    overall = data["overall"]
    assert "java.lang.SecurityException" not in overall

    # "After SecurityException, the second largest share belongs to
    # IllegalArgumentException."
    largest = max(overall, key=overall.get)
    assert largest == IAE

    top3 = sorted(overall, key=overall.get, reverse=True)[:3]
    assert NPE in top3
    assert ISE in set(list(overall)[:]) and overall[ISE] > 0

    # Both component kinds are represented.
    for kind in ("activity", "service"):
        assert sum(data["by_kind"][kind].values()) > 0, kind
