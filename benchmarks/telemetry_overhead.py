"""Standalone telemetry-overhead measurement: injection throughput off vs on.

Run as a script (``python benchmarks/telemetry_overhead.py``) it prints the
``BENCH_telemetry.json`` payload to stdout.  It is deliberately a plain
script rather than pytest code: the overhead of the observability plane is
a cache-sensitive number, and measuring it inside a long-lived test
process -- dragging the harness's multi-hundred-MB heap through the TLB --
inflates the ratio well past what a real campaign process (which looks
exactly like this script) ever pays.  ``benchmarks/test_perf_pipeline.py``
runs this file in a fresh subprocess for the same reason.

Methodology, three defences against a noisy host (timed windows are only
tens of milliseconds):

1. The overhead ratio is computed from *CPU time* (``time.process_time``).
   On a shared machine wall-clock windows are randomly inflated by CPU
   steal, which would be misread as instrumentation cost; CPU time charges
   only what the process actually burned.  Wall-clock rates are still
   reported as the throughput headline.
2. The variants are interleaved round-robin and each instrumented variant
   is paired with its own immediately-preceding baseline window; the
   summary is the median of those paired ratios over all rotations.
   Adjacent windows share a CPU-frequency regime, so the pairs stay
   stable even while absolute rates swing.
3. Every instrumented variant runs one warm window inside its fresh
   session before the timed one, so first-touch costs (handle binds,
   span-ring pages) are not billed to the steady state a paper-scale run
   actually lives in -- and each variant times *two* windows per rotation,
   keeping the best.  Noise (a GC pause, an interrupt, a frequency dip)
   only ever adds time, so the fastest window is the cleanest estimate of
   the code's true cost -- the same reason ``timeit`` reports the min.
"""

import json
import statistics
import sys
import time

from repro import telemetry
from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.device import WearDevice

ROUNDS = 20
ROTATIONS = 9
INTENTS_PER_ROUND = 141


def measure(rounds: int = ROUNDS, rotations: int = ROTATIONS) -> dict:
    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("bench-watch")
    corpus.install(watch)
    fuzzer = FuzzerLibrary(watch)
    info = watch.packages.get_package("com.runmate.wear").activities()[1]
    config = FuzzConfig(max_intents_per_component=INTENTS_PER_ROUND)

    def window():
        wall = time.perf_counter()
        cpu = time.process_time()
        sent = 0
        for _ in range(rounds):
            sent += fuzzer.fuzz_component(info, Campaign.B, config).sent
        cpu = time.process_time() - cpu
        wall = time.perf_counter() - wall
        return sent / wall, sent / cpu

    def best_of_two():
        wall_a, cpu_a = window()
        wall_b, cpu_b = window()
        return max(wall_a, wall_b), max(cpu_a, cpu_b)

    def run_off():
        return best_of_two()

    def run_on():
        with telemetry.session():
            window()
            return best_of_two()

    def run_sampled():
        with telemetry.session(sample_every=100):
            window()
            return best_of_two()

    def run_profiled():
        with telemetry.session(profile=True):
            window()
            return best_of_two()

    variants = {
        "on": run_on,
        "sampled": run_sampled,
        "profiled": run_profiled,
    }
    window()
    window()  # warm caches before timing any variant
    best = {name: 0.0 for name in ("off", *variants)}
    ratios = {name: [] for name in variants}
    for _ in range(rotations):
        for name, run in variants.items():
            off_wall, off_cpu = run_off()
            best["off"] = max(best["off"], off_wall)
            wall_rate, cpu_rate = run()
            best[name] = max(best[name], wall_rate)
            ratios[name].append(off_cpu / cpu_rate)

    return {
        "bench": "telemetry_overhead",
        "intents_per_round": INTENTS_PER_ROUND,
        "rounds": rounds,
        "rotations": rotations,
        "intents_per_sec_telemetry_off": round(best["off"], 1),
        "intents_per_sec_telemetry_on": round(best["on"], 1),
        "intents_per_sec_sampled_100": round(best["sampled"], 1),
        "intents_per_sec_profiled": round(best["profiled"], 1),
        "overhead_ratio": round(statistics.median(ratios["on"]), 3),
        "overhead_ratio_sampled": round(statistics.median(ratios["sampled"]), 3),
        "overhead_ratio_profiled": round(statistics.median(ratios["profiled"]), 3),
    }


if __name__ == "__main__":
    json.dump(measure(), sys.stdout, indent=2)
    sys.stdout.write("\n")
