"""Bench: ablation sweeps over the reproduction's design choices.

These regenerate the DESIGN.md ablation index: how the two reboot findings
respond to the aging threshold, the amount of silent error accumulation,
and the injection pacing.  Each sweep's headline:

* reboots survive a wide band of aging thresholds (higher thresholds just
  cost more crashes before the SIGSEGV);
* reboot #1 needs a *sequence* of absorbed mismatches -- set the wedge
  beyond the campaign volume and it disappears ("no single deadly intent");
* slow the pacing beyond the crash-loop window and reboot #2 disappears
  too (the paper's 100 ms choice is load-bearing, not cosmetic).
"""

from repro.experiments.ablations import (
    ablate_aging_threshold,
    ablate_pacing,
    ablate_wedge_deliveries,
    render_rows,
)


def test_ablate_wedge_deliveries(benchmark):
    rows = benchmark.pedantic(
        ablate_wedge_deliveries, kwargs={"values": (1, 25, 200)}, rounds=1, iterations=1
    )
    print()
    print(render_rows(rows))
    by_value = {row.value: row for row in rows}
    assert by_value[1].reboots == 1
    assert by_value[25].reboots == 1
    assert by_value[200].reboots == 0


def test_ablate_pacing(benchmark):
    rows = benchmark.pedantic(
        ablate_pacing, kwargs={"delays_ms": (100.0, 16_000.0)}, rounds=1, iterations=1
    )
    print()
    print(render_rows(rows))
    by_value = {row.value: row for row in rows}
    assert by_value[100.0].reboots == 1
    assert by_value[16_000.0].reboots == 0


def test_ablate_aging_threshold(benchmark):
    rows = benchmark.pedantic(
        ablate_aging_threshold, kwargs={"thresholds": (2.0, 8.0, 32.0)}, rounds=1, iterations=1
    )
    print()
    print(render_rows(rows))
    # The sensor-path reboot is threshold independent; both reboots occur
    # across the whole band, with more crashes needed at higher thresholds.
    assert all(row.reboots == 2 for row in rows)
    crashes = [row.crashes_seen for row in rows]
    assert crashes == sorted(crashes)
