"""Performance benchmarks for the pipeline's hot paths.

Unlike the table/figure benches (which regenerate results from cached
studies), these time the moving parts themselves: campaign generation,
intent injection throughput, log parsing, and study folding -- the numbers
that determine how long a paper-scale (~2M intent) run takes.
"""

import pytest

from repro.analysis.logparse import parse_events
from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign, generate
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.device import WearDevice


@pytest.fixture(scope="module")
def installed_watch():
    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("bench-watch")
    corpus.install(watch)
    return corpus, watch


def test_campaign_a_generation_throughput(benchmark):
    from repro.android.intent import ComponentName

    cmp = ComponentName("com.a", "com.a.Main")

    def run():
        return sum(1 for _ in generate(Campaign.A, component=cmp))

    count = benchmark(run)
    assert count == 1548


def test_injection_throughput(benchmark, installed_watch):
    corpus, watch = installed_watch
    fuzzer = FuzzerLibrary(watch)
    info = watch.packages.get_package("com.runmate.wear").activities()[1]

    def run():
        return fuzzer.fuzz_component(
            info, Campaign.B, FuzzConfig(max_intents_per_component=141)
        )

    result = benchmark(run)
    assert result.sent == 141


def test_log_parsing_throughput(benchmark, installed_watch):
    corpus, watch = installed_watch
    fuzzer = FuzzerLibrary(watch)
    watch.logcat.clear()
    fuzzer.fuzz_app("com.runmate.wear", Campaign.B, FuzzConfig())
    text = watch.adb.logcat()
    assert text

    events = benchmark(parse_events, text)
    assert events


def test_collector_fold_throughput(benchmark, installed_watch):
    corpus, watch = installed_watch
    fuzzer = FuzzerLibrary(watch)
    watch.logcat.clear()
    fuzzer.fuzz_app("com.fitband.wear", Campaign.B, FuzzConfig())
    text = watch.adb.logcat()

    def run():
        collector = StudyCollector(corpus.packages())
        collector.fold(text, "com.fitband.wear", "B")
        return collector

    collector = benchmark(run)
    assert collector.segments_folded == 1
