"""Performance benchmarks for the pipeline's hot paths.

Unlike the table/figure benches (which regenerate results from cached
studies), these time the moving parts themselves: campaign generation,
intent injection throughput, log parsing, and study folding -- the numbers
that determine how long a paper-scale (~2M intent) run takes.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.logparse import parse_events
from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import build_wear_corpus
from repro.qgj.campaigns import Campaign, generate
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.device import WearDevice


@pytest.fixture(scope="module")
def installed_watch():
    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("bench-watch")
    corpus.install(watch)
    return corpus, watch


def test_campaign_a_generation_throughput(benchmark):
    from repro.android.intent import ComponentName

    cmp = ComponentName("com.a", "com.a.Main")

    def run():
        return sum(1 for _ in generate(Campaign.A, component=cmp))

    count = benchmark(run)
    assert count == 1548


def test_injection_throughput(benchmark, installed_watch):
    corpus, watch = installed_watch
    fuzzer = FuzzerLibrary(watch)
    info = watch.packages.get_package("com.runmate.wear").activities()[1]

    def run():
        return fuzzer.fuzz_component(
            info, Campaign.B, FuzzConfig(max_intents_per_component=141)
        )

    result = benchmark(run)
    assert result.sent == 141


def test_telemetry_overhead():
    """Measure injection throughput with telemetry off vs on.

    Delegates to ``benchmarks/telemetry_overhead.py`` (see its docstring
    for the full methodology) and runs it in a *fresh subprocess*: the
    overhead ratio is cache-sensitive, and dragging this test process's
    accumulated heap through the TLB inflates it well past what a real
    campaign process pays.  Writes ``BENCH_telemetry.json`` at the repo
    root so the overhead of the observability plane is tracked alongside
    the figure/table benches.
    """
    script = Path(__file__).resolve().parent / "telemetry_overhead.py"
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)

    out = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert payload["intents_per_sec_telemetry_off"] > 0
    assert payload["intents_per_sec_telemetry_on"] > 0


def test_log_parsing_throughput(benchmark, installed_watch):
    corpus, watch = installed_watch
    fuzzer = FuzzerLibrary(watch)
    watch.logcat.clear()
    fuzzer.fuzz_app("com.runmate.wear", Campaign.B, FuzzConfig())
    text = watch.adb.logcat()
    assert text

    events = benchmark(parse_events, text)
    assert events


def test_collector_fold_throughput(benchmark, installed_watch):
    corpus, watch = installed_watch
    fuzzer = FuzzerLibrary(watch)
    watch.logcat.clear()
    fuzzer.fuzz_app("com.fitband.wear", Campaign.B, FuzzConfig())
    text = watch.adb.logcat()

    def run():
        collector = StudyCollector(corpus.packages())
        collector.fold(text, "com.fitband.wear", "B")
        return collector

    collector = benchmark(run)
    assert collector.segments_folded == 1
