"""Bench: regenerate Fig. 4 (crash-causing exceptions by app classification).

Paper reference (Fig. 4 / Section IV-B): "built-in apps reported crashes at
a higher rate (64%) than third-party apps (46%)", with the failures
including built-in core AW components (Google Fit, Motorola Body).  The
percentage of each exception class is computed taking the two application
classes together.
"""

import pytest

from repro.analysis.figures import fig4_crashes_by_app_class
from repro.analysis.report import render_fig4
from repro.apps.builtin import GOOGLE_FIT_PACKAGE, MOTOROLA_BODY_PACKAGE


def test_fig4_regenerates(benchmark, wear):
    data = benchmark(fig4_crashes_by_app_class, wear.collector)
    print()
    print(render_fig4(data))

    rates = data["app_crash_rate"]
    # Built-in apps crash at a higher rate; both near the paper's numbers.
    assert rates["Built-in"] > rates["Third Party"]
    assert rates["Built-in"] == pytest.approx(7 / 11, abs=0.12)     # paper: 64%
    assert rates["Third Party"] == pytest.approx(16 / 35, abs=0.10)  # paper: 46%

    # The named built-in fitness components are among the crashers.
    assert GOOGLE_FIT_PACKAGE in data["apps_crashed"]["Built-in"]
    assert MOTOROLA_BODY_PACKAGE in data["apps_crashed"]["Built-in"]

    # Shares are normalised over both classes together.
    total = sum(
        share for shares in data["class_shares"].values() for share in shares.values()
    )
    assert total == pytest.approx(1.0)
