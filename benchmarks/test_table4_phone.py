"""Bench: regenerate Table IV (phone crash distribution per exception type).

Paper reference (Table IV), Nexus 6 / Android 7.1.1, 175 crashes:

    NullPointerException        54  30.9%
    ClassNotFoundException      46  26.3%
    IllegalArgumentException    31  17.7%
    IllegalStateException       10   5.7%
    RuntimeException             9   5.1%
    ActivityNotFoundException    7   4.0%
    UnsupportedOperationException 6  3.4%
    Others                      12   6.9%

Shape: NPE leads on the phone (vs. the Wear results where its share shrank),
with ClassNotFoundException a strong second -- "input validation on Android
has improved over the years".
"""

from repro.analysis.report import render_table4
from repro.analysis.tables import table4_phone_crashes

NPE = "java.lang.NullPointerException"
CNFE = "java.lang.ClassNotFoundException"
IAE = "java.lang.IllegalArgumentException"


def test_table4_regenerates(benchmark, phone):
    rows = benchmark(table4_phone_crashes, phone.collector)
    print()
    print(render_table4(rows))

    shares = {row["exception"]: row["share"] for row in rows}
    counts = {row["exception"]: row["crashes"] for row in rows}

    # Top-3 ordering straight from the paper.
    ordered = [row["exception"] for row in rows]
    assert ordered[:3] == [NPE, CNFE, IAE]

    assert 0.25 <= shares[NPE] <= 0.37          # paper: 30.9%
    assert 0.20 <= shares[CNFE] <= 0.32         # paper: 26.3%
    assert 0.12 <= shares[IAE] <= 0.24          # paper: 17.7%

    total = sum(counts.values())
    assert 150 <= total <= 200                   # paper: 175 crashes
    assert rows[-1]["exception"] == "Others"
