"""Bench: regenerate the extension studies (aging, lint, companion, evolution).

These go beyond the paper's tables into its discussion sections: the
longitudinal crash-cause evolution (conclusion / related work), the
software-aging analysis (Section IV-E), QGJ-Lint's static-vs-dynamic
correlation ("better tool support"), and the cross-device companion
propagation study (threats-to-validity future work).
"""

import pytest

from repro.analysis.aging import error_series, mann_kendall_trend, peak_damage
from repro.analysis.compare import evolution_table, render_evolution, verdict
from repro.analysis.logparse import parse_events
from repro.qgj.lint import correlate, lint_device, render_report


def test_evolution_table_regenerates(benchmark, wear, phone):
    rows = benchmark(evolution_table, wear.collector, phone.collector)
    print()
    print(render_evolution(rows))
    result = verdict(wear.collector, phone.collector)
    # The conclusion's longitudinal claims, verified against both studies:
    assert result.npe_shrank_since_2012, "NPE share must shrink vs the 2012 baseline"
    assert result.ise_grew_on_wear, "ISE share must grow on Wear"
    assert result.cnfe_phone_heavy, "ClassNotFound must be phone-heavy"


def test_lint_correlation_regenerates(benchmark, wear):
    findings = lint_device(wear.watch)
    result = benchmark(correlate, findings, wear.collector)
    print()
    print(render_report(findings, limit=6))
    print(
        f"\nlint flagged {result.flagged_components} components; QGJ crashed "
        f"{result.crashed_components}; recall {result.recall:.0%}, "
        f"flag rate {result.flag_rate:.0%}"
    )
    # Static warnings must cover the dynamic findings completely (the cost
    # is the high flag rate -- why lint needs dynamic confirmation).
    assert result.recall == pytest.approx(1.0)
    assert result.flag_rate < 0.95


def test_aging_signal_regenerates(benchmark, wear):
    """The pre-reboot damage spike is recoverable from logs alone."""
    from repro.apps.builtin import AMBIENT_BINDER_PACKAGE
    from repro.apps.catalog import build_wear_corpus
    from repro.qgj.campaigns import Campaign
    from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
    from repro.wear.device import WearDevice

    corpus = build_wear_corpus(seed=2018)
    watch = WearDevice("aging-bench")
    corpus.install(watch)
    FuzzerLibrary(watch).fuzz_app(AMBIENT_BINDER_PACKAGE, Campaign.D, FuzzConfig())
    text = watch.adb.logcat()

    def analyse():
        events = parse_events(text)
        samples = error_series(events)
        return peak_damage(samples), mann_kendall_trend(samples)

    peak, trend = benchmark(analyse)
    print(f"\npeak reconstructed damage before reboot: {peak:.1f}")
    assert peak > 3.0
    assert watch.boot_count == 2  # the reboot really happened
