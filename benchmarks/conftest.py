"""Shared fixtures for the table/figure regeneration benchmarks.

The three studies (wear, phone, UI) are expensive, so they run once per
pytest session and every benchmark regenerates its table or figure from the
cached results -- mirroring the paper's own flow, where one experimental
campaign feeds all the reported tables.

Scale is selected with ``REPRO_SCALE`` (``quick`` default, ``paper`` for the
full Table I volumes -- ~2M intents and 2x41,405 UI events on the virtual
clock).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import phone_study, ui_study, wear_study


def _scale() -> str:
    return os.environ.get("REPRO_SCALE", "quick")


@pytest.fixture(scope="session")
def scale() -> str:
    return _scale()


@pytest.fixture(scope="session")
def wear(scale):
    return wear_study(scale)


@pytest.fixture(scope="session")
def phone(scale):
    return phone_study(scale)


@pytest.fixture(scope="session")
def ui(scale):
    return ui_study(scale)
