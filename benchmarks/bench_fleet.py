"""Fleet-kernel throughput: blocking ``run_shard`` vs multiplexed lanes.

Writes ``BENCH_fleet.json`` at the repo root.  The serial baseline is the
pre-fleet execution model -- one blocking ``run_shard`` on a fresh device
pair per pair, each paying its own corpus build, full 46-app install and
study scaffolding.  The fleet rows run the same pairs through
``run_fleet_study`` at several lane counts: one process, one shared
read-only corpus, per-pair package-slice installs.

The workload is population screening -- one intent per component of one
package per pair -- because small per-pair budgets are the fleet kernel's
home turf: the ROADMAP's population question needs many cheap pairs, and
at small budgets the old model's per-pair setup dominates.  The CI gate
asserts lanes=16 sustains >=3x the serial pairs/sec on the 1-core bench
host; this script exits 1 when the gate fails.

Run with: ``PYTHONPATH=src python benchmarks/bench_fleet.py``
"""

import json
import os
import sys
import time

from repro.apps.profiles import DEFAULT_COHORT_SPEC
from repro.experiments.config import ExperimentConfig
from repro.farm.shard import ShardSpec, run_shard
from repro.fleet import plan_pairs, run_fleet_study
from repro.fleet.lane import shared_corpus
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig

FLEET_SIZE = 96
CAMPAIGNS = (Campaign.B,)
GATE_LANES = 16
GATE_MIN_SPEEDUP = 3.0

BENCH_CONFIG = ExperimentConfig(
    name="bench",
    fuzz=FuzzConfig(stride=8, max_intents_per_component=1),
    ui_events=0,
)


def measure(fleet_size: int = FLEET_SIZE, lane_counts=(8, GATE_LANES, 32)) -> dict:
    """Measure serial and fleet pairs/sec over the same pair plan."""
    shared_corpus.cache_clear()
    corpus = shared_corpus(BENCH_CONFIG.corpus_seed)
    packages = [app.package.package for app in corpus.apps]
    pairs = plan_pairs(
        fleet_size, DEFAULT_COHORT_SPEC, BENCH_CONFIG, packages, CAMPAIGNS
    )

    # Old model: every pair is its own wear shard on a fresh device pair
    # (run_shard builds and installs its own full corpus each time).
    start = time.perf_counter()
    for spec in pairs:
        run_shard(
            ShardSpec(
                study="wear",
                index=spec.pair_id,
                key=spec.packages[0],
                packages=spec.packages,
                campaigns=CAMPAIGNS,
                config=BENCH_CONFIG,
                seed=spec.seed,
                plan=spec.plan,
            )
        )
    serial_s = time.perf_counter() - start

    lanes_pps = {}
    for lanes in lane_counts:
        shared_corpus.cache_clear()  # every packing pays its own corpus build
        start = time.perf_counter()
        run_fleet_study(
            fleet_size, config=BENCH_CONFIG, lanes=lanes, campaigns=CAMPAIGNS
        )
        lanes_pps[str(lanes)] = round(
            fleet_size / (time.perf_counter() - start), 1
        )

    serial_pps = round(fleet_size / serial_s, 1)
    return {
        "fleet_size": fleet_size,
        "campaigns": [campaign.value for campaign in CAMPAIGNS],
        "max_intents_per_component": BENCH_CONFIG.fuzz.max_intents_per_component,
        "serial_pairs_per_sec": serial_pps,
        "lanes_pairs_per_sec": lanes_pps,
    }


def main() -> int:
    results = {
        "bench": "fleet_kernel",
        "cpu_count": os.cpu_count(),
        **measure(),
        "gate_lanes": GATE_LANES,
        "gate_min_speedup": GATE_MIN_SPEEDUP,
    }
    speedup = round(
        results["lanes_pairs_per_sec"][str(GATE_LANES)]
        / results["serial_pairs_per_sec"],
        2,
    )
    results["speedup_lanes16"] = speedup
    results["gate_passed"] = speedup >= GATE_MIN_SPEEDUP
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_fleet.json")
    with open(out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    json.dump(results, sys.stdout, indent=2)
    print()
    if not results["gate_passed"]:
        print(
            f"FAIL: lanes={GATE_LANES} at {speedup}x serial, "
            f"gate is {GATE_MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
