"""Measure guided vs blind crash-bucket coverage at an equal intent budget.

Writes ``BENCH_guided.json`` at the repo root: for the full wear catalog at
quick scale, the blind study's actual intent volume, then both pipelines'
distinct ``(component, exception)`` crash buckets, buckets per 1k intents,
the guided corpus size, and wall-clock for each side.  The guided study's
worker-count determinism means the numbers are identical at any ``--workers``
value; wall-clock is recorded for the sequential path.

Run with: ``PYTHONPATH=src python benchmarks/bench_guided.py``
"""

import json
import os
import sys
import time

from repro.experiments.ablations import ablate_guided_vs_blind


def main() -> None:
    start = time.perf_counter()
    rows = ablate_guided_vs_blind()
    wall = round(time.perf_counter() - start, 2)
    by_mode = {row.mode: row for row in rows}
    blind, guided = by_mode["blind"], by_mode["guided"]
    results = {
        "bench": "guided_vs_blind",
        "cpu_count": os.cpu_count(),
        "config": "quick",
        "budget_intents": blind.intents,
        "wall_s_total": wall,
        "modes": {
            "blind": {
                "intents": blind.intents,
                "distinct_buckets": blind.distinct_buckets,
                "buckets_per_kintents": round(blind.buckets_per_kintents, 4),
            },
            "guided": {
                "intents": guided.intents,
                "distinct_buckets": guided.distinct_buckets,
                "buckets_per_kintents": round(guided.buckets_per_kintents, 4),
                "corpus_size": guided.corpus_size,
                "rounds": guided.rounds,
            },
        },
        "guided_minus_blind_buckets": guided.distinct_buckets - blind.distinct_buckets,
    }
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_guided.json")
    with open(out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    json.dump(results, sys.stdout, indent=2)
    print()


if __name__ == "__main__":
    main()
