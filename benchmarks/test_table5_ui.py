"""Bench: regenerate Table V (QGJ-UI exceptions and crashes).

Paper reference (Table V), 41,405 events per mode on the Watch emulator:

    semi-valid:  1496 exceptions (3.6%),  22 crashes (0.05%)
    random:       615 exceptions (1.5%),   0 crashes (0%)

Shape: UI fuzzing is orders of magnitude more benign than intent fuzzing;
semi-valid mutation penetrates deeper than random (whose absurd coordinates
land outside every window and whose garbage is rejected by the adb tools);
random injections never crash anything; no system crash either way.
"""

from repro.analysis.report import render_table5
from repro.analysis.tables import table5_ui


def test_table5_regenerates(benchmark, ui):
    rows = benchmark(table5_ui, ui.results)
    print()
    print(render_table5(rows))

    semi = next(row for row in rows if row["experiment"] == "semi-valid")
    rand = next(row for row in rows if row["experiment"] == "random")

    # Identical event volumes per mode, as in the paper.
    assert semi["injected_events"] == rand["injected_events"]

    # Semi-valid raises clearly more exceptions than random.
    assert semi["exceptions_raised"] > rand["exceptions_raised"]
    assert 0.015 <= semi["exception_rate"] <= 0.07      # paper: 3.6%
    assert 0.002 <= rand["exception_rate"] <= 0.03      # paper: 1.5%

    # Crashes: a trace amount for semi-valid, none for random.
    assert rand["crashes"] == 0
    assert semi["crash_rate"] <= 0.002                   # paper: 0.05%

    # "Reassuringly, we did not observe any system crash during our UI
    # injections."
    assert ui.emulator.boot_count == 1
