"""Command-line entry point: ``python -m repro [quick|paper]``.

Runs the three studies (wear, phone, QGJ-UI) and prints the complete
reproduced report -- every table and figure from the paper's evaluation.
"""

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
