"""Cached study runners and the full-report entry point.

The benchmark suite regenerates every table and figure; running the whole
fuzzing study once per benchmark file would multiply a minutes-long
simulation nine-fold, so the three studies are memoised per configuration
here.  ``python -m repro.experiments.runner [quick|paper]`` prints the
complete reproduced report.
"""

from __future__ import annotations

import functools
import sys
from typing import Optional

from repro import telemetry
from repro.analysis import figures, report, tables
from repro.experiments.config import ExperimentConfig, by_name
from repro.experiments.phone_experiment import PhoneStudyResult, run_phone_study
from repro.experiments.ui_experiment import UiStudyResult, run_ui_study
from repro.experiments.wear_experiment import WearStudyResult, run_wear_study


@functools.lru_cache(maxsize=2)
def wear_study(config_name: str = "quick") -> WearStudyResult:
    return run_wear_study(by_name(config_name))


@functools.lru_cache(maxsize=2)
def phone_study(config_name: str = "quick") -> PhoneStudyResult:
    return run_phone_study(by_name(config_name))


@functools.lru_cache(maxsize=2)
def ui_study(config_name: str = "quick") -> UiStudyResult:
    return run_ui_study(by_name(config_name))


def full_report(config_name: str = "quick") -> str:
    """Every table and figure of the paper, regenerated, as one report."""
    wear = wear_study(config_name)
    phone = phone_study(config_name)
    ui = ui_study(config_name)

    sections = [
        f"== Reproduced results ({config_name} scale) ==",
        f"wear study: {wear.intents_sent} intents, "
        f"{wear.reboot_count} reboots, {wear.virtual_hours():.1f} virtual hours",
        f"phone study: {phone.intents_sent} intents",
        "",
        report.render_table1(tables.table1_campaigns(wear.summary)),
        "",
        report.render_table2(tables.table2_population(wear.corpus.packages())),
        "",
        report.render_table3(tables.table3_behaviors(wear.collector)),
        "",
        report.render_table4(tables.table4_phone_crashes(phone.collector)),
        "",
        report.render_table5(tables.table5_ui(ui.results)),
        "",
        report.render_fig2(figures.fig2_exception_distribution(wear.collector)),
        "",
        report.render_fig3a(figures.fig3a_manifestations(wear.collector)),
        "",
        report.render_fig3b(
            figures.fig3b_rootcause_by_manifestation(wear.collector),
            figures.fig3b_base_counts(wear.collector),
        ),
        "",
        report.render_fig4(figures.fig4_crashes_by_app_class(wear.collector)),
        "",
        report.render_reboot_postmortems(wear.collector),
    ]
    return "\n".join(sections)


def export_json(config_name: str = "quick", path: Optional[str] = None) -> str:
    """The full study as machine-readable JSON (see analysis.export)."""
    from repro.analysis.export import assert_json_safe, dump_json, export_results

    results = export_results(
        wear_study(config_name), phone_study(config_name), ui_study(config_name)
    )
    assert_json_safe(results)
    return dump_json(results, path=path)


USAGE = """\
usage: python -m repro [quick|paper] [--json FILE] [--telemetry DIR]

Runs the three reproduced studies (wear, phone, QGJ-UI) and prints every
table and figure of the paper's evaluation.

options:
  quick|paper      experiment scale (default: quick)
  --json FILE      write the machine-readable study export instead
  --telemetry DIR  enable campaign telemetry and export metrics.prom,
                   trace.jsonl and summary.txt under DIR
  -h, --help       show this message\
"""


def _take_flag_value(args: list, flag: str) -> Optional[str]:
    """Pop ``flag VALUE`` from *args*; raises ValueError when VALUE is missing."""
    if flag not in args:
        return None
    index = args.index(flag)
    if index + 1 >= len(args):
        raise ValueError(f"missing value for {flag}")
    value = args[index + 1]
    del args[index : index + 2]
    return value


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if "-h" in args or "--help" in args:
        print(USAGE)
        return 0
    try:
        json_path = _take_flag_value(args, "--json")
        telemetry_dir = _take_flag_value(args, "--telemetry")
    except ValueError as exc:
        print(f"{exc}\n{USAGE}", file=sys.stderr)
        return 2
    config_name = args[0] if args else "quick"
    by_name(config_name)  # validate early
    handle: Optional[telemetry.Telemetry] = None
    if telemetry_dir is not None:
        handle = telemetry.enable()
        handle.progress.add_listener(lambda snap: print(snap.render(), file=sys.stderr))
    if json_path is not None:
        export_json(config_name, path=json_path)
        print(f"wrote {json_path}")
    else:
        print(full_report(config_name))
    if handle is not None:
        from repro.telemetry.exporters import export_snapshot

        written = export_snapshot(telemetry_dir, handle)
        for name, path in sorted(written.items()):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
