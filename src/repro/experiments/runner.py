"""Cached study runners and the full-report entry point.

The benchmark suite regenerates every table and figure; running the whole
fuzzing study once per benchmark file would multiply a minutes-long
simulation nine-fold, so the three studies are memoised per configuration
here.  ``python -m repro.experiments.runner [quick|paper]`` prints the
complete reproduced report.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Optional

from repro import faults, telemetry
from repro.analysis import figures, report, tables
from repro.experiments.config import ExperimentConfig, by_name
from repro.experiments.phone_experiment import PhoneStudyResult, run_phone_study
from repro.experiments.ui_experiment import UiStudyResult, run_ui_study
from repro.experiments.wear_experiment import WearStudyResult, run_wear_study

from repro.apps.profiles import DEFAULT_COHORT_SPEC, parse_cohort_spec
from repro.farm.health import ShardPoisonedError, StudyInterrupted
from repro.farm.pool import resolve_workers
from repro.faults.errors import CampaignKilled
from repro.faults.plan import BASE_WEAR_API, FaultPlan


def _study_cache(fn):
    """Memoise a study per *effective* configuration.

    The cache key includes the installed fault plan's fingerprint, so a
    result computed under one plan (or none) is never served to a run under
    another.  Any extra keyword arguments (journal/resume/kill/workers
    knobs) make the run stateful and bypass the cache entirely.
    """
    cache = {}

    @functools.wraps(fn)
    def wrapper(config_name: str = "quick", **kwargs):
        config = by_name(config_name)  # validate before touching the cache
        if kwargs:
            return fn(config, **kwargs)
        key = (config_name, faults.fingerprint())
        if key not in cache:
            cache[key] = fn(config)
        return cache[key]

    wrapper.cache_clear = cache.clear
    return wrapper


@_study_cache
def wear_study(config: ExperimentConfig, **kwargs) -> WearStudyResult:
    return run_wear_study(config, **kwargs)


@_study_cache
def phone_study(config: ExperimentConfig, **kwargs) -> PhoneStudyResult:
    return run_phone_study(config, **kwargs)


@_study_cache
def ui_study(config: ExperimentConfig) -> UiStudyResult:
    return run_ui_study(config)


def full_report(
    config_name: str = "quick", workers: int = 1, healths=None, **study_kwargs
) -> str:
    """Every table and figure of the paper, regenerated, as one report.

    The report is byte-identical at every *workers* count: the farm merges
    shard outputs back into the exact artifacts the serial run produces.
    Extra keyword arguments (supervision knobs) pass through to the wear and
    phone studies; *healths*, when given, is a list the studies' farm health
    reports are appended to so the CLI can surface retries and poisoned
    shards on stderr.
    """
    if workers != 1:
        study_kwargs["workers"] = workers
    wear = wear_study(config_name, **study_kwargs)
    phone = phone_study(config_name, **study_kwargs)
    ui = ui_study(config_name)
    if healths is not None:
        healths.extend(h for h in (wear.health, phone.health) if h is not None)

    sections = [
        f"== Reproduced results ({config_name} scale) ==",
        f"wear study: {wear.intents_sent} intents, "
        f"{wear.reboot_count} reboots, {wear.virtual_hours():.1f} virtual hours",
        f"phone study: {phone.intents_sent} intents",
        "",
        report.render_table1(tables.table1_campaigns(wear.summary)),
        "",
        report.render_table2(tables.table2_population(wear.corpus.packages())),
        "",
        report.render_table3(tables.table3_behaviors(wear.collector)),
        "",
        report.render_table4(tables.table4_phone_crashes(phone.collector)),
        "",
        report.render_table5(tables.table5_ui(ui.results)),
        "",
        report.render_fig2(figures.fig2_exception_distribution(wear.collector)),
        "",
        report.render_fig3a(figures.fig3a_manifestations(wear.collector)),
        "",
        report.render_fig3b(
            figures.fig3b_rootcause_by_manifestation(wear.collector),
            figures.fig3b_base_counts(wear.collector),
        ),
        "",
        report.render_fig4(figures.fig4_crashes_by_app_class(wear.collector)),
        "",
        report.render_reboot_postmortems(wear.collector),
    ]
    return "\n".join(sections)


def export_json(
    config_name: str = "quick",
    path: Optional[str] = None,
    workers: int = 1,
    healths=None,
    **study_kwargs,
) -> str:
    """The full study as machine-readable JSON (see analysis.export)."""
    from repro.analysis.export import assert_json_safe, dump_json, export_results

    if workers != 1:
        study_kwargs["workers"] = workers
    wear = wear_study(config_name, **study_kwargs)
    phone = phone_study(config_name, **study_kwargs)
    if healths is not None:
        healths.extend(h for h in (wear.health, phone.health) if h is not None)
    results = export_results(wear, phone, ui_study(config_name))
    assert_json_safe(results)
    return dump_json(results, path=path)


USAGE = """\
usage: python -m repro [quick|paper] [--json FILE] [--telemetry DIR]
                       [--telemetry-sample N] [--profile]
                       [--workers N|auto] [--fault-seed N]
                       [--service-fault-seed N] [--compat-skew N]
                       [--fleet N] [--cohorts SPEC] [--lanes M]
                       [--journal FILE | --resume FILE] [--kill-after N]
                       [--shard-timeout S] [--max-shard-attempts N]
                       [--allow-partial]
                       [--guided] [--corpus-dir DIR] [--scheduler NAME]
                       [--guided-budget N]

Runs the three reproduced studies (wear, phone, QGJ-UI) and prints every
table and figure of the paper's evaluation.

options:
  quick|paper      experiment scale (default: quick)
  --json FILE      write the machine-readable study export instead
  --telemetry DIR  enable campaign telemetry and export metrics.prom,
                   trace.jsonl and summary.txt under DIR
  --telemetry-sample N
                   retain 1-in-N spans per span name (deterministic, seeded;
                   default 1 = keep everything; requires --telemetry)
  --profile        arm the telemetry self-profiler: adds a SELF-PROFILE
                   section to summary.txt and writes a flamegraph-ready
                   profile.collapsed under DIR (requires --telemetry)
  --workers N|auto shard the studies across N supervised worker processes
                   (default: 1; the merged report is identical at any N,
                   even across worker crashes and retries); auto resolves
                   to the core count, clamped to the units of work and to
                   1 on a single-core host (with a one-line note)
  --fault-seed N   arm the chaos plane: inject seeded environment faults
                   (adb drops, binder failures, lmkd kills, log truncation,
                   service outages, corrupted replies, system_server
                   restarts)
  --service-fault-seed N
                   arm (only) the OS-service fault streams -- service
                   unavailability windows, corrupted service replies,
                   system_server restarts; composes with --fault-seed
  --compat-skew N  pin the device pair's API levels N apart (phone behind
                   the wearable): version-gated calls fail with
                   NoSuchMethodError-style compat mismatches and data-sync
                   replication degrades; 0 is a matched pair (no effect)
  --fleet N        run the fleet study instead of the full report: N
                   heterogeneous watch+phone pairs multiplexed through the
                   cooperative virtual-clock kernel; prints the per-cohort
                   population report (byte-identical at any --lanes x
                   --workers packing).  Composes with the chaos flags,
                   --guided, --journal/--resume/--kill-after, --telemetry
  --cohorts SPEC   cohort cycle for --fleet, e.g. "flagship,budget:2,aging"
                   (name[:weight], comma-separated; default
                   "flagship,budget,legacy,aging"; requires --fleet)
  --lanes M        cooperative schedulers per fleet, each multiplexing its
                   strided share of the pairs (default: 1; requires
                   --fleet; output is packing-invariant)
  --journal FILE   checkpoint the wear study to FILE after every
                   (package, campaign) segment; prints the study summary
  --resume FILE    resume a journalled wear study; reproduces the summary
                   the uninterrupted run would have produced
  --kill-after N   simulate the host dying after N injections study-wide
                   (exit 3, resumable from the journal; at --workers N > 1
                   the counter is shared across all workers)
  --shard-timeout S
                   per-shard wall-clock deadline in seconds at --workers
                   N > 1; a worker past it is killed and its shard retried
  --max-shard-attempts N
                   attempts per shard before it is quarantined as poison
                   (default: 2)
  --allow-partial  complete the study even if shards fail every attempt,
                   printing a DEGRADED health report and exiting 4 instead
                   of aborting
  --guided         run the feedback-guided wear study instead of the blind
                   report: a bandit scheduler shifts the intent budget
                   toward (package, campaign) arms still yielding novel
                   behaviours; prints the guided report (byte-identical at
                   any --workers count).  Composes with the chaos flags
                   (--fault-seed / --service-fault-seed / --compat-skew);
                   stays incompatible with --journal/--resume (guided
                   rounds re-shard dynamically, so segment journals have
                   no stable identity to resume), with --kill-after (it
                   rides the journal), and with --json (the guided report
                   has its own format)
  --corpus-dir DIR write corpus.jsonl and schedule.jsonl under DIR
                   (requires --guided)
  --scheduler NAME bandit policy: ucb (default) or thompson
                   (requires --guided)
  --guided-budget N
                   total intent budget for the guided study (default: what
                   the blind wear study would spend; requires --guided)
  -h, --help       show this message

service mode:
  python -m repro serve|submit|status ...
                   the fuzzing-as-a-service surface: a durable study queue
                   plus a recoverable daemon over one ROOT directory (run
                   `python -m repro serve --help` for its options)

exit codes:
  0    complete report, every shard clean (retries allowed)
  2    usage error
  3    campaign killed by --kill-after (resumable via --resume)
  4    degraded: shards quarantined as poison (coverage dropped)
  5    service submission rejected by admission control (queue full)
  6    service submit --wait: study quarantined as poison; no report
  7    service submit --wait: no live daemon to complete the study
  130  interrupted (SIGINT/SIGTERM drain; resumable via --resume --
       or the service daemon drained: leased study checkpointed and
       released, the WAL still holds the queue)\
"""


class _UsageError(Exception):
    """Raised by the parser in place of SystemExit so main() can return 2."""


class _ArgumentParser(argparse.ArgumentParser):
    def error(self, message):
        raise _UsageError(message)


def _build_parser() -> _ArgumentParser:
    parser = _ArgumentParser(prog="python -m repro", add_help=False)
    parser.add_argument("config", nargs="?", default="quick")
    parser.add_argument("--json", dest="json_path", metavar="FILE")
    parser.add_argument("--telemetry", dest="telemetry_dir", metavar="DIR")
    parser.add_argument(
        "--telemetry-sample", dest="telemetry_sample", type=int, default=1, metavar="N"
    )
    parser.add_argument("--profile", dest="profile", action="store_true")
    parser.add_argument("--workers", default="1", metavar="N")
    parser.add_argument("--fleet", dest="fleet", type=int, metavar="N")
    parser.add_argument("--cohorts", dest="cohorts", metavar="SPEC")
    parser.add_argument("--lanes", dest="lanes", type=int, metavar="M")
    parser.add_argument("--fault-seed", dest="fault_seed", type=int, metavar="N")
    parser.add_argument(
        "--service-fault-seed", dest="service_fault_seed", type=int, metavar="N"
    )
    parser.add_argument("--compat-skew", dest="compat_skew", type=int, metavar="N")
    checkpoint = parser.add_mutually_exclusive_group()
    checkpoint.add_argument("--journal", dest="journal_path", metavar="FILE")
    checkpoint.add_argument("--resume", dest="resume_path", metavar="FILE")
    parser.add_argument("--kill-after", dest="kill_after", type=int, metavar="N")
    parser.add_argument(
        "--shard-timeout", dest="shard_timeout", type=float, metavar="S"
    )
    parser.add_argument(
        "--max-shard-attempts", dest="max_shard_attempts", type=int, metavar="N"
    )
    parser.add_argument("--allow-partial", dest="allow_partial", action="store_true")
    parser.add_argument("--guided", dest="guided", action="store_true")
    parser.add_argument("--corpus-dir", dest="corpus_dir", metavar="DIR")
    parser.add_argument("--scheduler", dest="scheduler", metavar="NAME")
    parser.add_argument(
        "--guided-budget", dest="guided_budget", type=int, metavar="N"
    )
    return parser


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] in ("serve", "submit", "status"):
        # The service surface rides the same entry point; see
        # repro.service.cli for its usage and exit codes.
        from repro.service.cli import main as service_main

        return service_main(args)
    if "-h" in args or "--help" in args:
        print(USAGE)
        return 0
    try:
        opts = _build_parser().parse_args(args)
    except _UsageError as exc:
        print(f"{exc}\n{USAGE}", file=sys.stderr)
        return 2
    config_name = opts.config
    by_name(config_name)  # validate early
    if opts.workers != "auto":
        try:
            workers_given = int(opts.workers)
        except ValueError:
            print(
                f"--workers must be an integer or 'auto', got {opts.workers!r}"
                f"\n{USAGE}",
                file=sys.stderr,
            )
            return 2
        if workers_given < 1:
            print(
                f"--workers must be >= 1, got {opts.workers}\n{USAGE}", file=sys.stderr
            )
            return 2
    if opts.fleet is None:
        for flag, value in (("--cohorts", opts.cohorts), ("--lanes", opts.lanes)):
            if value is not None:
                print(f"{flag} requires --fleet\n{USAGE}", file=sys.stderr)
                return 2
    else:
        if opts.fleet < 1:
            print(f"--fleet must be >= 1, got {opts.fleet}\n{USAGE}", file=sys.stderr)
            return 2
        if opts.lanes is not None and opts.lanes < 1:
            print(f"--lanes must be >= 1, got {opts.lanes}\n{USAGE}", file=sys.stderr)
            return 2
        if opts.cohorts is not None:
            try:
                parse_cohort_spec(opts.cohorts)
            except ValueError as exc:
                print(f"--cohorts: {exc}\n{USAGE}", file=sys.stderr)
                return 2
        if opts.json_path is not None:
            print(
                f"--fleet cannot combine with --json (the fleet report has "
                f"its own format)\n{USAGE}",
                file=sys.stderr,
            )
            return 2
    lanes = opts.lanes if opts.lanes is not None else 1
    workers = resolve_workers(
        opts.workers if opts.workers == "auto" else int(opts.workers),
        units=lanes if opts.fleet is not None else None,
    )
    if opts.shard_timeout is not None and opts.shard_timeout <= 0:
        print(
            f"--shard-timeout must be > 0, got {opts.shard_timeout}\n{USAGE}",
            file=sys.stderr,
        )
        return 2
    if opts.max_shard_attempts is not None and opts.max_shard_attempts < 1:
        print(
            f"--max-shard-attempts must be >= 1, got {opts.max_shard_attempts}\n{USAGE}",
            file=sys.stderr,
        )
        return 2
    supervision_kwargs = {}
    if opts.shard_timeout is not None:
        supervision_kwargs["shard_timeout"] = opts.shard_timeout
    if opts.max_shard_attempts is not None:
        supervision_kwargs["max_shard_attempts"] = opts.max_shard_attempts
    if opts.allow_partial:
        supervision_kwargs["allow_partial"] = True
    if opts.compat_skew is not None and not (
        0 <= opts.compat_skew < BASE_WEAR_API
    ):
        print(
            f"--compat-skew must be in [0, {BASE_WEAR_API - 1}], got "
            f"{opts.compat_skew}\n{USAGE}",
            file=sys.stderr,
        )
        return 2
    # One composition rule, shared with the service daemon: --fault-seed
    # arms every stream, --service-fault-seed arms (or re-seeds onto) the
    # OS-service streams, --compat-skew pins the pair's API matrix.
    plan: Optional[FaultPlan] = faults.compose_plan(
        fault_seed=opts.fault_seed,
        service_fault_seed=opts.service_fault_seed,
        compat_skew=opts.compat_skew,
    )
    if plan is not None:
        faults.install(plan)
    if opts.telemetry_sample < 1:
        print(
            f"--telemetry-sample must be >= 1, got {opts.telemetry_sample}\n{USAGE}",
            file=sys.stderr,
        )
        return 2
    if opts.telemetry_dir is None and (opts.telemetry_sample != 1 or opts.profile):
        flag = "--telemetry-sample" if opts.telemetry_sample != 1 else "--profile"
        print(f"{flag} requires --telemetry DIR\n{USAGE}", file=sys.stderr)
        return 2
    if not opts.guided:
        for flag, value in (
            ("--corpus-dir", opts.corpus_dir),
            ("--scheduler", opts.scheduler),
            ("--guided-budget", opts.guided_budget),
        ):
            if value is not None:
                print(f"{flag} requires --guided\n{USAGE}", file=sys.stderr)
                return 2
    else:
        if opts.scheduler is not None and opts.scheduler not in ("ucb", "thompson"):
            print(
                f"--scheduler must be ucb or thompson, got {opts.scheduler!r}\n{USAGE}",
                file=sys.stderr,
            )
            return 2
        if opts.guided_budget is not None and opts.guided_budget < 1:
            print(
                f"--guided-budget must be >= 1, got {opts.guided_budget}\n{USAGE}",
                file=sys.stderr,
            )
            return 2
        if opts.fleet is None and (
            opts.json_path is not None
            or opts.journal_path is not None
            or opts.resume_path is not None
            or opts.kill_after is not None
        ):
            # A guided *fleet* journals fine: lane journals checkpoint whole
            # pairs and the manifest records the guided knobs for resume.
            print(
                f"--guided cannot combine with --json or checkpointing flags\n{USAGE}",
                file=sys.stderr,
            )
            return 2
    handle: Optional[telemetry.Telemetry] = None
    if opts.telemetry_dir is not None:
        handle = telemetry.enable(
            sample_every=opts.telemetry_sample, profile=opts.profile
        )
        handle.progress.add_listener(lambda snap: print(snap.render(), file=sys.stderr))
    stateful = (
        opts.journal_path is not None
        or opts.resume_path is not None
        or opts.kill_after is not None
    )
    journal = opts.resume_path if opts.resume_path is not None else opts.journal_path
    resume_hint = (
        f"; resume with: python -m repro {config_name} --resume {journal}"
        if journal is not None
        else ""
    )
    fleet_active = opts.fleet is not None
    if not fleet_active and opts.resume_path is not None:
        # A bare ``--resume FILE`` must route a fleet manifest back to the
        # fleet study; the header records which study wrote it.
        from repro.farm import StudyManifest

        try:
            fleet_active = (
                StudyManifest(opts.resume_path).header().get("study") == "fleet"
            )
        except (OSError, ValueError):
            fleet_active = False  # let the wear path surface the real error
    if fleet_active and opts.corpus_dir is not None:
        print(
            f"--corpus-dir cannot combine with --fleet (guided fleet pairs "
            f"keep pair-local corpora)\n{USAGE}",
            file=sys.stderr,
        )
        return 2
    healths = []
    try:
        try:
            if fleet_active:
                from repro.fleet import run_fleet_study

                guided_config = None
                if opts.guided:
                    from repro.guided import GuidedConfig

                    guided_config = GuidedConfig(
                        scheduler=opts.scheduler or "ucb",
                        budget=opts.guided_budget,
                    )
                if opts.kill_after is not None and journal is None:
                    print(
                        f"--kill-after needs --journal or --resume\n{USAGE}",
                        file=sys.stderr,
                    )
                    return 2
                study_kwargs = dict(supervision_kwargs)
                if journal is not None:
                    study_kwargs["journal_path"] = journal
                if opts.resume_path is not None:
                    study_kwargs["resume"] = True
                if opts.kill_after is not None:
                    study_kwargs["kill_after_injections"] = opts.kill_after
                result = run_fleet_study(
                    opts.fleet if opts.fleet is not None else 0,
                    config=by_name(config_name),
                    cohorts=(
                        opts.cohorts if opts.cohorts is not None else DEFAULT_COHORT_SPEC
                    ),
                    lanes=lanes,
                    workers=workers,
                    guided=guided_config,
                    **study_kwargs,
                )
                if result.health is not None:
                    healths.append(result.health)
                print(result.render_report())
                print(
                    f"{result.intents_sent} intents across {result.fleet_size} "
                    f"pairs in {result.lanes} lane(s), "
                    f"{result.virtual_hours():.1f} virtual pair-hours"
                )
            elif opts.guided:
                from repro.guided import GuidedConfig, run_guided_study

                guided_config = GuidedConfig(
                    scheduler=opts.scheduler or "ucb",
                    budget=opts.guided_budget,
                )
                result = run_guided_study(
                    by_name(config_name),
                    guided_config,
                    workers=workers,
                    telemetry_handle=handle,
                )
                if opts.corpus_dir is not None:
                    result.save(opts.corpus_dir)
                    print(f"wrote {opts.corpus_dir}/corpus.jsonl", file=sys.stderr)
                    print(f"wrote {opts.corpus_dir}/schedule.jsonl", file=sys.stderr)
                print(result.render())
            elif stateful:
                if journal is None:
                    print(
                        f"--kill-after needs --journal or --resume\n{USAGE}",
                        file=sys.stderr,
                    )
                    return 2
                study_kwargs = dict(supervision_kwargs)
                study_kwargs["journal_path"] = journal
                if opts.resume_path is not None:
                    study_kwargs["resume"] = True
                if opts.kill_after is not None:
                    study_kwargs["kill_after_injections"] = opts.kill_after
                if workers != 1:
                    study_kwargs["workers"] = workers
                result = wear_study(config_name, **study_kwargs)
                if result.health is not None:
                    healths.append(result.health)
                print(result.summary.render())
                print(
                    f"{result.intents_sent} intents, {result.reboot_count} reboots, "
                    f"{result.virtual_hours():.1f} virtual hours"
                )
            elif opts.json_path is not None:
                if workers != 1 or supervision_kwargs:
                    export_json(
                        config_name,
                        path=opts.json_path,
                        workers=workers,
                        healths=healths,
                        **supervision_kwargs,
                    )
                else:
                    export_json(config_name, path=opts.json_path)
                print(f"wrote {opts.json_path}")
            elif workers != 1 or supervision_kwargs:
                print(
                    full_report(
                        config_name,
                        workers=workers,
                        healths=healths,
                        **supervision_kwargs,
                    )
                )
            else:
                print(full_report(config_name))
        except CampaignKilled as exc:
            print(
                f"campaign killed after {exc.injections} injections{resume_hint}",
                file=sys.stderr,
            )
            return 3
        except ShardPoisonedError as exc:
            print(exc.health.render(), file=sys.stderr)
            print(str(exc), file=sys.stderr)
            return 4
        except StudyInterrupted as exc:
            print(exc.health.render(), file=sys.stderr)
            print(f"study interrupted; in-flight shards drained{resume_hint}", file=sys.stderr)
            return 130
        except KeyboardInterrupt:
            print(f"study interrupted{resume_hint}", file=sys.stderr)
            return 130
        if handle is not None:
            from repro.telemetry.exporters import export_snapshot

            written = export_snapshot(opts.telemetry_dir, handle)
            for name, path in sorted(written.items()):
                print(f"wrote {path}")
    finally:
        if handle is not None:
            telemetry.disable()
    for health in healths:
        if health.noteworthy:
            print(health.render(), file=sys.stderr)
    if any(health.degraded for health in healths):
        return 4
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
