"""The Android-phone comparison study (Section IV-C / Table IV).

"Since previous works targeted earlier version of Android, we decided to
run similar experiments on a mobile phone to have a more accurate
comparison between the Android and AW ecosystem.  The experiments included
all four campaigns, targeting a Nexus 6 running Android 7.1.1 […] After
filtering the apps by the prefix com.android, we found 63 apps (595
Activities and 218 Services)."

Like the wear study, execution is sharded per package through
:mod:`repro.farm` -- one fresh Nexus 6 per shard -- and ``workers=N`` fans
the shards out over a process pool with bit-identical merged results.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from repro import faults, telemetry
from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import Corpus, build_phone_corpus
from repro.experiments.config import QUICK, ExperimentConfig
from repro.farm import (
    absorb_telemetry,
    merge_collectors,
    merge_summaries,
    plan_shards,
    run_shards,
)
from repro.qgj.campaigns import Campaign
from repro.qgj.results import FuzzSummary
from repro.wear.device import PhoneDevice


@dataclasses.dataclass
class PhoneStudyResult:
    collector: StudyCollector
    summary: FuzzSummary
    corpus: Corpus
    phone: PhoneDevice
    config: ExperimentConfig
    shard_clock_ms: Tuple[float, ...] = ()

    @property
    def intents_sent(self) -> int:
        return self.summary.total_sent


def run_phone_study(
    config: ExperimentConfig = QUICK,
    packages: Optional[Sequence[str]] = None,
    campaigns: Sequence[Campaign] = tuple(Campaign),
    workers: int = 1,
) -> PhoneStudyResult:
    """Run the four campaigns against the ``com.android.*`` population."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    corpus = build_phone_corpus(seed=config.phone_seed)
    if packages is None:
        packages = [app.package.package for app in corpus.apps]
    plane = faults.get()
    specs = plan_shards(
        "phone",
        config,
        packages,
        campaigns,
        base_plan=plane.plan if plane.armed else None,
        telemetry_enabled=telemetry.enabled(),
    )
    results = run_shards(
        specs,
        workers=workers,
        telemetry_handle=telemetry.get() if workers == 1 else None,
    )
    if workers != 1:
        absorb_telemetry(telemetry.get(), results)
    return PhoneStudyResult(
        collector=merge_collectors(results),
        summary=merge_summaries(results),
        corpus=corpus,
        phone=results[-1].phone,
        config=config,
        shard_clock_ms=tuple(result.clock_ms for result in results),
    )
