"""The Android-phone comparison study (Section IV-C / Table IV).

"Since previous works targeted earlier version of Android, we decided to
run similar experiments on a mobile phone to have a more accurate
comparison between the Android and AW ecosystem.  The experiments included
all four campaigns, targeting a Nexus 6 running Android 7.1.1 […] After
filtering the apps by the prefix com.android, we found 63 apps (595
Activities and 218 Services)."
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import Corpus, build_phone_corpus
from repro.experiments.config import QUICK, ExperimentConfig
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzerLibrary, QGJ_MOBILE_PACKAGE
from repro.qgj.results import FuzzSummary
from repro.wear.device import PhoneDevice


@dataclasses.dataclass
class PhoneStudyResult:
    collector: StudyCollector
    summary: FuzzSummary
    corpus: Corpus
    phone: PhoneDevice
    config: ExperimentConfig

    @property
    def intents_sent(self) -> int:
        return self.summary.total_sent


def run_phone_study(
    config: ExperimentConfig = QUICK,
    packages: Optional[Sequence[str]] = None,
    campaigns: Sequence[Campaign] = tuple(Campaign),
) -> PhoneStudyResult:
    """Run the four campaigns against the ``com.android.*`` population."""
    corpus = build_phone_corpus(seed=config.phone_seed)
    phone = PhoneDevice(
        "nexus6", model="Nexus 6", logcat_capacity=config.logcat_capacity
    )
    corpus.install(phone)
    collector = StudyCollector(corpus.packages())
    fuzzer = FuzzerLibrary(phone, sender_package=QGJ_MOBILE_PACKAGE)
    summary = FuzzSummary(device=phone.name)
    adb = phone.adb

    if packages is None:
        packages = [app.package.package for app in corpus.apps]
    adb.logcat_clear()
    for package_name in packages:
        for campaign in campaigns:
            app_result = fuzzer.fuzz_app(package_name, campaign, config.fuzz)
            summary.apps.append(app_result)
            collector.fold(adb.logcat(), package_name, campaign.value)
            adb.logcat_clear()
    return PhoneStudyResult(
        collector=collector,
        summary=summary,
        corpus=corpus,
        phone=phone,
        config=config,
    )
