"""The Android-phone comparison study (Section IV-C / Table IV).

"Since previous works targeted earlier version of Android, we decided to
run similar experiments on a mobile phone to have a more accurate
comparison between the Android and AW ecosystem.  The experiments included
all four campaigns, targeting a Nexus 6 running Android 7.1.1 […] After
filtering the apps by the prefix com.android, we found 63 apps (595
Activities and 218 Services)."

Like the wear study, execution is sharded per package through
:mod:`repro.farm` -- one fresh Nexus 6 per shard -- and ``workers=N`` fans
the shards out across supervised worker processes with bit-identical
merged results (see :mod:`repro.farm.supervisor` for the deadline / retry
/ poison-quarantine semantics).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from repro import faults, telemetry
from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import Corpus, build_phone_corpus
from repro.experiments.config import QUICK, ExperimentConfig
from repro.farm import (
    DEFAULT_POLICY,
    ShardPoisonedError,
    StudyHealthReport,
    SupervisionPolicy,
    absorb_telemetry,
    merge_collectors,
    merge_summaries,
    plan_shards,
    supervise_shards,
)
from repro.qgj.campaigns import Campaign
from repro.qgj.results import FuzzSummary
from repro.wear.device import PhoneDevice


@dataclasses.dataclass
class PhoneStudyResult:
    collector: StudyCollector
    summary: FuzzSummary
    corpus: Corpus
    phone: PhoneDevice
    config: ExperimentConfig
    shard_clock_ms: Tuple[float, ...] = ()
    #: Per-shard supervision account (attempts, outcomes, dropped coverage).
    health: Optional[StudyHealthReport] = None

    @property
    def intents_sent(self) -> int:
        return self.summary.total_sent


def run_phone_study(
    config: ExperimentConfig = QUICK,
    packages: Optional[Sequence[str]] = None,
    campaigns: Sequence[Campaign] = tuple(Campaign),
    workers: int = 1,
    shard_timeout: Optional[float] = None,
    max_shard_attempts: Optional[int] = None,
    allow_partial: bool = False,
) -> PhoneStudyResult:
    """Run the four campaigns against the ``com.android.*`` population.

    The supervision knobs mirror
    :func:`~repro.experiments.wear_experiment.run_wear_study`: per-shard
    deadline, bounded retries, and -- with *allow_partial* -- poison
    quarantine with a degraded study instead of an aborted one.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    policy = SupervisionPolicy(
        max_attempts=(
            max_shard_attempts
            if max_shard_attempts is not None
            else DEFAULT_POLICY.max_attempts
        ),
        shard_timeout_s=shard_timeout,
    )
    corpus = build_phone_corpus(seed=config.phone_seed)
    if packages is None:
        packages = [app.package.package for app in corpus.apps]
    plane = faults.get()
    live = telemetry.get()
    specs = plan_shards(
        "phone",
        config,
        packages,
        campaigns,
        base_plan=plane.plan if plane.armed else None,
        telemetry_enabled=live.enabled,
        sample_every=live.tracer.sample_every,
        sample_seed=live.tracer.sample_seed,
        profile=live.profiler.enabled,
    )
    run = supervise_shards(
        specs,
        workers=workers,
        policy=policy,
        telemetry_handle=telemetry.get(),
    )
    if run.health.poisoned() and not allow_partial:
        raise ShardPoisonedError(run.health)
    results = [result for result in run.results if result is not None]
    if not results:
        raise ShardPoisonedError(run.health)
    if workers != 1:
        absorb_telemetry(telemetry.get(), results)
    return PhoneStudyResult(
        collector=merge_collectors(results),
        summary=merge_summaries(results),
        corpus=corpus,
        phone=results[-1].phone,
        config=config,
        shard_clock_ms=tuple(result.clock_ms for result in results),
        health=run.health,
    )
