"""The QGJ-UI study on the Watch emulator (Section III-E / Table V).

"For this experiment, we used an Android Watch emulator (Android 7.1.1,
API level 25) and paired it with a Nexus 6 phone.  The choice of the Watch
emulator […] was so that we could study the core functionality in isolation
rather than together with the vendor-specific extensions."

The emulator therefore carries the non-vendor built-ins plus the top-20
third-party apps, and both mutation modes replay the *same* monkey stream.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.apps.builtin import google_fit_spec_key
from repro.apps.catalog import Corpus, build_wear_corpus, emulator_packages
from repro.apps.health import register_health_factories
from repro.experiments.config import QUICK, ExperimentConfig
from repro.qgj.ui_fuzzer import MutationMode, QGJUi, UiInjectionResult
from repro.wear.device import PhoneDevice, WearDevice, pair


@dataclasses.dataclass
class UiStudyResult:
    results: Dict[str, UiInjectionResult]
    emulator: WearDevice
    phone: PhoneDevice
    corpus: Corpus
    config: ExperimentConfig

    @property
    def semi_valid(self) -> UiInjectionResult:
        return self.results[MutationMode.SEMI_VALID]

    @property
    def random(self) -> UiInjectionResult:
        return self.results[MutationMode.RANDOM]


def run_ui_study(config: ExperimentConfig = QUICK) -> UiStudyResult:
    """Run QGJ-UI at *config*'s event volume, both mutation modes."""
    corpus = build_wear_corpus(seed=config.corpus_seed)
    emulator = WearDevice(
        "watch-emulator",
        model="Android Watch Emulator (API 25)",
        is_emulator=True,
        logcat_capacity=config.logcat_capacity,
    )
    phone = PhoneDevice("nexus6", model="Nexus 6")
    pair(phone, emulator)
    selection = emulator_packages(corpus)
    corpus.registry.install(emulator.activity_manager)
    register_health_factories(emulator.activity_manager, wedge_deliveries=corpus.wedge_deliveries)
    google_fit_spec_key(corpus.registry, emulator.activity_manager)
    for package in selection:
        emulator.install(package)

    qgj_ui = QGJUi(emulator, seed=config.ui_seed)
    results = qgj_ui.run(config.ui_events)
    return UiStudyResult(
        results=results,
        emulator=emulator,
        phone=phone,
        corpus=corpus,
        config=config,
    )
