"""The full QGJ-Master study on the wearable (Sections III-D / IV-A..B).

Reproduces the paper's main experiment end to end:

1. build the 46-app corpus and install it on a simulated Moto 360 paired
   with a Nexus 4;
2. deploy QGJ on both devices;
3. for every app, run all four Fuzz Intent Campaigns one after another with
   the paper's pacing;
4. after each (app, campaign) segment, pull the device log over adb, fold
   it into the :class:`~repro.analysis.manifest.StudyCollector`, and clear
   the buffer (the per-app log-collection rhythm of the original study);
5. return everything the tables/figures need.
"""

from __future__ import annotations

import contextlib
import copy
import dataclasses
from typing import List, Optional, Sequence

from repro import faults, telemetry
from repro.analysis.manifest import StudyCollector
from repro.android.process import ProcessRecord
from repro.apps.catalog import Corpus, build_wear_corpus
from repro.experiments.config import QUICK, ExperimentConfig
from repro.faults.journal import CheckpointJournal, KillSwitch
from repro.faults.retry import RetryPolicy
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzerLibrary, QGJ_WEAR_PACKAGE
from repro.qgj.master import deploy
from repro.qgj.results import FuzzSummary
from repro.wear.device import PhoneDevice, WearDevice, pair

#: Backoff for the operator-side adb calls (log pull / clear between
#: segments); injection-side retries are the fuzzer's own policy.
LOG_PULL_RETRY = RetryPolicy(max_attempts=6, base_delay_ms=200.0, max_delay_ms=5_000.0)

#: Snapshot payload format version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1


@dataclasses.dataclass
class WearStudyResult:
    """Everything a wear-study run produces."""

    collector: StudyCollector
    summary: FuzzSummary
    corpus: Corpus
    watch: WearDevice
    phone: PhoneDevice
    config: ExperimentConfig

    @property
    def reboot_count(self) -> int:
        return len(self.collector.reboots)

    @property
    def intents_sent(self) -> int:
        return self.summary.total_sent

    def virtual_hours(self) -> float:
        return self.watch.clock.now_ms() / 3_600_000.0


def _adb_call(fn, clock, key):
    """One operator-side adb call, retried over session drops when armed."""
    if faults.get().armed:
        return LOG_PULL_RETRY.run(fn, clock, key=key)
    return fn()


def _load_resume_point(
    journal: CheckpointJournal, config: ExperimentConfig
) -> tuple:
    """Validate the journal against the live run and return its state.

    Returns ``(packages, campaigns, state)`` where *state* is the snapshot
    payload or ``None`` (kill before the first segment completed).
    """
    header = journal.header()
    if header.get("config") != config.name:
        raise ValueError(
            f"journal {journal.path} was recorded under config "
            f"{header.get('config')!r}, not {config.name!r}"
        )
    if header.get("fault_fingerprint") != faults.fingerprint():
        raise ValueError(
            f"journal {journal.path} was recorded under fault plan "
            f"{header.get('fault_fingerprint')!r}; the installed plan is "
            f"{faults.fingerprint()!r} -- resume under the original plan"
        )
    packages = list(header["packages"])
    campaigns = tuple(Campaign(value) for value in header["campaigns"])
    state = journal.load_state()
    if state is not None and state.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot {journal.state_path} has version {state.get('version')}, "
            f"expected {SNAPSHOT_VERSION}"
        )
    return packages, campaigns, state


def run_wear_study(
    config: ExperimentConfig = QUICK,
    packages: Optional[Sequence[str]] = None,
    campaigns: Sequence[Campaign] = tuple(Campaign),
    journal_path: Optional[str] = None,
    resume: bool = False,
    kill_after_injections: Optional[int] = None,
) -> WearStudyResult:
    """Run the complete wearable fuzzing study.

    With *journal_path*, every completed ``(package, campaign)`` segment is
    recorded durably and a full-state snapshot is kept beside the journal;
    a later call with ``resume=True`` (same config and fault plan) picks up
    at the last completed segment and -- because the simulation is
    deterministic on the virtual clock -- produces the identical final
    summary.  *kill_after_injections* arms a
    :class:`~repro.faults.journal.KillSwitch` that raises
    :class:`~repro.faults.errors.CampaignKilled` mid-campaign, simulating
    the host dying (used by the resume tests and the CI chaos smoke).
    """
    journal = CheckpointJournal(journal_path) if journal_path is not None else None
    kill_switch = (
        KillSwitch(kill_after_injections) if kill_after_injections is not None else None
    )
    state = None
    if resume:
        if journal is None:
            raise ValueError("resume=True requires journal_path")
        packages, campaigns, state = _load_resume_point(journal, config)

    if state is not None:
        watch = state["watch"]
        phone = state["phone"]
        corpus = state["corpus"]
        collector = state["collector"]
        summary = state["summary"]
        fuzzer = state["fuzzer"]
        # The pid allocator is class-level; restore its watermark so the
        # resumed run hands out the same pids the uninterrupted run would.
        ProcessRecord._pid_counter = state["pids"]
        faults.get().adopt(watch.clock, state["plane"])
        fuzzer.kill_switch = kill_switch
        start_index = state["index"]
    else:
        corpus = build_wear_corpus(seed=config.corpus_seed)
        watch = WearDevice("moto360", logcat_capacity=config.logcat_capacity)
        phone = PhoneDevice("nexus4", model="LG Nexus 4")
        pair(phone, watch)
        corpus.install(watch)
        deploy(phone, watch)  # QGJ on both devices, as in the paper's setup

        collector = StudyCollector(corpus.packages())
        fuzzer = FuzzerLibrary(
            watch, sender_package=QGJ_WEAR_PACKAGE, kill_switch=kill_switch
        )
        summary = FuzzSummary(device=watch.name)
        if packages is None:
            packages = [app.package.package for app in corpus.apps]
        start_index = 0
        if journal is not None and not resume:
            journal.start(
                {
                    "config": config.name,
                    "fault_fingerprint": faults.fingerprint(),
                    "packages": list(packages),
                    "campaigns": [campaign.value for campaign in campaigns],
                }
            )

    adb = watch.adb
    plane = faults.get()
    segments = [(p, c) for p in packages for c in campaigns]
    if state is None:
        _adb_call(adb.logcat_clear, watch.clock, key=("clear", -1))
    t = telemetry.get()
    with contextlib.ExitStack() as stack:
        if t.enabled:
            # The study's virtual time is the watch's clock from here on.
            t.set_clock(watch.clock)
            stack.enter_context(
                t.tracer.span(
                    "study", clock=watch.clock, study="wear", config=config.name
                )
            )
        for index in range(start_index, len(segments)):
            package_name, campaign = segments[index]
            app_result = fuzzer.fuzz_app(package_name, campaign, config.fuzz)
            summary.apps.append(app_result)
            log_text = _adb_call(adb.logcat, watch.clock, key=("logs", index))
            collector.fold(log_text, package_name, campaign.value)
            _adb_call(adb.logcat_clear, watch.clock, key=("clear", index))
            if journal is not None:
                journal.append(
                    {
                        "type": "segment",
                        "index": index,
                        "package": package_name,
                        "campaign": campaign.value,
                        "sent": app_result.sent,
                    }
                )
                journal.save_state(
                    {
                        "version": SNAPSHOT_VERSION,
                        "index": index + 1,
                        "watch": watch,
                        "phone": phone,
                        "corpus": corpus,
                        "collector": collector,
                        "summary": summary,
                        "fuzzer": fuzzer,
                        "pids": copy.copy(ProcessRecord._pid_counter),
                        "plane": plane.capture(watch.clock),
                    }
                )
    return WearStudyResult(
        collector=collector,
        summary=summary,
        corpus=corpus,
        watch=watch,
        phone=phone,
        config=config,
    )
