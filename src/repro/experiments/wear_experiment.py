"""The full QGJ-Master study on the wearable (Sections III-D / IV-A..B).

Reproduces the paper's main experiment end to end:

1. build the 46-app corpus and install it on a simulated Moto 360 paired
   with a Nexus 4;
2. deploy QGJ on both devices;
3. for every app, run all four Fuzz Intent Campaigns one after another with
   the paper's pacing;
4. after each (app, campaign) segment, pull the device log over adb, fold
   it into the :class:`~repro.analysis.manifest.StudyCollector`, and clear
   the buffer (the per-app log-collection rhythm of the original study);
5. return everything the tables/figures need.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import List, Optional, Sequence

from repro import telemetry
from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import Corpus, build_wear_corpus
from repro.experiments.config import QUICK, ExperimentConfig
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzerLibrary, QGJ_WEAR_PACKAGE
from repro.qgj.master import deploy
from repro.qgj.results import FuzzSummary
from repro.wear.device import PhoneDevice, WearDevice, pair


@dataclasses.dataclass
class WearStudyResult:
    """Everything a wear-study run produces."""

    collector: StudyCollector
    summary: FuzzSummary
    corpus: Corpus
    watch: WearDevice
    phone: PhoneDevice
    config: ExperimentConfig

    @property
    def reboot_count(self) -> int:
        return len(self.collector.reboots)

    @property
    def intents_sent(self) -> int:
        return self.summary.total_sent

    def virtual_hours(self) -> float:
        return self.watch.clock.now_ms() / 3_600_000.0


def run_wear_study(
    config: ExperimentConfig = QUICK,
    packages: Optional[Sequence[str]] = None,
    campaigns: Sequence[Campaign] = tuple(Campaign),
) -> WearStudyResult:
    """Run the complete wearable fuzzing study."""
    corpus = build_wear_corpus(seed=config.corpus_seed)
    watch = WearDevice("moto360", logcat_capacity=config.logcat_capacity)
    phone = PhoneDevice("nexus4", model="LG Nexus 4")
    pair(phone, watch)
    corpus.install(watch)
    deploy(phone, watch)  # QGJ on both devices, as in the paper's setup

    collector = StudyCollector(corpus.packages())
    fuzzer = FuzzerLibrary(watch, sender_package=QGJ_WEAR_PACKAGE)
    summary = FuzzSummary(device=watch.name)
    adb = watch.adb

    if packages is None:
        packages = [app.package.package for app in corpus.apps]
    adb.logcat_clear()
    t = telemetry.get()
    with contextlib.ExitStack() as stack:
        if t.enabled:
            # The study's virtual time is the watch's clock from here on.
            t.set_clock(watch.clock)
            stack.enter_context(
                t.tracer.span(
                    "study", clock=watch.clock, study="wear", config=config.name
                )
            )
        for package_name in packages:
            for campaign in campaigns:
                app_result = fuzzer.fuzz_app(package_name, campaign, config.fuzz)
                summary.apps.append(app_result)
                collector.fold(adb.logcat(), package_name, campaign.value)
                adb.logcat_clear()
    return WearStudyResult(
        collector=collector,
        summary=summary,
        corpus=corpus,
        watch=watch,
        phone=phone,
        config=config,
    )
