"""The full QGJ-Master study on the wearable (Sections III-D / IV-A..B).

Reproduces the paper's main experiment end to end:

1. build the 46-app corpus and install it on a simulated Moto 360 paired
   with a Nexus 4;
2. deploy QGJ on both devices;
3. for every app, run all four Fuzz Intent Campaigns one after another with
   the paper's pacing;
4. after each (app, campaign) segment, pull the device log over adb, fold
   it into the :class:`~repro.analysis.manifest.StudyCollector`, and clear
   the buffer (the per-app log-collection rhythm of the original study);
5. return everything the tables/figures need.

Execution is sharded per package through :mod:`repro.farm`: every package
runs on its own freshly built device pair with its own scoped fault plane
and telemetry handle.  ``workers=1`` (the default) runs the shards
sequentially in-process; ``workers=N`` fans them out across supervised
worker processes (deadlines, heartbeat liveness, bounded retries, poison
quarantine -- see :mod:`repro.farm.supervisor`).  Because each shard is a
pure function of its spec, the merged study is bit-identical at any worker
count, even when a shard needed a retry to complete.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from repro import faults, telemetry
from repro.analysis.manifest import StudyCollector
from repro.apps.catalog import Corpus, build_wear_corpus
from repro.experiments.config import QUICK, ExperimentConfig
from repro.farm import (
    DEFAULT_POLICY,
    ShardPoisonedError,
    StudyHealthReport,
    StudyManifest,
    SupervisionPolicy,
    absorb_telemetry,
    merge_collectors,
    merge_summaries,
    plan_shards,
    supervise_shards,
)
from repro.faults.journal import KillSwitch
from repro.qgj.campaigns import Campaign
from repro.qgj.results import FuzzSummary
from repro.wear.device import PhoneDevice, WearDevice


@dataclasses.dataclass
class WearStudyResult:
    """Everything a wear-study run produces."""

    collector: StudyCollector
    summary: FuzzSummary
    corpus: Corpus
    watch: WearDevice
    phone: PhoneDevice
    config: ExperimentConfig
    #: Final virtual-clock reading of every shard, in shard order.  The
    #: study's virtual time is their sum: each clock advance (pacing,
    #: backoff, boot) happens in exactly one shard's segment.
    shard_clock_ms: Tuple[float, ...] = ()
    #: Per-shard supervision account (attempts, outcomes, dropped coverage).
    #: ``health.degraded`` marks a partial study that quarantined shards.
    health: Optional[StudyHealthReport] = None

    @property
    def reboot_count(self) -> int:
        return len(self.collector.reboots)

    @property
    def intents_sent(self) -> int:
        return self.summary.total_sent

    def virtual_hours(self) -> float:
        if self.shard_clock_ms:
            return sum(self.shard_clock_ms) / 3_600_000.0
        return self.watch.clock.now_ms() / 3_600_000.0


def run_wear_study(
    config: ExperimentConfig = QUICK,
    packages: Optional[Sequence[str]] = None,
    campaigns: Sequence[Campaign] = tuple(Campaign),
    journal_path: Optional[str] = None,
    resume: bool = False,
    kill_after_injections: Optional[int] = None,
    workers: int = 1,
    shard_timeout: Optional[float] = None,
    max_shard_attempts: Optional[int] = None,
    allow_partial: bool = False,
) -> WearStudyResult:
    """Run the complete wearable fuzzing study.

    With *journal_path*, a study manifest plus one checkpoint journal per
    shard record every completed ``(package, campaign)`` segment durably; a
    later call with ``resume=True`` (same config, fault plan, and worker
    count) picks up each shard at its last completed segment and -- because
    every shard is deterministic on its own virtual clock -- produces the
    identical final summary.  *kill_after_injections* arms a kill switch
    that raises :class:`~repro.faults.errors.CampaignKilled` mid-campaign,
    simulating the host dying (used by the resume tests and the CI chaos
    smoke); at ``workers>1`` the count is shared across worker processes,
    so "after N injections" means N study-wide at any worker count.

    *shard_timeout* (seconds), *max_shard_attempts*, and *allow_partial*
    tune the supervised executor at ``workers>1``: a shard that misses its
    deadline or whose worker dies is retried up to *max_shard_attempts*
    times (bit-identical by the determinism contract), and a shard failing
    every attempt either aborts the study
    (:class:`~repro.farm.health.ShardPoisonedError`) or -- with
    *allow_partial* -- is quarantined while the study completes degraded,
    with the dropped coverage itemized in ``result.health``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    kill_switch = (
        KillSwitch(kill_after_injections) if kill_after_injections is not None else None
    )
    policy = SupervisionPolicy(
        max_attempts=(
            max_shard_attempts
            if max_shard_attempts is not None
            else DEFAULT_POLICY.max_attempts
        ),
        shard_timeout_s=shard_timeout,
    )
    manifest = StudyManifest(journal_path) if journal_path is not None else None
    if resume:
        if manifest is None:
            raise ValueError("resume=True requires journal_path")
        header = manifest.validate_resume(
            config=config.name,
            fault_fingerprint=faults.fingerprint(),
            workers=workers,
        )
        packages = list(header["packages"])
        campaigns = tuple(Campaign(value) for value in header["campaigns"])

    corpus = build_wear_corpus(seed=config.corpus_seed)
    if packages is None:
        packages = [app.package.package for app in corpus.apps]
    plane = faults.get()
    live = telemetry.get()
    specs = plan_shards(
        "wear",
        config,
        packages,
        campaigns,
        base_plan=plane.plan if plane.armed else None,
        telemetry_enabled=live.enabled,
        manifest=manifest,
        resume=resume,
        sample_every=live.tracer.sample_every,
        sample_seed=live.tracer.sample_seed,
        profile=live.profiler.enabled,
    )
    if manifest is not None and not resume:
        manifest.start(
            config=config.name,
            fault_fingerprint=faults.fingerprint(),
            packages=list(packages),
            campaigns=[campaign.value for campaign in campaigns],
            workers=workers,
            shards=specs,
        )
    run = supervise_shards(
        specs,
        workers=workers,
        policy=policy,
        kill_switch=kill_switch,
        telemetry_handle=telemetry.get(),
    )
    if run.health.poisoned() and not allow_partial:
        raise ShardPoisonedError(run.health)
    results = [result for result in run.results if result is not None]
    if not results:
        raise ShardPoisonedError(run.health)
    if workers != 1:
        absorb_telemetry(telemetry.get(), results)
    last = results[-1]
    return WearStudyResult(
        collector=merge_collectors(results),
        summary=merge_summaries(results),
        corpus=corpus,
        watch=last.watch,
        phone=last.phone,
        config=config,
        shard_clock_ms=tuple(result.clock_ms for result in results),
        health=run.health,
    )
