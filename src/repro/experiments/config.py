"""Experiment configurations: quick scale and paper scale.

The paper's numbers come from ~1.5M intents over 46 apps plus 2 x 41,405 UI
events; a paper-scale run of this reproduction does the same volume on the
virtual clock.  The quick scale keeps every structural property that the
results depend on -- every component still sees every action, campaign B
and D run in full, the reboot scenarios still have room to accumulate state
-- while shrinking campaign A ~12x and the UI event count ~10x.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig

#: Table V's per-mode event count.
PAPER_UI_EVENTS = 41_405
QUICK_UI_EVENTS = 4_000


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """One end-to-end study configuration."""

    name: str
    fuzz: FuzzConfig
    ui_events: int
    corpus_seed: int = 2018
    phone_seed: int = 711
    ui_seed: int = 25
    #: Cap on retained log records between collection points; segments are
    #: folded and cleared after every (app, campaign), so this only guards
    #: against one segment exploding.
    logcat_capacity: Optional[int] = 2_000_000


QUICK = ExperimentConfig(
    name="quick",
    fuzz=FuzzConfig(
        strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1}
    ),
    ui_events=QUICK_UI_EVENTS,
)

PAPER = ExperimentConfig(
    name="paper",
    fuzz=FuzzConfig(stride=1),
    ui_events=PAPER_UI_EVENTS,
)


def by_name(name: str) -> ExperimentConfig:
    configs = {"quick": QUICK, "paper": PAPER}
    if name not in configs:
        raise ValueError(f"unknown experiment config: {name!r} (quick|paper)")
    return configs[name]
