"""End-to-end experiment harnesses at quick and paper scale."""

from repro.experiments.ablations import (
    AblationRow,
    ablate_aging_threshold,
    ablate_pacing,
    ablate_vendor_layer,
    ablate_stride,
    ablate_wedge_deliveries,
    render_rows,
)
from repro.experiments.config import PAPER, QUICK, ExperimentConfig, by_name
from repro.experiments.phone_experiment import PhoneStudyResult, run_phone_study
from repro.experiments.runner import full_report, phone_study, ui_study, wear_study
from repro.experiments.ui_experiment import UiStudyResult, run_ui_study
from repro.experiments.wear_experiment import WearStudyResult, run_wear_study

__all__ = [
    "AblationRow",
    "PAPER",
    "ablate_aging_threshold",
    "ablate_pacing",
    "ablate_vendor_layer",
    "ablate_stride",
    "ablate_wedge_deliveries",
    "render_rows",
    "QUICK",
    "ExperimentConfig",
    "PhoneStudyResult",
    "UiStudyResult",
    "WearStudyResult",
    "by_name",
    "full_report",
    "phone_study",
    "run_phone_study",
    "run_ui_study",
    "run_wear_study",
    "ui_study",
    "wear_study",
]
