"""Ablation studies over the reproduction's design choices.

The paper makes several empirical choices without sweeping them -- the
100 ms / 250 ms injection pacing ("empirically determined … to ensure the
device is not overloaded"), the implicit severity of error accumulation,
and the claim that reboots need *sequences* of malformed intents.  Because
this reproduction is a simulator, each choice can be swept:

* :func:`ablate_aging_threshold` -- how fragile is the reboot finding to the
  system server's damage threshold?
* :func:`ablate_wedge_deliveries` -- how many silently-absorbed mismatches
  does reboot #1 actually need (the "no single deadly intent" claim)?
* :func:`ablate_pacing` -- what happens to the ambient-reboot escalation
  when injections arrive slower?  (Crash-loop detection needs crashes close
  together; slow enough pacing lets the device "outrun" the loop window.)
* :func:`ablate_stride` -- is the Table III shape stable under quick-scale
  subsampling, i.e. is the quick configuration trustworthy?
* :func:`ablate_guided_vs_blind` -- at an equal intent budget, does the
  feedback-guided scheduler (:mod:`repro.guided`) reach at least the blind
  study's distinct crash buckets?
* :func:`ablate_os_chaos` -- does the behavioural classification survive an
  unreliable OS underneath?  Each fault family (transport, OS-service,
  compat mismatch) runs alone and combined, at intervals aggressive enough
  to bite a quick-scale run; infrastructure manifestations must stay in
  their own counters while the app-level crash/reboot shape holds.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.manifest import Manifestation, StudyCollector
from repro.apps.builtin import AMBIENT_BINDER_PACKAGE
from repro.apps.catalog import build_wear_corpus
from repro.apps.health import HEART_RATE_PACKAGE
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.device import WearDevice

_QUICK_STRIDES = {Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1}


@dataclasses.dataclass
class AblationRow:
    """One configuration point of an ablation sweep."""

    parameter: str
    value: float
    reboots: int
    crashes_seen: int
    notes: str = ""


def _fresh_watch(seed: int = 2018, wedge_deliveries: int = 25, **device_kwargs) -> WearDevice:
    corpus = build_wear_corpus(seed=seed, wedge_deliveries=wedge_deliveries)
    watch = WearDevice("ablation-watch", **device_kwargs)
    corpus.install(watch)
    return watch


def ablate_aging_threshold(
    thresholds: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 32.0)
) -> List[AblationRow]:
    """Sweep the system server's reboot threshold.

    Expected shape: the ambient reboot (campaign D) survives a wide band of
    thresholds because a crash-looping *built-in* component deposits damage
    quickly; only an implausibly high threshold suppresses it.  The sensor
    reboot is threshold-independent (losing a core native service is fatal
    regardless), so at least one reboot persists everywhere.
    """
    rows = []
    for threshold in thresholds:
        watch = _fresh_watch(reboot_threshold=threshold)
        fuzzer = FuzzerLibrary(watch)
        crashes = 0
        for package, campaign in (
            (HEART_RATE_PACKAGE, Campaign.A),
            (AMBIENT_BINDER_PACKAGE, Campaign.D),
        ):
            result = fuzzer.fuzz_app(
                package, campaign, FuzzConfig(strides=_QUICK_STRIDES)
            )
            crashes += result.crashes_seen
        rows.append(
            AblationRow(
                parameter="reboot_threshold",
                value=threshold,
                reboots=watch.boot_count - 1,
                crashes_seen=crashes,
            )
        )
    return rows


def ablate_wedge_deliveries(
    values: Sequence[int] = (1, 5, 25, 60, 200)
) -> List[AblationRow]:
    """Sweep how much silent error accumulation reboot #1 requires.

    At 1 the first mismatched intent wedges the handler (a 'deadly intent'
    world); at values beyond the campaign's per-component volume the state
    never accumulates and the reboot disappears -- bracketing the paper's
    observation that the reboot manifests "at specific states".
    """
    rows = []
    for wedge in values:
        watch = _fresh_watch(wedge_deliveries=wedge)
        fuzzer = FuzzerLibrary(watch)
        result = fuzzer.fuzz_app(
            HEART_RATE_PACKAGE, Campaign.A, FuzzConfig(strides=_QUICK_STRIDES)
        )
        notes = "reboot" if result.aborted_by_reboot else "no reboot"
        rows.append(
            AblationRow(
                parameter="wedge_deliveries",
                value=float(wedge),
                reboots=watch.boot_count - 1,
                crashes_seen=result.crashes_seen,
                notes=notes,
            )
        )
    return rows


def ablate_pacing(
    delays_ms: Sequence[float] = (10.0, 100.0, 1_000.0, 16_000.0)
) -> List[AblationRow]:
    """Sweep the inter-intent delay against the ambient crash-loop reboot.

    The system server only treats a component as crash-looping when three
    crashes land within its 30 s window.  The paper's 100 ms pacing easily
    satisfies that; beyond ~15 s spacing the third crash slips outside the
    window, the loop is never detected, and the reboot vanishes -- the
    pacing choice is not cosmetic.
    """
    rows = []
    for delay in delays_ms:
        watch = _fresh_watch()
        fuzzer = FuzzerLibrary(watch)
        config = FuzzConfig(strides=_QUICK_STRIDES, intent_delay_ms=delay)
        result = fuzzer.fuzz_app(AMBIENT_BINDER_PACKAGE, Campaign.D, config)
        rows.append(
            AblationRow(
                parameter="intent_delay_ms",
                value=delay,
                reboots=watch.boot_count - 1,
                crashes_seen=result.crashes_seen,
                notes="loop detected" if result.aborted_by_reboot else "loop outran",
            )
        )
    return rows


@dataclasses.dataclass
class StrideStabilityRow:
    """Table III stability at one subsampling scale."""

    label: str
    a_stride: int
    health_crash_apps: Dict[str, int]
    other_crash_apps: Dict[str, int]


def ablate_stride(
    scales: Sequence[Dict[Campaign, int]] = (
        {Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1},
        {Campaign.A: 36, Campaign.B: 1, Campaign.C: 6, Campaign.D: 1},
    ),
    packages: Sequence[str] = (
        "com.runmate.wear",
        "com.fitband.wear",
        "com.stepcount.wear",
        "com.sleepwell.wear",
        "com.yogaflow.wear",
    ),
) -> List[StrideStabilityRow]:
    """Check that per-campaign crash sets are stable across strides.

    The quick configuration's claim is that subsampling preserves campaign
    *structure*; this sweep verifies that the set of apps crashing per
    campaign does not change as campaign A thins further.
    """
    rows = []
    for scale in scales:
        corpus = build_wear_corpus(seed=2018)
        watch = WearDevice("stride-watch")
        corpus.install(watch)
        collector = StudyCollector(corpus.packages())
        fuzzer = FuzzerLibrary(watch)
        adb = watch.adb
        adb.logcat_clear()
        for package in packages:
            for campaign in Campaign:
                fuzzer.fuzz_app(package, campaign, FuzzConfig(strides=dict(scale)))
                collector.fold(adb.logcat(), package, campaign.value)
                adb.logcat_clear()
        health_crashes: Dict[str, int] = {}
        for campaign in Campaign:
            health_crashes[campaign.value] = sum(
                1
                for package in packages
                if collector.app_campaign.get((package, campaign.value))
                == Manifestation.CRASH
            )
        rows.append(
            StrideStabilityRow(
                label=f"A/{scale[Campaign.A]}",
                a_stride=scale[Campaign.A],
                health_crash_apps=health_crashes,
                other_crash_apps={},
            )
        )
    return rows


@dataclasses.dataclass
class VendorAblationRow:
    """Crash counts with and without the vendor layer."""

    device_label: str
    builtin_apps: int
    builtin_crashing_apps: int
    vendor_crashing_apps: int


def ablate_vendor_layer(
    campaigns: Sequence[Campaign] = (Campaign.B, Campaign.C),
) -> List[VendorAblationRow]:
    """Threat-to-validity #1: vendor-specific customisations.

    The paper's intent study "used a single wearable device and thus is
    blind to vendor-specific customizations"; its UI study deliberately
    switched to the emulator to drop them.  Here we run the same focused
    intent campaigns on both populations -- the Moto 360 (with Motorola's
    vendor layer) and the Watch emulator (without) -- and compare built-in
    crash behaviour.  The vendor app's crashes exist only on real hardware,
    quantifying what single-device studies miss.
    """
    from repro.apps.catalog import emulator_packages
    from repro.apps.builtin import google_fit_spec_key
    from repro.apps.health import register_health_factories

    rows: List[VendorAblationRow] = []

    for label, is_emulator in (("moto360 (vendor layer)", False), ("emulator (no vendor)", True)):
        corpus = build_wear_corpus(seed=2018)
        device = WearDevice("vendor-ablation", is_emulator=is_emulator)
        if is_emulator:
            packages = emulator_packages(corpus)
            corpus.registry.install(device.activity_manager)
            register_health_factories(device.activity_manager)
            google_fit_spec_key(corpus.registry, device.activity_manager)
            for package in packages:
                device.install(package)
        else:
            corpus.install(device)
        fuzzer = FuzzerLibrary(device)
        collector = StudyCollector(device.packages.installed_packages())
        adb = device.adb
        adb.logcat_clear()
        builtin_packages = [
            p for p in device.packages.installed_packages() if p.is_built_in
        ]
        for package in builtin_packages:
            for campaign in campaigns:
                fuzzer.fuzz_app(
                    package.package, campaign, FuzzConfig(strides=_QUICK_STRIDES)
                )
                collector.fold(adb.logcat(), package.package, campaign.value)
                adb.logcat_clear()
        crashed = set(collector.crashing_packages())
        vendor_crashed = sum(
            1 for p in builtin_packages if p.vendor and p.package in crashed
        )
        rows.append(
            VendorAblationRow(
                device_label=label,
                builtin_apps=len(builtin_packages),
                builtin_crashing_apps=sum(
                    1 for p in builtin_packages if p.package in crashed
                ),
                vendor_crashing_apps=vendor_crashed,
            )
        )
    return rows


@dataclasses.dataclass
class GuidedAblationRow:
    """Guided vs blind at one (equal) intent budget."""

    mode: str                   # "blind" | "guided"
    intents: int                # intents actually sent
    distinct_buckets: int       # distinct (component, exception) crash buckets
    buckets_per_kintents: float
    corpus_size: int            # behaviours banked (0 for blind)
    rounds: int                 # scheduler rounds (0 for blind)


def ablate_guided_vs_blind(
    packages: Optional[Sequence[str]] = None,
    config=None,
    guided=None,
) -> List[GuidedAblationRow]:
    """Does feedback guidance buy crash coverage at a fixed intent budget?

    The blind study spends the paper's fixed per-(package, campaign) volume;
    the guided study gets *the same total budget* (the blind run's actual
    sends) and lets the bandit redistribute it.  Buckets are compared on the
    coarse ``(component, exception root class)`` key both pipelines can
    produce -- the blind side buckets from the logcat-derived study
    collector, the guided side from dispatch-observed crashes -- so neither
    side gets credit for a signal the other cannot see.
    """
    from repro.experiments.config import QUICK
    from repro.guided import GuidedConfig, run_guided_study

    if config is None:
        config = QUICK
    if guided is None:
        guided = GuidedConfig()
    corpus = build_wear_corpus(seed=config.corpus_seed)
    if packages is None:
        packages = [app.package.package for app in corpus.apps]

    # -- blind: the paper's fixed volumes, logcat-classified ----------------------
    watch = WearDevice("guided-ablation", logcat_capacity=config.logcat_capacity)
    corpus.install(watch)
    collector = StudyCollector(corpus.packages())
    fuzzer = FuzzerLibrary(watch)
    adb = watch.adb
    adb.logcat_clear()
    blind_sent = 0
    for package in packages:
        for campaign in Campaign:
            result = fuzzer.fuzz_app(package, campaign, config.fuzz)
            blind_sent += result.sent
            collector.fold(adb.logcat(), package, campaign.value)
            adb.logcat_clear()
    blind_buckets = {
        (record.component, cls)
        for record in collector.component_records()
        for cls in record.fatal_root_classes
    }

    # -- guided: same budget, bandit-allocated ------------------------------------
    guided = dataclasses.replace(guided, budget=blind_sent)
    guided_result = run_guided_study(config, guided, packages=packages)
    guided_buckets = {
        (component, exception)
        for component, exception, _frame in guided_result.crash_buckets
    }

    def per_kilo(buckets: int, intents: int) -> float:
        return buckets / (intents / 1000.0) if intents else 0.0

    return [
        GuidedAblationRow(
            mode="blind",
            intents=blind_sent,
            distinct_buckets=len(blind_buckets),
            buckets_per_kintents=per_kilo(len(blind_buckets), blind_sent),
            corpus_size=0,
            rounds=0,
        ),
        GuidedAblationRow(
            mode="guided",
            intents=guided_result.total_sent,
            distinct_buckets=len(guided_buckets),
            buckets_per_kintents=per_kilo(len(guided_buckets), guided_result.total_sent),
            corpus_size=len(guided_result.corpus),
            rounds=len(guided_result.rounds),
        ),
    ]


@dataclasses.dataclass
class OsChaosRow:
    """Crash/reboot shape under one environment-fault family."""

    scenario: str               # "baseline" | "transport" | "service" | "compat" | "all"
    crashes_seen: int           # app-level crashes (the behavioural signal)
    reboots: int                # full device reboots (boot_count - 1)
    retries: int                # transient faults absorbed by the retry layer
    transport_failures: int     # infra: injections lost after retries
    compat_mismatches: int      # infra: version-gated rejections
    quarantined: int            # packages the circuit breaker pulled


#: Quick-scale fault intervals (virtual ms): a two-package quick run spans
#: tens of virtual minutes, so the default chaos profile (faults every
#: 10-180 virtual minutes) would barely fire.  These are 10-20x denser --
#: aggressive enough that every family manifests, sparse enough that the
#: campaigns still complete.
_OS_CHAOS_SCENARIOS = {
    "baseline": None,
    "transport": dict(binder_every_ms=45_000.0, adb_drop_every_ms=240_000.0),
    "service": dict(
        service_outage_every_ms=90_000.0,
        service_corrupt_every_ms=120_000.0,
        system_restart_every_ms=600_000.0,
    ),
    "compat": dict(compat_mismatch_every_ms=60_000.0),
    "all": dict(
        binder_every_ms=45_000.0,
        adb_drop_every_ms=240_000.0,
        service_outage_every_ms=90_000.0,
        service_corrupt_every_ms=120_000.0,
        system_restart_every_ms=600_000.0,
        compat_mismatch_every_ms=60_000.0,
    ),
}

#: Scenarios whose compat stream should actually manifest (the others get
#: no matrix, so even an armed compat stream stays inert).
_OS_CHAOS_SKEWED = {"compat", "all"}


def ablate_os_chaos(
    seed: int = 7,
    skew: int = 3,
    packages: Sequence[str] = (HEART_RATE_PACKAGE, AMBIENT_BINDER_PACKAGE),
) -> List[OsChaosRow]:
    """Sweep the fault families the chaos plane can stack under a campaign.

    The paper's measurements implicitly assume the OS under the fuzzer is
    healthy; this sweep drops that assumption one family at a time.  The
    property being checked is *separation*: transport and OS-service faults
    are absorbed (retries) or surface as infrastructure counters, compat
    mismatches land in their own counter, and none of them masquerade as
    app-level crashes -- while faults that strike *inside* an app lifecycle
    (a sensor outage mid-registration, a system_server bounce) legitimately
    move the behavioural numbers, which is exactly the robustness cost the
    row exposes.
    """
    from repro import faults

    rows: List[OsChaosRow] = []
    for scenario, intervals in _OS_CHAOS_SCENARIOS.items():
        plan = None
        if intervals is not None:
            compat = (
                faults.CompatMatrix.from_skew(skew)
                if scenario in _OS_CHAOS_SKEWED
                else None
            )
            plan = faults.FaultPlan(seed=seed, compat=compat, **intervals)
        with faults.session(plan):
            watch = _fresh_watch()
            fuzzer = FuzzerLibrary(watch)
            crashes = retries = failures = mismatches = 0
            quarantined = set()
            for package in packages:
                for campaign in (Campaign.A, Campaign.D):
                    result = fuzzer.fuzz_app(
                        package, campaign, FuzzConfig(strides=_QUICK_STRIDES)
                    )
                    crashes += result.crashes_seen
                    retries += result.retries
                    failures += result.transport_failures
                    mismatches += result.compat_mismatches
                    if result.quarantined:
                        quarantined.add(package)
            rows.append(
                OsChaosRow(
                    scenario=scenario,
                    crashes_seen=crashes,
                    reboots=watch.boot_count - 1,
                    retries=retries,
                    transport_failures=failures,
                    compat_mismatches=mismatches,
                    quarantined=len(quarantined),
                )
            )
    return rows


def render_os_chaos_rows(rows: Sequence[OsChaosRow]) -> str:
    lines = [
        "ABLATION: OS chaos fault families",
        "-" * 72,
        f"{'scenario':>10} {'crashes':>8} {'reboots':>8} {'retries':>8} "
        f"{'xport-fail':>10} {'compat':>7} {'quar':>5}",
    ]
    for row in rows:
        lines.append(
            f"{row.scenario:>10} {row.crashes_seen:>8} {row.reboots:>8} "
            f"{row.retries:>8} {row.transport_failures:>10} "
            f"{row.compat_mismatches:>7} {row.quarantined:>5}"
        )
    return "\n".join(lines)


def render_guided_rows(rows: Sequence[GuidedAblationRow]) -> str:
    lines = [
        "ABLATION: guided vs blind (equal intent budget)",
        "-" * 60,
        f"{'mode':>8} {'intents':>9} {'buckets':>8} {'/1k':>7} {'corpus':>7} {'rounds':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row.mode:>8} {row.intents:>9} {row.distinct_buckets:>8} "
            f"{row.buckets_per_kintents:>7.2f} {row.corpus_size:>7} {row.rounds:>7}"
        )
    return "\n".join(lines)


def render_rows(rows: Sequence[AblationRow]) -> str:
    lines = [
        f"ABLATION: {rows[0].parameter}" if rows else "ABLATION (empty)",
        "-" * 60,
        f"{'value':>12} {'reboots':>8} {'crashes':>8}  notes",
    ]
    for row in rows:
        lines.append(
            f"{row.value:>12g} {row.reboots:>8} {row.crashes_seen:>8}  {row.notes}"
        )
    return "\n".join(lines)
