"""Fleet planning: pair specs, cohort-composed plans, lane packing.

Every derivation here keys off the pair's *global index* -- its cohort,
package slice, seed, and fault plan are functions of ``pair_id`` alone --
so re-packing the same fleet into different lane or worker counts hands
every pair the exact same spec.  Packing only decides which scheduler
multiplexes which subset.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.apps.profiles import (
    DeviceProfile,
    parse_cohort_spec,
    profile_for_pair,
)
from repro.experiments.config import ExperimentConfig
from repro.farm.partition import derive_plan, derive_seed
from repro.faults.plan import CompatMatrix, FaultPlan
from repro.fleet.pairs import PairSpec
from repro.qgj.campaigns import Campaign

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.guided.study import GuidedConfig


def cohort_plan(
    profile: DeviceProfile, base_plan: Optional[FaultPlan]
) -> Optional[FaultPlan]:
    """Compose a cohort's hardware pressure onto the study's base plan.

    The cohort layers exactly two things onto whatever chaos profile the
    operator armed: its RAM tier's lmkd kill stream and its OS skew's
    :class:`CompatMatrix`.  A flagship cohort under no base plan stays
    planless (the clean fast path); a plan that only pins a skewed matrix
    is kept armed, because the compat *gates* act even without the
    mismatch event stream.
    """
    base = base_plan if base_plan is not None else FaultPlan()
    plan = base
    if profile.lmkd_every_ms is not None:
        plan = dataclasses.replace(plan, lmkd_every_ms=profile.lmkd_every_ms)
    if profile.compat_skew > 0:
        plan = dataclasses.replace(
            plan,
            compat=CompatMatrix(
                phone_api=profile.phone_api, wear_api=profile.wear_api
            ),
        )
        if plan.compat_mismatch_every_ms is None:
            # The matrix only manifests through the mismatch event stream;
            # more skew, more often (a two-major-version gap bites roughly
            # twice as hard as a one-version gap).
            plan = dataclasses.replace(
                plan, compat_mismatch_every_ms=120_000.0 / profile.compat_skew
            )
    if plan.is_empty() and plan.compat is None:
        return None
    return plan


def plan_pairs(
    fleet_size: int,
    cohorts: str,
    config: ExperimentConfig,
    packages: Sequence[str],
    campaigns: Sequence[Campaign],
    base_plan: Optional[FaultPlan] = None,
    guided: Optional["GuidedConfig"] = None,
) -> List[PairSpec]:
    """Build the full fleet: one spec per pair.

    Pair *i* draws its cohort from the spec's weighted cycle and fuzzes
    one package, round-robin over the catalogue -- so a 96-pair fleet over
    the 46-app corpus covers every app at least twice, under at least two
    cohorts.
    """
    if fleet_size < 1:
        raise ValueError(f"fleet size must be >= 1, got {fleet_size}")
    if not packages:
        raise ValueError("a fleet needs at least one package to fuzz")
    parsed = parse_cohort_spec(cohorts)
    specs: List[PairSpec] = []
    for pair_id in range(fleet_size):
        profile = profile_for_pair(parsed, pair_id)
        seed = derive_seed(config.corpus_seed, f"pair-{pair_id:04d}")
        plan = derive_plan(cohort_plan(profile, base_plan), seed)
        specs.append(
            PairSpec(
                pair_id=pair_id,
                cohort=profile.cohort,
                packages=(packages[pair_id % len(packages)],),
                campaigns=tuple(campaigns),
                config=config,
                seed=seed,
                plan=plan,
                guided=guided,
            )
        )
    return specs


def plan_lanes(
    pairs: Sequence[PairSpec], lanes: int
) -> List[Tuple[PairSpec, ...]]:
    """Pack pairs into *lanes* strided slices (lane j gets pairs j::lanes).

    Striding spreads every cohort across every lane, so lane occupancy and
    per-lane wall-clock stay balanced; because merging re-orders by pair
    id, the packing is invisible in the study's output.
    """
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    lanes = min(lanes, len(pairs)) or 1
    return [tuple(pairs[lane::lanes]) for lane in range(lanes)]
