"""The fleet kernel: many simulated device pairs per worker.

The farm (:mod:`repro.farm`) scales the study by giving every shard its
own *process-blocking* device pair; a worker can hold exactly one pair at
a time.  The fleet kernel removes that ceiling: device time is virtual, so
a single worker can multiplex hundreds of pairs by always advancing
whichever pair has the earliest next virtual deadline
(:class:`~repro.android.clock.FleetScheduler`).  The pair stays the unit
of simulation, the *lane* (one scheduler's slice of pairs) becomes the
unit of distribution, and heterogeneous :mod:`cohorts
<repro.apps.profiles>` make the population worth studying: RAM tiers, OS
skews, battery/ambient cycles, and Bluetooth quality all parameterize the
pairs.

Layers, bottom up:

* :mod:`repro.fleet.pairs` -- :class:`PairSpec` / :class:`PairSummary`
  and :func:`pair_task`, the cooperative generator that runs one pair;
* :mod:`repro.fleet.plan` -- cohort-composed fault plans, pair planning
  keyed on the global pair id, strided lane packing;
* :mod:`repro.fleet.lane` -- :func:`run_lane`: one scheduler, one
  checkpoint journal, one heartbeat, shared read-only corpus;
* :mod:`repro.fleet.study` -- :func:`run_fleet_study`: supervise lanes
  through the farm, merge by pair id, report per-cohort crash rates.

Determinism contract: a pair's summary is a pure function of its spec, so
the merged fleet is byte-identical at any ``(lanes x workers)`` packing,
and a single-pair blocking run is reproduced exactly by a one-entry
scheduler (the trampoline equivalence in :mod:`repro.qgj.fuzzer`).
"""

from __future__ import annotations

from repro.fleet.lane import lane_fingerprint, run_lane, shared_corpus
from repro.fleet.pairs import PairSpec, PairSummary, pair_task
from repro.fleet.plan import cohort_plan, plan_lanes, plan_pairs
from repro.fleet.study import FleetStudyResult, run_fleet_study

__all__ = [
    "FleetStudyResult",
    "PairSpec",
    "PairSummary",
    "cohort_plan",
    "lane_fingerprint",
    "pair_task",
    "plan_lanes",
    "plan_pairs",
    "run_fleet_study",
    "run_lane",
    "shared_corpus",
]
