"""One fleet lane: a scheduler multiplexing its slice of pairs.

A lane is the fleet's unit of *distribution* (one farm shard, one worker
heartbeat, one checkpoint journal) while the pair stays the unit of
*simulation*.  The lane admits every pair task into a
:class:`~repro.android.clock.FleetScheduler` and lets earliest-deadline
stepping interleave them; at any moment the worker is advancing exactly
one pair's virtual clock.

The lane also owns the fleet kernel's throughput lever: pairs share one
memoized read-only corpus per process (building the 46-app catalogue
costs more than fuzzing a small per-pair budget) and each pair installs
only its own package slice.  The blocking one-shard-one-pair model
structurally cannot share either, which is where the fleet's >=3x
pairs/sec on one core comes from.
"""

from __future__ import annotations

import functools
import os
import zlib
from typing import Dict, List, Optional, Sequence

from repro.android.clock import Clock, FleetScheduler
from repro.apps.catalog import Corpus, build_wear_corpus
from repro.faults.journal import CheckpointJournal, KillSwitch
from repro.fleet.pairs import PairSpec, PairSummary, pair_task
from repro.telemetry.metrics import (
    CRASHES,
    FLEET_LANE_OCCUPANCY,
    FLEET_PAIRS_ACTIVE,
    FLEET_PAIRS_FINISHED,
    INTENTS_SENT,
)
from repro.telemetry.record import CounterSite, GaugeSite

#: Scheduler resumptions between heartbeat beats: fine enough that a hung
#: pair is noticed inside the supervision deadline, coarse enough that the
#: beat never shows up in a profile.
_BEAT_EVERY_STEPS = 256

CRASHES_SITE = CounterSite(
    CRASHES, "Crashes observed by fleet pairs, by cohort.", ("cohort",)
)
INTENTS_SENT_SITE = CounterSite(
    INTENTS_SENT, "Intents injected by fleet pairs, by cohort.", ("cohort",)
)
PAIRS_FINISHED_SITE = CounterSite(
    FLEET_PAIRS_FINISHED, "Fleet pairs run to completion."
)
PAIRS_ACTIVE_SITE = GaugeSite(
    FLEET_PAIRS_ACTIVE, "Fleet pairs currently admitted and unfinished."
)
LANE_OCCUPANCY_SITE = GaugeSite(
    FLEET_LANE_OCCUPANCY, "Peak pairs multiplexed per lane.", ("lane",)
)


@functools.lru_cache(maxsize=4)
def shared_corpus(seed: int) -> Corpus:
    """The lane-shared read-only corpus blueprint, built once per process.

    Safe to share because :meth:`Corpus.install` never mutates the corpus:
    factories register into each device's activity manager and runtime
    state lives in per-device component instances.
    """
    return build_wear_corpus(seed=seed)


def lane_fingerprint(pairs: Sequence[PairSpec]) -> str:
    """Stable identity of a lane's pair slice, for resume validation."""
    tokens = []
    for spec in pairs:
        plan = spec.plan.fingerprint() if spec.plan is not None else "clean"
        mode = (
            f"guided[{spec.guided.scheduler},{spec.guided.block_size},"
            f"{spec.guided.seed},{spec.guided.budget}]"
            if spec.guided is not None
            else "blind"
        )
        tokens.append(f"{spec.pair_id}:{spec.cohort}:{spec.seed}:{plan}:{mode}")
    digest = zlib.crc32("|".join(tokens).encode("utf-8")) & 0xFFFFFFFF
    return f"pairs={len(pairs)};crc={digest:08x}"


def run_lane(
    pairs: Sequence[PairSpec],
    lane_index: int,
    journal_path: Optional[str] = None,
    resume: bool = False,
    kill_switch: Optional[KillSwitch] = None,
    telemetry_handle=None,
    heartbeat=None,
) -> List[PairSummary]:
    """Run one lane's pairs to completion; returns summaries by pair id.

    With *journal_path*, every completed pair is appended durably; a
    killed lane resumed under the same pair slice replays the journaled
    summaries verbatim and re-runs only the in-flight pairs (each of which
    is deterministic from its spec, so the merged fleet is identical to an
    uninterrupted run's).
    """
    pairs = list(pairs)
    completed: Dict[int, PairSummary] = {}
    journal = CheckpointJournal(journal_path) if journal_path is not None else None
    fingerprint = lane_fingerprint(pairs)
    if journal is not None and resume and not os.path.exists(journal.path):
        # The kill landed before this lane's first checkpoint (or a retry
        # is resuming a lane that never started): restart from scratch.
        resume = False
    if journal is not None and resume:
        header = journal.header()
        if header.get("fleet_fingerprint") != fingerprint:
            raise ValueError(
                f"journal {journal.path} was recorded for a different pair "
                f"slice ({header.get('fleet_fingerprint')!r}, expected "
                f"{fingerprint!r}) -- resume with the original fleet/cohorts/"
                "lanes/workers"
            )
        # Owning-writer resume: this lane appends right after, so a torn
        # tail from the kill must be truncated off before the next record.
        for record in journal.load(journal.path, truncate=True):
            if record.get("type") == "pair":
                summary = PairSummary.from_record(record)
                completed[summary.pair_id] = summary
    elif journal is not None:
        journal.start(
            {
                "kind": "fleet-lane",
                "lane": lane_index,
                "fleet_fingerprint": fingerprint,
                "config": pairs[0].config.name if pairs else "",
            }
        )

    enabled = telemetry_handle is not None and telemetry_handle.enabled
    if enabled:
        metrics = telemetry_handle.metrics
        crash_handles = {}
        sent_handles = {}
        finished_handle = PAIRS_FINISHED_SITE.bind(metrics)
        active_handle = PAIRS_ACTIVE_SITE.bind(metrics)

    scheduler = FleetScheduler()

    def tracked(spec: PairSpec, clock: Clock):
        corpus = shared_corpus(spec.config.corpus_seed)
        summary = yield from pair_task(
            spec,
            corpus,
            kill_switch,
            clock=clock,
            telemetry_handle=telemetry_handle,
        )
        if journal is not None:
            journal.append({"type": "pair", **summary.to_record()})
        if enabled:
            cohort = summary.cohort
            try:
                crash_handles[cohort].inc(summary.crashes)
                sent_handles[cohort].inc(summary.sent)
            except KeyError:
                crash_handles[cohort] = CRASHES_SITE.bind(metrics, (cohort,))
                sent_handles[cohort] = INTENTS_SENT_SITE.bind(metrics, (cohort,))
                crash_handles[cohort].inc(summary.crashes)
                sent_handles[cohort].inc(summary.sent)
            finished_handle.inc()
            active_handle.set(scheduler.active - 1)
        return summary

    for spec in pairs:
        if spec.pair_id in completed:
            continue
        clock = Clock()
        scheduler.add(spec.name, clock, tracked(spec, clock))

    if heartbeat is not None:
        heartbeat.beat()
    while scheduler.run_some(_BEAT_EVERY_STEPS):
        if heartbeat is not None:
            heartbeat.beat()
    if heartbeat is not None:
        heartbeat.beat()

    for summary in scheduler.results().values():
        if summary is not None:
            completed[summary.pair_id] = summary
    if enabled:
        LANE_OCCUPANCY_SITE.bind(metrics, (f"{lane_index:03d}",)).set(
            scheduler.peak_active
        )
    return [completed[pair_id] for pair_id in sorted(completed)]
