"""The fleet study: plan pairs, pack lanes, supervise, merge, report.

This is the fleet kernel's top layer, shaped like
:func:`repro.experiments.wear_experiment.run_wear_study` so the runner and
the journaling/resume/kill-switch machinery compose unchanged:

1. plan ``--fleet N`` pair specs from the cohort cycle (every pair a pure
   function of its global id);
2. pack them into ``--lanes M`` strided slices, one farm shard per lane;
3. run the lanes through the supervised farm (``--workers`` processes,
   deadlines, heartbeat liveness, retry-with-resume, poison quarantine);
4. merge pair summaries back into global pair-id order and fold them into
   the per-cohort population report.

**Packing invariance.**  Pairs share no simulated state and derive
everything from ``pair_id``, lanes only decide which scheduler multiplexes
which subset, and the merge re-orders by pair id -- so the merged fleet,
the population report, and every telemetry *counter* are byte-identical at
any ``(lanes x workers)`` packing of the same fleet.  The fleet metric
series are pre-registered here in sorted cohort order for exactly that
reason: lane-local binding order depends on pair completion order, which
packing *does* change.  Gauges are the deliberate exception -- lane
occupancy is a property of the packing itself, and last-level gauges (the
logcat buffer depth) report whichever pair wrote last.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro import faults, telemetry
from repro.analysis.population import (
    PopulationReport,
    population_report,
    render_population,
)
from repro.experiments.config import QUICK, ExperimentConfig
from repro.farm import (
    DEFAULT_POLICY,
    ShardPoisonedError,
    ShardSpec,
    StudyHealthReport,
    StudyManifest,
    SupervisionPolicy,
    absorb_telemetry,
    merge_fleet,
    supervise_shards,
)
from repro.faults.journal import KillSwitch
from repro.fleet.lane import (
    CRASHES_SITE,
    INTENTS_SENT_SITE,
    LANE_OCCUPANCY_SITE,
    PAIRS_ACTIVE_SITE,
    PAIRS_FINISHED_SITE,
    shared_corpus,
)
from repro.fleet.pairs import PairSpec, PairSummary
from repro.fleet.plan import plan_lanes, plan_pairs
from repro.apps.profiles import DEFAULT_COHORT_SPEC, parse_cohort_spec
from repro.qgj.campaigns import Campaign

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.guided.study import GuidedConfig


@dataclasses.dataclass
class FleetStudyResult:
    """Everything a fleet run produces."""

    summaries: List[PairSummary]
    report: PopulationReport
    config: ExperimentConfig
    fleet_size: int
    cohorts: str
    lanes: int
    #: Final virtual-clock sum of every lane, in lane order.
    lane_clock_ms: Tuple[float, ...] = ()
    health: Optional[StudyHealthReport] = None

    @property
    def intents_sent(self) -> int:
        return sum(summary.sent for summary in self.summaries)

    @property
    def crash_count(self) -> int:
        return sum(summary.crashes for summary in self.summaries)

    def virtual_hours(self) -> float:
        return sum(s.clock_ms for s in self.summaries) / 3_600_000.0

    def render_report(self) -> str:
        return render_population(self.report)


def _fleet_shards(
    pairs: Sequence[PairSpec],
    lanes: int,
    config: ExperimentConfig,
    campaigns: Sequence[Campaign],
    manifest: Optional[StudyManifest],
    resume: bool,
    telemetry_enabled: bool,
) -> List[ShardSpec]:
    """One farm shard per lane; the lane's pair slice rides on the spec."""
    specs: List[ShardSpec] = []
    for index, lane in enumerate(plan_lanes(list(pairs), lanes)):
        packages = tuple(sorted({p for spec in lane for p in spec.packages}))
        specs.append(
            ShardSpec(
                study="fleet",
                index=index,
                key=f"lane-{index:02d}",
                packages=packages,
                campaigns=tuple(campaigns),
                config=config,
                seed=config.corpus_seed,
                plan=None,  # pairs carry their own cohort-composed plans
                telemetry_enabled=telemetry_enabled,
                journal_path=(
                    manifest.shard_journal_path(index) if manifest is not None else None
                ),
                resume=resume,
                fleet=lane,
            )
        )
    return specs


def _preregister_fleet_series(handle, pairs: Sequence[PairSpec], lanes: int) -> None:
    """Create every fleet metric series up front, in sorted label order.

    Lane code binds series lazily as pairs finish, and completion order
    depends on the packing; registering the full label space here (all at
    zero) pins the export ordering to the fleet plan alone.
    """
    if handle is None or not handle.enabled:
        return
    metrics = handle.metrics
    for cohort in sorted({spec.cohort for spec in pairs}):
        CRASHES_SITE.bind(metrics, (cohort,))
        INTENTS_SENT_SITE.bind(metrics, (cohort,))
    PAIRS_FINISHED_SITE.bind(metrics)
    PAIRS_ACTIVE_SITE.bind(metrics)
    lane_count = min(lanes, len(pairs)) or 1
    for lane in range(lane_count):
        LANE_OCCUPANCY_SITE.bind(metrics, (f"{lane:03d}",))


def run_fleet_study(
    fleet_size: int,
    config: ExperimentConfig = QUICK,
    cohorts: str = DEFAULT_COHORT_SPEC,
    lanes: int = 1,
    packages: Optional[Sequence[str]] = None,
    campaigns: Sequence[Campaign] = tuple(Campaign),
    journal_path: Optional[str] = None,
    resume: bool = False,
    kill_after_injections: Optional[int] = None,
    workers: int = 1,
    shard_timeout: Optional[float] = None,
    max_shard_attempts: Optional[int] = None,
    allow_partial: bool = False,
    guided: Optional["GuidedConfig"] = None,
) -> FleetStudyResult:
    """Run a heterogeneous device fleet through the cooperative kernel.

    *fleet_size* pairs are drawn round-robin from the *cohorts* spec (see
    :func:`repro.apps.profiles.parse_cohort_spec`) and packed into *lanes*
    cooperative schedulers, distributed over *workers* processes.  Results
    are byte-identical at any ``(lanes, workers)`` packing.

    Journaling mirrors the wear study: a manifest plus one checkpoint
    journal per lane, each completed pair appended durably; a later call
    with ``resume=True`` (same config, fault plan, fleet, cohorts, lanes
    and workers) replays completed pairs from the journals and re-runs
    only the in-flight ones, converging on the identical merged fleet.
    *kill_after_injections* arms the same study-wide kill switch the other
    studies use (shared across workers at ``workers>1``).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    kill_switch = (
        KillSwitch(kill_after_injections) if kill_after_injections is not None else None
    )
    policy = SupervisionPolicy(
        max_attempts=(
            max_shard_attempts
            if max_shard_attempts is not None
            else DEFAULT_POLICY.max_attempts
        ),
        shard_timeout_s=shard_timeout,
    )
    manifest = StudyManifest(journal_path) if journal_path is not None else None
    if resume:
        if manifest is None:
            raise ValueError("resume=True requires journal_path")
        header = manifest.validate_resume(
            config=config.name,
            fault_fingerprint=faults.fingerprint(),
            workers=workers,
        )
        if header.get("study") != "fleet":
            raise ValueError(
                f"journal {manifest.path} was recorded by a "
                f"{header.get('study', 'wear')!r} study, not a fleet study"
            )
        fleet_size = int(header["fleet_size"])
        cohorts = str(header["cohorts"])
        lanes = int(header["lanes"])
        packages = list(header["packages"])
        campaigns = tuple(Campaign(value) for value in header["campaigns"])
        if header.get("guided") is not None:
            from repro.guided.study import GuidedConfig as _GuidedConfig

            guided = _GuidedConfig(**header["guided"])
        else:
            guided = None

    parse_cohort_spec(cohorts)  # validate early, before any device is built
    if packages is None:
        corpus = shared_corpus(config.corpus_seed)
        packages = [app.package.package for app in corpus.apps]
    plane = faults.get()
    live = telemetry.get()
    pairs = plan_pairs(
        fleet_size,
        cohorts,
        config,
        packages,
        campaigns,
        base_plan=plane.plan if plane.armed else None,
        guided=guided,
    )
    specs = _fleet_shards(
        pairs,
        lanes,
        config,
        campaigns,
        manifest,
        resume,
        telemetry_enabled=live.enabled,
    )
    if manifest is not None and not resume:
        manifest.start(
            config=config.name,
            fault_fingerprint=faults.fingerprint(),
            packages=list(packages),
            campaigns=[campaign.value for campaign in campaigns],
            workers=workers,
            shards=specs,
            extra={
                "study": "fleet",
                "fleet_size": fleet_size,
                "cohorts": cohorts,
                "lanes": lanes,
                "guided": dataclasses.asdict(guided) if guided is not None else None,
            },
        )
    _preregister_fleet_series(live, pairs, lanes)
    run = supervise_shards(
        specs,
        workers=workers,
        policy=policy,
        kill_switch=kill_switch,
        telemetry_handle=live,
    )
    if run.health.poisoned() and not allow_partial:
        raise ShardPoisonedError(run.health)
    results = [result for result in run.results if result is not None]
    if not results:
        raise ShardPoisonedError(run.health)
    if workers != 1:
        absorb_telemetry(telemetry.get(), results)
    summaries = merge_fleet(run.results)
    return FleetStudyResult(
        summaries=summaries,
        report=population_report(summaries),
        config=config,
        fleet_size=fleet_size,
        cohorts=cohorts,
        lanes=lanes,
        lane_clock_ms=tuple(result.clock_ms for result in results),
        health=run.health,
    )
