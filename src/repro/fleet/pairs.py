"""One fleet pair: spec, summary, and the cooperative pair task.

A *pair* is the fleet's unit of simulation: one watch+phone pair drawn
from a :class:`~repro.apps.profiles.DeviceProfile` cohort, fuzzing its own
package slice under its own derived seed and cohort-composed fault plan.
:func:`pair_task` is a generator in the
:class:`~repro.android.clock.FleetScheduler` protocol -- it yields the
absolute virtual deadline of every pacing sleep and returns a picklable,
JSON-serializable :class:`PairSummary`.

Everything a pair does is a pure function of its :class:`PairSpec` (plus
the shared read-only corpus): devices are named by pair id, seeds and
plans are pre-derived by the planner, and cohort profiles are static data.
That is the whole fleet determinism argument -- which lane or worker runs
a pair, and in what interleaving, cannot change its summary.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional, Tuple

from repro.android.clock import Clock
from repro.android.runtime import RuntimeContext
from repro.apps.catalog import Corpus
from repro.apps.profiles import BATTERY_LOW_PCT, FLEET_COHORTS, DeviceProfile
from repro.experiments.config import ExperimentConfig
from repro.faults.journal import KillSwitch
from repro.faults.plan import FaultPlan
from repro.faults.plane import NOOP_PLANE, FaultPlane
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import QGJ_WEAR_PACKAGE, FuzzerLibrary
from repro.qgj.master import deploy
from repro.wear.ambient import DisplayState
from repro.wear.device import PhoneDevice, WearDevice, pair

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.guided.study import GuidedConfig


@dataclasses.dataclass(frozen=True)
class PairSpec:
    """Everything one fleet pair needs, picklable by design."""

    pair_id: int
    cohort: str
    packages: Tuple[str, ...]
    campaigns: Tuple[Campaign, ...]
    config: ExperimentConfig
    seed: int
    #: Cohort-composed, pair-re-seeded fault plan (``None`` = clean pair).
    plan: Optional[FaultPlan] = None
    #: When set, the pair fuzzes its package through a pair-local
    #: feedback-guided loop (bandit over campaign arms) instead of the
    #: blind campaign sweep.  Still a pure function of the spec: the
    #: bandit, pool mutations and grammar streams all seed from it.
    guided: Optional["GuidedConfig"] = None

    @property
    def name(self) -> str:
        return f"pair-{self.pair_id:04d}"

    def profile(self) -> DeviceProfile:
        return FLEET_COHORTS[self.cohort]


@dataclasses.dataclass(frozen=True)
class PairSummary:
    """What one pair ships home (JSON round-trippable for the journal)."""

    pair_id: int
    cohort: str
    model: str
    packages: Tuple[str, ...]
    sent: int
    delivered: int
    crashes: int
    anrs: int
    not_found: int
    security_exceptions: int
    transport_failures: int
    compat_mismatches: int
    retries: int
    quarantined: int
    reboots: int
    battery_end_pct: int
    ambient_transitions: int
    clock_ms: float

    @property
    def crash_rate(self) -> float:
        """Crashes per 1000 delivered intents (0 for an idle pair)."""
        if self.sent == 0:
            return 0.0
        return 1000.0 * self.crashes / self.sent

    def to_record(self) -> Dict[str, Any]:
        record = dataclasses.asdict(self)
        record["packages"] = list(self.packages)
        return record

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "PairSummary":
        fields = {f.name for f in dataclasses.fields(PairSummary)}
        payload = {k: v for k, v in record.items() if k in fields}
        payload["packages"] = tuple(payload["packages"])
        return PairSummary(**payload)


def _battery_end_pct(profile: DeviceProfile, clock_ms: float) -> int:
    drained = profile.battery_drain_pct_per_hour * (clock_ms / 3_600_000.0)
    return max(0, round(profile.battery_start_pct - drained))


def _arm_power_model(watch: WearDevice, profile: DeviceProfile) -> None:
    """Schedule the cohort's ambient duty cycle and low-battery park.

    Both run as clock callbacks, so they fire whenever the scheduler (or a
    blocking trampoline) advances this pair's clock -- the display state an
    injected intent observes depends only on the pair's own virtual time.
    Once the battery model crosses the low-water mark the watch parks in
    ambient mode and the duty cycle's pending toggle is cancelled (the
    compaction path in :class:`~repro.android.clock.Clock` exists for
    exactly this kind of armed-then-abandoned timer).
    """
    state = {"parked": False, "handle": None}
    ambient = watch.ambient
    clock = watch.clock

    def toggle() -> None:
        if state["parked"]:
            return
        if ambient.state is DisplayState.AMBIENT:
            ambient.exit_ambient()
        else:
            ambient.enter_ambient()
        assert profile.ambient_cycle_ms is not None
        state["handle"] = clock.call_after(profile.ambient_cycle_ms / 2.0, toggle)

    if profile.ambient_cycle_ms is not None:
        state["handle"] = clock.call_after(profile.ambient_cycle_ms / 2.0, toggle)

    drain = profile.battery_drain_pct_per_hour
    if drain > 0 and profile.battery_start_pct > BATTERY_LOW_PCT:
        low_at_ms = (
            (profile.battery_start_pct - BATTERY_LOW_PCT) / drain * 3_600_000.0
        )

        def park() -> None:
            state["parked"] = True
            if state["handle"] is not None:
                state["handle"].cancel()
            watch.logcat.w(
                "BatteryService",
                f"battery low ({BATTERY_LOW_PCT}%), parking display in ambient",
            )
            if ambient.state is not DisplayState.AMBIENT:
                ambient.enter_ambient()

        clock.call_at(low_at_ms, park)


def _guided_pair_rounds(
    spec: PairSpec, fuzzer: FuzzerLibrary, package_name: str
) -> Generator[float, None, Dict[str, int]]:
    """A pair-local guided loop: bandit rounds over one package's campaigns.

    The fleet analogue of :func:`repro.guided.study.run_guided_study`,
    scoped to a single device pair and its single package: the bandit's
    arms are the pair's campaigns, blocks run back-to-back on the pair's
    own device session (blocking inside one scheduler step -- pairs are
    independent, so coarse interleaving is harmless), and the generator
    yields at round boundaries so the fleet scheduler can switch pairs.
    Everything seeds from the spec, so guided fleets keep the packing
    invariance.  Returns the outcome-label totals (plus ``"sent"``).
    """
    # Deferred: the guided package pulls in the engine/scheduler stack,
    # which clean blind fleets never need.
    from repro.guided.corpus import BehaviorCorpus
    from repro.guided.engine import GuidedBlock, GuidedTask, run_guided_blocks
    from repro.guided.scheduler import make_scheduler
    from repro.android.component import ComponentKind
    from repro.qgj.campaigns import campaign_size

    guided = spec.guided
    assert guided is not None
    device = fuzzer._device
    package = device.packages.get_package(package_name)
    if package is None:
        raise ValueError(f"package not installed: {package_name}")
    fuzzed_kinds = (ComponentKind.ACTIVITY, ComponentKind.SERVICE)
    fuzzable = sum(1 for info in package.components if info.kind in fuzzed_kinds)
    per_component = sum(
        campaign_size(campaign, spec.config.fuzz.stride_for(campaign))
        for campaign in spec.campaigns
    )
    budget = (
        guided.budget if guided.budget is not None else fuzzable * per_component
    )
    arms = [(package_name, campaign.value) for campaign in spec.campaigns]
    scheduler = make_scheduler(
        guided.scheduler,
        arms,
        seed=guided.seed ^ spec.seed,
        exploration=guided.exploration,
    )
    corpus = BehaviorCorpus()
    totals: Dict[str, int] = {"sent": 0}
    remaining = budget
    round_index = 0
    while remaining > 0:
        allocation = scheduler.allocate(min(guided.arms_per_round, len(arms)))
        funded = []
        for arm in allocation:
            if remaining < 1:
                break
            block = min(guided.block_size, remaining)
            funded.append((arm, block))
            remaining -= block
        task = GuidedTask(
            package=package_name,
            round_index=round_index,
            blocks=tuple(
                GuidedBlock(
                    campaign=campaign_value,
                    budget=block,
                    offset=scheduler.states[(package_name, campaign_value)].intents,
                )
                for (_, campaign_value), block in funded
            ),
            pool=tuple(corpus.entries_for(package_name)),
            known=tuple(fp.as_tuple() for fp in corpus.fingerprints()),
            seed=guided.seed ^ spec.seed,
            pool_rate=guided.pool_rate,
        )
        outcomes = run_guided_blocks(fuzzer, task, spec.config.fuzz)
        for ((_, campaign_value), block), outcome in zip(funded, outcomes):
            novel = sum(1 for entry in outcome.new_entries if corpus.add(entry))
            scheduler.update((package_name, campaign_value), intents=block, novel=novel)
            totals["sent"] += outcome.sent
            for label, count in outcome.outcomes.items():
                totals[label] = totals.get(label, 0) + count
        round_index += 1
        # Round boundary: the only fleet yield point of a guided pair.
        yield device.clock.now_ms()
    return totals


def pair_task(
    spec: PairSpec,
    corpus: Corpus,
    kill_switch: Optional[KillSwitch] = None,
    clock: Optional[Clock] = None,
    telemetry_handle=None,
) -> Generator[float, None, PairSummary]:
    """Run one pair cooperatively; returns its :class:`PairSummary`.

    The generator yields every pacing deadline of the underlying fuzz
    loops (see :meth:`FuzzerLibrary.fuzz_app_coop`); the caller advances
    this pair's clock to each yielded deadline before resuming.  Driving
    it with a trivial ``advance_to`` trampoline reproduces a blocking run
    exactly -- the fleet equivalence tests pin that down.  *clock*, when
    given, becomes the watch's clock (the scheduler supplies it so it can
    advance a pair's time between resumptions).  *telemetry_handle* scopes
    the pair's device tree to the lane's handle -- in a worker process the
    global fallback would be a disabled handle and every device-level
    counter would silently vanish from the merged registry.
    """
    profile = spec.profile()
    plane = (
        FaultPlane(spec.plan, telemetry_handle=telemetry_handle)
        if spec.plan is not None
        else NOOP_PLANE
    )
    runtime = RuntimeContext(fault_plane=plane, telemetry_handle=telemetry_handle)
    watch = WearDevice(
        f"watch-{spec.pair_id:04d}",
        model=profile.model,
        logcat_capacity=spec.config.logcat_capacity,
        runtime=runtime,
        clock=clock,
    )
    phone = PhoneDevice(f"phone-{spec.pair_id:04d}", runtime=runtime)
    pair(phone, watch, latency_ms=profile.latency_ms)
    corpus.install(watch, only=spec.packages)
    deploy(phone, watch)
    _arm_power_model(watch, profile)
    fuzzer = FuzzerLibrary(
        watch, sender_package=QGJ_WEAR_PACKAGE, kill_switch=kill_switch
    )
    sent = delivered = crashes = anrs = not_found = 0
    security = transport = compat = retries = quarantined = 0
    for package_name in spec.packages:
        if spec.guided is not None:
            totals = yield from _guided_pair_rounds(spec, fuzzer, package_name)
            sent += totals.get("sent", 0)
            delivered += totals.get("delivered", 0)
            crashes += totals.get("crash", 0)
            anrs += totals.get("anr", 0)
            not_found += totals.get("not_found", 0)
            security += totals.get("security_exception", 0)
            transport += totals.get("transport_failure", 0)
            compat += totals.get("compat_mismatch", 0)
            if fuzzer.quarantine.is_quarantined(package_name):
                quarantined += 1
            continue
        for campaign in spec.campaigns:
            app_result = yield from fuzzer.fuzz_app_coop(
                package_name, campaign, spec.config.fuzz
            )
            sent += app_result.sent
            for component in app_result.components:
                delivered += component.delivered
                crashes += component.crashes_seen
                anrs += component.anrs_seen
                not_found += component.not_found
                security += component.security_exceptions
                transport += component.transport_failures
                compat += component.compat_mismatches
                retries += component.retries
            if app_result.quarantined:
                quarantined += 1
    clock_ms = watch.clock.now_ms()
    return PairSummary(
        pair_id=spec.pair_id,
        cohort=spec.cohort,
        model=profile.model,
        packages=spec.packages,
        sent=sent,
        delivered=delivered,
        crashes=crashes,
        anrs=anrs,
        not_found=not_found,
        security_exceptions=security,
        transport_failures=transport,
        compat_mismatches=compat,
        retries=retries,
        quarantined=quarantined,
        reboots=watch.boot_count - 1,
        battery_end_pct=_battery_end_pct(profile, clock_ms),
        ambient_transitions=len(watch.ambient.transitions),
        clock_ms=clock_ms,
    )
