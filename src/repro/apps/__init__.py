"""The synthetic app corpus standing in for the study's subjects.

Behaviour models (:mod:`repro.apps.behavior`), calibration constants
(:mod:`repro.apps.profiles`), the hand-modelled named apps
(:mod:`repro.apps.builtin`, :mod:`repro.apps.health`), and the corpus
builders (:mod:`repro.apps.catalog`).
"""

from repro.apps.behavior import (
    BehaviorRegistry,
    BehaviorSpec,
    ModeledActivity,
    ModeledReceiver,
    ModeledService,
    Outcome,
    Trigger,
    UiVulnerability,
    Vulnerability,
    stable_fraction,
    trigger_matches,
)
from repro.apps.catalog import (
    Corpus,
    CorpusApp,
    build_phone_corpus,
    build_wear_corpus,
    emulator_packages,
)

__all__ = [
    "BehaviorRegistry",
    "BehaviorSpec",
    "Corpus",
    "CorpusApp",
    "ModeledActivity",
    "ModeledReceiver",
    "ModeledService",
    "Outcome",
    "Trigger",
    "UiVulnerability",
    "Vulnerability",
    "build_phone_corpus",
    "build_wear_corpus",
    "emulator_packages",
    "stable_fraction",
    "trigger_matches",
]
