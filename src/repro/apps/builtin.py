"""Hand-modelled built-in apps with the paper's named defects.

Two of the study's concrete findings involve built-in (Google / vendor)
applications, so those apps get real handler code rather than generic
behaviour specs:

* **Google Fit** -- "a core AW component, reported a crash because an intent
  ``{act=ACTION_ALL_APP}`` was sent without the expected message
  (Complication Provider)".  :class:`GoogleFitAllAppActivity` implements the
  defect: it feeds whatever the extra holds straight into
  ``ComplicationProviderInfo.from_extra`` without an absence check, so a
  missing or garbage extra raises ``IllegalArgumentException`` out of
  ``onCreate`` -- an *input validation implemented only partially*, in the
  paper's words.

* **The ambient-binder app** (a built-in watch-face package) -- the app at
  the centre of reboot #2.  Its components are ordinary behaviour-spec
  components that crash on campaign D's random extras; what makes it special
  is that it is *registered as an expected Ambient binder*, so its crash
  loop starves ambient binding and escalates through the system server's
  SIGSEGV path.  The builder here wires that registration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.android.component import Activity, ComponentInfo, ComponentKind
from repro.android.intent import ComponentName, Intent, launcher_filter
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.apps.behavior import (
    BehaviorRegistry,
    BehaviorSpec,
    Outcome,
    Trigger,
    Vulnerability,
)
from repro.wear.complications import (
    ACTION_ALL_APP,
    EXTRA_PROVIDER_INFO,
    ComplicationProviderInfo,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.android.context import Context

GOOGLE_FIT_PACKAGE = "com.google.android.apps.fitness"
MOTOROLA_BODY_PACKAGE = "com.motorola.omega.body"
AMBIENT_BINDER_PACKAGE = "com.google.android.wearable.watchface"


class GoogleFitAllAppActivity(Activity):
    """Google Fit's complication browser, with the paper's IAE defect."""

    def on_handle_intent(self, intent: Intent, phase: str) -> float:
        if intent.action == ACTION_ALL_APP:
            # Defective: no absence check before parsing.  A missing extra
            # arrives as None; campaign D's random extras arrive as garbage.
            # Either way from_extra raises IllegalArgumentException, which
            # this handler does not catch.
            provider = ComplicationProviderInfo.from_extra(
                intent.get_extra(EXTRA_PROVIDER_INFO)
            )
            self.context.log_i("FitComplications", f"browsing apps for {provider.provider}")
        return 1.5


def google_fit_spec_key(registry: BehaviorRegistry, activity_manager) -> str:
    """Register the Google Fit activity factory; returns its behavior key."""
    key = "builtin.googlefit.allapp"
    activity_manager.register_factory(key, GoogleFitAllAppActivity)
    return key


def ambient_binder_specs(registry: BehaviorRegistry) -> List[str]:
    """Register the two crash-looping components of the ambient-binder app.

    Component 1 dies in ``onCreate`` with the framework's RuntimeException
    wrapper around an NPE ("inability to start an Activity because of
    missing data in the malformed intent"); component 2 dies with an
    IllegalStateException about its ambient session.  Together with the
    DeadObjectException from reboot #1's sensor post-mortem these are the
    three classes the paper found "equally culpable" for reboots.
    """
    config_key = registry.register(
        "builtin.ambient.faceconfig",
        BehaviorSpec(
            tag="WatchFaceConfig",
            vulnerabilities=[
                Vulnerability(
                    trigger=Trigger.UNEXPECTED_EXTRAS,
                    exception="java.lang.NullPointerException",
                    outcome=Outcome.CRASH,
                    message=(
                        "Attempt to invoke virtual method "
                        "'java.lang.String android.os.Bundle.getString(java.lang.String)' "
                        "on a null object reference"
                    ),
                    method="onCreate",
                    line=88,
                    wrap_in_runtime=True,
                )
            ],
        ),
    )
    launcher_key = registry.register(
        "builtin.ambient.launcher",
        BehaviorSpec(
            tag="WatchFacePicker",
            vulnerabilities=[
                # The picker *catches* the malformed-extras NPE and logs it.
                # During reboot #2 these warnings sit in the escalation
                # window, putting a second watch-face component among the
                # implicated ones without adding a new exception class.
                Vulnerability(
                    trigger=Trigger.UNEXPECTED_EXTRAS,
                    exception="java.lang.NullPointerException",
                    outcome=Outcome.HANDLED,
                    message="null style bundle in picker request",
                    method="applyStyle",
                    line=64,
                )
            ],
        ),
    )
    tile_key = registry.register(
        "builtin.ambient.tileservice",
        BehaviorSpec(
            tag="AmbientTile",
            vulnerabilities=[
                Vulnerability(
                    trigger=Trigger.EXTRA_TYPE_CONFUSION,
                    exception="java.lang.IllegalStateException",
                    outcome=Outcome.CRASH,
                    message="ambient session not attached; cannot bind AmbientService",
                    method="onStartCommand",
                    line=141,
                )
            ],
        ),
    )
    return [config_key, tile_key, launcher_key]


def build_google_fit_components(extra_components: List[ComponentInfo]) -> PackageInfo:
    """Assemble the Google Fit package around its defective activity.

    *extra_components* are the generically generated filler components that
    bring the package to its share of Table II's built-in health counts.
    """
    special = ComponentInfo(
        name=ComponentName(GOOGLE_FIT_PACKAGE, GOOGLE_FIT_PACKAGE + ".ComplicationsAllAppActivity"),
        kind=ComponentKind.ACTIVITY,
        exported=True,
        behavior_key="builtin.googlefit.allapp",
    )
    launcher = ComponentInfo(
        name=ComponentName(GOOGLE_FIT_PACKAGE, GOOGLE_FIT_PACKAGE + ".FitHomeActivity"),
        kind=ComponentKind.ACTIVITY,
        exported=True,
        intent_filters=[launcher_filter()],
    )
    return PackageInfo(
        package=GOOGLE_FIT_PACKAGE,
        label="Google Fit",
        category=AppCategory.HEALTH_FITNESS,
        origin=AppOrigin.BUILT_IN,
        components=[special, launcher] + extra_components,
        uses_google_fit=True,
        requested_permissions=[
            "android.permission.BODY_SENSORS",
            "android.permission.ACTIVITY_RECOGNITION",
        ],
    )
