"""Corpus builders: the study's app populations, synthesised.

Three corpora are built here, mirroring the paper's three test beds:

* :func:`build_wear_corpus` -- the 46-app Android Wear population of
  Table II (2 + 11 health/fitness, 9 + 24 other; 514 activities, 398
  services), with defects assigned per the calibration quotas in
  :mod:`repro.apps.profiles` and the four hand-modelled apps (Google Fit,
  the ambient-binder watch-face app, the heart-rate app, the GridViewPager
  legacy app) in their places;
* :func:`build_phone_corpus` -- the 63 ``com.android.*`` apps (595
  activities, 218 services) used for the Android 7.1.1 comparison
  (Table IV);
* :func:`emulator_packages` -- the Watch-emulator selection used by QGJ-UI
  (all non-vendor built-ins plus the top-20 third-party apps by downloads),
  with sparse UI-event defects.

Everything is generated from a seeded RNG: the same seed reproduces the
same corpus, component for component, defect for defect.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.android.component import ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.intent import ComponentName, IntentFilter, launcher_filter
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.apps import builtin as builtin_apps
from repro.apps import health as health_apps
from repro.apps.behavior import (
    BehaviorRegistry,
    BehaviorSpec,
    Outcome,
    Trigger,
    UiVulnerability,
    Vulnerability,
)
from repro.apps.profiles import (
    ALL_QUIRK_TRIGGERS,
    AMBIENT_CRASH_LOOP,
    CAMPAIGN_TRIGGERS,
    COMPONENTS_PER_CRASH_SLOT,
    EXTRA_HANG_COMPONENTS,
    HANDLED_EXCEPTION_MIX,
    HANDLED_QUIRK_FRACTION,
    HANG_APP_COMPONENTS,
    HANG_EXCEPTION_MIX,
    HEALTH_CRASH_QUOTA,
    HEART_RATE_WEDGE_DELIVERIES,
    MIN_THIRD_PARTY_DOWNLOADS,
    NOT_EXPORTED_FRACTION,
    OTHER_CRASH_QUOTA,
    PERMISSION_GUARDED_FRACTION,
    PHONE_CRASH_COMPONENTS,
    PHONE_CRASH_EXCEPTION_MIX,
    PHONE_POPULATION,
    WEAR_CRASH_EXCEPTION_MIX,
    WEAR_POPULATION,
    allocate_by_mix,
)
from repro.wear.device import WearDevice

# ---------------------------------------------------------------------------
# Name material.
# ---------------------------------------------------------------------------

_HEALTH_THIRD_PARTY = (
    ("com.pulsetrack.wear", "PulseTrack"),          # reboot #1 (heart rate)
    ("com.stridelog.wear", "StrideLog"),            # GridViewPager legacy
    ("com.cardiowatch.wear", "CardioWatch"),        # the hang app
    ("com.runmate.wear", "RunMate"),
    ("com.fitband.wear", "FitBand"),
    ("com.stepcount.wear", "StepCount"),
    ("com.sleepwell.wear", "SleepWell"),
    ("com.yogaflow.wear", "YogaFlow"),
    ("com.cyclemate.wear", "CycleMate"),
    ("com.aquafit.wear", "AquaFit"),
    ("com.trailrun.wear", "TrailRun"),
)

_OTHER_BUILTIN = (
    (builtin_apps.AMBIENT_BINDER_PACKAGE, "Watch Faces"),  # reboot #2
    ("com.google.android.wearable.app", "Wear OS"),
    ("com.google.android.deskclock", "Clock"),
    ("com.google.android.calendar", "Calendar"),
    ("com.google.android.gm", "Gmail"),
    ("com.google.android.apps.maps", "Maps"),
    ("com.google.android.music", "Play Music"),
    ("com.google.android.contacts", "Contacts"),
    ("com.google.android.keep", "Keep"),
)

_OTHER_THIRD_PARTY = (
    ("com.chatterbox.wear", "ChatterBox"),
    ("com.skycast.wear", "SkyCast"),
    ("com.newsflash.wear", "NewsFlash"),
    ("com.wayfind.wear", "WayFind"),
    ("com.lingua.wear", "Lingua"),
    ("com.tictoc.wear", "TicToc Timer"),
    ("com.quickcalc.wear", "QuickCalc"),
    ("com.cartful.wear", "Cartful"),
    ("com.vaultpay.wear", "VaultPay"),
    ("com.tunewave.wear", "TuneWave"),
    ("com.podcatch.wear", "PodCatch"),
    ("com.airwave.wear", "AirWave Radio"),
    ("com.notely.wear", "Notely"),
    ("com.checklist.wear", "Checklist"),
    ("com.mailwing.wear", "MailWing"),
    ("com.surfview.wear", "SurfView"),
    ("com.pingme.wear", "PingMe"),
    ("com.snapgram.wear", "SnapGram"),
    ("com.buzzline.wear", "BuzzLine"),
    ("com.blockdrop.wear", "BlockDrop"),
    ("com.wordduel.wear", "WordDuel"),
    ("com.jetsetter.wear", "JetSetter"),
    ("com.hailcab.wear", "HailCab"),
    ("com.fotobox.wear", "FotoBox"),
)

_PHONE_BUILTIN_STEMS = (
    "chrome", "vending", "settings", "phone", "contacts", "mms", "email",
    "calendar", "camera", "gallery", "music", "browser", "deskclock",
    "calculator", "launcher", "systemui", "inputmethod.latin", "downloads",
    "documentsui", "printspooler", "bluetooth", "nfc", "keychain",
    "packageinstaller", "providers.contacts", "providers.calendar",
    "providers.media", "providers.downloads", "providers.telephony",
    "providers.settings", "server.telecom", "shell", "externalstorage",
    "carrierconfig", "emergency", "managedprovisioning", "storagemanager",
    "soundrecorder", "wallpaper", "voicedialer", "certinstaller",
    "captiveportallogin", "proxyhandler", "statementservice", "dreams.basic",
    "backupconfirm", "sharedstoragebackup", "vpndialogs", "cellbroadcast",
    "traceur", "stk", "bookmarkprovider", "quicksearchbox", "hotspot2",
    "companiondevicemanager", "mtp", "pacprocessor", "simappdialog",
    "theme", "wallpaperbackup", "bips", "egg", "dialer",
)

_ACTIVITY_STEMS = (
    "Main", "Settings", "Detail", "Share", "Search", "Login", "Profile",
    "History", "Summary", "Picker", "Editor", "Viewer", "Config", "About",
    "Onboarding", "Stats", "Export", "Widget", "Alert", "Browse",
)

_SERVICE_STEMS = (
    "Sync", "DataLayerListener", "Notification", "Upload", "Download",
    "Tracking", "Backup", "Metrics", "Push", "Refresh", "Cache", "Session",
    "Beacon", "Cleanup", "Wakeful",
)

_MESSAGE_TEMPLATES: Dict[str, str] = {
    "java.lang.NullPointerException": (
        "Attempt to invoke virtual method 'java.lang.String "
        "android.net.Uri.getScheme()' on a null object reference"
    ),
    "java.lang.IllegalArgumentException": "Unknown URI content scheme for received intent",
    "java.lang.IllegalStateException": "Fragment host has been destroyed before intent delivery",
    "java.lang.ClassNotFoundException": "Didn't find class in parceled extras",
    "java.lang.RuntimeException": "Failure delivering result to handler",
    "java.lang.ClassCastException": "java.lang.String cannot be cast to android.os.Bundle",
    "java.lang.UnsupportedOperationException": "This component does not support external data",
    "android.content.ActivityNotFoundException": (
        "No Activity found to handle forwarded Intent"
    ),
    "android.database.sqlite.SQLiteException": "no such table: pending_items (code 1)",
    "java.lang.IndexOutOfBoundsException": "Index: 3, Size: 0",
    "java.lang.NumberFormatException": 'Invalid long: "extra value"',
    "java.lang.SecurityException": "Caller lacks permission for requested record",
    "android.os.BadParcelableException": "ClassNotFoundException when unmarshalling extras",
    "android.os.DeadObjectException": "remote callback target is gone",
}


def _message_for(exception: str) -> str:
    return _MESSAGE_TEMPLATES.get(exception, "unexpected intent payload")


# ---------------------------------------------------------------------------
# Small deterministic helpers.
# ---------------------------------------------------------------------------


def partition(total: int, parts: int, rng: random.Random, minimum: int = 1) -> List[int]:
    """Split *total* into *parts* integers >= *minimum*, summing exactly."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < parts * minimum:
        raise ValueError(f"cannot give {parts} parts at least {minimum} from {total}")
    counts = [minimum] * parts
    for _ in range(total - parts * minimum):
        counts[rng.randrange(parts)] += 1
    return counts


def _assign_quota_slots(
    quota: Dict[str, int], apps: Sequence[str], rng: random.Random
) -> List[Tuple[str, str]]:
    """Assign per-campaign crash quotas to apps.

    Returns (app, campaign) slots such that each campaign gets exactly its
    quota of *distinct* apps and every app receives at least one slot.
    """
    slots: List[Tuple[str, str]] = []
    order = list(apps)
    rng.shuffle(order)
    pointer = 0
    for campaign in sorted(quota):
        count = quota[campaign]
        if count > len(order):
            raise ValueError(f"quota {count} exceeds app pool {len(order)}")
        chosen = [order[(pointer + i) % len(order)] for i in range(count)]
        pointer = (pointer + count) % len(order)
        slots.extend((app, campaign) for app in chosen)
    assigned = {app for app, _ in slots}
    missing = [app for app in order if app not in assigned]
    if missing:
        raise ValueError(
            f"quota assignment left apps without slots: {missing}; "
            "lower the crash-app count or raise quotas"
        )
    return slots


# ---------------------------------------------------------------------------
# Corpus data classes.
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CorpusApp:
    """One generated application plus its experiment roles."""

    package: PackageInfo
    crash_campaigns: Set[str] = dataclasses.field(default_factory=set)
    roles: Set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass
class Corpus:
    """A full generated population, ready to install on a device."""

    apps: List[CorpusApp]
    registry: BehaviorRegistry
    seed: int
    wedge_deliveries: int = HEART_RATE_WEDGE_DELIVERIES

    def packages(self) -> List[PackageInfo]:
        return [app.package for app in self.apps]

    def app(self, package_name: str) -> CorpusApp:
        for app in self.apps:
            if app.package.package == package_name:
                return app
        raise KeyError(package_name)

    def apps_with_role(self, role: str) -> List[CorpusApp]:
        return [app for app in self.apps if role in app.roles]

    def install(self, device: Device, only: Optional[Sequence[str]] = None) -> None:
        """Install every package (or just *only*) and wire the factories.

        Installing never mutates the corpus itself -- spec factories are
        registered *into the device's* activity manager and all runtime
        state lives in per-device component instances -- so one built
        corpus can be installed onto any number of devices.  The fleet
        kernel leans on both halves: a lane builds the corpus once and
        installs each pair's package slice from it.
        """
        wanted = None if only is None else set(only)
        self.registry.install(device.activity_manager)
        health_apps.register_health_factories(
            device.activity_manager, wedge_deliveries=self.wedge_deliveries
        )
        builtin_apps.google_fit_spec_key(self.registry, device.activity_manager)
        for package in self.packages():
            if wanted is None or package.package in wanted:
                device.install(package)
        if isinstance(device, WearDevice):
            for app in self.apps_with_role("ambient_binder"):
                if wanted is None or app.package.package in wanted:
                    device.ambient.expect_binder(app.package.package)

    def component_count(self) -> Tuple[int, int]:
        activities = sum(len(p.activities()) for p in self.packages())
        services = sum(len(p.services()) for p in self.packages())
        return activities, services


# ---------------------------------------------------------------------------
# Component generation.
# ---------------------------------------------------------------------------


class _ComponentFactory:
    """Generates deterministic component manifests for one corpus."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._counters: Dict[str, itertools.count] = {}

    def make(
        self,
        package: str,
        kind: ComponentKind,
        launcher: bool = False,
    ) -> ComponentInfo:
        stems = _ACTIVITY_STEMS if kind == ComponentKind.ACTIVITY else _SERVICE_STEMS
        counter = self._counters.setdefault(f"{package}:{kind.value}", itertools.count())
        index = next(counter)
        stem = stems[index % len(stems)]
        suffix = "" if index < len(stems) else str(index // len(stems) + 1)
        class_suffix = "Activity" if kind == ComponentKind.ACTIVITY else "Service"
        name = ComponentName(package, f"{package}.{stem}{suffix}{class_suffix}")
        if launcher:
            exported, permission, filters = True, None, [launcher_filter()]
        else:
            roll = self._rng.random()
            filters = []
            if roll < NOT_EXPORTED_FRACTION:
                exported, permission = False, None
            elif roll < NOT_EXPORTED_FRACTION + PERMISSION_GUARDED_FRACTION:
                exported, permission = True, "android.permission.BODY_SENSORS"
            else:
                exported, permission = True, None
        return ComponentInfo(
            name=name,
            kind=kind,
            exported=exported,
            permission=permission,
            intent_filters=filters,
        )

    def fill(
        self, package: str, activities: int, services: int, with_launcher: bool = True
    ) -> List[ComponentInfo]:
        """Generate *activities* + *services* components, launcher first."""
        components: List[ComponentInfo] = []
        for i in range(activities):
            components.append(
                self.make(package, ComponentKind.ACTIVITY, launcher=(with_launcher and i == 0))
            )
        for _ in range(services):
            components.append(self.make(package, ComponentKind.SERVICE))
        return components


def _injectable(components: Iterable[ComponentInfo]) -> List[ComponentInfo]:
    """Components eligible for generic defects.

    Exported, unguarded, not already hand-modelled -- and not launcher
    activities: the paper observes launchers "are also simpler and therefore
    tend to be more reliable", and QGJ-UI's benign Table V depends on it.
    """
    return [
        c
        for c in components
        if c.exported
        and c.permission is None
        and c.behavior_key is None
        and not c.is_launcher()
    ]


def _attach_vulnerability(
    registry: BehaviorRegistry,
    component: ComponentInfo,
    vulnerability: Vulnerability,
    tag: str,
) -> None:
    """Give *component* a behaviour spec (creating or extending it)."""
    if component.behavior_key is None:
        key = f"gen.{component.name.flatten_to_string()}"
        component.behavior_key = registry.register(
            key, BehaviorSpec(tag=tag, vulnerabilities=[vulnerability])
        )
    else:
        registry.get(component.behavior_key).vulnerabilities.append(vulnerability)


# ---------------------------------------------------------------------------
# The wear corpus.
# ---------------------------------------------------------------------------


def build_wear_corpus(
    seed: int = 2018,
    wedge_deliveries: int = HEART_RATE_WEDGE_DELIVERIES,
) -> Corpus:
    """Build the 46-app Android Wear population of Table II."""
    rng = random.Random(seed)
    registry = BehaviorRegistry()
    factory = _ComponentFactory(rng)
    apps: List[CorpusApp] = []

    # ---- Health/Fitness, built-in: Google Fit + Motorola Body -------------------
    cell = WEAR_POPULATION[("Health/Fitness", "Built-in")]
    act_split = partition(cell.activities, cell.apps, rng, minimum=10)
    svc_split = partition(cell.services, cell.apps, rng, minimum=5)

    fit_fill = factory.fill(
        builtin_apps.GOOGLE_FIT_PACKAGE, act_split[0] - 2, svc_split[0], with_launcher=False
    )
    google_fit = builtin_apps.build_google_fit_components(fit_fill)
    apps.append(
        CorpusApp(
            package=google_fit,
            crash_campaigns={"A", "B", "C", "D"},  # ACTION_ALL_APP fires in all four
            roles={"named:google_fit"},
        )
    )

    moto_components = factory.fill(
        builtin_apps.MOTOROLA_BODY_PACKAGE, act_split[1], svc_split[1]
    )
    motorola = PackageInfo(
        package=builtin_apps.MOTOROLA_BODY_PACKAGE,
        label="Motorola Body",
        category=AppCategory.HEALTH_FITNESS,
        origin=AppOrigin.BUILT_IN,
        components=moto_components,
        uses_sensor_manager=True,
        vendor=True,
    )
    apps.append(
        CorpusApp(package=motorola, crash_campaigns={"B", "C"}, roles={"named:motorola_body"})
    )
    # Motorola Body's workout-tracking components crash on blank and random
    # inputs (the paper names it alongside Google Fit among the failing
    # built-in core AW components).
    moto_workout, moto_history = _injectable(moto_components)[:2]
    _attach_vulnerability(
        registry,
        moto_workout,
        Vulnerability(
            trigger=Trigger.MISSING_DATA,
            exception="java.lang.NullPointerException",
            outcome=Outcome.CRASH,
            message="workout session URI was null",
            method="onStartCommand" if moto_workout.kind == ComponentKind.SERVICE else "onCreate",
            line=118,
        ),
        tag="MotoBody",
    )
    _attach_vulnerability(
        registry,
        moto_history,
        Vulnerability(
            trigger=Trigger.MALFORMED_DATA,
            exception="java.lang.IllegalArgumentException",
            outcome=Outcome.CRASH,
            message="unparseable workout record URI",
            method="onCreate",
            line=203,
        ),
        tag="MotoBody",
    )

    # ---- Health/Fitness, third-party -------------------------------------------
    cell = WEAR_POPULATION[("Health/Fitness", "Third Party")]
    act_split = partition(cell.activities, cell.apps, rng, minimum=3)
    svc_split = partition(cell.services, cell.apps, rng, minimum=2)
    for i, (pkg, label) in enumerate(_HEALTH_THIRD_PARTY):
        components = factory.fill(pkg, act_split[i], svc_split[i])
        package = PackageInfo(
            package=pkg,
            label=label,
            category=AppCategory.HEALTH_FITNESS,
            origin=AppOrigin.THIRD_PARTY,
            downloads=MIN_THIRD_PARTY_DOWNLOADS + rng.randrange(50_000_000),
            components=components,
            uses_google_fit=(pkg not in (health_apps.HEART_RATE_PACKAGE,)),
            uses_sensor_manager=(pkg == health_apps.HEART_RATE_PACKAGE),
            targets_wear2=(pkg != health_apps.GRID_PAGER_PACKAGE),
        )
        apps.append(CorpusApp(package=package))

    # Wire the hand-modelled health components.
    pulsetrack = next(a for a in apps if a.package.package == health_apps.HEART_RATE_PACKAGE)
    pulsetrack.roles.add("reboot_sensor")
    hr_service = pulsetrack.package.services()[0]
    hr_service.behavior_key = "health.pulsetrack.tracker"
    hr_service.exported, hr_service.permission = True, None
    hr_activity = pulsetrack.package.activities()[0]
    hr_activity.behavior_key = "health.pulsetrack.display"

    stridelog = next(a for a in apps if a.package.package == health_apps.GRID_PAGER_PACKAGE)
    stridelog.roles.add("named:grid_pager")
    stridelog.crash_campaigns.add("A")
    grid_activity = _injectable(stridelog.package.activities())[0]
    grid_activity.behavior_key = "health.stridelog.gridpager"

    cardiowatch = next(a for a in apps if a.package.package == "com.cardiowatch.wear")
    cardiowatch.roles.add("hang")

    # ---- Not Health/Fitness, built-in -------------------------------------------
    cell = WEAR_POPULATION[("Not Health/Fitness", "Built-in")]
    act_split = partition(cell.activities, cell.apps, rng, minimum=6)
    svc_split = partition(cell.services, cell.apps, rng, minimum=6)
    for i, (pkg, label) in enumerate(_OTHER_BUILTIN):
        components = factory.fill(pkg, act_split[i], svc_split[i])
        package = PackageInfo(
            package=pkg,
            label=label,
            category=AppCategory.OTHER,
            origin=AppOrigin.BUILT_IN,
            components=components,
        )
        apps.append(CorpusApp(package=package))

    watchface = next(
        a for a in apps if a.package.package == builtin_apps.AMBIENT_BINDER_PACKAGE
    )
    watchface.roles.add("ambient_binder")
    config_key, tile_key, launcher_key = builtin_apps.ambient_binder_specs(registry)
    face_activity = _injectable(watchface.package.activities())[0]
    face_activity.behavior_key = config_key
    tile_service = _injectable(watchface.package.services())[0]
    tile_service.behavior_key = tile_key
    watchface_launcher = watchface.package.launcher_activity()
    watchface_launcher.behavior_key = launcher_key

    # ---- Not Health/Fitness, third-party -----------------------------------------
    cell = WEAR_POPULATION[("Not Health/Fitness", "Third Party")]
    act_split = partition(cell.activities, cell.apps, rng, minimum=3)
    svc_split = partition(cell.services, cell.apps, rng, minimum=2)
    for i, (pkg, label) in enumerate(_OTHER_THIRD_PARTY):
        components = factory.fill(pkg, act_split[i], svc_split[i])
        package = PackageInfo(
            package=pkg,
            label=label,
            category=AppCategory.OTHER,
            origin=AppOrigin.THIRD_PARTY,
            downloads=MIN_THIRD_PARTY_DOWNLOADS + rng.randrange(200_000_000),
            components=components,
        )
        apps.append(CorpusApp(package=package))

    _assign_wear_defects(apps, registry, rng)
    return Corpus(
        apps=apps, registry=registry, seed=seed, wedge_deliveries=wedge_deliveries
    )


def _assign_wear_defects(
    apps: List[CorpusApp], registry: BehaviorRegistry, rng: random.Random
) -> None:
    """Distribute crash / hang / handled defects per the calibration quotas."""
    by_package = {app.package.package: app for app in apps}

    # -- crash apps per Table III quotas ----------------------------------------
    health_crashers = [
        "com.runmate.wear",       # h3-style
        "com.fitband.wear",
        "com.stepcount.wear",
        "com.sleepwell.wear",
        "com.yogaflow.wear",
    ]
    # Google Fit / Motorola Body / StrideLog already carry named defects and
    # campaign sets; quotas below cover the *generic* health crashers.
    generic_health_quota = {
        campaign: HEALTH_CRASH_QUOTA[campaign]
        - sum(
            1
            for app in apps
            if campaign in app.crash_campaigns
        )
        for campaign in HEALTH_CRASH_QUOTA
    }
    for campaign, value in generic_health_quota.items():
        if value < 0:
            raise ValueError(f"named apps overflow health quota for {campaign}")
    health_slots = _assign_quota_slots(generic_health_quota, health_crashers, rng)

    other_builtin_crashers = [
        "com.google.android.wearable.app",
        "com.google.android.deskclock",
        "com.google.android.calendar",
        "com.google.android.gm",
    ]
    other_third_crashers = [
        "com.chatterbox.wear",
        "com.skycast.wear",
        "com.newsflash.wear",
        "com.wayfind.wear",
        "com.tictoc.wear",
        "com.vaultpay.wear",
        "com.tunewave.wear",
        "com.notely.wear",
        "com.surfview.wear",
        "com.snapgram.wear",
    ]
    other_slots = _assign_quota_slots(
        OTHER_CRASH_QUOTA, other_builtin_crashers + other_third_crashers, rng
    )

    # -- exception classes for the generic crash components -----------------------
    slots = health_slots + other_slots
    component_budget = [rng.randint(*COMPONENTS_PER_CRASH_SLOT) for _ in slots]
    exception_pool: List[str] = []
    for name, count in sorted(
        allocate_by_mix(WEAR_CRASH_EXCEPTION_MIX, sum(component_budget)).items()
    ):
        exception_pool.extend([name] * count)
    rng.shuffle(exception_pool)

    used_components: Set[str] = set()
    for (package_name, campaign), budget in zip(slots, component_budget):
        app = by_package[package_name]
        app.crash_campaigns.add(campaign)
        fresh = [
            c
            for c in _injectable(app.package.components)
            if c.name.flatten_to_string() not in used_components
        ]
        rng.shuffle(fresh)
        if not fresh:
            # Small app whose components are all vulnerable already: stack
            # this campaign's defect onto an existing one (real apps have
            # several bugs in one component too).
            fresh = [
                c
                for c in app.package.components
                if c.behavior_key is not None and c.behavior_key.startswith("gen.")
            ][:1]
        for component in fresh[:budget]:
            exception = exception_pool.pop()
            trigger = rng.choice(CAMPAIGN_TRIGGERS[campaign])
            _attach_vulnerability(
                registry,
                component,
                Vulnerability(
                    trigger=trigger,
                    exception=exception,
                    outcome=Outcome.CRASH,
                    message=_message_for(exception),
                    method="onCreate"
                    if component.kind == ComponentKind.ACTIVITY
                    else "onStartCommand",
                    line=40 + rng.randrange(400),
                ),
                tag=app.package.label.replace(" ", ""),
            )
            used_components.add(component.name.flatten_to_string())

    # -- the dedicated hang app (Table III: health-only, campaigns A/C/D) ---------
    hang_app = by_package["com.cardiowatch.wear"]
    hang_triggers = (
        Trigger.ACTION_DATA_MISMATCH,
        Trigger.MALFORMED_DATA,
        Trigger.UNEXPECTED_EXTRAS,
    )
    hang_pool: List[str] = []
    for name, count in sorted(
        allocate_by_mix(HANG_EXCEPTION_MIX, HANG_APP_COMPONENTS + EXTRA_HANG_COMPONENTS).items()
    ):
        hang_pool.extend([name] * count)
    rng.shuffle(hang_pool)
    hang_components = _injectable(hang_app.package.components)[:HANG_APP_COMPONENTS]
    for i, component in enumerate(hang_components):
        exception = hang_pool.pop()
        _attach_vulnerability(
            registry,
            component,
            Vulnerability(
                trigger=hang_triggers[i % len(hang_triggers)],
                exception=exception,
                outcome=Outcome.HANG,
                message=_message_for(exception),
                method="onStartCommand",
                line=60 + i,
            ),
            tag="CardioWatch",
        )
        used_components.add(component.name.flatten_to_string())

    # -- extra hang components inside apps that also crash (keeps Table III) ------
    extra_hang_hosts = (
        (builtin_apps.GOOGLE_FIT_PACKAGE, Trigger.ACTION_DATA_MISMATCH),   # crash app in A
        ("com.fitband.wear", None),   # trigger chosen from its crash campaigns
        ("com.stepcount.wear", None),
    )
    for package_name, forced_trigger in extra_hang_hosts[:EXTRA_HANG_COMPONENTS]:
        app = by_package[package_name]
        trigger = forced_trigger
        if trigger is None:
            campaign = sorted(app.crash_campaigns)[0]
            trigger = CAMPAIGN_TRIGGERS[campaign][0]
        candidates = [
            c
            for c in _injectable(app.package.components)
            if c.name.flatten_to_string() not in used_components
        ]
        if not candidates:
            continue
        component = candidates[0]
        exception = hang_pool.pop()
        _attach_vulnerability(
            registry,
            component,
            Vulnerability(
                trigger=trigger,
                exception=exception,
                outcome=Outcome.HANG,
                message=_message_for(exception),
                method="onStartCommand",
                line=77,
            ),
            tag=app.package.label.replace(" ", ""),
        )
        used_components.add(component.name.flatten_to_string())

    _assign_handled_quirks(apps, registry, rng, used_components)


def _assign_handled_quirks(
    apps: List[CorpusApp],
    registry: BehaviorRegistry,
    rng: random.Random,
    used_components: Set[str],
) -> None:
    """Sprinkle caught-and-logged exception quirks over clean components.

    The two reboot-scenario apps are skipped entirely: their post-mortems
    (Section IV-B) hinge on exactly which exception classes appear in the
    pre-reboot log window, so their behaviour stays fully hand-modelled.
    """
    reboot_roles = {"reboot_sensor", "ambient_binder"}
    clean = [
        c
        for app in apps
        if not (app.roles & reboot_roles)
        for c in _injectable(app.package.components)
        if c.name.flatten_to_string() not in used_components
    ]
    quirk_count = int(len(clean) * HANDLED_QUIRK_FRACTION)
    rng.shuffle(clean)
    quirk_pool: List[str] = []
    for name, count in sorted(allocate_by_mix(HANDLED_EXCEPTION_MIX, quirk_count).items()):
        quirk_pool.extend([name] * count)
    rng.shuffle(quirk_pool)
    for component in clean[:quirk_count]:
        exception = quirk_pool.pop()
        _attach_vulnerability(
            registry,
            component,
            Vulnerability(
                trigger=rng.choice(ALL_QUIRK_TRIGGERS),
                exception=exception,
                outcome=Outcome.HANDLED,
                message=_message_for(exception),
                method="validateIntent",
                line=30 + rng.randrange(60),
            ),
            tag="InputValidation",
        )


# ---------------------------------------------------------------------------
# The phone corpus (Table IV).
# ---------------------------------------------------------------------------


def build_phone_corpus(seed: int = 711) -> Corpus:
    """Build the 63 ``com.android.*`` apps of the phone comparison."""
    rng = random.Random(seed)
    registry = BehaviorRegistry()
    factory = _ComponentFactory(rng)
    apps: List[CorpusApp] = []

    act_split = partition(PHONE_POPULATION.activities, PHONE_POPULATION.apps, rng, minimum=2)
    svc_split = partition(PHONE_POPULATION.services, PHONE_POPULATION.apps, rng, minimum=1)
    for i in range(PHONE_POPULATION.apps):
        stem = _PHONE_BUILTIN_STEMS[i]
        pkg = f"com.android.{stem}"
        components = factory.fill(pkg, act_split[i], svc_split[i])
        package = PackageInfo(
            package=pkg,
            label=stem.replace(".", " ").title(),
            category=AppCategory.OTHER,
            origin=AppOrigin.BUILT_IN,
            components=components,
        )
        apps.append(CorpusApp(package=package))

    # -- crash components straight from the Table IV exception counts ------------
    exception_pool: List[str] = []
    for name, count in sorted(
        allocate_by_mix(PHONE_CRASH_EXCEPTION_MIX, PHONE_CRASH_COMPONENTS).items()
    ):
        exception_pool.extend([name] * count)
    rng.shuffle(exception_pool)

    campaign_cycle = itertools.cycle(sorted(CAMPAIGN_TRIGGERS))
    injectable = [c for app in apps for c in _injectable(app.package.components)]
    rng.shuffle(injectable)
    if len(injectable) < PHONE_CRASH_COMPONENTS:
        raise ValueError("phone corpus too small for its crash-component quota")
    used: Set[str] = set()
    app_by_pkg = {app.package.package: app for app in apps}
    for component in injectable[:PHONE_CRASH_COMPONENTS]:
        exception = exception_pool.pop()
        campaign = next(campaign_cycle)
        trigger = rng.choice(CAMPAIGN_TRIGGERS[campaign])
        _attach_vulnerability(
            registry,
            component,
            Vulnerability(
                trigger=trigger,
                exception=exception,
                outcome=Outcome.CRASH,
                message=_message_for(exception),
                method="onCreate"
                if component.kind == ComponentKind.ACTIVITY
                else "onStartCommand",
                line=40 + rng.randrange(400),
            ),
            tag="AndroidApp",
        )
        used.add(component.name.flatten_to_string())
        app_by_pkg[component.package].crash_campaigns.add(campaign)

    _assign_handled_quirks(apps, registry, rng, used)
    return Corpus(apps=apps, registry=registry, seed=seed)


# ---------------------------------------------------------------------------
# The emulator selection for QGJ-UI (Table V).
# ---------------------------------------------------------------------------


def emulator_packages(
    corpus: Corpus,
    top_third_party: int = 20,
    ui_handled_fraction: float = 0.045,
    ui_crash_fraction: float = 0.03,
    fragile_apps: int = 3,
) -> List[PackageInfo]:
    """Select and UI-harden the Watch-emulator population.

    Mirrors Section III-E: "we installed on the emulator all the built-in
    apps and the top 20 of the most popular third-party apps" -- built-ins
    minus vendor extensions (the emulator has no Motorola layer).  Launcher
    activities receive sparse UI-event quirks: a small HANDLED fraction on
    every app, plus rare CRASH defects on a few fragile ones, calibrated to
    Table V's 3.6% exceptions / 0.05% crash rates.
    """
    builtins = [
        app.package
        for app in corpus.apps
        if app.package.is_built_in and not app.package.vendor
    ]
    third_party = sorted(
        (app.package for app in corpus.apps if not app.package.is_built_in),
        key=lambda p: -p.downloads,
    )[:top_third_party]
    selection = builtins + third_party

    fragile = 0
    for package in selection:
        launcher = package.launcher_activity()
        if launcher is None:
            continue
        spec = _ui_spec_for(corpus.registry, launcher, package.label)
        spec.ui_vulnerabilities.append(
            UiVulnerability(
                kinds=("tap", "swipe", "text", "keyevent", "trackball"),
                exception="java.lang.IllegalArgumentException",
                outcome=Outcome.HANDLED,
                fire_fraction=ui_handled_fraction,
                message="pointer event outside view bounds",
            )
        )
        if fragile < fragile_apps and not package.is_built_in:
            spec.ui_vulnerabilities.append(
                UiVulnerability(
                    kinds=("tap",),
                    exception="java.lang.NullPointerException",
                    outcome=Outcome.CRASH,
                    fire_fraction=ui_crash_fraction,
                    message="touch target view was recycled",
                    method="onClick",
                    line=302,
                )
            )
            fragile += 1
    return selection


def _ui_spec_for(
    registry: BehaviorRegistry, component: ComponentInfo, label: str
) -> BehaviorSpec:
    if component.behavior_key is None:
        key = f"ui.{component.name.flatten_to_string()}"
        component.behavior_key = registry.register(
            key, BehaviorSpec(tag=label.replace(" ", ""))
        )
    return registry.get(component.behavior_key)
