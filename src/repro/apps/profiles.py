"""Calibration profiles for the synthetic app corpus.

The study's subjects were 46 real Android Wear apps and 63 ``com.android.*``
phone apps.  We cannot ship those, so :mod:`repro.apps.catalog` generates a
synthetic population whose *structure* matches Table II exactly and whose
*defect distribution* is calibrated to the paper's measured marginals.  This
module is the single place those calibration constants live, so DESIGN.md's
substitution statement has one auditable anchor.

Two kinds of constants:

* **population structure** (:data:`WEAR_POPULATION`, :data:`PHONE_POPULATION`)
  -- app/activity/service counts per category, straight from Table II and
  Section III-D;
* **defect quotas** -- how many apps crash/hang per campaign and category
  (Table III), which exception classes cause crashes in which proportion
  (Fig. 2/3b for Wear, Table IV for the phone), and how often apps handle
  exceptions gracefully (the ~10% "exception thrown but handled" slice of
  the no-effect bar).

The campaign→trigger mapping is *not* a calibration constant: triggers fire
on intent content (see :mod:`repro.apps.behavior`), and campaigns produce
the content.  The quotas only decide which apps carry which latent defects,
standing in for the app-store sampling the authors did.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.apps.behavior import Trigger

# ---------------------------------------------------------------------------
# Population structure (Table II; Section III-D for the phone).
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PopulationCell:
    """One row of Table II."""

    apps: int
    activities: int
    services: int


#: (category, origin) → counts.  Totals: 46 apps, 514 activities, 398 services.
WEAR_POPULATION: Dict[Tuple[str, str], PopulationCell] = {
    ("Health/Fitness", "Built-in"): PopulationCell(apps=2, activities=81, services=34),
    ("Health/Fitness", "Third Party"): PopulationCell(apps=11, activities=80, services=59),
    ("Not Health/Fitness", "Built-in"): PopulationCell(apps=9, activities=168, services=188),
    ("Not Health/Fitness", "Third Party"): PopulationCell(apps=24, activities=185, services=117),
}

#: The phone study: 63 com.android.* apps, 595 activities, 218 services.
PHONE_POPULATION = PopulationCell(apps=63, activities=595, services=218)

#: Third-party selection floor used by the authors ("> 1 million downloads").
MIN_THIRD_PARTY_DOWNLOADS = 1_000_000

# ---------------------------------------------------------------------------
# App-level crash quotas per campaign (Table III, converted from percentages
# of 13 health and 33 not-health apps to integer app counts).
# ---------------------------------------------------------------------------

#: campaign → number of Health/Fitness apps that crash under it.
HEALTH_CRASH_QUOTA: Dict[str, int] = {"A": 3, "B": 4, "C": 4, "D": 2}

#: campaign → number of Not-Health apps that crash under it.
OTHER_CRASH_QUOTA: Dict[str, int] = {"A": 10, "B": 8, "C": 11, "D": 10}

#: Apps that crash at least once: 7 of 11 built-in (64%), 16 of 35
#: third-party (46%) -- Fig. 4's headline split.
HEALTH_CRASH_APPS = 7           # 2 built-in (Google Fit, Motorola Body) + 5 third-party
OTHER_CRASH_APPS = 16           # 5 built-in + 11 third-party
OTHER_BUILTIN_CRASH_APPS = 5    # includes the ambient-reboot app

#: Crash-vulnerable components per (app, campaign) slot; with ~52 slots this
#: lands the component-level crash count near the ~8% of Fig. 3a.
COMPONENTS_PER_CRASH_SLOT = (1, 3)

# ---------------------------------------------------------------------------
# Exception-class mixes.
# ---------------------------------------------------------------------------

#: Wear crash causes (Fig. 2 / Fig. 3b): NullPointerException still leads but
#: with a smaller share than Android-2012's 46%, IllegalArgument- and
#: IllegalStateException grown, plus a long tail.
WEAR_CRASH_EXCEPTION_MIX: Dict[str, float] = {
    "java.lang.NullPointerException": 0.29,
    "java.lang.IllegalArgumentException": 0.24,
    "java.lang.IllegalStateException": 0.18,
    "java.lang.ClassNotFoundException": 0.06,
    "java.lang.RuntimeException": 0.05,
    "java.lang.ClassCastException": 0.05,
    "java.lang.UnsupportedOperationException": 0.04,
    "android.content.ActivityNotFoundException": 0.04,
    "android.database.sqlite.SQLiteException": 0.03,
    "java.lang.IndexOutOfBoundsException": 0.02,
}

#: Phone crash causes (Table IV percentages).
PHONE_CRASH_EXCEPTION_MIX: Dict[str, float] = {
    "java.lang.NullPointerException": 0.309,
    "java.lang.ClassNotFoundException": 0.263,
    "java.lang.IllegalArgumentException": 0.177,
    "java.lang.IllegalStateException": 0.057,
    "java.lang.RuntimeException": 0.051,
    "android.content.ActivityNotFoundException": 0.040,
    "java.lang.UnsupportedOperationException": 0.034,
    # "Others" (6.9%, 12 crashes) split across a plausible tail, each class
    # below the paper's fewer-than-5-crashes fold threshold.
    "java.lang.ClassCastException": 0.023,
    "android.database.sqlite.SQLiteException": 0.023,
    "android.os.BadParcelableException": 0.023,
}

#: Total phone crash-vulnerable components (Table IV sums to 175 crashes).
PHONE_CRASH_COMPONENTS = 175

#: Exceptions apps *catch and log* (the handled slice).  Dominated by
#: IllegalArgumentException -- which is why IAE is the largest class in
#: Fig. 2 even though NPE leads the crash causes.
HANDLED_EXCEPTION_MIX: Dict[str, float] = {
    "java.lang.IllegalArgumentException": 0.47,
    "java.lang.NullPointerException": 0.17,
    "java.lang.IllegalStateException": 0.11,
    "java.lang.NumberFormatException": 0.12,
    "java.lang.SecurityException": 0.08,
    "java.lang.ClassCastException": 0.05,
}

#: Fraction of exported components that carry a handled-exception quirk.
HANDLED_QUIRK_FRACTION = 0.12

#: Fraction of components that are not exported / permission-guarded
#: (both produce SecurityExceptions at the activity-manager boundary).
NOT_EXPORTED_FRACTION = 0.15
PERMISSION_GUARDED_FRACTION = 0.05

# ---------------------------------------------------------------------------
# Campaign → trigger vocabulary (which intent features each campaign's
# generator produces; used when assigning a defect for a campaign slot).
# ---------------------------------------------------------------------------

CAMPAIGN_TRIGGERS: Dict[str, Tuple[Trigger, ...]] = {
    "A": (Trigger.ACTION_DATA_MISMATCH,),
    "B": (Trigger.MISSING_ACTION, Trigger.MISSING_DATA),
    "C": (Trigger.UNKNOWN_ACTION, Trigger.MALFORMED_DATA),
    "D": (Trigger.UNEXPECTED_EXTRAS, Trigger.EXTRA_TYPE_CONFUSION),
}

#: Triggers usable for handled-exception quirks (any campaign may reveal one).
ALL_QUIRK_TRIGGERS: Tuple[Trigger, ...] = (
    Trigger.ACTION_DATA_MISMATCH,
    Trigger.MISSING_ACTION,
    Trigger.MISSING_DATA,
    Trigger.UNKNOWN_ACTION,
    Trigger.MALFORMED_DATA,
    Trigger.UNEXPECTED_EXTRAS,
)

# ---------------------------------------------------------------------------
# Hang calibration (Table III: hangs are a Health-only, A/C/D phenomenon;
# Fig. 3a: crash components outnumber unresponsive ones ~8x).
# ---------------------------------------------------------------------------

#: Hang components for the dedicated hang app (triggered in A, C, D).
HANG_APP_COMPONENTS = 6

#: Exception classes logged just before a handler blocks (Fig. 3b's
#: unresponsive bar: ISE dominates, DeadObjectException present).
HANG_EXCEPTION_MIX: Dict[str, float] = {
    "java.lang.IllegalStateException": 0.6,
    "android.os.DeadObjectException": 0.25,
    "java.lang.RuntimeException": 0.15,
}

#: Extra hang components placed in apps that also crash (their app-level
#: manifestation stays "crash", so Table III is unaffected).
EXTRA_HANG_COMPONENTS = 3

# ---------------------------------------------------------------------------
# Reboot scenarios (Section IV-B's two post-mortems).
# ---------------------------------------------------------------------------

#: Mismatched intents the heart-rate service absorbs before its handler
#: wedges (reboot #1 happens "at specific states", not on one intent).
HEART_RATE_WEDGE_DELIVERIES = 25

#: Consecutive crashes of the ambient-binder app that precede reboot #2
#: (must reach the system server's crash-loop threshold with aging high).
AMBIENT_CRASH_LOOP = 3


# ---------------------------------------------------------------------------
# Fleet cohorts: heterogeneous device-pair profiles.
#
# The single-pair studies replay the paper's exact Nexus 6 / Moto 360 test
# bed.  The fleet kernel instead samples a *population*: each pair is drawn
# from a cohort whose hardware tier parameterizes the existing simulator
# knobs -- RAM pressure maps to an lmkd kill stream, OS skew to a
# CompatMatrix, Bluetooth quality to pairing latency, battery health to an
# ambient-mode duty cycle on the watch.  Profiles are pure data; the fleet
# planner turns them into per-pair FaultPlans and pairing arguments.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """One cohort's hardware/OS configuration for a simulated pair."""

    cohort: str
    model: str
    #: Memory tier; ``lmkd_every_ms`` is its observable consequence (mean
    #: virtual-ms between low-memory kills; ``None`` = no pressure).
    ram_tier: str
    lmkd_every_ms: Optional[float]
    #: OS/API levels on each half of the pair (skew arms the compat plane).
    phone_api: int
    wear_api: int
    #: Battery state of health; drains on the *virtual* clock.
    battery_start_pct: int
    battery_drain_pct_per_hour: float
    #: Ambient-mode duty cycle on the watch (virtual ms per full cycle;
    #: ``None`` keeps the display interactive for the whole run).
    ambient_cycle_ms: Optional[float]
    #: Bluetooth link quality; ``latency_ms`` is what pairing consumes.
    bt_quality: str
    latency_ms: float

    @property
    def compat_skew(self) -> int:
        return abs(self.phone_api - self.wear_api)


#: The built-in cohort catalogue, keyed by the name ``--cohorts`` uses.
FLEET_COHORTS: Dict[str, DeviceProfile] = {
    "flagship": DeviceProfile(
        cohort="flagship",
        model="Pixel Watch",
        ram_tier="high",
        lmkd_every_ms=None,
        phone_api=25,
        wear_api=25,
        battery_start_pct=100,
        battery_drain_pct_per_hour=3.5,
        ambient_cycle_ms=None,
        bt_quality="good",
        latency_ms=40.0,
    ),
    "budget": DeviceProfile(
        cohort="budget",
        model="Wear Lite X2",
        ram_tier="low",
        lmkd_every_ms=900_000.0,
        phone_api=25,
        wear_api=25,
        battery_start_pct=90,
        battery_drain_pct_per_hour=6.0,
        ambient_cycle_ms=120_000.0,
        bt_quality="fair",
        latency_ms=80.0,
    ),
    "legacy": DeviceProfile(
        cohort="legacy",
        model="Moto 360",
        ram_tier="mid",
        lmkd_every_ms=1_500_000.0,
        phone_api=23,
        wear_api=25,
        battery_start_pct=80,
        battery_drain_pct_per_hour=5.0,
        ambient_cycle_ms=180_000.0,
        bt_quality="poor",
        latency_ms=160.0,
    ),
    "aging": DeviceProfile(
        cohort="aging",
        model="Gear Prime",
        ram_tier="low",
        lmkd_every_ms=800_000.0,
        phone_api=24,
        wear_api=25,
        battery_start_pct=60,
        battery_drain_pct_per_hour=9.0,
        ambient_cycle_ms=60_000.0,
        bt_quality="fair",
        latency_ms=80.0,
    ),
}

#: Battery level below which the watch logs a low-battery warning and
#: parks the display in ambient mode for the rest of the run.
BATTERY_LOW_PCT = 15

#: Default population mix for ``--fleet`` runs: every cohort, equal weight.
DEFAULT_COHORT_SPEC = "flagship,budget,legacy,aging"


def parse_cohort_spec(spec: str) -> Tuple[Tuple[str, int], ...]:
    """Parse ``"flagship=2,budget,legacy=1"`` into ((name, weight), ...).

    Order is preserved (it decides the pair-index -> cohort interleave);
    a bare name means weight 1; names must exist in FLEET_COHORTS and may
    not repeat.
    """
    parsed = []
    seen = set()
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise ValueError(f"empty cohort entry in spec: {spec!r}")
        name, _, weight_text = chunk.partition("=")
        name = name.strip()
        if name not in FLEET_COHORTS:
            known = ", ".join(sorted(FLEET_COHORTS))
            raise ValueError(f"unknown cohort {name!r} (known: {known})")
        if name in seen:
            raise ValueError(f"cohort {name!r} listed twice in spec: {spec!r}")
        seen.add(name)
        if weight_text:
            try:
                weight = int(weight_text)
            except ValueError:
                raise ValueError(f"bad weight for cohort {name!r}: {weight_text!r}")
            if weight < 1:
                raise ValueError(f"cohort {name!r} weight must be >= 1, got {weight}")
        else:
            weight = 1
        parsed.append((name, weight))
    return tuple(parsed)


def cohort_cycle(parsed: Tuple[Tuple[str, int], ...]) -> Tuple[str, ...]:
    """Expand a parsed spec into the repeating pair-index -> cohort cycle."""
    return tuple(name for name, weight in parsed for _ in range(weight))


def profile_for_pair(parsed: Tuple[Tuple[str, int], ...], pair_index: int) -> DeviceProfile:
    """The cohort profile of pair *pair_index* under a parsed spec.

    Assignment depends only on the pair's global index, never on how pairs
    are packed into lanes or workers -- the fleet determinism invariant
    starts here.
    """
    cycle = cohort_cycle(parsed)
    return FLEET_COHORTS[cycle[pair_index % len(cycle)]]


def allocate_by_mix(mix: Dict[str, float], total: int) -> Dict[str, int]:
    """Integer allocation of *total* slots to classes by largest remainder.

    Guarantees the result sums to *total* and is deterministic (ties broken
    by class name).
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    weight_sum = sum(mix.values())
    raw = {name: total * weight / weight_sum for name, weight in mix.items()}
    counts = {name: int(value) for name, value in raw.items()}
    remainder = total - sum(counts.values())
    by_fraction = sorted(
        mix, key=lambda name: (-(raw[name] - counts[name]), name)
    )
    for name in by_fraction[:remainder]:
        counts[name] += 1
    return counts
