"""Hand-modelled health/fitness apps: the reboot-#1 app and the
GridViewPager legacy app.

Reboot #1, per the paper's post-mortem:

    "a sequence of malformed intents to a health app, which interacts with
    heart rate sensor using SensorManager class (rather than the more
    common Google Fit) provoked a system restart.  There were no exceptions
    raised before the crash, which means the malformed intents were not
    rejected by the app.  During the sequence of injections, the
    application experienced unresponsiveness (ANR) …"

:class:`HeartRateTrackerService` reproduces that mechanism: it registers a
heart-rate listener directly with ``SensorManager`` on first start, silently
absorbs mismatched intents (no exception, no rejection -- the missing input
validation is the defect), and after enough of them its handler wedges.
The resulting ANR, with sensor listeners held, triggers the SIGABRT /
SensorService-death / reboot escalation implemented in the sensor stack.

:class:`GridPagerLegacyActivity` is the un-migrated AW 1.x app whose
``ArithmeticException: divide by zero`` crash the paper highlights; it
genuinely drives the deprecated :class:`~repro.wear.ui_widgets.GridViewPager`
code path with an empty page grid.
"""

from __future__ import annotations

import functools
import warnings
from typing import TYPE_CHECKING

from repro.android.component import Activity, Service
from repro.android.intent import Intent
from repro.android.sensor import TYPE_HEART_RATE
from repro.android.jtypes import Throwable, frame
from repro.apps.behavior import BLOCK_MS, Trigger, trigger_matches
from repro.wear.ui_widgets import GridPagerAdapter, GridViewPager

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    pass

HEART_RATE_PACKAGE = "com.pulsetrack.wear"
GRID_PAGER_PACKAGE = "com.stridelog.wear"


class HeartRateTrackerService(Service):
    """The heart-rate service behind reboot #1.

    Parameters
    ----------
    wedge_deliveries:
        Mismatched intents absorbed before the handler blocks.  The paper's
        reboot manifested "at specific states of the device", not on a
        single intent; this threshold is that state.
    """

    def __init__(self, info, context, wedge_deliveries: int = 25) -> None:
        super().__init__(info, context)
        self.wedge_deliveries = wedge_deliveries
        self.mismatch_count = 0
        self._listening = False

    def on_handle_intent(self, intent: Intent, phase: str) -> float:
        if not self._listening:
            sensors = self.context.get_system_service("sensor")
            sensors.register_listener_by_type(TYPE_HEART_RATE)
            self._listening = True
        if trigger_matches(Trigger.ACTION_DATA_MISMATCH, intent, self.deliveries_so_far()):
            # Defect: the mismatch is neither rejected nor logged ("there
            # were no exceptions raised before the crash").  Each one leaves
            # a stale work item on the handler's queue...
            self.mismatch_count += 1
            if self.mismatch_count >= self.wedge_deliveries:
                # ...until the queue wedges and the main thread blocks.
                return BLOCK_MS
        return 1.2

    def deliveries_so_far(self) -> int:
        return self.start_count


class HeartRateDisplayActivity(Activity):
    """The companion UI of the heart-rate app.

    It keeps a binder to the sensor service; when the service dies (the
    SIGABRT in reboot #1) its pending reads surface as DeadObjectException,
    which this activity catches and logs -- putting the class into the
    reboot window for the root-cause analysis, as observed in Fig. 3b.
    """

    def __init__(self, info, context) -> None:
        super().__init__(info, context)
        sensor_service = context._device.sensor_service  # noqa: SLF001 - sim wiring
        sensor_service.process.link_to_death(self._on_sensor_death)

    def _on_sensor_death(self, process) -> None:
        from repro.android.jtypes import DeadObjectException, frame

        if getattr(self.context._device, "rebooting", False):
            # During a reboot our own process is being torn down too -- a
            # dead app cannot log; only the SIGABRT-kills-SensorService path
            # (the watch still running) produces the DeadObjectException.
            return
        exc = DeadObjectException("SensorService connection lost mid-read")
        exc.frames = [frame(self.info.name.class_name, "refreshHeartRate", 156)]
        self.context.logcat.handled_exception(
            "PulseTrack", self.context._pid(), exc, context="sensor read failed"
        )

    def on_handle_intent(self, intent: Intent, phase: str) -> float:
        return 1.0


class GridPagerLegacyActivity(Activity):
    """An AW 1.x activity that never migrated off ``GridViewPager``.

    A mismatched intent leaves its page model unpopulated; the subsequent
    layout pass divides by the (zero) column count inside the deprecated
    support-library widget -- the paper's highlighted ArithmeticException.
    """

    def on_handle_intent(self, intent: Intent, phase: str) -> float:
        if trigger_matches(Trigger.ACTION_DATA_MISMATCH, intent, 0):
            pages = [[]]  # the mismatch left the workout row unpopulated
        else:
            pages = [["summary", "pace", "heart-rate"]]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            pager = GridViewPager(GridPagerAdapter(pages))
        try:
            pager.page_for_scroll_offset(0, 160)  # ArithmeticException when empty
        except Throwable as exc:
            # Java stacks show the caller below the library frame; append
            # this activity's onCreate so the crash attributes to it.
            exc.frames = list(exc.frames) + [
                frame(self.info.name.class_name, "onCreate", 47)
            ]
            raise
        return 1.5


def _heart_rate_tracker_factory(info, ctx, wedge_deliveries: int = 25):
    return HeartRateTrackerService(info, ctx, wedge_deliveries=wedge_deliveries)


def register_health_factories(activity_manager, wedge_deliveries: int = 25) -> dict:
    """Register the custom health components; returns their behavior keys.

    Factories are module-level callables (plus a :func:`functools.partial`
    for the wedge threshold) so the activity manager stays picklable for
    checkpoint snapshots.
    """
    keys = {
        "heart_rate_service": "health.pulsetrack.tracker",
        "heart_rate_activity": "health.pulsetrack.display",
        "grid_pager_activity": "health.stridelog.gridpager",
    }
    activity_manager.register_factory(
        keys["heart_rate_service"],
        functools.partial(_heart_rate_tracker_factory, wedge_deliveries=wedge_deliveries),
    )
    activity_manager.register_factory(
        keys["heart_rate_activity"], HeartRateDisplayActivity
    )
    activity_manager.register_factory(
        keys["grid_pager_activity"], GridPagerLegacyActivity
    )
    return keys
