"""Input-validation behaviour models for the synthetic app corpus.

The study's subjects were real Play Store apps; ours are synthetic, so each
component carries a *behaviour model* describing how its (imaginary) code
validates incoming intents.  The model is mechanistic, not statistical: a
component reacts to concrete *features* of the intent it receives --

===================  ========================================================
Trigger              Fires when the delivered intent has …
===================  ========================================================
ACTION_DATA_MISMATCH a known action and a known data scheme that are not a
                     valid pair (campaign A's signature input)
MISSING_ACTION       data but no action (campaign B)
MISSING_DATA         an action but no data (campaign B)
UNKNOWN_ACTION       an action string outside the platform vocabulary
                     (campaign C)
MALFORMED_DATA       a data field that does not parse to a known scheme
                     (campaign C)
UNEXPECTED_EXTRAS    extras the component did not declare (campaign D)
EXTRA_TYPE_CONFUSION an extra whose value type defeats a cast (campaign D)
ANY_INTENT           anything at all
===================  ========================================================

so campaign→failure relationships *emerge* from intent content rather than
being looked up.  A matching :class:`Vulnerability` produces one of the
study's behaviours: an **uncaught throwable** (crash), a **blocked handler**
(ANR/hang), or a **caught-and-logged exception** (the "no effect, but an
exception was thrown and handled" cases that make up ~10% of the no-effect
bar in Fig. 3b).

Everything is deterministic: a vulnerability can be gated on a minimum
number of deliveries to the live instance (stateful bugs) or on a stable
hash of the intent signature (flaky-looking bugs), but never on global RNG.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.android.actions import is_compatible, is_known_action, is_known_scheme
from repro.android.component import Activity, BroadcastReceiver, ComponentInfo, Service
from repro.android.intent import Intent
from repro.android.jtypes import Throwable, frame, throwable_from_name

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.android.context import Context

#: Handler cost used to model a blocked main thread (well past the 5 s ANR
#: window).
BLOCK_MS = 9000.0


class Trigger(enum.Enum):
    ACTION_DATA_MISMATCH = "action_data_mismatch"
    MISSING_ACTION = "missing_action"
    MISSING_DATA = "missing_data"
    UNKNOWN_ACTION = "unknown_action"
    MALFORMED_DATA = "malformed_data"
    UNEXPECTED_EXTRAS = "unexpected_extras"
    EXTRA_TYPE_CONFUSION = "extra_type_confusion"
    ANY_INTENT = "any_intent"


class Outcome(enum.Enum):
    #: Raise the throwable out of the handler (uncaught → process crash).
    CRASH = "crash"
    #: Block the handler long enough to trip the ANR watchdog.
    HANG = "hang"
    #: Catch the exception internally and log it (no user-visible failure).
    HANDLED = "handled"


def trigger_matches(trigger: Trigger, intent: Intent, deliveries: int) -> bool:
    """Does *intent* exhibit the feature *trigger* keys on?"""
    action = intent.action
    data = intent.data
    if trigger == Trigger.ANY_INTENT:
        return True
    if trigger == Trigger.ACTION_DATA_MISMATCH:
        return (
            is_known_action(action)
            and data is not None
            and is_known_scheme(data.scheme)
            and not is_compatible(action, data)
        )
    if trigger == Trigger.MISSING_ACTION:
        return action is None and data is not None
    if trigger == Trigger.MISSING_DATA:
        return action is not None and data is None and not intent.extras
    if trigger == Trigger.UNKNOWN_ACTION:
        return action is not None and not is_known_action(action)
    if trigger == Trigger.MALFORMED_DATA:
        return data is not None and not is_known_scheme(data.scheme)
    if trigger == Trigger.UNEXPECTED_EXTRAS:
        return bool(intent.extras)
    if trigger == Trigger.EXTRA_TYPE_CONFUSION:
        return any(not isinstance(v, str) for v in intent.extras.values())
    raise ValueError(f"unknown trigger: {trigger}")


def stable_fraction(*parts: object) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from *parts*."""
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclasses.dataclass(frozen=True)
class Vulnerability:
    """One latent defect in a component's intent handling."""

    trigger: Trigger
    exception: str                 # Java class name
    outcome: Outcome
    message: str = ""
    method: str = "onHandleIntent"
    line: int = 73
    #: The defect only manifests from the Nth delivery to the same live
    #: instance onward (stateful bugs; 0 = immediately).
    min_deliveries: int = 0
    #: Deterministic gate: the defect fires only for this fraction of
    #: distinct intent signatures (1.0 = every matching intent).
    fire_fraction: float = 1.0
    #: Wrap the thrown exception in a RuntimeException, as the framework
    #: does when a lifecycle callback dies ("Unable to start activity …").
    wrap_in_runtime: bool = False

    def fires_on(self, info: ComponentInfo, intent: Intent, deliveries: int) -> bool:
        if deliveries < self.min_deliveries:
            return False
        if not trigger_matches(self.trigger, intent, deliveries):
            return False
        if self.fire_fraction >= 1.0:
            return True
        gate = stable_fraction(
            info.name.flatten_to_string(), self.exception, intent.signature()
        )
        return gate < self.fire_fraction

    def build_throwable(self, info: ComponentInfo) -> Throwable:
        exc = throwable_from_name(self.exception, self.message or None)
        exc.frames = [frame(info.name.class_name, self.method, self.line)]
        if self.wrap_in_runtime:
            wrapper = throwable_from_name(
                "java.lang.RuntimeException",
                "Unable to start activity ComponentInfo{"
                f"{info.name.flatten_to_string()}"
                "}: " + exc.java_str(),
            )
            wrapper.frames = [
                frame("android.app.ActivityThread", "performLaunchActivity", 2778)
            ]
            wrapper.cause = exc
            return wrapper
        return exc


@dataclasses.dataclass(frozen=True)
class UiVulnerability:
    """A defect in a *UI event* handler (tap, key, swipe, text, …).

    The study found UI handlers dramatically more robust than intent
    handlers (Table V: 0.05% crashes for semi-valid events, none for
    random), so these are sparse and mostly :attr:`Outcome.HANDLED`.  The
    gate is a stable hash over the concrete event, making a given fraction
    of distinct events trigger, deterministically.
    """

    kinds: tuple                    # event kinds this defect listens to
    exception: str
    outcome: Outcome
    fire_fraction: float = 0.05
    message: str = ""
    method: str = "onTouchEvent"
    line: int = 211

    def fires_on(self, info: ComponentInfo, kind: str, params: dict) -> bool:
        if kind not in self.kinds:
            return False
        digest = stable_fraction(
            info.name.flatten_to_string(), self.exception, kind, sorted(params.items())
        )
        return digest < self.fire_fraction

    def build_throwable(self, info: ComponentInfo) -> Throwable:
        exc = throwable_from_name(self.exception, self.message or None)
        exc.frames = [frame(info.name.class_name, self.method, self.line)]
        return exc


@dataclasses.dataclass
class BehaviorSpec:
    """Full behaviour description for one component."""

    vulnerabilities: List[Vulnerability] = dataclasses.field(default_factory=list)
    ui_vulnerabilities: List[UiVulnerability] = dataclasses.field(default_factory=list)
    #: Base handler cost for well-handled intents.
    base_cost_ms: float = 1.0
    #: Log tag used for handled exceptions.
    tag: str = "App"

    def first_match(
        self, info: ComponentInfo, intent: Intent, deliveries: int
    ) -> Optional[Vulnerability]:
        for vuln in self.vulnerabilities:
            if vuln.fires_on(info, intent, deliveries):
                return vuln
        return None


class _ModeledMixin:
    """Shared intent-handling logic for modeled activities and services."""

    spec: BehaviorSpec
    info: ComponentInfo
    context: "Context"

    def _init_model(self, spec: BehaviorSpec) -> None:
        self.spec = spec
        self.deliveries = 0

    def _handle(self, intent: Intent, phase: str) -> float:
        self.deliveries += 1
        vuln = self.spec.first_match(self.info, intent, self.deliveries)
        if vuln is None:
            return self.spec.base_cost_ms
        if vuln.outcome == Outcome.CRASH:
            raise vuln.build_throwable(self.info)
        if vuln.outcome == Outcome.HANG:
            # Log the precipitating exception, then block: this is the
            # temporal chain the root-cause analysis keys on (the ANR entry
            # follows an app-logged exception).
            self.context.logcat.handled_exception(
                self.spec.tag,
                self.context._pid(),
                vuln.build_throwable(self.info),
                context=f"slow path in {phase}",
            )
            return BLOCK_MS
        # HANDLED: the app caught its own exception and logged it.
        self.context.logcat.handled_exception(
            self.spec.tag,
            self.context._pid(),
            vuln.build_throwable(self.info),
            context=f"rejected intent in {phase}",
        )
        return self.spec.base_cost_ms

    def _handle_ui(self, kind: str, params: dict) -> float:
        for vuln in self.spec.ui_vulnerabilities:
            if not vuln.fires_on(self.info, kind, params):
                continue
            if vuln.outcome == Outcome.CRASH:
                raise vuln.build_throwable(self.info)
            self.context.logcat.handled_exception(
                self.spec.tag,
                self.context._pid(),
                vuln.build_throwable(self.info),
                context=f"rejected ui event {kind}",
            )
            return self.spec.base_cost_ms
        return 0.5


class ModeledActivity(Activity, _ModeledMixin):
    """An activity whose intent handling follows a :class:`BehaviorSpec`."""

    def __init__(self, info: ComponentInfo, context: "Context", spec: BehaviorSpec) -> None:
        super().__init__(info, context)
        self._init_model(spec)

    def on_handle_intent(self, intent: Intent, phase: str) -> float:
        return self._handle(intent, phase)

    def on_ui_event(self, kind: str, **params: object) -> float:
        return self._handle_ui(kind, params)


class ModeledService(Service, _ModeledMixin):
    """A service whose intent handling follows a :class:`BehaviorSpec`."""

    def __init__(self, info: ComponentInfo, context: "Context", spec: BehaviorSpec) -> None:
        super().__init__(info, context)
        self._init_model(spec)

    def on_handle_intent(self, intent: Intent, phase: str) -> float:
        return self._handle(intent, phase)


class ModeledReceiver(BroadcastReceiver, _ModeledMixin):
    """A broadcast receiver whose handling follows a :class:`BehaviorSpec`."""

    def __init__(self, info: ComponentInfo, context: "Context", spec: BehaviorSpec) -> None:
        super().__init__(info, context)
        self._init_model(spec)

    def on_handle_intent(self, intent: Intent, phase: str) -> float:
        return self._handle(intent, phase)


class BehaviorRegistry:
    """Maps manifest ``behavior_key`` strings to :class:`BehaviorSpec`.

    The registry is installed into a device's activity manager once; after
    that, any component whose manifest names a registered key is
    instantiated with the corresponding model.
    """

    def __init__(self) -> None:
        self._specs: dict[str, BehaviorSpec] = {}

    def register(self, key: str, spec: BehaviorSpec) -> str:
        if key in self._specs:
            raise ValueError(f"behavior key already registered: {key}")
        self._specs[key] = spec
        return key

    def get(self, key: str) -> BehaviorSpec:
        return self._specs[key]

    def keys(self) -> Sequence[str]:
        return tuple(self._specs)

    def install(self, activity_manager) -> None:
        """Register component factories for every known key."""
        for key, spec in self._specs.items():
            activity_manager.register_factory(key, SpecFactory(spec))

    def __len__(self) -> int:
        return len(self._specs)


class SpecFactory:
    """Picklable component factory bound to one :class:`BehaviorSpec`.

    A class (rather than a closure) so activity managers holding factories
    survive the chaos plane's checkpoint snapshots.
    """

    def __init__(self, spec: BehaviorSpec) -> None:
        self.spec = spec

    def __call__(self, info: ComponentInfo, context: "Context"):
        from repro.android.component import ComponentKind

        if info.kind == ComponentKind.ACTIVITY:
            return ModeledActivity(info, context, self.spec)
        if info.kind == ComponentKind.RECEIVER:
            return ModeledReceiver(info, context, self.spec)
        return ModeledService(info, context, self.spec)
