"""The guided injection engine: one arm's block of intents on one device.

This is the layer between the scheduler (which decides *how much* budget an
``(package, campaign)`` arm gets) and the fuzzer library (which knows how to
inject).  A :class:`GuidedTask` carries everything one shard needs to run a
round's blocks for one package -- blocks, mutation pool, the fingerprints
already known globally, seed -- and is picklable by design, because the farm
ships it to worker processes inside a ``ShardSpec``.

The intent stream per component mixes two sources, exactly like hypofuzz's
generational/pool split: with probability ``pool_rate`` the next intent is a
mutation of a corpus entry for this arm (splice included); otherwise it comes
from the campaign grammar, re-seeded per round so later rounds do not replay
round zero's prefix.  One seeded ``random.Random`` per block drives both the
source choice and the mutations, so the stream is a pure function of
``(seed, round, package, campaign)`` -- which worker ran it cannot matter.

Novelty here is *local*: the engine admits a candidate when its fingerprint
is in neither the shipped ``known`` set nor what this block has already seen.
Two shards may therefore both claim the same fingerprint in one round; the
study's post-merge attribution (allocation order, corpus-first) resolves
that deterministically.  This module must not import :mod:`repro.farm` --
the farm imports *it*.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

from repro.android.component import ComponentInfo, ComponentKind
from repro.qgj.campaigns import Campaign, FuzzIntent, campaign_size, generate
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.guided.corpus import CorpusEntry
from repro.guided.fingerprint import (
    BehaviorFingerprint,
    fingerprint_injection,
    throwable_signature,
)
from repro.guided.mutators import mutate_intent

#: Grammar re-seeding stride per round: generate() keys its RNG on the seed,
#: so adding a round-scaled offset gives each round a fresh (but replayable)
#: grammar stream instead of replaying round zero's prefix.
_ROUND_SEED_STRIDE = 7919  # a prime, so strides don't alias across rounds


@dataclasses.dataclass(frozen=True)
class GuidedBlock:
    """One funded arm: spend *budget* intents on *campaign*.

    *offset* is the arm's cumulative prior spend (a merged, worker-count
    independent statistic).  Campaigns A and B are seed-independent
    deterministic sequences, so without an offset every round would replay
    the same grammar prefix; advancing by the prior spend makes successive
    blocks walk successively deeper into the campaign stream.
    """

    campaign: str  # Campaign.value
    budget: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"block budget must be >= 1, got {self.budget}")
        if self.offset < 0:
            raise ValueError(f"block offset must be >= 0, got {self.offset}")


@dataclasses.dataclass(frozen=True)
class GuidedTask:
    """One package's slice of one round, picklable for the farm."""

    package: str
    round_index: int
    blocks: Tuple[GuidedBlock, ...]
    #: Mutation pool: this package's corpus entries at round start.
    pool: Tuple[CorpusEntry, ...]
    #: Fingerprints (as tuples) known globally at round start.
    known: Tuple[Tuple[str, str, str, str, str, str], ...]
    seed: int
    pool_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.pool_rate <= 1.0:
            raise ValueError(f"pool_rate must be in [0, 1], got {self.pool_rate}")


@dataclasses.dataclass
class BlockOutcome:
    """What one block observed, shipped home for merge and attribution."""

    package: str
    campaign: str
    round_index: int
    budget: int
    sent: int = 0
    #: Locally-novel entries, in discovery order (attribution re-checks them
    #: against the merged corpus; discovery order is deterministic per block).
    new_entries: List[CorpusEntry] = dataclasses.field(default_factory=list)
    #: Triage-compatible crash buckets: (component, exception, frame) -> hits.
    crash_buckets: Dict[Tuple[str, str, str], int] = dataclasses.field(
        default_factory=dict
    )
    #: Outcome label -> count, over every injection in the block.
    outcomes: Dict[str, int] = dataclasses.field(default_factory=dict)
    rebooted: bool = False
    aborted: bool = False


def _arm_stream(
    campaign: Campaign,
    info: ComponentInfo,
    count: int,
    rng: random.Random,
    pool: Tuple[FuzzIntent, ...],
    pool_rate: float,
    grammar_seed: int,
    skip: int = 0,
):
    """The block's intent source for one component: pool mutations mixed
    with the (cycled) campaign grammar, all driven by the block RNG.
    *skip* fast-forwards the grammar (modulo its size) so a later block
    continues where the arm's earlier blocks left off."""
    grammar = generate(campaign, seed=grammar_seed, component=info.name)
    for _ in range(skip % campaign_size(campaign)):
        next(grammar)
    for _ in range(count):
        if pool and rng.random() < pool_rate:
            base = pool[rng.randrange(len(pool))]
            yield mutate_intent(base, rng, pool)
        else:
            try:
                yield next(grammar)
            except StopIteration:
                # Grammar exhausted mid-block: restart it. The replayed
                # prefix still matters -- the device has aged since.
                grammar = generate(campaign, seed=grammar_seed, component=info.name)
                yield next(grammar)


def _split_budget(budget: int, parts: int) -> List[int]:
    """Spread *budget* over *parts* components, remainder to the front."""
    base, extra = divmod(budget, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def run_guided_blocks(
    fuzzer: FuzzerLibrary,
    task: GuidedTask,
    config: FuzzConfig,
    kinds: Tuple[ComponentKind, ...] = (ComponentKind.ACTIVITY, ComponentKind.SERVICE),
) -> List[BlockOutcome]:
    """Run every block of *task* against its package on *fuzzer*'s device.

    Blocks run in task order on one device session, so within a round the
    package's aging accumulates across its funded arms -- same as the blind
    study's campaign order.  A reboot aborts the remaining blocks (the
    session to the device is lost, as in the paper's harness).
    """
    device = fuzzer._device
    package = device.packages.get_package(task.package)
    if package is None:
        raise ValueError(f"package not installed: {task.package}")
    components = [info for info in package.components if info.kind in kinds]
    if not components:
        raise ValueError(f"package has no fuzzable components: {task.package}")
    known = {BehaviorFingerprint.from_tuple(values) for values in task.known}
    grammar_seed = task.seed + _ROUND_SEED_STRIDE * task.round_index
    outcomes: List[BlockOutcome] = []
    session_lost = False
    for block in task.blocks:
        outcome = BlockOutcome(
            package=task.package,
            campaign=block.campaign,
            round_index=task.round_index,
            budget=block.budget,
        )
        outcomes.append(outcome)
        if session_lost:
            outcome.aborted = True
            continue
        campaign = Campaign(block.campaign)
        rng = random.Random(
            f"guided|{task.seed}|{task.round_index}|{task.package}|{block.campaign}"
        )
        pool = tuple(
            entry.intent for entry in task.pool if entry.campaign == block.campaign
        )
        boots_at_start = device.boot_count

        def observe(
            info: ComponentInfo,
            fuzz_intent: FuzzIntent,
            outcome_label: str,
            dispatch,
        ) -> None:
            rebooted = device.boot_count != boots_at_start
            fingerprint = fingerprint_injection(
                info.name.flatten_to_string(),
                outcome_label,
                dispatch,
                device,
                rebooted=rebooted,
            )
            outcome.outcomes[outcome_label] = outcome.outcomes.get(outcome_label, 0) + 1
            if dispatch is not None and dispatch.crashed and dispatch.throwable is not None:
                exception, frame, _ = throwable_signature(dispatch.throwable)
                bucket = (
                    info.name.flatten_to_string(),
                    exception,
                    frame or "(unknown)",
                )
                outcome.crash_buckets[bucket] = outcome.crash_buckets.get(bucket, 0) + 1
            if fingerprint not in known:
                known.add(fingerprint)
                outcome.new_entries.append(
                    CorpusEntry(
                        package=task.package,
                        campaign=block.campaign,
                        fingerprint=fingerprint,
                        intent=fuzz_intent,
                    )
                )

        skip = block.offset // len(components)
        for info, share in zip(components, _split_budget(block.budget, len(components))):
            if share == 0:
                continue
            result = fuzzer.fuzz_intent_stream(
                info,
                campaign,
                _arm_stream(
                    campaign, info, share, rng, pool, task.pool_rate, grammar_seed, skip
                ),
                config,
                observer=observe,
            )
            outcome.sent += result.sent
            if result.rebooted:
                outcome.rebooted = True
                outcome.aborted = True
                session_lost = True
                break
            if result.quarantined:
                outcome.aborted = True
                session_lost = True
                break
    return outcomes
