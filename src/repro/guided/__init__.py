"""Feedback-guided fuzzing: behaviour corpus, pool mutators, bandit budget.

The paper's QGJ fuzzer is *blind*: every campaign generates its fixed
intent volume per component and spends it regardless of what the device
does in response.  This package closes the loop, hypofuzz-style:

* :mod:`repro.guided.fingerprint` classifies each injection's outcome into
  a :class:`~repro.guided.fingerprint.BehaviorFingerprint` (exception type,
  component, normalized log signature, lifecycle state) so "novel" is a
  well-defined predicate;
* :mod:`repro.guided.corpus` keeps the deduplicated
  :class:`~repro.guided.corpus.BehaviorCorpus` of intents that produced a
  novel behaviour, persisted through the checkpoint-journal layer and
  merged deterministically across farm shards;
* :mod:`repro.guided.mutators` splices and havocs corpus entries instead
  of always generating from scratch;
* :mod:`repro.guided.scheduler` is the multi-armed bandit (UCB1 or seeded
  Thompson) over ``(package, campaign)`` arms that shifts the remaining
  injection budget toward arms still yielding novel behaviours;
* :mod:`repro.guided.study` runs the round-based guided study through the
  farm's shard layer -- byte-identical corpus, schedule, and report at any
  worker count.
"""

from repro.guided.corpus import BehaviorCorpus, CorpusEntry
from repro.guided.engine import BlockOutcome, GuidedTask, run_guided_blocks
from repro.guided.fingerprint import BehaviorFingerprint, fingerprint_injection
from repro.guided.mutators import MUTATION_OPS, mutate_intent
from repro.guided.scheduler import (
    ArmState,
    ThompsonScheduler,
    UcbScheduler,
    make_scheduler,
)
from repro.guided.study import (
    GuidedConfig,
    GuidedStudyResult,
    blind_equivalent_budget,
    run_guided_study,
)

__all__ = [
    "ArmState",
    "BehaviorCorpus",
    "BehaviorFingerprint",
    "BlockOutcome",
    "CorpusEntry",
    "GuidedConfig",
    "GuidedStudyResult",
    "GuidedTask",
    "MUTATION_OPS",
    "ThompsonScheduler",
    "UcbScheduler",
    "blind_equivalent_budget",
    "fingerprint_injection",
    "make_scheduler",
    "mutate_intent",
    "run_guided_blocks",
    "run_guided_study",
]
