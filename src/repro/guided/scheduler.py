"""Bandit budget schedulers over ``(package, campaign)`` arms.

The blind study spends a fixed volume per arm.  The guided study treats
budget allocation as a multi-armed bandit: each round it picks the arms
most likely to still yield novel behaviours, spends a block of intents on
them, and folds the observed novelty back into the arm statistics.

Two policies, selectable with ``--scheduler``:

* :class:`UcbScheduler` (default) -- UCB1 on the per-intent novelty rate
  with a tunable exploration weight.  Fully deterministic: ties break on
  arm order, no RNG anywhere.
* :class:`ThompsonScheduler` -- Thompson sampling with Beta posteriors
  over per-intent novelty, driven by one seeded ``random.Random``.  Draws
  happen in fixed arm order each round, so a given seed replays the exact
  schedule -- on any worker count, because the study only consults the
  scheduler at round barriers on merged (worker-independent) statistics.

Both start every arm with one forced play: round zero sweeps the whole
arm set, which doubles as corpus seeding -- no arm can be starved before
it has reported once.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Sequence, Tuple

#: (package, campaign value)
ArmKey = Tuple[str, str]


@dataclasses.dataclass
class ArmState:
    """Merged statistics for one arm."""

    plays: int = 0          # completed blocks
    intents: int = 0        # intents actually spent
    novel: int = 0          # corpus admissions attributed to this arm

    @property
    def rate(self) -> float:
        """Per-intent novelty rate (the bandit's reward signal)."""
        return self.novel / self.intents if self.intents else 0.0


class _BanditBase:
    """Shared arm bookkeeping; subclasses rank the arms."""

    kind = "bandit"

    def __init__(self, arms: Sequence[ArmKey]) -> None:
        if not arms:
            raise ValueError("a scheduler needs at least one arm")
        if len(set(arms)) != len(arms):
            raise ValueError("duplicate arms")
        self.arms: Tuple[ArmKey, ...] = tuple(arms)
        self.states: Dict[ArmKey, ArmState] = {arm: ArmState() for arm in self.arms}

    @property
    def total_intents(self) -> int:
        return sum(state.intents for state in self.states.values())

    def update(self, arm: ArmKey, intents: int, novel: int) -> None:
        """Fold one completed block's merged outcome into the arm."""
        state = self.states[arm]
        state.plays += 1
        state.intents += intents
        state.novel += novel

    def allocate(self, k: int) -> List[ArmKey]:
        """The ``k`` arms to fund this round, never-played arms first.

        Unplayed arms go in arm order (the round-zero sweep); the rest
        rank by the subclass's score with ties broken on arm order.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        unplayed = [arm for arm in self.arms if self.states[arm].plays == 0]
        chosen = unplayed[:k]
        if len(chosen) < k:
            scores = self._scores()
            played = [arm for arm in self.arms if self.states[arm].plays > 0]
            index = {arm: i for i, arm in enumerate(self.arms)}
            played.sort(key=lambda arm: (-scores[arm], index[arm]))
            chosen.extend(played[: k - len(chosen)])
        return chosen

    def _scores(self) -> Dict[ArmKey, float]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, object]:
        """JSON-able scheduler state (goes in the schedule artifact)."""
        return {
            "kind": self.kind,
            "arms": [
                {
                    "package": arm[0],
                    "campaign": arm[1],
                    "plays": state.plays,
                    "intents": state.intents,
                    "novel": state.novel,
                }
                for arm, state in sorted(self.states.items())
            ],
        }


class UcbScheduler(_BanditBase):
    """UCB1 over per-intent novelty rate; deterministic, no RNG."""

    kind = "ucb"

    def __init__(self, arms: Sequence[ArmKey], exploration: float = 0.1) -> None:
        super().__init__(arms)
        if exploration < 0:
            raise ValueError(f"exploration must be >= 0, got {exploration}")
        self.exploration = exploration

    def _scores(self) -> Dict[ArmKey, float]:
        total = max(self.total_intents, 1)
        log_total = math.log(total)
        return {
            arm: state.rate
            + self.exploration * math.sqrt(log_total / state.intents)
            for arm, state in self.states.items()
            if state.intents > 0
        } | {arm: math.inf for arm, state in self.states.items() if state.intents == 0}


class ThompsonScheduler(_BanditBase):
    """Thompson sampling with Beta(1+novel, 1+misses) posteriors.

    One seeded RNG; arms are sampled in fixed arm order each round, so the
    draw stream -- and therefore the schedule -- is a pure function of the
    seed and the merged statistics.
    """

    kind = "thompson"

    def __init__(self, arms: Sequence[ArmKey], seed: int = 0) -> None:
        super().__init__(arms)
        self._rng = random.Random(f"thompson|{seed}")

    def _scores(self) -> Dict[ArmKey, float]:
        scores: Dict[ArmKey, float] = {}
        for arm in self.arms:  # fixed order: the draw stream is part of the schedule
            state = self.states[arm]
            scores[arm] = self._rng.betavariate(
                1 + state.novel, 1 + max(state.intents - state.novel, 0)
            )
        return scores


def make_scheduler(
    kind: str, arms: Sequence[ArmKey], *, seed: int = 0, exploration: float = 0.1
):
    if kind == "ucb":
        return UcbScheduler(arms, exploration=exploration)
    if kind == "thompson":
        return ThompsonScheduler(arms, seed=seed)
    raise ValueError(f"unknown scheduler: {kind!r} (ucb|thompson)")
