"""The behaviour corpus: deduplicated "interesting" intents, persisted and
deterministically mergeable.

An intent earns a corpus slot by producing a behaviour fingerprint nobody
has seen before.  The corpus is keyed on the fingerprint, so it can answer
"is this novel?" in O(1), hand the mutators a pool of proven-interesting
intents per ``(package, campaign)`` arm, and -- critically for the farm --
merge across shards to the *same* corpus no matter how many workers ran or
in what order their results arrived:

* entries sort by a canonical key (fingerprint tuple, then package,
  campaign, and the intent's canonical JSON), so iteration order never
  depends on insertion order;
* when two shards discover the same fingerprint with different intents in
  the same round, :meth:`BehaviorCorpus.merge` keeps the entry with the
  smallest canonical key -- a tie-break no worker count can perturb.

Persistence rides the existing checkpoint-journal layer
(:class:`~repro.faults.journal.CheckpointJournal`): a ``corpus.jsonl`` is
a journal whose header records the corpus version and whose records are
the entries in canonical order -- so saved corpora are byte-identical
whenever their contents are equal, and a torn tail from a crash loses at
most the final entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.faults.journal import CheckpointJournal
from repro.guided.fingerprint import BehaviorFingerprint
from repro.qgj.campaigns import FuzzIntent

CORPUS_VERSION = 1

#: Extra value kinds the wire format can round-trip exactly.
_WIRE_SCALARS = (str, int, float, bool, type(None))


def intent_to_wire(intent: FuzzIntent) -> Dict[str, object]:
    """A JSON-able encoding of one fuzz intent (exact round-trip)."""
    return {
        "action": intent.action,
        "data": intent.data,
        "extras": [[key, value] for key, value in intent.extras],
    }


def intent_from_wire(wire: Dict[str, object]) -> FuzzIntent:
    return FuzzIntent(
        action=wire["action"],
        data=wire["data"],
        extras=tuple((key, value) for key, value in wire.get("extras", [])),
    )


def canonical_intent(intent: FuzzIntent) -> str:
    """The intent's canonical JSON: the corpus's deterministic tie-break."""
    return json.dumps(intent_to_wire(intent), sort_keys=True)


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One interesting intent and the behaviour that earned its slot."""

    package: str
    campaign: str                       # Campaign.value
    fingerprint: BehaviorFingerprint
    intent: FuzzIntent

    def __post_init__(self) -> None:
        if not self.package:
            raise ValueError("corpus entry needs a package")
        if not self.campaign:
            raise ValueError("corpus entry needs a campaign")
        for key, value in self.intent.extras:
            if not isinstance(key, str) or not isinstance(value, _WIRE_SCALARS):
                raise ValueError(
                    f"extra {key!r}={value!r} is not wire-safe "
                    "(corpus entries must round-trip through JSON)"
                )

    def sort_key(self) -> Tuple:
        return (
            self.fingerprint.as_tuple(),
            self.package,
            self.campaign,
            canonical_intent(self.intent),
        )

    def to_wire(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "campaign": self.campaign,
            "fingerprint": list(self.fingerprint.as_tuple()),
            "intent": intent_to_wire(self.intent),
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "CorpusEntry":
        return cls(
            package=wire["package"],
            campaign=wire["campaign"],
            fingerprint=BehaviorFingerprint.from_tuple(tuple(wire["fingerprint"])),
            intent=intent_from_wire(wire["intent"]),
        )


def admissible(entry: CorpusEntry) -> bool:
    """Whether *entry* survives the corpus's wire round-trip unchanged.

    The corpus's admission contract: everything it stores must persist and
    reload to an equal entry (otherwise a saved corpus would drift from the
    live one).  Construction already validates the cheap invariants; this
    checks the full round-trip, and triage uses it to assert that minimized
    reproducers remain corpus material.
    """
    try:
        return CorpusEntry.from_wire(json.loads(json.dumps(entry.to_wire()))) == entry
    except (ValueError, KeyError, TypeError):
        return False


class BehaviorCorpus:
    """Fingerprint-keyed store of interesting intents."""

    def __init__(self, entries: Iterable[CorpusEntry] = ()) -> None:
        self._entries: Dict[BehaviorFingerprint, CorpusEntry] = {}
        for entry in entries:
            self.add(entry)

    # -- membership ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: BehaviorFingerprint) -> bool:
        return fingerprint in self._entries

    def add(self, entry: CorpusEntry) -> bool:
        """Admit *entry* if its fingerprint is novel; True when admitted."""
        if entry.fingerprint in self._entries:
            return False
        self._entries[entry.fingerprint] = entry
        return True

    def fingerprints(self) -> List[BehaviorFingerprint]:
        return sorted(self._entries)

    def entries(self) -> List[CorpusEntry]:
        """Every entry, in canonical order (insertion order never leaks)."""
        return sorted(self._entries.values(), key=CorpusEntry.sort_key)

    def entries_for(
        self, package: str, campaign: Optional[str] = None
    ) -> List[CorpusEntry]:
        """The mutation pool for one arm, in canonical order."""
        return [
            entry
            for entry in self.entries()
            if entry.package == package
            and (campaign is None or entry.campaign == campaign)
        ]

    # -- deterministic merge ------------------------------------------------------
    @classmethod
    def merge(cls, corpora: Sequence["BehaviorCorpus"]) -> "BehaviorCorpus":
        """Union of *corpora*, independent of their order.

        Entries competing for one fingerprint resolve to the smallest
        canonical key, so any permutation of the inputs -- any shard
        assignment, any worker count -- merges to the identical corpus.
        """
        merged = cls()
        candidates: Dict[BehaviorFingerprint, CorpusEntry] = {}
        for corpus in corpora:
            for entry in corpus._entries.values():
                held = candidates.get(entry.fingerprint)
                if held is None or entry.sort_key() < held.sort_key():
                    candidates[entry.fingerprint] = entry
        for entry in sorted(candidates.values(), key=CorpusEntry.sort_key):
            merged.add(entry)
        return merged

    def digest(self) -> str:
        """SHA-256 over the canonical encoding: equal corpora, equal digest."""
        payload = json.dumps(
            [entry.to_wire() for entry in self.entries()], sort_keys=True
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- persistence (checkpoint-journal layer) -----------------------------------
    def save(self, path: str, *, seed: Optional[int] = None) -> None:
        """Write the corpus as a checkpoint journal, canonical order."""
        journal = CheckpointJournal(path)
        header = {
            "kind": "behaviour-corpus",
            "corpus_version": CORPUS_VERSION,
            "entries": len(self),
            "digest": self.digest(),
        }
        if seed is not None:
            header["seed"] = seed
        journal.start(header)
        for entry in self.entries():
            journal.append({"type": "entry", **entry.to_wire()})

    @classmethod
    def load(cls, path: str) -> "BehaviorCorpus":
        records = CheckpointJournal.load(path)
        header = records[0]
        if header.get("kind") != "behaviour-corpus":
            raise ValueError(f"{path}: not a behaviour corpus journal")
        if header.get("corpus_version") != CORPUS_VERSION:
            raise ValueError(
                f"{path}: corpus version {header.get('corpus_version')}, "
                f"expected {CORPUS_VERSION}"
            )
        corpus = cls(
            CorpusEntry.from_wire(record)
            for record in records[1:]
            if record.get("type") == "entry"
        )
        return corpus
