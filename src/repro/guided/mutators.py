"""Pool mutators: new intents from proven-interesting ones.

Generational fuzzing starts every intent from the campaign grammar; pool
mutation starts from a corpus entry that already produced a novel
behaviour and perturbs it.  The operators cover the same axes the four
campaigns corrupt -- action, data URI, extras -- plus *splice*, which
recombines two corpus entries (hypofuzz's crossover analogue):

=================  ==========================================================
operator           effect
=================  ==========================================================
``swap_action``    replace the action with another valid action
``garble_action``  replace the action with random ASCII
``drop_action``    clear the action
``swap_data``      replace the data URI with another valid sample
``garble_data``    replace the data URI with random ASCII
``scheme_slam``    keep the URI scheme, garble the remainder
``drop_data``      clear the data URI
``add_extra``      append one random extra
``drop_extra``     remove one extra
``mutate_extra``   re-randomize one extra's value
``splice``         action/data/extras recombined from two pool entries
=================  ==========================================================

Every operator is a pure function of ``(intent, rng)`` (plus the pool for
``splice``), so a seeded RNG replays the exact mutation stream -- the
guided study's determinism leans on that.  Operators that need a field the
intent lacks fall through to the next applicable one rather than failing,
so mutation always yields an intent.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.android.actions import ALL_ACTIONS, URI_SAMPLES, URI_TYPES
from repro.qgj.campaigns import FuzzIntent, _random_extra_value, random_ascii

MutationOp = Callable[[FuzzIntent, random.Random, Sequence[FuzzIntent]], Optional[FuzzIntent]]


def _swap_action(intent, rng, pool):
    return FuzzIntent(
        action=rng.choice(ALL_ACTIONS), data=intent.data, extras=intent.extras
    )


def _garble_action(intent, rng, pool):
    return FuzzIntent(action=random_ascii(rng), data=intent.data, extras=intent.extras)


def _drop_action(intent, rng, pool):
    if intent.action is None:
        return None
    return FuzzIntent(action=None, data=intent.data, extras=intent.extras)


def _swap_data(intent, rng, pool):
    scheme = rng.choice(URI_TYPES)
    return FuzzIntent(action=intent.action, data=URI_SAMPLES[scheme], extras=intent.extras)


def _garble_data(intent, rng, pool):
    return FuzzIntent(action=intent.action, data=random_ascii(rng), extras=intent.extras)


def _scheme_slam(intent, rng, pool):
    if not intent.data or ":" not in intent.data:
        return None
    scheme = intent.data.split(":", 1)[0]
    return FuzzIntent(
        action=intent.action, data=f"{scheme}:{random_ascii(rng)}", extras=intent.extras
    )


def _drop_data(intent, rng, pool):
    if intent.data is None:
        return None
    return FuzzIntent(action=intent.action, data=None, extras=intent.extras)


def _add_extra(intent, rng, pool):
    extra = (f"extra_{len(intent.extras)}", _random_extra_value(rng))
    return FuzzIntent(
        action=intent.action, data=intent.data, extras=intent.extras + (extra,)
    )


def _drop_extra(intent, rng, pool):
    if not intent.extras:
        return None
    index = rng.randrange(len(intent.extras))
    extras = tuple(e for i, e in enumerate(intent.extras) if i != index)
    return FuzzIntent(action=intent.action, data=intent.data, extras=extras)


def _mutate_extra(intent, rng, pool):
    if not intent.extras:
        return None
    index = rng.randrange(len(intent.extras))
    extras = list(intent.extras)
    extras[index] = (extras[index][0], _random_extra_value(rng))
    return FuzzIntent(action=intent.action, data=intent.data, extras=tuple(extras))


def _splice(intent, rng, pool):
    if len(pool) < 2:
        return None
    other = rng.choice(pool)
    # Interleave extras, capping at campaign D's five so splicing never
    # snowballs payload size round over round.
    extras = tuple((intent.extras + other.extras)[:5])
    if rng.random() < 0.5:
        return FuzzIntent(action=intent.action, data=other.data, extras=extras)
    return FuzzIntent(action=other.action, data=intent.data, extras=extras)


#: Operator table, in the order the dispatcher draws from.  Names are part
#: of the observable mutation stream (tests pin them), so append, don't
#: reorder.
MUTATION_OPS: Dict[str, MutationOp] = {
    "swap_action": _swap_action,
    "garble_action": _garble_action,
    "drop_action": _drop_action,
    "swap_data": _swap_data,
    "garble_data": _garble_data,
    "scheme_slam": _scheme_slam,
    "drop_data": _drop_data,
    "add_extra": _add_extra,
    "drop_extra": _drop_extra,
    "mutate_extra": _mutate_extra,
    "splice": _splice,
}

_OP_NAMES: Tuple[str, ...] = tuple(MUTATION_OPS)


def mutate_intent(
    intent: FuzzIntent,
    rng: random.Random,
    pool: Sequence[FuzzIntent] = (),
) -> FuzzIntent:
    """One mutation of *intent*; deterministic given the RNG state.

    Draws an operator; an operator that does not apply (no extras to drop,
    nothing to splice with) falls through to the next in table order, and
    the guaranteed-applicable operators (``swap_action``, ``add_extra``)
    bound the walk.
    """
    start = rng.randrange(len(_OP_NAMES))
    for offset in range(len(_OP_NAMES)):
        name = _OP_NAMES[(start + offset) % len(_OP_NAMES)]
        mutated = MUTATION_OPS[name](intent, rng, pool)
        if mutated is not None:
            return mutated
    raise AssertionError("unreachable: swap_action always applies")
