"""Behaviour fingerprints: the guided fuzzer's novelty predicate.

Coverage-guided fuzzers need a cheap, stable answer to "did that input do
anything new?".  Native fuzzers use branch coverage; an unprivileged
intent fuzzer only sees what the public dispatch surface returns plus what
the log says afterwards.  The fingerprint therefore folds together the
four signals this harness can observe per injection:

* the **component** the intent was delivered to;
* the **outcome class** (delivered / crash / anr / security_exception /
  not_found / dropped / reboot);
* the **exception identity** -- root-cause Java class and topmost app
  frame of the throwable, when the dispatch crashed;
* the **normalized log signature** -- the exception chain (outer to root)
  with messages and digits stripped, so two crashes differing only in a
  payload echo or a pid fingerprint identically;
* the **lifecycle state** the device was in -- the system server's aging
  band -- because the paper's reboots manifest "at specific states" that a
  state-blind key would conflate.

Fingerprints are frozen, ordered, and wire-round-trippable: the corpus
keys on them, farm shards ship them, and the deterministic merge sorts by
them.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional, Tuple

from repro.android.jtypes import Throwable

#: Aging bands, as fractions of the system server's reboot threshold.
#: Coarse on purpose: a fingerprint should not become "novel" every time
#: the aging score drifts a little.
_AGING_BANDS: Tuple[Tuple[float, str], ...] = (
    (0.25, "calm"),
    (0.75, "strained"),
)
_AGING_CEILING = "critical"

_DIGITS_RE = re.compile(r"\d+")


@dataclasses.dataclass(frozen=True, order=True)
class BehaviorFingerprint:
    """The dedup key for one observed behaviour."""

    component: str          # flat component string ("pkg/cls")
    outcome: str            # fuzzer outcome label, or "reboot"
    exception: str          # root-cause Java class ("" when none)
    frame: str              # topmost app frame "class.method" ("" when none)
    log_signature: str      # normalized chain/reason signature
    lifecycle: str          # aging band at injection time

    def as_tuple(self) -> Tuple[str, str, str, str, str, str]:
        return (
            self.component,
            self.outcome,
            self.exception,
            self.frame,
            self.log_signature,
            self.lifecycle,
        )

    @classmethod
    def from_tuple(cls, values) -> "BehaviorFingerprint":
        component, outcome, exception, frame, log_signature, lifecycle = values
        return cls(
            component=component,
            outcome=outcome,
            exception=exception,
            frame=frame,
            log_signature=log_signature,
            lifecycle=lifecycle,
        )

    def render(self) -> str:
        detail = self.exception.rsplit(".", 1)[-1] if self.exception else self.outcome
        return f"{detail} @ {self.component} [{self.lifecycle}]"


def normalize_text(text: str) -> str:
    """Strip run-specific noise (digits) from a log fragment."""
    return _DIGITS_RE.sub("#", text)


def lifecycle_state(device) -> str:
    """The device's aging band: part of the fingerprint's novelty key."""
    server = device.system_server
    threshold = getattr(server, "reboot_threshold", 0.0) or 1.0
    fraction = server.aging.score() / threshold
    for ceiling, band in _AGING_BANDS:
        if fraction < ceiling:
            return band
    return _AGING_CEILING


def throwable_signature(throwable: Throwable) -> Tuple[str, str, str]:
    """(root class, top app frame, normalized chain) for one throwable."""
    root = throwable.root_cause()
    frame = root.frames[0] if root.frames else None
    frame_text = f"{frame.class_name}.{frame.method}" if frame else ""
    chain = []
    cursor: Optional[Throwable] = throwable
    while cursor is not None:
        chain.append(type(cursor).JAVA_NAME)
        cursor = cursor.cause
    return type(root).JAVA_NAME, frame_text, normalize_text(">".join(chain))


def fingerprint_injection(
    component: str,
    outcome: str,
    dispatch,
    device,
    *,
    rebooted: bool = False,
) -> BehaviorFingerprint:
    """Fingerprint one injection from what the dispatch surface returned.

    *dispatch* is the :class:`~repro.android.activity_manager.DispatchResult`
    (``None`` for resolution failures and transport losses).  *rebooted*
    overrides the outcome: an injection that took the device down is its
    own behaviour class regardless of what the dispatch reported.
    """
    lifecycle = lifecycle_state(device)
    if rebooted:
        outcome = "reboot"
    exception = ""
    frame = ""
    signature = outcome
    if dispatch is not None and dispatch.throwable is not None:
        exception, frame, signature = throwable_signature(dispatch.throwable)
    elif dispatch is not None and dispatch.anr:
        signature = "anr"
    return BehaviorFingerprint(
        component=component,
        outcome=outcome,
        exception=exception,
        frame=frame,
        log_signature=signature,
        lifecycle=lifecycle,
    )


def crash_signature(component: str, throwable: Throwable):
    """The triage-layer :class:`~repro.qgj.triage.CrashSignature` for a
    crash observed by the guided loop -- the same bucketing key the blind
    pipeline's triage report uses, so guided-vs-blind bucket counts
    compare like for like."""
    from repro.qgj.triage import CrashSignature

    root = throwable.root_cause()
    frame = root.frames[0] if root.frames else None
    frame_text = f"{frame.class_name}.{frame.method}" if frame else "(unknown)"
    return CrashSignature(
        component=component,
        exception=type(root).JAVA_NAME,
        frame=frame_text,
    )
