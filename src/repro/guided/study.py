"""The guided study: rounds of bandit-allocated blocks over the farm.

Structure of one run::

    round:  scheduler.allocate(k)  ->  funded (package, campaign) arms
            group by package       ->  one GuidedTask / ShardSpec each
            run_shards(...)        ->  BlockOutcomes (any worker count)
            attribution            ->  corpus admissions in allocation order
            scheduler.update(...)  ->  next round's allocation

The determinism argument, end to end: the scheduler is consulted only at
round barriers, on statistics merged from every shard of the previous
round; blocks execute on fresh device pairs whose virtual clocks start at
zero, so a block's observations are a pure function of its task; and
attribution walks the *allocation* order, not result-arrival order.  No
step can observe the worker count, so the corpus, the schedule, and the
report are byte-identical at ``--workers 1``, ``2``, and ``4`` -- the CI
smoke diffs exactly that.

Budget accounting charges each arm its *allocated* block, not its actual
sends: an arm that aborts early (reboot, quarantine) still consumes its
slice, so the study always terminates after ``ceil(budget / block)``
funded blocks and the spent total never exceeds the budget.  Actual sends
are reported separately.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.android.component import ComponentKind
from repro.apps.catalog import build_wear_corpus
from repro.faults.journal import CheckpointJournal
from repro.guided.corpus import BehaviorCorpus
from repro.guided.engine import BlockOutcome, GuidedBlock, GuidedTask
from repro.guided.scheduler import ArmKey, make_scheduler
from repro.qgj.campaigns import Campaign, campaign_size
from repro.telemetry.metrics import ARM_BUDGET, CORPUS_SIZE, NOVEL_BEHAVIOURS

#: Component kinds the guided loop injects into (same surface as the blind
#: wear study).
_FUZZED_KINDS = (ComponentKind.ACTIVITY, ComponentKind.SERVICE)


@dataclasses.dataclass(frozen=True)
class GuidedConfig:
    """Knobs of one guided run (all of them part of the schedule's identity)."""

    scheduler: str = "ucb"          # "ucb" | "thompson"
    #: Intents per funded arm per round.
    block_size: int = 200
    #: Arms funded per round (clamped to the arm count).
    arms_per_round: int = 8
    #: Probability an intent comes from the mutation pool (when non-empty)
    #: rather than the campaign grammar.
    pool_rate: float = 0.8
    seed: int = 0
    exploration: float = 0.1
    #: Total intent budget; ``None`` means "what the blind study would
    #: spend" (:func:`blind_equivalent_budget`).
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.arms_per_round < 1:
            raise ValueError(f"arms_per_round must be >= 1, got {self.arms_per_round}")
        if not 0.0 <= self.pool_rate <= 1.0:
            raise ValueError(f"pool_rate must be in [0, 1], got {self.pool_rate}")
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")


def blind_equivalent_budget(config, packages: Optional[Sequence[str]] = None) -> int:
    """The intent volume the blind study would nominally spend.

    Per component, each campaign sends ``campaign_size(campaign, stride)``
    intents; summed over the fuzzable components of *packages* (default:
    the whole wear catalog).  This is the equal-budget baseline the
    guided-vs-blind ablation holds fixed.
    """
    corpus = build_wear_corpus(seed=config.corpus_seed)
    wanted = set(packages) if packages is not None else None
    per_component = sum(
        campaign_size(campaign, config.fuzz.stride_for(campaign))
        for campaign in Campaign
    )
    total = 0
    for package in corpus.packages():
        if wanted is not None and package.package not in wanted:
            continue
        fuzzable = sum(1 for info in package.components if info.kind in _FUZZED_KINDS)
        total += fuzzable * per_component
    return total


@dataclasses.dataclass
class RoundRecord:
    """One round of the schedule (what ``schedule.jsonl`` persists)."""

    index: int
    #: Funded arms in allocation order:
    #: (package, campaign, allocated, sent, novel, rebooted, aborted).
    funded: List[Tuple[str, str, int, int, int, bool, bool]]
    corpus_size: int
    remaining: int

    def to_wire(self) -> Dict[str, object]:
        return {
            "type": "round",
            "index": self.index,
            "funded": [
                {
                    "package": package,
                    "campaign": campaign,
                    "allocated": allocated,
                    "sent": sent,
                    "novel": novel,
                    "rebooted": rebooted,
                    "aborted": aborted,
                }
                for package, campaign, allocated, sent, novel, rebooted, aborted in self.funded
            ],
            "corpus_size": self.corpus_size,
            "remaining": self.remaining,
        }


@dataclasses.dataclass
class GuidedStudyResult:
    """Everything one guided run produced, deterministically renderable."""

    config_name: str
    guided: GuidedConfig
    budget: int
    total_sent: int
    rounds: List[RoundRecord]
    corpus: BehaviorCorpus
    #: (component, exception, frame) -> hits, summed over every block.
    crash_buckets: Dict[Tuple[str, str, str], int]
    #: Outcome label -> count over every injection.
    outcomes: Dict[str, int]
    #: Final scheduler state (per-arm plays/intents/novel).
    scheduler_snapshot: Dict[str, object]
    #: Sum of the shard virtual clocks (deterministic; no wall time here).
    clock_ms: float

    def distinct_buckets(self) -> int:
        return len(self.crash_buckets)

    def render(self) -> str:
        """The study report.  Byte-identical across worker counts: every
        line derives from merged, allocation-ordered state."""
        lines = [
            "Guided fuzzing study",
            "====================",
            f"config: {self.config_name}  scheduler: {self.guided.scheduler}"
            f"  block: {self.guided.block_size}  arms/round: {self.guided.arms_per_round}"
            f"  pool rate: {self.guided.pool_rate}  seed: {self.guided.seed}",
            f"budget: {self.budget} intents  sent: {self.total_sent}"
            f"  rounds: {len(self.rounds)}",
            f"corpus: {len(self.corpus)} behaviours"
            f"  digest: {self.corpus.digest()[:16]}",
            f"distinct crash buckets: {self.distinct_buckets()}",
            "",
            "outcomes:",
        ]
        for label in sorted(self.outcomes):
            lines.append(f"  {label:20s} {self.outcomes[label]}")
        lines.append("")
        lines.append("arms (plays / intents / novel):")
        for arm in self.scheduler_snapshot["arms"]:
            lines.append(
                f"  {arm['package']:28s} {arm['campaign']}  "
                f"{arm['plays']:3d} / {arm['intents']:6d} / {arm['novel']:4d}"
            )
        lines.append("")
        lines.append("top crash buckets:")
        ranked = sorted(self.crash_buckets.items(), key=lambda kv: (-kv[1], kv[0]))
        for (component, exception, frame), hits in ranked[:10]:
            short = exception.rsplit(".", 1)[-1]
            lines.append(f"  {hits:6d}  {short} @ {component} ({frame})")
        lines.append("")
        return "\n".join(lines)

    def save(self, corpus_dir: str) -> None:
        """Persist the corpus and the schedule under *corpus_dir*.

        Both artifacts go through the checkpoint-journal layer and are
        byte-identical whenever the run was -- the CI smoke diffs the
        files straight across worker counts.
        """
        os.makedirs(corpus_dir, exist_ok=True)
        self.corpus.save(
            os.path.join(corpus_dir, "corpus.jsonl"), seed=self.guided.seed
        )
        schedule = CheckpointJournal(os.path.join(corpus_dir, "schedule.jsonl"))
        schedule.start(
            {
                "kind": "guided-schedule",
                "config": self.config_name,
                "scheduler": self.guided.scheduler,
                "seed": self.guided.seed,
                "budget": self.budget,
                "rounds": len(self.rounds),
            }
        )
        for record in self.rounds:
            schedule.append(record.to_wire())


def _record_telemetry(handle, result: GuidedStudyResult, novel_this_round: int) -> None:
    if handle is None or not handle.enabled:
        return
    registry = handle.metrics
    registry.gauge(CORPUS_SIZE, "Behaviour corpus size.").set(len(result.corpus))
    if novel_this_round:
        registry.counter(
            NOVEL_BEHAVIOURS, "Novel behaviours admitted to the corpus."
        ).inc(novel_this_round)
    budget_gauge = registry.gauge(
        ARM_BUDGET,
        "Intent budget spent per (package, campaign) arm.",
        ("package", "campaign"),
    )
    for arm in result.scheduler_snapshot["arms"]:
        budget_gauge.labels(package=arm["package"], campaign=arm["campaign"]).set(
            arm["intents"]
        )


def run_guided_study(
    config,
    guided: GuidedConfig = GuidedConfig(),
    packages: Optional[Sequence[str]] = None,
    workers: int = 1,
    telemetry_handle=None,
) -> GuidedStudyResult:
    """Run one feedback-guided study over the wear catalog.

    *config* is an :class:`~repro.experiments.config.ExperimentConfig`
    (its fuzz pacing, corpus seed, and strides all apply); *packages*
    restricts the arm universe (default: every catalog app).  *workers*
    fans each round's package shards out exactly like the blind farm --
    and, per the determinism contract, never changes the result.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    # Imported here, not at module level: the farm's shard layer imports
    # the guided *engine* (to run guided shards), which initializes this
    # package -- a module-level farm import would close that cycle.
    from repro import faults
    from repro.farm.partition import derive_plan, derive_seed
    from repro.farm.pool import run_shards
    from repro.farm.shard import ShardSpec

    # An armed fault plan rides into every round's shards exactly like the
    # blind farm: re-seeded per package, so each package sees the same
    # deterministic schedule whatever round (or worker) runs it -- shard
    # devices start their virtual clocks at zero every round.
    study_plane = faults.get()
    base_plan = study_plane.plan if study_plane.armed else None

    app_corpus = build_wear_corpus(seed=config.corpus_seed)
    if packages is None:
        packages = [app.package.package for app in app_corpus.apps]
    else:
        known_packages = {app.package.package for app in app_corpus.apps}
        for package in packages:
            if package not in known_packages:
                raise ValueError(f"package not in the wear catalog: {package}")
    arms: List[ArmKey] = [
        (package, campaign.value) for package in packages for campaign in Campaign
    ]
    budget = (
        guided.budget
        if guided.budget is not None
        else blind_equivalent_budget(config, packages)
    )
    scheduler = make_scheduler(
        guided.scheduler, arms, seed=guided.seed, exploration=guided.exploration
    )
    corpus = BehaviorCorpus()
    crash_buckets: Dict[Tuple[str, str, str], int] = {}
    outcomes: Dict[str, int] = {}
    rounds: List[RoundRecord] = []
    total_sent = 0
    clock_ms = 0.0
    remaining = budget
    round_index = 0
    result = GuidedStudyResult(
        config_name=config.name,
        guided=guided,
        budget=budget,
        total_sent=0,
        rounds=rounds,
        corpus=corpus,
        crash_buckets=crash_buckets,
        outcomes=outcomes,
        scheduler_snapshot=scheduler.snapshot(),
        clock_ms=0.0,
    )
    while remaining > 0:
        allocation = scheduler.allocate(min(guided.arms_per_round, len(arms)))
        funded: List[Tuple[ArmKey, int]] = []
        for arm in allocation:
            if remaining < 1:
                break
            block = min(guided.block_size, remaining)
            funded.append((arm, block))
            remaining -= block
        # Group the round's blocks per package, preserving allocation order
        # within each package (blocks run in that order on one device).
        per_package: Dict[str, List[GuidedBlock]] = {}
        for (package, campaign_value), block in funded:
            per_package.setdefault(package, []).append(
                GuidedBlock(
                    campaign=campaign_value,
                    budget=block,
                    # Prior spend fast-forwards the arm's grammar stream so
                    # this block continues where its last one stopped.
                    offset=scheduler.states[(package, campaign_value)].intents,
                )
            )
        known = tuple(fp.as_tuple() for fp in corpus.fingerprints())
        specs = []
        for index, (package, blocks) in enumerate(per_package.items()):
            task = GuidedTask(
                package=package,
                round_index=round_index,
                blocks=tuple(blocks),
                pool=tuple(corpus.entries_for(package)),
                known=known,
                seed=derive_seed(config.corpus_seed ^ guided.seed, package),
                pool_rate=guided.pool_rate,
            )
            shard_seed = derive_seed(config.corpus_seed, package)
            specs.append(
                ShardSpec(
                    study="guided",
                    index=index,
                    key=f"{package}#r{round_index}",
                    packages=(package,),
                    campaigns=(),
                    config=config,
                    seed=shard_seed,
                    plan=derive_plan(base_plan, shard_seed),
                    guided=task,
                )
            )
        results = run_shards(specs, workers=workers)
        by_arm: Dict[ArmKey, BlockOutcome] = {}
        for shard_result in results:
            clock_ms += shard_result.clock_ms
            for outcome in shard_result.guided or ():
                by_arm[(outcome.package, outcome.campaign)] = outcome
        # Attribution: walk the allocation order (worker-independent), admit
        # each block's locally-novel entries against the global corpus, and
        # credit the arm with what actually landed.
        novel_this_round = 0
        funded_records: List[Tuple[str, str, int, int, int, bool, bool]] = []
        for (package, campaign_value), block in funded:
            outcome = by_arm[(package, campaign_value)]
            novel = sum(1 for entry in outcome.new_entries if corpus.add(entry))
            novel_this_round += novel
            scheduler.update((package, campaign_value), intents=block, novel=novel)
            total_sent += outcome.sent
            for bucket, hits in outcome.crash_buckets.items():
                crash_buckets[bucket] = crash_buckets.get(bucket, 0) + hits
            for label, count in outcome.outcomes.items():
                outcomes[label] = outcomes.get(label, 0) + count
            funded_records.append(
                (
                    package,
                    campaign_value,
                    block,
                    outcome.sent,
                    novel,
                    outcome.rebooted,
                    outcome.aborted,
                )
            )
        rounds.append(
            RoundRecord(
                index=round_index,
                funded=funded_records,
                corpus_size=len(corpus),
                remaining=remaining,
            )
        )
        result.scheduler_snapshot = scheduler.snapshot()
        result.total_sent = total_sent
        result.clock_ms = clock_ms
        _record_telemetry(telemetry_handle, result, novel_this_round)
        round_index += 1
    return result
