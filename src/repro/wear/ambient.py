"""Ambient mode: the always-on low-power display service.

The second reboot the paper observed ran through this service:

    "The application crashed several times due to the inability to start the
    activity that prevented it from binding to the Ambient Service, a core
    AW service to control low-power ambient mode.  Then, the system sent a
    SIGSEGV, which caused segmentation fault of the system process, that
    eventually ended up rebooting the device."

The escalation itself (crash-loop → bind starvation → SIGSEGV → reboot)
lives in :class:`repro.android.system_server.SystemServer`; this module is
the service being starved: it tracks which packages are *expected* to bind
(watch faces and always-on apps declare ``AmbientModeSupport``), manages the
ambient/interactive state machine, and surfaces bind bookkeeping that the
experiments and tests can assert on.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Set

from repro.android.jtypes import IllegalStateException

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.wear.device import WearDevice

#: Default interactive-to-ambient timeout on Wear 2.0.
AMBIENT_TIMEOUT_MS = 15_000.0


class DisplayState(enum.Enum):
    INTERACTIVE = "interactive"
    AMBIENT = "ambient"
    OFF = "off"


class AmbientService:
    """``com.google.android.clockwork`` ambient controller."""

    def __init__(self, device: "WearDevice") -> None:
        self._device = device
        self.state = DisplayState.INTERACTIVE
        self._bound_packages: Set[str] = set()
        self._expected_binders: Set[str] = set()
        self.bind_count: Dict[str, int] = {}
        self.transitions: List[DisplayState] = []

    # -- expected binders -----------------------------------------------------
    def expect_binder(self, package: str) -> None:
        """Declare that *package* supports ambient mode (binds this service).

        Registration is forwarded to the system server so its health model
        knows which crash-loops starve ambient binding.
        """
        self._expected_binders.add(package)
        self._device.system_server.register_ambient_binder(package)

    def expected_binders(self) -> Set[str]:
        return set(self._expected_binders)

    # -- binding ------------------------------------------------------------------
    def bind(self, package: str) -> None:
        """An app successfully bound for ambient callbacks."""
        self._bound_packages.add(package)
        self.bind_count[package] = self.bind_count.get(package, 0) + 1

    def unbind(self, package: str) -> None:
        if package not in self._bound_packages:
            raise IllegalStateException(f"{package} is not bound to AmbientService")
        self._bound_packages.discard(package)

    def is_bound(self, package: str) -> bool:
        return package in self._bound_packages

    # -- display state machine ----------------------------------------------------
    def enter_ambient(self) -> None:
        if self.state == DisplayState.AMBIENT:
            raise IllegalStateException("already in ambient mode")
        self.state = DisplayState.AMBIENT
        self.transitions.append(self.state)

    def exit_ambient(self) -> None:
        if self.state != DisplayState.AMBIENT:
            raise IllegalStateException(f"not in ambient mode (state={self.state.value})")
        self.state = DisplayState.INTERACTIVE
        self.transitions.append(self.state)

    def reset(self) -> None:
        """Post-reboot reset; expected binders survive, bindings do not."""
        self.state = DisplayState.INTERACTIVE
        self._bound_packages.clear()
