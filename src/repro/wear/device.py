"""Wear and phone device models, and pairing.

The paper's test beds were:

* **QGJ-Master study** -- an LG Nexus 4 phone paired over Bluetooth with a
  Moto 360 running Android Wear 2.0;
* **QGJ-UI study** -- a Nexus 6 phone paired with an Android Watch
  *emulator* (API 25), chosen to isolate core AW functionality from vendor
  extensions and screen-geometry differences.

:class:`WearDevice` carries the Wear-specific system services (ambient,
Google Fit, complications, notifications, the wearable node), a round
400×400 screen, and an ``is_emulator`` flag that drops the vendor layer.
:class:`PhoneDevice` is a plain Android handset with a wearable node so the
two can pair.
"""

from __future__ import annotations

from typing import Optional

from repro.android.device import Device
from repro.wear.ambient import AmbientService
from repro.wear.compat import CompatMatrix
from repro.wear.complications import ComplicationManager
from repro.wear.fit import GoogleFitClient, GoogleFitService
from repro.wear.node import BluetoothLink, DataClient, MessageClient, WearableNode
from repro.wear.ui_widgets import NotificationStream


# Module-level service providers keep devices picklable (the chaos plane's
# checkpoint journal snapshots whole devices between campaign segments).
def _message_client_provider(device, package):
    return MessageClient(device.node)


def _data_client_provider(device, package):
    return DataClient(device.node)


def _ambient_provider(device, package):
    return device.ambient


def _fit_client_provider(device, package):
    return GoogleFitClient(device.fit_service, package)


def _complications_provider(device, package):
    return device.complications


class PhoneDevice(Device):
    """An Android handset (Nexus 4 / Nexus 6 class)."""

    def __init__(
        self,
        name: str = "phone",
        model: str = "Nexus 6",
        android_version: str = "7.1.1",
        **kwargs,
    ) -> None:
        super().__init__(name=name, android_version=android_version, **kwargs)
        self.model = model
        self.screen_width = 1440
        self.screen_height = 2560
        self.node = WearableNode(f"node-{name}", self.clock, runtime=self.runtime)
        self.register_system_service("wearable_message", _message_client_provider)
        self.register_system_service("wearable_data", _data_client_provider)


class WearDevice(Device):
    """An Android Wear 2.0 smartwatch (Moto 360 class) or Watch emulator."""

    def __init__(
        self,
        name: str = "watch",
        model: str = "Moto 360",
        wear_version: str = "2.0",
        is_emulator: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(name=name, android_version="7.1.1", **kwargs)
        self.model = model
        self.wear_version = wear_version
        self.is_emulator = is_emulator
        self.screen_width = 400
        self.screen_height = 400
        self.node = WearableNode(f"node-{name}", self.clock, runtime=self.runtime)
        self.ambient = AmbientService(self)
        self.fit_service = GoogleFitService(self.clock, self.sensor_service)
        self.complications = ComplicationManager()
        self.notifications = NotificationStream()
        self.register_system_service("ambient", _ambient_provider)
        self.register_system_service("fit", _fit_client_provider)
        self.register_system_service("complications", _complications_provider)
        self.register_system_service("wearable_message", _message_client_provider)
        self.register_system_service("wearable_data", _data_client_provider)

    def _after_reboot(self) -> None:
        self.ambient.reset()
        self.fit_service.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flavour = "emulator" if self.is_emulator else self.model
        return f"<WearDevice {self.name} ({flavour}, AW {self.wear_version}) boots={self.boot_count}>"


def pair(
    phone: PhoneDevice,
    watch: WearDevice,
    latency_ms: float = 40.0,
    compat: Optional[CompatMatrix] = None,
) -> BluetoothLink:
    """Pair a phone and a watch over (virtual) Bluetooth.

    The two devices keep their own clocks in the simulator; pairing ties
    the link to the *watch* clock, which is the device under test and the
    one whose timeline every experiment reads.

    *compat* pins the pair's API levels; when omitted, the watch's armed
    fault plan supplies its matrix (if any), so ``--compat-skew`` reaches
    every pair the study builds without threading a parameter through.
    """
    if compat is None:
        plane = watch.runtime.faults
        if plane.armed:
            compat = plane.plan.compat
    link = BluetoothLink(phone.node, watch.node, latency_ms=latency_ms, compat=compat)
    phone.logcat.i("WearableService", f"paired with {watch.node.node_id}")
    watch.logcat.i("WearableService", f"paired with {phone.node.node_id}")
    if compat is not None and compat.skew > 0:
        watch.logcat.w(
            "WearableService",
            f"API skew on pair: phone api{compat.phone_api}"
            f" / wear api{compat.wear_api}",
        )
    return link
