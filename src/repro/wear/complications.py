"""Watch-face complications: the provider protocol.

One of the paper's concrete crash case studies runs through this protocol:

    "Google Fit, a core AW component, reported a crash because an intent
    ``{act=ACTION_ALL_APP}`` was sent without the expected message
    (Complication Provider)."

A *complication* is a small data window on a watch face (step count, heart
rate, date).  Providers are services; the watch face requests data with an
intent that must carry a ``ComplicationProviderInfo`` extra.  This module
defines that contract -- the extra key, the provider info record, the
supported data types, and the validation helper whose *absence* in Google
Fit's handler is exactly the bug the paper caught.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.android.intent import ComponentName, Intent
from repro.android.jtypes import IllegalArgumentException

#: The extra key a complication request must carry.
EXTRA_PROVIDER_INFO = "android.support.wearable.complications.EXTRA_PROVIDER_INFO"

#: The action the Google Fit crash was triggered through.
ACTION_ALL_APP = "vnd.google.fitness.ACTION_ALL_APP"


class ComplicationType(enum.Enum):
    SHORT_TEXT = 3
    LONG_TEXT = 4
    RANGED_VALUE = 5
    ICON = 6
    SMALL_IMAGE = 7


@dataclasses.dataclass(frozen=True)
class ComplicationProviderInfo:
    """Identity + capability record for one provider service."""

    provider: ComponentName
    supported_types: tuple

    def supports(self, complication_type: ComplicationType) -> bool:
        return complication_type in self.supported_types

    def to_extra(self) -> Dict[str, object]:
        """Serialise for transport in an intent extra."""
        return {
            "provider": self.provider.flatten_to_string(),
            "types": tuple(t.value for t in self.supported_types),
        }

    @staticmethod
    def from_extra(value: object) -> "ComplicationProviderInfo":
        """Deserialise; raises ``IllegalArgumentException`` on malformed input."""
        if not isinstance(value, dict):
            raise IllegalArgumentException(
                f"EXTRA_PROVIDER_INFO must be a bundle, got {type(value).__name__}"
            )
        provider = value.get("provider")
        types = value.get("types")
        if not isinstance(provider, str) or "/" not in provider:
            raise IllegalArgumentException(f"bad provider component: {provider!r}")
        if not isinstance(types, (tuple, list)) or not types:
            raise IllegalArgumentException(f"bad provider types: {types!r}")
        decoded = []
        for t in types:
            try:
                decoded.append(ComplicationType(t))
            except ValueError:
                raise IllegalArgumentException(f"unknown complication type: {t!r}")
        return ComplicationProviderInfo(
            provider=ComponentName.parse(provider),
            supported_types=tuple(decoded),
        )


def provider_info_from_intent(intent: Intent) -> Optional[ComplicationProviderInfo]:
    """Extract and validate the provider info extra, or ``None`` if absent.

    This is the *defensive* pattern Google Fit's handler should have used:
    check for absence, then validate.  Its real handler dereferenced the
    missing extra instead -- see
    :class:`repro.apps.builtin.GoogleFitActivity`.
    """
    if not intent.has_extra(EXTRA_PROVIDER_INFO):
        return None
    return ComplicationProviderInfo.from_extra(intent.get_extra(EXTRA_PROVIDER_INFO))


class ComplicationManager:
    """Registry of complication providers on the watch."""

    def __init__(self) -> None:
        self._providers: Dict[str, ComplicationProviderInfo] = {}

    def register(self, info: ComplicationProviderInfo) -> None:
        self._providers[info.provider.flatten_to_string()] = info

    def unregister(self, provider: ComponentName) -> None:
        self._providers.pop(provider.flatten_to_string(), None)

    def provider_for(self, provider: ComponentName) -> Optional[ComplicationProviderInfo]:
        return self._providers.get(provider.flatten_to_string())

    def providers_supporting(self, complication_type: ComplicationType) -> List[ComplicationProviderInfo]:
        return [p for p in self._providers.values() if p.supports(complication_type)]

    def __len__(self) -> int:
        return len(self._providers)
