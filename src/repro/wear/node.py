"""The Wearable network: nodes, the MessageAPI, and the DataAPI.

QGJ is a *two-part* tool: QGJ Mobile on the phone orchestrates, QGJ Wear on
the watch injects.  The paper's Fig. 1a shows the protocol -- the phone
retrieves the component list (①), sends the chosen target and campaign over
the Android Wear **MessageAPI** (②), the wear app forwards it to the fuzzer
library (③) which injects locally (④), and the summary travels back the same
way.  This module provides that transport:

* :class:`BluetoothLink` -- the (virtual) radio between exactly two paired
  nodes, with latency and a connect/disconnect state;
* :class:`MessageClient` -- fire-and-forget byte messages addressed by node
  id and path (``MessageApi`` in the real SDK);
* :class:`DataClient` -- a synchronised key/value store (``DataApi``), used
  for the bulk result summary.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.android.clock import Clock
from repro.android.jtypes import IllegalStateException
from repro.android.runtime import RuntimeContext
from repro.wear.compat import API_SEND_REQUEST, CompatMatrix, require_api

#: Result codes mirrored from the Wearable API.
SUCCESS = 0
ERROR_DISCONNECTED = 4000
ERROR_UNKNOWN_NODE = 4001

#: QGJ's own protocol namespace on the DataAPI/MessageAPI.  Both halves of
#: the harness ship together, so compat deltas never degrade these paths --
#: degrading them would fail the *tool*, not the apps under study.
HARNESS_PATH_PREFIX = "/qgj/"


@dataclasses.dataclass(frozen=True)
class NodeId:
    """Opaque wearable node identifier."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass
class MessageEvent:
    """One received MessageAPI message."""

    source_node: NodeId
    path: str
    payload: bytes
    time_ms: float


@dataclasses.dataclass
class DataItem:
    """One synchronised DataAPI item."""

    path: str
    data: Dict[str, object]
    time_ms: float
    source_node: NodeId


MessageListener = Callable[[MessageEvent], None]
DataListener = Callable[[DataItem], None]


class WearableNode:
    """One endpoint of the wearable network (a phone or a watch)."""

    def __init__(
        self,
        node_id: str,
        clock: Clock,
        runtime: Optional[RuntimeContext] = None,
    ) -> None:
        self.node_id = NodeId(node_id)
        self.clock = clock
        #: Chaos-plane access for compat deltas on this node's traffic.
        self.runtime = runtime if runtime is not None else RuntimeContext()
        self._message_listeners: List[Tuple[str, MessageListener]] = []
        self._data_listeners: List[Tuple[str, DataListener]] = []
        self._data_items: Dict[str, DataItem] = {}
        self.link: Optional["BluetoothLink"] = None

    # -- listener registration ---------------------------------------------------
    def add_message_listener(self, path_prefix: str, listener: MessageListener) -> None:
        self._message_listeners.append((path_prefix, listener))

    def add_data_listener(self, path_prefix: str, listener: DataListener) -> None:
        self._data_listeners.append((path_prefix, listener))

    # -- delivery (called by the link) ---------------------------------------------
    def deliver_message(self, event: MessageEvent) -> int:
        matched = 0
        for prefix, listener in list(self._message_listeners):
            if event.path.startswith(prefix):
                listener(event)
                matched += 1
        return matched

    def deliver_data(self, item: DataItem) -> None:
        self._data_items[item.path] = item
        for prefix, listener in list(self._data_listeners):
            if item.path.startswith(prefix):
                listener(item)

    def get_data_item(self, path: str) -> Optional[DataItem]:
        return self._data_items.get(path)

    def data_items(self) -> List[DataItem]:
        return sorted(self._data_items.values(), key=lambda item: item.path)


class BluetoothLink:
    """A point-to-point link between a phone node and a watch node."""

    def __init__(
        self,
        a: WearableNode,
        b: WearableNode,
        latency_ms: float = 40.0,
        compat: Optional[CompatMatrix] = None,
    ) -> None:
        if a.node_id == b.node_id:
            raise ValueError("cannot link a node to itself")
        self.a = a
        self.b = b
        self.latency_ms = latency_ms
        #: Pinned API levels of this pair (``None`` = matched pair).
        self.compat = compat
        self.connected = True
        self.messages_carried = 0
        a.link = self
        b.link = self

    def peer_of(self, node: WearableNode) -> WearableNode:
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node.node_id} is not an endpoint of this link")

    def disconnect(self) -> None:
        self.connected = False

    def reconnect(self) -> None:
        self.connected = True


class MessageClient:
    """MessageAPI bound to one node."""

    def __init__(self, node: WearableNode) -> None:
        self._node = node

    def connected_nodes(self) -> List[NodeId]:
        link = self._node.link
        if link is None or not link.connected:
            return []
        return [link.peer_of(self._node).node_id]

    def send_message(self, target: NodeId, path: str, payload: bytes) -> int:
        """Send; returns a Wearable API status code."""
        if not path.startswith("/"):
            raise IllegalStateException(f"MessageAPI path must start with '/': {path!r}")
        link = self._node.link
        if link is None or not link.connected:
            return ERROR_DISCONNECTED
        peer = link.peer_of(self._node)
        if peer.node_id != target:
            return ERROR_UNKNOWN_NODE
        self._node.clock.sleep(link.latency_ms)
        link.messages_carried += 1
        peer.deliver_message(
            MessageEvent(
                source_node=self._node.node_id,
                path=path,
                payload=payload,
                time_ms=self._node.clock.now_ms(),
            )
        )
        return SUCCESS

    def send_request(self, target: NodeId, path: str, payload: bytes) -> int:
        """Request/ack messaging (Wear 2.0 ``sendRequest``): version-gated.

        On a skewed pair the method does not exist on the older half, so
        the gate raises :class:`~repro.faults.errors.CompatMismatchError`
        before any traffic moves.
        """
        link = self._node.link
        require_api(
            link.compat if link is not None else None,
            "MessageClient.sendRequest",
            API_SEND_REQUEST,
        )
        return self.send_message(target, path, payload)


class DataClient:
    """DataAPI bound to one node: writes replicate to the peer."""

    def __init__(self, node: WearableNode) -> None:
        self._node = node

    def put_data_item(self, path: str, data: Dict[str, object]) -> int:
        if not path.startswith("/"):
            raise IllegalStateException(f"DataAPI path must start with '/': {path!r}")
        item = DataItem(
            path=path,
            data=dict(data),
            time_ms=self._node.clock.now_ms(),
            source_node=self._node.node_id,
        )
        self._node.deliver_data(item)
        link = self._node.link
        if link is not None and link.connected:
            if not path.startswith(HARNESS_PATH_PREFIX):
                plane = self._node.runtime.faults
                if plane.armed and plane.take_compat_delta(self._node.clock):
                    # Behavioral delta: the skewed peer rejects the newer
                    # serialization.  The local write sticks, replication
                    # is dropped -- the caller sees a disconnected-style
                    # status, exactly how the real API surfaces it.
                    return ERROR_DISCONNECTED
            self._node.clock.sleep(link.latency_ms)
            link.peer_of(self._node).deliver_data(item)
            return SUCCESS
        return ERROR_DISCONNECTED

    def get_data_item(self, path: str) -> Optional[DataItem]:
        return self._node.get_data_item(path)
