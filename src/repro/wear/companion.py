"""Two-part apps: wearable components with phone-side companions.

The paper's second threat to validity: "while most AW apps are two-part,
with a mobile device and a wearable component, we have ignored the
inter-device interactions and focused only on the wearable components.
Our future work will focus on addressing these concerns."

This module is that future work.  It models the standard two-part pattern:

* the **wear side** publishes state snapshots over the DataAPI from a sync
  service (:class:`WearSyncPublisher`) -- and, crucially, a crash of the
  publishing process can leave a *partial snapshot* behind, exactly the way
  a real app dying mid-`putDataItem` ships a half-built data map;
* the **phone side** (:class:`CompanionApp`) listens on the app's data path
  and consumes snapshots with its own input-validation quality -- a robust
  companion rejects malformed snapshots and logs, a fragile one
  dereferences the missing field and crashes *on the phone*.

:func:`run_companion_study` then measures cross-device error propagation:
fuzz the wearable side with QGJ while the companions listen, and count how
many phone-side failures the watch-side corruption caused.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.android.jtypes import NullPointerException, frame
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import FuzzConfig, FuzzerLibrary
from repro.wear.device import PhoneDevice, WearDevice
from repro.wear.node import DataClient, DataItem

#: DataAPI path prefix used by companion links.
COMPANION_PATH_PREFIX = "/companion/"

#: Snapshot fields every well-formed update carries.
REQUIRED_FIELDS = ("sequence", "status", "payload")


def companion_path(wear_package: str) -> str:
    return COMPANION_PATH_PREFIX + wear_package


class WearSyncPublisher:
    """Wear-side DataAPI publisher tied to one app's process health.

    Publishes a monotonically numbered snapshot per call.  If the app's
    process died since the last publish (QGJ crashed it), the next snapshot
    is *partial*: the crash interrupted serialisation, so a required field
    is missing -- the cross-device corruption vector.
    """

    def __init__(self, watch: WearDevice, wear_package: str) -> None:
        self._watch = watch
        self.wear_package = wear_package
        self._data_client = DataClient(watch.node)
        self._sequence = 0
        self._crashes_total = 0
        self._crashes_seen = 0
        # Observe our own process's deaths through the activity manager's
        # health hooks (the same channel the system server uses).
        watch.activity_manager.add_health_hooks(self)

    # -- SystemHealthHooks protocol -------------------------------------------
    def on_app_crash(self, process, info, throwable) -> None:
        if info.package == self.wear_package:
            self._crashes_total += 1

    def on_app_anr(self, process, info, reason) -> None:
        """ANRs stall the publisher but do not corrupt snapshots."""

    def on_start_failure(self, info, throwable) -> None:
        """Start failures never reach the publisher."""

    def publish(self) -> Dict[str, object]:
        """Publish the next snapshot; returns what was sent."""
        self._sequence += 1
        snapshot: Dict[str, object] = {
            "sequence": self._sequence,
            "status": "ok",
            "payload": f"steps={100 * self._sequence}",
        }
        if self._crashes_total > self._crashes_seen:
            # The publisher process died mid-cycle; the snapshot that makes
            # it out is truncated.
            self._crashes_seen = self._crashes_total
            snapshot.pop("payload")
            snapshot["status"] = None
        self._data_client.put_data_item(companion_path(self.wear_package), snapshot)
        return snapshot


@dataclasses.dataclass
class CompanionStats:
    """Phone-side accounting for one companion app."""

    wear_package: str
    snapshots_received: int = 0
    malformed_received: int = 0
    handled_rejections: int = 0
    crashes: int = 0


class CompanionApp:
    """The phone-side half of a two-part app.

    ``robust=True`` validates snapshots and logs rejects; ``robust=False``
    dereferences fields unconditionally and dies on partial snapshots --
    the propagation failure mode the paper's future work asks about.
    """

    def __init__(self, phone: PhoneDevice, wear_package: str, robust: bool = True) -> None:
        self.phone = phone
        self.stats = CompanionStats(wear_package=wear_package)
        self.robust = robust
        self._package = wear_package + ".companion"
        phone.node.add_data_listener(companion_path(wear_package), self._on_data)

    def _on_data(self, item: DataItem) -> None:
        self.stats.snapshots_received += 1
        missing = [field for field in REQUIRED_FIELDS if item.data.get(field) is None]
        if not missing:
            return
        self.stats.malformed_received += 1
        exc = NullPointerException(
            f"snapshot field {missing[0]!r} was null (partial sync from watch)"
        )
        exc.frames = [frame(self._package + ".SyncReceiver", "onDataChanged", 58)]
        if self.robust:
            self.stats.handled_rejections += 1
            self.phone.logcat.handled_exception(
                "Companion", 0, exc, context="rejected partial snapshot"
            )
            return
        self.stats.crashes += 1
        self.phone.logcat.fatal_exception(self._package, 0, exc)


@dataclasses.dataclass
class CompanionStudyResult:
    """Outcome of one cross-device propagation experiment."""

    stats: List[CompanionStats]
    wear_crashes: int

    @property
    def phone_crashes(self) -> int:
        return sum(s.crashes for s in self.stats)

    @property
    def malformed_snapshots(self) -> int:
        return sum(s.malformed_received for s in self.stats)

    @property
    def propagation_rate(self) -> float:
        """Fraction of watch-side crashes that corrupted a phone snapshot."""
        if self.wear_crashes == 0:
            return 0.0
        return self.malformed_snapshots / self.wear_crashes

    def render(self) -> str:
        lines = [
            "CROSS-DEVICE PROPAGATION STUDY",
            "-" * 60,
            f"watch-side crashes during fuzzing: {self.wear_crashes}",
            f"partial snapshots reaching the phone: {self.malformed_snapshots}",
            f"phone-side companion crashes: {self.phone_crashes}",
            f"crash -> corrupt-sync propagation rate: {self.propagation_rate:.1%}",
        ]
        for stats in self.stats:
            lines.append(
                f"  {stats.wear_package}: {stats.snapshots_received} snapshots, "
                f"{stats.malformed_received} malformed, "
                f"{stats.handled_rejections} rejected, {stats.crashes} crashes"
            )
        return "\n".join(lines)


def run_companion_study(
    watch: WearDevice,
    phone: PhoneDevice,
    wear_packages: Sequence[str],
    robust_companions: bool = True,
    campaign: Campaign = Campaign.B,
    config: Optional[FuzzConfig] = None,
    publish_every: int = 25,
) -> CompanionStudyResult:
    """Fuzz the wear side while phone companions consume the sync stream.

    Interleaves QGJ injections with periodic DataAPI publishes (real
    two-part apps sync on a timer), so watch-side crashes genuinely race
    with synchronisation.
    """
    if config is None:
        config = FuzzConfig(max_intents_per_component=publish_every * 4)
    publishers = [WearSyncPublisher(watch, package) for package in wear_packages]
    companions = [
        CompanionApp(phone, package, robust=robust_companions)
        for package in wear_packages
    ]
    fuzzer = FuzzerLibrary(watch)
    wear_crashes = 0
    for publisher in publishers:
        package_info = watch.packages.get_package(publisher.wear_package)
        if package_info is None:
            raise ValueError(f"not installed on watch: {publisher.wear_package}")
        for component in package_info.components:
            result = fuzzer.fuzz_component(component, campaign, config)
            wear_crashes += result.crashes_seen
            publisher.publish()
            if result.rebooted:
                break
    return CompanionStudyResult(
        stats=[companion.stats for companion in companions],
        wear_crashes=wear_crashes,
    )
