"""The Google Fit API service.

The paper's health/fitness category is defined by this dependency:

    "In most cases, these apps interact with the Google Fit API to access
    the sensors.  This dependency could mean that Health/Fitness apps are
    susceptible to propagation errors from the Google Fit API, a hypothesis
    that we verify through our experiments."

This module is that propagation channel.  ``GoogleFitService`` sits between
health apps and the native :class:`~repro.android.sensor.SensorService`:

* apps open recording *sessions* (with the real API's state rules --
  starting a started session raises ``IllegalStateException``);
* reads subscribe through the sensor service, so a dead sensor service
  surfaces to every Fit client as ``DeadObjectException``;
* history queries validate their arguments the way the real client library
  does (nulls → NPE, bad ranges → IAE).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.android.clock import Clock
from repro.android.jtypes import (
    DeadObjectException,
    IllegalArgumentException,
    IllegalStateException,
    NullPointerException,
)
from repro.android.sensor import (
    TYPE_HEART_RATE,
    TYPE_STEP_COUNTER,
    SensorService,
)

#: Fitness data types (subset of the Fit API's).
DATA_TYPE_STEP_COUNT = "com.google.step_count.delta"
DATA_TYPE_HEART_RATE = "com.google.heart_rate.bpm"
DATA_TYPE_CALORIES = "com.google.calories.expended"
DATA_TYPE_DISTANCE = "com.google.distance.delta"

ALL_DATA_TYPES = (
    DATA_TYPE_STEP_COUNT,
    DATA_TYPE_HEART_RATE,
    DATA_TYPE_CALORIES,
    DATA_TYPE_DISTANCE,
)

_SENSOR_BACKED = {
    DATA_TYPE_STEP_COUNT: TYPE_STEP_COUNTER,
    DATA_TYPE_HEART_RATE: TYPE_HEART_RATE,
}


@dataclasses.dataclass
class FitSession:
    """One workout recording session."""

    session_id: str
    package: str
    activity_type: str
    start_ms: float
    end_ms: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.end_ms is None


@dataclasses.dataclass(frozen=True)
class DataPoint:
    data_type: str
    time_ms: float
    value: float


class GoogleFitService:
    """The device-wide Fit service (``context.get_system_service("fit")``
    hands apps a per-package :class:`GoogleFitClient` view of it)."""

    def __init__(self, clock: Clock, sensor_service: SensorService) -> None:
        self._clock = clock
        self._sensors = sensor_service
        self._sessions: Dict[str, FitSession] = {}
        self._history: List[DataPoint] = []
        self._session_seq = 0

    # -- sessions -----------------------------------------------------------------
    def start_session(self, package: str, activity_type: Optional[str]) -> FitSession:
        if activity_type is None:
            raise NullPointerException("activityType == null")
        if not activity_type:
            raise IllegalArgumentException("activityType must not be empty")
        existing = self._active_session_of(package)
        if existing is not None:
            raise IllegalStateException(
                f"session {existing.session_id} already started for {package}"
            )
        self._ensure_sensors()
        self._session_seq += 1
        session = FitSession(
            session_id=f"fit-session-{self._session_seq}",
            package=package,
            activity_type=activity_type,
            start_ms=self._clock.now_ms(),
        )
        self._sessions[session.session_id] = session
        return session

    def stop_session(self, package: str) -> FitSession:
        session = self._active_session_of(package)
        if session is None:
            raise IllegalStateException(f"no active session for {package}")
        session.end_ms = self._clock.now_ms()
        return session

    def _active_session_of(self, package: str) -> Optional[FitSession]:
        for session in self._sessions.values():
            if session.package == package and session.active:
                return session
        return None

    def sessions_of(self, package: str) -> List[FitSession]:
        return [s for s in self._sessions.values() if s.package == package]

    # -- recording / history --------------------------------------------------------
    def subscribe(self, package: str, data_type: str) -> None:
        """Subscribe to live recording of *data_type*."""
        if data_type is None:
            raise NullPointerException("dataType == null")
        if data_type not in ALL_DATA_TYPES:
            raise IllegalArgumentException(f"unknown data type: {data_type}")
        sensor_type = _SENSOR_BACKED.get(data_type)
        if sensor_type is not None:
            self._ensure_sensors()
            self._sensors.register_listener(package, sensor_type)

    def insert(self, point: DataPoint) -> None:
        if point.data_type not in ALL_DATA_TYPES:
            raise IllegalArgumentException(f"unknown data type: {point.data_type}")
        self._history.append(point)

    def read_history(
        self, data_type: str, start_ms: float, end_ms: float
    ) -> List[DataPoint]:
        if data_type is None:
            raise NullPointerException("dataType == null")
        if data_type not in ALL_DATA_TYPES:
            raise IllegalArgumentException(f"unknown data type: {data_type}")
        if end_ms < start_ms:
            raise IllegalArgumentException(
                f"invalid time range: end {end_ms} < start {start_ms}"
            )
        return [
            p
            for p in self._history
            if p.data_type == data_type and start_ms <= p.time_ms <= end_ms
        ]

    # -- propagation --------------------------------------------------------------
    def _ensure_sensors(self) -> None:
        if not self._sensors.alive:
            raise DeadObjectException(
                "Google Fit lost its connection to SensorService"
            )

    def reset(self) -> None:
        """Post-reboot reset (history persists, sessions do not)."""
        for session in self._sessions.values():
            if session.active:
                session.end_ms = self._clock.now_ms()


class GoogleFitClient:
    """Per-package facade over :class:`GoogleFitService`."""

    def __init__(self, service: GoogleFitService, package: str) -> None:
        self._service = service
        self._package = package

    def start_session(self, activity_type: Optional[str]) -> FitSession:
        return self._service.start_session(self._package, activity_type)

    def stop_session(self) -> FitSession:
        return self._service.stop_session(self._package)

    def subscribe(self, data_type: str) -> None:
        self._service.subscribe(self._package, data_type)

    def read_daily_steps(self) -> int:
        now = self._service._clock.now_ms()
        points = self._service.read_history(DATA_TYPE_STEP_COUNT, now - 86_400_000, now)
        return int(sum(p.value for p in points))
