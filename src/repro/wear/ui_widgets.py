"""Wear UI widgets, including the deprecated ``GridViewPager``.

The paper highlights one crash worth its own subsection:

    "a crash due to ArithmeticException is worth highlighting […] a 'divide
    by zero' operation was reported on an AW class GridViewPager.  This
    Layout Manager class, which allows navigation in both axes, was
    deprecated in AW 2.0 […] This finding indicates the presence of errors
    in Android Wear ecosystem due to the lack of migration to the AW 2.0
    specification of some applications."

:class:`GridViewPager` reproduces that defect mechanically: page geometry is
computed with integer division by the adapter's column count, and an adapter
that reports zero columns for a row -- which happens when a malformed intent
leaves the backing data unpopulated -- divides by zero.

The module also carries the notification stream and a minimal watch face,
because Wear's UI is "centered on notifications [and] watch faces".
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, List, Optional, Tuple

from repro.android.jtypes import (
    ArithmeticException,
    IndexOutOfBoundsException,
    NullPointerException,
    frame,
)


class GridPagerAdapter:
    """Adapter feeding a :class:`GridViewPager` its 2-D page grid."""

    def __init__(self, pages: List[List[str]]) -> None:
        self._pages = pages

    def row_count(self) -> int:
        return len(self._pages)

    def column_count(self, row: int) -> int:
        if not 0 <= row < len(self._pages):
            raise IndexOutOfBoundsException(f"row {row} out of {len(self._pages)}")
        return len(self._pages[row])

    def page(self, row: int, column: int) -> str:
        columns = self.column_count(row)
        if not 0 <= column < columns:
            raise IndexOutOfBoundsException(f"column {column} out of {columns}")
        return self._pages[row][column]


class GridViewPager:
    """Deprecated 2-axis pager (AW 1.x), kept for un-migrated apps.

    Instantiating it emits a ``DeprecationWarning`` mirroring the AW 2.0
    deprecation notice; using it with an adapter that reports zero columns
    raises ``java.lang.ArithmeticException: divide by zero`` with the frame
    inside the support library, matching the study's observed crash.
    """

    def __init__(self, adapter: Optional[GridPagerAdapter]) -> None:
        warnings.warn(
            "GridViewPager was deprecated in Android Wear 2.0; "
            "horizontal paging is not encouraged anymore",
            DeprecationWarning,
            stacklevel=2,
        )
        if adapter is None:
            raise NullPointerException("adapter == null")
        self._adapter = adapter
        self.current_row = 0
        self.current_column = 0

    def page_for_scroll_offset(self, row: int, scroll_offset_px: int, page_width_px: int = 320) -> str:
        """Map a horizontal scroll offset to a page -- the divide-by-zero site."""
        columns = self._adapter.column_count(row)
        # Faithful to the defect: no zero-guard before the modulo.
        try:
            column = (scroll_offset_px // page_width_px) % columns
        except ZeroDivisionError:
            exc = ArithmeticException("divide by zero")
            exc.frames = [
                frame(
                    "android.support.wearable.view.GridViewPager",
                    "pageForScrollOffset",
                    1093,
                ),
            ]
            raise exc
        return self._adapter.page(row, column)

    def set_current_item(self, row: int, column: int) -> str:
        page = self._adapter.page(row, column)
        self.current_row = row
        self.current_column = column
        return page


@dataclasses.dataclass
class Notification:
    """One entry in the wearable notification stream."""

    package: str
    title: str
    text: str
    ongoing: bool = False


class NotificationStream:
    """The stream UI: post, dismiss, and enumerate notifications."""

    def __init__(self) -> None:
        self._notifications: Dict[Tuple[str, str], Notification] = {}

    def post(self, notification: Notification) -> None:
        if notification.title is None:
            raise NullPointerException("notification title == null")
        self._notifications[(notification.package, notification.title)] = notification

    def dismiss(self, package: str, title: str) -> bool:
        return self._notifications.pop((package, title), None) is not None

    def dismiss_all(self, package: str) -> int:
        keys = [k for k in self._notifications if k[0] == package]
        for key in keys:
            del self._notifications[key]
        return len(keys)

    def active(self) -> List[Notification]:
        return list(self._notifications.values())

    def __len__(self) -> int:
        return len(self._notifications)


class WatchFace:
    """A minimal watch face that renders complications."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._complication_values: Dict[int, str] = {}

    def update_complication(self, slot: int, value: Optional[str]) -> None:
        if value is None:
            raise NullPointerException(f"complication value for slot {slot} == null")
        self._complication_values[slot] = value

    def render(self, time_text: str) -> str:
        slots = " ".join(
            f"[{slot}:{value}]" for slot, value in sorted(self._complication_values.items())
        )
        return f"{self.name} {time_text} {slots}".strip()
