"""The API-compatibility plane: version gates for a skewed phone/wear pair.

Liu et al. (*Automatically Detecting API-induced Compatibility Issues in
Android Apps*) show that version skew between a device pair is a failure
dimension of its own: a call that works on one half simply does not exist
on the other.  This module pins that dimension onto the wearable network:
a :class:`~repro.faults.plan.CompatMatrix` (carried on the
:class:`~repro.faults.plan.FaultPlan`, so it is part of the fingerprint and
shard re-seeding) pins the phone and wear API levels of one pair, and
:func:`require_api` makes every version-gated call fail deterministically
with :class:`~repro.faults.errors.CompatMismatchError` -- a
``NoSuchMethodError``-style throwable the retry machinery deliberately does
NOT treat as transient (no amount of retrying grows a method onto the older
half).

Two manifestations:

* **missing method** -- version-gated entry points (:data:`API_SEND_REQUEST`
  gates ``MessageClient.send_request``; the seeded ``COMPAT_MISMATCH``
  stream surfaces the same class of failure at the activity-manager
  boundary);
* **behavioral delta** -- ``DataClient.put_data_item`` replication to the
  peer silently degrades for app data paths (never the QGJ harness's own
  ``/qgj/`` protocol -- both halves of the tool ship together).
"""

from __future__ import annotations

from typing import Optional

from repro.faults.errors import CompatMismatchError
from repro.faults.plan import BASE_WEAR_API, CompatMatrix

__all__ = [
    "API_SEND_REQUEST",
    "BASE_WEAR_API",
    "CompatMatrix",
    "CompatMismatchError",
    "require_api",
]

#: ``MessageClient.sendRequest`` (request/ack messaging) ships with the
#: Wear 2.0 / API 25 SDK -- any skew below it loses the method.
API_SEND_REQUEST = BASE_WEAR_API


def require_api(
    matrix: Optional[CompatMatrix], feature: str, api_level: int
) -> None:
    """Raise unless the *pair* (its older half) has *api_level*.

    ``None`` means an unpinned, matched pair: every gate passes, so a run
    with no matrix is byte-identical to one with a zero-skew matrix.
    """
    if matrix is None:
        return
    if matrix.effective_api < api_level:
        raise CompatMismatchError(feature, api_level, matrix.effective_api)
