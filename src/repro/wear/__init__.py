"""The Android Wear layer over the base Android substrate.

Pairing, the MessageAPI/DataAPI transport, ambient mode, the Google Fit
service, watch-face complications, and the wear UI widgets (including the
deprecated ``GridViewPager`` whose divide-by-zero defect the paper caught).
"""

from repro.wear.ambient import AmbientService, DisplayState
from repro.wear.companion import (
    CompanionApp,
    CompanionStats,
    CompanionStudyResult,
    WearSyncPublisher,
    run_companion_study,
)
from repro.wear.complications import (
    ACTION_ALL_APP,
    EXTRA_PROVIDER_INFO,
    ComplicationManager,
    ComplicationProviderInfo,
    ComplicationType,
    provider_info_from_intent,
)
from repro.wear.device import PhoneDevice, WearDevice, pair
from repro.wear.fit import (
    DATA_TYPE_HEART_RATE,
    DATA_TYPE_STEP_COUNT,
    DataPoint,
    FitSession,
    GoogleFitClient,
    GoogleFitService,
)
from repro.wear.node import (
    BluetoothLink,
    DataClient,
    DataItem,
    MessageClient,
    MessageEvent,
    NodeId,
    WearableNode,
)
from repro.wear.ui_widgets import (
    GridPagerAdapter,
    GridViewPager,
    Notification,
    NotificationStream,
    WatchFace,
)

__all__ = [
    "ACTION_ALL_APP",
    "AmbientService",
    "BluetoothLink",
    "CompanionApp",
    "CompanionStats",
    "CompanionStudyResult",
    "ComplicationManager",
    "ComplicationProviderInfo",
    "ComplicationType",
    "DATA_TYPE_HEART_RATE",
    "DATA_TYPE_STEP_COUNT",
    "DataClient",
    "DataItem",
    "DataPoint",
    "DisplayState",
    "EXTRA_PROVIDER_INFO",
    "FitSession",
    "GoogleFitClient",
    "GoogleFitService",
    "GridPagerAdapter",
    "GridViewPager",
    "MessageClient",
    "MessageEvent",
    "NodeId",
    "Notification",
    "NotificationStream",
    "PhoneDevice",
    "WatchFace",
    "WearDevice",
    "WearSyncPublisher",
    "WearableNode",
    "run_companion_study",
    "pair",
    "provider_info_from_intent",
]
