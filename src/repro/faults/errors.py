"""Infrastructure-fault error types.

These model *environment* failures -- the transport between the operator (or
QGJ) and the device under test -- as opposed to the app-level outcomes the
study classifies.  The distinction matters: the paper's Tables II-V count
component behaviour, and an adb session drop or a binder transport error
must never be folded into those distributions.  The retry/quarantine
machinery in :mod:`repro.faults.retry` and :mod:`repro.faults.quarantine`
keys on :data:`TRANSIENT_ERRORS`.
"""

from __future__ import annotations

from repro.android.jtypes import DeadObjectException, TransactionTooLargeException


class InfrastructureError(Exception):
    """Base class for environment (non-app) failures."""


class AdbSessionDropped(InfrastructureError):
    """The adb session to the device was lost (cable, Bluetooth, reboot).

    The paper's operators hit exactly this: a device reboot mid-campaign
    drops the session and "the operator resumes with the next app".  A
    dropped session is transient -- the next command re-establishes it.
    """


class CampaignKilled(InfrastructureError):
    """The campaign host died mid-run (simulated crash for resume testing)."""

    def __init__(self, injections: int) -> None:
        super().__init__(f"campaign host killed after {injections} injections")
        self.injections = injections


#: Exception classes the retry policy treats as transient transport faults.
TRANSIENT_ERRORS = (
    AdbSessionDropped,
    DeadObjectException,
    TransactionTooLargeException,
)
