"""Infrastructure-fault error types.

These model *environment* failures -- the transport between the operator (or
QGJ) and the device under test -- as opposed to the app-level outcomes the
study classifies.  The distinction matters: the paper's Tables II-V count
component behaviour, and an adb session drop or a binder transport error
must never be folded into those distributions.  The retry/quarantine
machinery in :mod:`repro.faults.retry` and :mod:`repro.faults.quarantine`
keys on :data:`TRANSIENT_ERRORS`.
"""

from __future__ import annotations

from repro.android.jtypes import (
    DeadObjectException,
    NoSuchMethodError,
    TransactionTooLargeException,
)


class InfrastructureError(Exception):
    """Base class for environment (non-app) failures."""


class AdbSessionDropped(InfrastructureError):
    """The adb session to the device was lost (cable, Bluetooth, reboot).

    The paper's operators hit exactly this: a device reboot mid-campaign
    drops the session and "the operator resumes with the next app".  A
    dropped session is transient -- the next command re-establishes it.
    """


class CampaignKilled(InfrastructureError):
    """The campaign host died mid-run (simulated crash for resume testing)."""

    def __init__(self, injections: int) -> None:
        super().__init__(f"campaign host killed after {injections} injections")
        self.injections = injections


class ServiceUnavailable(DeadObjectException, InfrastructureError):
    """A system service is inside an unavailability window.

    Raised at the injection boundary while a ``SERVICE_OUTAGE`` window is
    open for the named service.  Transient by construction: the window
    closes on the virtual clock, so a retry that outlasts it succeeds.
    """

    def __init__(self, service: str, until_ms: float) -> None:
        super().__init__(f"service {service} unavailable until t={until_ms:g}ms")
        self.service = service
        self.until_ms = until_ms


class ServiceRestarted(DeadObjectException, InfrastructureError):
    """system_server bounced; the caller's binder to it is dead.

    The restart itself already happened by the time this is raised -- every
    service has re-registered -- so the very next call succeeds.  Transient.
    """

    def __init__(self, service: str) -> None:
        super().__init__(f"system_server restarted; binder to {service} died")
        self.service = service


class StaleBinderReply(DeadObjectException, InfrastructureError):
    """A service returned a corrupted/stale parcel (``SERVICE_CORRUPT``).

    Modeled after the package manager shipping a mangled ``ComponentInfo``:
    the caller cannot use the reply and must re-query.  Transient.
    """

    def __init__(self, service: str, detail: str) -> None:
        super().__init__(f"stale reply from {service}: {detail}")
        self.service = service
        self.detail = detail


class CompatMismatchError(NoSuchMethodError, InfrastructureError):
    """A version-gated call failed under a skewed phone/wear pair.

    ``NoSuchMethodError``-style: the method simply does not exist on the
    older half of the pair, so no amount of retrying helps.  Deliberately
    NOT in :data:`TRANSIENT_ERRORS` -- the fuzzer classifies it as an
    infrastructure outcome (never a paper-table app outcome) and lets the
    per-package quarantine absorb a persistently mismatched pair.
    """

    def __init__(self, feature: str, required_api: int, effective_api: int) -> None:
        super().__init__(
            f"{feature} requires API {required_api}, pair pinned at {effective_api}"
        )
        self.feature = feature
        self.required_api = required_api
        self.effective_api = effective_api


#: Exception classes the retry policy treats as transient transport faults.
#: The service-fault family (ServiceUnavailable / ServiceRestarted /
#: StaleBinderReply) subclasses DeadObjectException and is therefore
#: transient without being listed; CompatMismatchError is deliberately not.
TRANSIENT_ERRORS = (
    AdbSessionDropped,
    DeadObjectException,
    TransactionTooLargeException,
)
