"""Retry with exponential backoff and seeded jitter, on the virtual clock.

Transient infrastructure faults (:data:`repro.faults.errors.TRANSIENT_ERRORS`)
are retried; everything else propagates untouched, so the study's app-level
outcome classes (``SecurityException``, ``ActivityNotFoundException``, and
the behaviours read back from logcat) are never absorbed by the harness.

The backoff schedule is a pure function of ``(policy, key)``:

* **monotone** -- each delay is at least the previous one (jitter is applied
  first, then a running maximum);
* **bounded** -- no delay exceeds ``max_delay_ms * (1 + jitter)``;
* **deterministic** -- identical seeds and keys yield identical schedules,
  which is what makes a faulty run replayable and a checkpoint resumable
  without carrying hidden RNG state.

All delays are *virtual* milliseconds: retrying sleeps the device clock, so
backoff interacts with ANR windows, aging decay, and the fault streams
exactly as wall-clock backoff would on hardware.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional, Tuple, TypeVar

from repro import telemetry
from repro.faults.errors import TRANSIENT_ERRORS
from repro.telemetry.metrics import RETRIES, RETRY_BACKOFF

T = TypeVar("T")

#: Upper bound on schedule length, a guard against misconfiguration.
MAX_ATTEMPTS_CAP = 16


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + seeded jitter for transient transport errors."""

    max_attempts: int = 4
    base_delay_ms: float = 50.0
    multiplier: float = 2.0
    max_delay_ms: float = 2_000.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.max_attempts <= MAX_ATTEMPTS_CAP:
            raise ValueError(
                f"max_attempts must be in [1, {MAX_ATTEMPTS_CAP}], got {self.max_attempts}"
            )
        if self.base_delay_ms <= 0 or self.max_delay_ms < self.base_delay_ms:
            raise ValueError(
                f"need 0 < base_delay_ms <= max_delay_ms, got "
                f"{self.base_delay_ms}/{self.max_delay_ms}"
            )
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def schedule(self, key: Tuple = ()) -> Tuple[float, ...]:
        """The backoff delays (virtual ms) between successive attempts.

        *key* salts the jitter so different call sites decorrelate while the
        whole schedule stays a pure function of ``(policy, key)``.
        """
        rng = random.Random(repr((self.seed, "backoff", key)))
        delays = []
        floor = 0.0
        for attempt in range(self.max_attempts - 1):
            delay = min(self.base_delay_ms * self.multiplier**attempt, self.max_delay_ms)
            delay *= 1.0 + self.jitter * rng.random()
            floor = max(floor, delay)
            delays.append(floor)
        return tuple(delays)

    def run(
        self,
        fn: Callable[[], T],
        clock,
        key: Tuple = (),
        on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
        telemetry_handle=None,
    ) -> T:
        """Call *fn*, retrying transient errors with backoff on *clock*.

        Raises the last transient error once attempts are exhausted; any
        non-transient exception propagates immediately.  *telemetry_handle*
        scopes the retry counters (a farm shard's handle); by default the
        process-wide handle is used.
        """
        delays = self.schedule(key)
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except TRANSIENT_ERRORS as exc:
                if attempt >= len(delays):
                    raise
                delay = delays[attempt]
                self._count_retry(exc, delay, telemetry_handle)
                if on_retry is not None:
                    on_retry(attempt, delay, exc)
                clock.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _count_retry(exc: BaseException, delay: float, telemetry_handle=None) -> None:
        t = telemetry_handle if telemetry_handle is not None else telemetry.get()
        if not t.enabled:
            return
        t.metrics.counter(
            RETRIES,
            "Transient transport errors retried by the QGJ harness, by class.",
            ("error",),
        ).labels(error=type(exc).__name__).inc()
        t.metrics.histogram(
            RETRY_BACKOFF,
            "Backoff slept before a retry (virtual ms).",
        ).observe(delay)
