"""The installed fault plane: hook entry points called from the simulator.

Mirrors the telemetry plane's discipline exactly: a process-wide handle
fetched with :func:`repro.faults.get`, guarded at every instrument site by
``plane.armed``.  With no plan installed the handle is a shared
:class:`NoopPlane` whose ``armed`` is ``False``, so the simulator pays one
attribute check per hook and nothing else -- zero behavior drift from seed.

Hook sites (all in the android layer):

* :meth:`FaultPlane.on_adb` -- ``adb.py``, entry of every adb command;
* :meth:`FaultPlane.on_transact` -- ``binder.py`` transactions and the
  activity manager's top-level dispatch boundary;
* :meth:`FaultPlane.on_process_table` -- ``process.py`` process lookup
  (where lmkd would run);
* logcat truncation rides on :meth:`FaultPlane.on_adb` (the loss is
  observed when the operator pulls the buffer).

Execution state is kept *per device clock* so paired devices (watch and
phone) each see an independent, deterministic schedule, and a checkpoint
snapshot can capture/adopt one device's stream mid-run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro import telemetry
from repro.android.jtypes import DeadObjectException, TransactionTooLargeException
from repro.faults.errors import AdbSessionDropped
from repro.faults.plan import (
    BINDER_TOO_LARGE,
    FaultEvent,
    FaultKind,
    FaultPlan,
    PlanExecution,
)
from repro.telemetry.metrics import FAULTS_INJECTED

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.android.clock import Clock
    from repro.android.device import Device
    from repro.android.process import ProcessTable

#: Fraction of the logcat ring discarded by one truncation fault.
LOGCAT_TRUNCATE_FRACTION = 0.5


def _count_fault(event: FaultEvent, clock: Optional["Clock"], handle=None) -> None:
    t = handle if handle is not None else telemetry.get()
    if not t.enabled:
        return
    t.metrics.counter(
        FAULTS_INJECTED,
        "Environment faults injected by the chaos plane, by kind.",
        ("kind",),
    ).labels(kind=event.kind.value).inc()
    if clock is not None:
        with t.tracer.span(
            "fault", clock=clock, kind=event.kind.value, param=event.param
        ):
            pass


class FaultPlane:
    """An armed fault plane executing one :class:`FaultPlan`."""

    armed = True

    def __init__(self, plan: FaultPlan, telemetry_handle=None) -> None:
        self.plan = plan
        self._executions: Dict[int, PlanExecution] = {}
        #: Strong refs so id() keys stay unique for the plane's lifetime.
        self._clocks: Dict[int, "Clock"] = {}
        #: Scoped telemetry for fault counters (a farm shard's handle);
        #: ``None`` falls back to the process-wide handle per event.
        self._telemetry = telemetry_handle

    # -- execution state ---------------------------------------------------------
    def execution_for(self, clock: "Clock") -> PlanExecution:
        execution = self._executions.get(id(clock))
        if execution is None:
            execution = PlanExecution(self.plan)
            self._executions[id(clock)] = execution
            self._clocks[id(clock)] = clock
        return execution

    def capture(self, clock: "Clock") -> PlanExecution:
        """The (picklable) schedule state for *clock*, for checkpointing."""
        return self.execution_for(clock)

    def adopt(self, clock: "Clock", execution: PlanExecution) -> None:
        """Install restored schedule state for *clock* (checkpoint resume)."""
        if execution.plan.fingerprint() != self.plan.fingerprint():
            raise ValueError(
                "cannot adopt execution state from a different fault plan: "
                f"{execution.plan.fingerprint()!r} != {self.plan.fingerprint()!r}"
            )
        self._executions[id(clock)] = execution
        self._clocks[id(clock)] = clock

    def fingerprint(self) -> str:
        return self.plan.fingerprint()

    # -- hooks -------------------------------------------------------------------
    def on_adb(self, device: "Device") -> None:
        """Called at the entry of every adb command.

        Applies due logcat truncations first (the data was lost *before*
        this pull), then raises if the session dropped.
        """
        clock = device.clock
        execution = self.execution_for(clock)
        now = clock.now_ms()
        for event in execution.take_due(FaultKind.LOGCAT_TRUNCATE, now):
            _count_fault(event, clock, self._telemetry)
            self._truncate_logcat(device)
        drops = execution.take_due(FaultKind.ADB_DROP, now, limit=1)
        if drops:
            _count_fault(drops[0], clock, self._telemetry)
            raise AdbSessionDropped(
                f"adb: device {device.name!r} not found (session dropped at "
                f"{drops[0].at_ms:.0f}ms)"
            )

    @staticmethod
    def _truncate_logcat(device: "Device") -> None:
        logcat = device.logcat
        drop = int(len(logcat) * LOGCAT_TRUNCATE_FRACTION)
        if drop:
            logcat.truncate_oldest(drop)

    def on_transact(self, clock: "Clock", descriptor: str) -> None:
        """Called before a binder transaction; raises on a due fault."""
        execution = self.execution_for(clock)
        due = execution.take_due(FaultKind.BINDER, clock.now_ms(), limit=1)
        if not due:
            return
        event = due[0]
        _count_fault(event, clock, self._telemetry)
        if event.param == BINDER_TOO_LARGE:
            raise TransactionTooLargeException(
                f"data parcel size exceeds binder buffer on {descriptor}"
            )
        raise DeadObjectException(
            f"Transaction failed on {descriptor}: remote process is dead"
        )

    def on_process_table(self, table: "ProcessTable") -> None:
        """Called on process lookup; reaps lmkd victims for due kills."""
        clock = table.clock
        execution = self.execution_for(clock)
        for event in execution.take_due(FaultKind.LMKD_KILL, clock.now_ms()):
            victims = sorted(
                (
                    p
                    for p in table.live_processes()
                    if not p.is_system and not p.is_native
                ),
                key=lambda p: p.name,
            )
            if not victims:
                continue
            _count_fault(event, clock, self._telemetry)
            victim = execution.victim_rng.choice(victims)
            table.lmkd_kill(victim)


class NoopPlane:
    """Disabled twin: every hook is free and injects nothing."""

    armed = False

    def on_adb(self, device: "Device") -> None:  # pragma: no cover - never called hot
        pass

    def on_transact(self, clock: "Clock", descriptor: str) -> None:  # pragma: no cover
        pass

    def on_process_table(self, table: "ProcessTable") -> None:  # pragma: no cover
        pass

    def fingerprint(self) -> str:
        return "none"

    def capture(self, clock: "Clock") -> None:
        return None

    def adopt(self, clock: "Clock", execution: Optional[PlanExecution]) -> None:
        if execution is not None:
            raise ValueError(
                "checkpoint was taken under a fault plan "
                f"({execution.plan.fingerprint()!r}); install the same plan "
                "before resuming"
            )


NOOP_PLANE = NoopPlane()
