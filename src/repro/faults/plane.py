"""The installed fault plane: hook entry points called from the simulator.

Mirrors the telemetry plane's discipline exactly: a process-wide handle
fetched with :func:`repro.faults.get`, guarded at every instrument site by
``plane.armed``.  With no plan installed the handle is a shared
:class:`NoopPlane` whose ``armed`` is ``False``, so the simulator pays one
attribute check per hook and nothing else -- zero behavior drift from seed.

Hook sites (all in the android layer):

* :meth:`FaultPlane.on_adb` -- ``adb.py``, entry of every adb command;
* :meth:`FaultPlane.on_transact` -- ``binder.py`` transactions and the
  activity manager's top-level dispatch boundary;
* :meth:`FaultPlane.on_process_table` -- ``process.py`` process lookup
  (where lmkd would run);
* logcat truncation rides on :meth:`FaultPlane.on_adb` (the loss is
  observed when the operator pulls the buffer);
* :meth:`FaultPlane.on_system_service` -- the activity manager's top-level
  dispatch boundary (service outages, system_server restarts, and
  missing-method compat mismatches manifest here);
* :meth:`FaultPlane.on_resolve` -- package-manager component resolution
  (stale ``ComponentInfo`` parcels);
* :meth:`FaultPlane.check_service` / :meth:`FaultPlane.take_corruption` --
  in-dispatch sensor-service health and listener-registration corruption;
* :meth:`FaultPlane.take_compat_delta` -- wear data-sync replication
  (behavioral delta under a skewed :class:`~repro.faults.plan.CompatMatrix`).

The plane raises the infrastructure error classes *on behalf of* the
android hook sites: the android layer never imports :mod:`repro.faults`
(its package ``__init__`` imports eagerly, which would cycle), it only
calls plane methods with plain service-name strings.

Execution state is kept *per device clock* so paired devices (watch and
phone) each see an independent, deterministic schedule, and a checkpoint
snapshot can capture/adopt one device's stream mid-run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro import telemetry
from repro.android.jtypes import DeadObjectException, TransactionTooLargeException
from repro.faults.errors import (
    AdbSessionDropped,
    CompatMismatchError,
    ServiceRestarted,
    ServiceUnavailable,
    StaleBinderReply,
)
from repro.faults.plan import (
    BASE_WEAR_API,
    BINDER_TOO_LARGE,
    COMPAT_MISSING_METHOD,
    CORRUPT_STALE_COMPONENT,
    FaultEvent,
    FaultKind,
    FaultPlan,
    PlanExecution,
)
from repro.faults.services import SERVICE_OUTAGE_WINDOW_MS
from repro.telemetry.metrics import (
    COMPAT_MISMATCHES,
    FAULTS_INJECTED,
    SERVICE_FAULTS_INJECTED,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.android.clock import Clock
    from repro.android.device import Device
    from repro.android.process import ProcessTable

#: Fraction of the logcat ring discarded by one truncation fault.
LOGCAT_TRUNCATE_FRACTION = 0.5

#: The framework entry point a pending ``missing_method`` compat mismatch
#: manifests on at each service boundary (the method the older half of a
#: skewed pair simply does not have).
COMPAT_GATED_FEATURES = {
    "activity": "ActivityManager.startRemoteActivity",
    "package": "PackageManager.getWearCapabilities",
    "sensor": "SensorManager.registerOffBodyListener",
}


def _count_fault(event: FaultEvent, clock: Optional["Clock"], handle=None) -> None:
    t = handle if handle is not None else telemetry.get()
    if not t.enabled:
        return
    t.metrics.counter(
        FAULTS_INJECTED,
        "Environment faults injected by the chaos plane, by kind.",
        ("kind",),
    ).labels(kind=event.kind.value).inc()
    if clock is not None:
        with t.tracer.span(
            "fault", clock=clock, kind=event.kind.value, param=event.param
        ):
            pass


def _count_service_fault(
    event: FaultEvent, clock: Optional["Clock"], handle=None
) -> None:
    t = handle if handle is not None else telemetry.get()
    if not t.enabled:
        return
    t.metrics.counter(
        SERVICE_FAULTS_INJECTED,
        "OS-service faults injected by the chaos plane, by kind.",
        ("kind",),
    ).labels(kind=event.kind.value).inc()
    if clock is not None:
        with t.tracer.span(
            "fault", clock=clock, kind=event.kind.value, param=event.param
        ):
            pass


def _count_compat(event: FaultEvent, clock: Optional["Clock"], handle=None) -> None:
    t = handle if handle is not None else telemetry.get()
    if not t.enabled:
        return
    t.metrics.counter(
        COMPAT_MISMATCHES,
        "Version-gated manifestations under a skewed phone/wear pair.",
    ).inc()
    if clock is not None:
        with t.tracer.span(
            "fault", clock=clock, kind=event.kind.value, param=event.param
        ):
            pass


class FaultPlane:
    """An armed fault plane executing one :class:`FaultPlan`."""

    armed = True

    def __init__(self, plan: FaultPlan, telemetry_handle=None) -> None:
        self.plan = plan
        self._executions: Dict[int, PlanExecution] = {}
        #: Strong refs so id() keys stay unique for the plane's lifetime.
        self._clocks: Dict[int, "Clock"] = {}
        #: Scoped telemetry for fault counters (a farm shard's handle);
        #: ``None`` falls back to the process-wide handle per event.
        self._telemetry = telemetry_handle

    # -- execution state ---------------------------------------------------------
    def execution_for(self, clock: "Clock") -> PlanExecution:
        execution = self._executions.get(id(clock))
        if execution is None:
            execution = PlanExecution(self.plan)
            self._executions[id(clock)] = execution
            self._clocks[id(clock)] = clock
        return execution

    def capture(self, clock: "Clock") -> PlanExecution:
        """The (picklable) schedule state for *clock*, for checkpointing."""
        return self.execution_for(clock)

    def adopt(self, clock: "Clock", execution: PlanExecution) -> None:
        """Install restored schedule state for *clock* (checkpoint resume)."""
        if execution.plan.fingerprint() != self.plan.fingerprint():
            raise ValueError(
                "cannot adopt execution state from a different fault plan: "
                f"{execution.plan.fingerprint()!r} != {self.plan.fingerprint()!r}"
            )
        self._executions[id(clock)] = execution
        self._clocks[id(clock)] = clock

    def fingerprint(self) -> str:
        return self.plan.fingerprint()

    # -- hooks -------------------------------------------------------------------
    def on_adb(self, device: "Device") -> None:
        """Called at the entry of every adb command.

        Applies due logcat truncations first (the data was lost *before*
        this pull), then raises if the session dropped.
        """
        clock = device.clock
        execution = self.execution_for(clock)
        now = clock.now_ms()
        for event in execution.take_due(FaultKind.LOGCAT_TRUNCATE, now):
            _count_fault(event, clock, self._telemetry)
            self._truncate_logcat(device)
        drops = execution.take_due(FaultKind.ADB_DROP, now, limit=1)
        if drops:
            _count_fault(drops[0], clock, self._telemetry)
            raise AdbSessionDropped(
                f"adb: device {device.name!r} not found (session dropped at "
                f"{drops[0].at_ms:.0f}ms)"
            )

    @staticmethod
    def _truncate_logcat(device: "Device") -> None:
        logcat = device.logcat
        drop = int(len(logcat) * LOGCAT_TRUNCATE_FRACTION)
        if drop:
            logcat.truncate_oldest(drop)

    def on_transact(self, clock: "Clock", descriptor: str) -> None:
        """Called before a binder transaction; raises on a due fault."""
        execution = self.execution_for(clock)
        due = execution.take_due(FaultKind.BINDER, clock.now_ms(), limit=1)
        if not due:
            return
        event = due[0]
        _count_fault(event, clock, self._telemetry)
        if event.param == BINDER_TOO_LARGE:
            raise TransactionTooLargeException(
                f"data parcel size exceeds binder buffer on {descriptor}"
            )
        raise DeadObjectException(
            f"Transaction failed on {descriptor}: remote process is dead"
        )

    def on_process_table(self, table: "ProcessTable") -> None:
        """Called on process lookup; reaps lmkd victims for due kills."""
        clock = table.clock
        execution = self.execution_for(clock)
        for event in execution.take_due(FaultKind.LMKD_KILL, clock.now_ms()):
            victims = sorted(
                (
                    p
                    for p in table.live_processes()
                    if not p.is_system and not p.is_native
                ),
                key=lambda p: p.name,
            )
            if not victims:
                continue
            _count_fault(event, clock, self._telemetry)
            victim = execution.victim_rng.choice(victims)
            table.lmkd_kill(victim)

    # -- OS-service hooks --------------------------------------------------------
    def _drain_outages(self, execution: PlanExecution, clock: "Clock") -> None:
        for event in execution.take_due(FaultKind.SERVICE_OUTAGE, clock.now_ms()):
            _count_service_fault(event, clock, self._telemetry)
            end = event.at_ms + SERVICE_OUTAGE_WINDOW_MS
            if end > execution.outages.get(event.param, 0.0):
                execution.outages[event.param] = end

    def _drain_corruptions(self, execution: PlanExecution, clock: "Clock") -> None:
        for event in execution.take_due(FaultKind.SERVICE_CORRUPT, clock.now_ms()):
            _count_service_fault(event, clock, self._telemetry)
            execution.pending_corruptions.append(event.param)

    def _drain_compat(self, execution: PlanExecution, clock: "Clock") -> None:
        compat = self.plan.compat
        skewed = compat is not None and compat.skew > 0
        for event in execution.take_due(FaultKind.COMPAT_MISMATCH, clock.now_ms()):
            if not skewed:
                # Matched pair: the stream stays wired but is inert -- events
                # drain silently and uncounted, so a zero-skew run is
                # byte-identical to a run with no matrix at all.
                continue
            _count_compat(event, clock, self._telemetry)
            if event.param == COMPAT_MISSING_METHOD:
                execution.pending_missing_method += 1
            else:
                execution.pending_deltas += 1

    def _check_window(
        self, execution: PlanExecution, clock: "Clock", service: str
    ) -> None:
        end = execution.outages.get(service)
        if end is None:
            return
        if clock.now_ms() < end:
            raise ServiceUnavailable(service, end)
        del execution.outages[service]

    def on_system_service(self, device: "Device", service: str) -> None:
        """Top-of-dispatch system-service boundary (activity/package managers).

        Applies a due system_server restart first (the whole server bounces,
        the caller's binder dies), then opens/enforces unavailability
        windows, then manifests a pending missing-method compat mismatch.
        """
        clock = device.clock
        execution = self.execution_for(clock)
        restarts = execution.take_due(FaultKind.SYSTEM_RESTART, clock.now_ms(), limit=1)
        if restarts:
            _count_service_fault(restarts[0], clock, self._telemetry)
            # The restart resets in-flight service state: open windows close
            # and unconsumed corrupted replies die with their services.
            execution.outages.clear()
            execution.pending_corruptions.clear()
            device.restart_system_server(
                f"fault plane: restart scheduled at {restarts[0].at_ms:.0f}ms"
            )
            raise ServiceRestarted(service)
        self._drain_outages(execution, clock)
        self._drain_corruptions(execution, clock)
        self._drain_compat(execution, clock)
        self._check_window(execution, clock, service)
        if execution.pending_missing_method:
            execution.pending_missing_method -= 1
            compat = self.plan.compat
            assert compat is not None  # only queued under a skewed matrix
            raise CompatMismatchError(
                COMPAT_GATED_FEATURES.get(service, service),
                BASE_WEAR_API,
                compat.effective_api,
            )

    def on_resolve(self, device: "Device") -> None:
        """Package-manager component resolution; stale parcels manifest here."""
        self.on_system_service(device, "package")
        execution = self.execution_for(device.clock)
        if CORRUPT_STALE_COMPONENT in execution.pending_corruptions:
            execution.pending_corruptions.remove(CORRUPT_STALE_COMPONENT)
            raise StaleBinderReply("package", "mangled ComponentInfo parcel")

    def check_service(self, clock: "Clock", service: str) -> None:
        """In-dispatch health check (sensor registration can happen at any
        dispatch depth, so it gets outage windows but never a restart --
        bouncing system_server mid-lifecycle would tear down the very
        dispatch that is executing)."""
        execution = self.execution_for(clock)
        self._drain_outages(execution, clock)
        self._check_window(execution, clock, service)

    def take_corruption(self, clock: "Clock", param: str) -> bool:
        """Consume one pending corrupted-reply manifestation of *param*."""
        execution = self.execution_for(clock)
        self._drain_corruptions(execution, clock)
        if param in execution.pending_corruptions:
            execution.pending_corruptions.remove(param)
            return True
        return False

    def take_compat_delta(self, clock: "Clock") -> bool:
        """Consume one pending messaging/sync behavioral delta."""
        execution = self.execution_for(clock)
        self._drain_compat(execution, clock)
        if execution.pending_deltas:
            execution.pending_deltas -= 1
            return True
        return False


class NoopPlane:
    """Disabled twin: every hook is free and injects nothing."""

    armed = False

    def on_adb(self, device: "Device") -> None:  # pragma: no cover - never called hot
        pass

    def on_transact(self, clock: "Clock", descriptor: str) -> None:  # pragma: no cover
        pass

    def on_process_table(self, table: "ProcessTable") -> None:  # pragma: no cover
        pass

    def on_system_service(self, device: "Device", service: str) -> None:  # pragma: no cover
        pass

    def on_resolve(self, device: "Device") -> None:  # pragma: no cover
        pass

    def check_service(self, clock: "Clock", service: str) -> None:  # pragma: no cover
        pass

    def take_corruption(self, clock: "Clock", param: str) -> bool:  # pragma: no cover
        return False

    def take_compat_delta(self, clock: "Clock") -> bool:  # pragma: no cover
        return False

    def fingerprint(self) -> str:
        return "none"

    def capture(self, clock: "Clock") -> None:
        return None

    def adopt(self, clock: "Clock", execution: Optional[PlanExecution]) -> None:
        if execution is not None:
            raise ValueError(
                "checkpoint was taken under a fault plan "
                f"({execution.plan.fingerprint()!r}); install the same plan "
                "before resuming"
            )


NOOP_PLANE = NoopPlane()
