"""OS-service fault profile: system_server chaos riding the fault plane.

The transport family (:mod:`repro.faults.plan`) models faults *between* the
operator and the device; this module holds the profile for faults *inside*
the OS, after Cotroneo et al.'s system-service fault dimensions:

* ``SERVICE_OUTAGE`` -- one service (activity / package / sensor) goes
  unavailable for :data:`SERVICE_OUTAGE_WINDOW_MS`; calls raise
  :class:`~repro.faults.errors.ServiceUnavailable` until the window closes.
* ``SERVICE_CORRUPT`` -- the next matching reply is corrupted: package
  manager resolution raises :class:`~repro.faults.errors.StaleBinderReply`,
  the sensor service silently drops or duplicates a listener registration.
* ``SYSTEM_RESTART`` -- system_server bounces in place (no reboot):
  every service restarts, listeners re-attach, and the caller whose
  transaction triggered the drain sees
  :class:`~repro.faults.errors.ServiceRestarted`.

:class:`ServiceFaultPlan` is sugar: it arms exactly these three streams on
a :class:`~repro.faults.plan.FaultPlan`, so the runner's
``--service-fault-seed`` flag can compose with (or stand alone from)
``--fault-seed`` without the caller hand-writing interval fields.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.faults.plan import CHAOS_INTERVALS_MS, FaultKind, FaultPlan

#: How long one SERVICE_OUTAGE keeps its service down (virtual ms).  The
#: default retry schedule (4 attempts, 50ms base, x2 backoff) sleeps ~350ms
#: cumulative, so retries usually -- but not always -- outlast a window:
#: most outages are absorbed as retries, a few surface as quarantine
#: pressure, exactly the transient-fault texture the study wants.
SERVICE_OUTAGE_WINDOW_MS = 400.0


@dataclasses.dataclass(frozen=True)
class ServiceFaultPlan:
    """Seeded profile for the three OS-service streams.

    ``None`` intervals fall back to the :data:`CHAOS_INTERVALS_MS` defaults;
    an explicit interval overrides.  ``apply`` layers the profile onto an
    existing transport plan (sharing its seed-derived streams per kind);
    ``plan`` builds a standalone plan with only the service streams armed.
    """

    seed: int = 0
    outage_every_ms: Optional[float] = None
    corrupt_every_ms: Optional[float] = None
    restart_every_ms: Optional[float] = None

    def apply(self, base: Optional[FaultPlan] = None) -> FaultPlan:
        """Arm the service streams on *base* (or a fresh plan of this seed)."""
        if base is None:
            base = FaultPlan(seed=self.seed)
        return dataclasses.replace(
            base,
            service_outage_every_ms=self.outage_every_ms
            or CHAOS_INTERVALS_MS[FaultKind.SERVICE_OUTAGE],
            service_corrupt_every_ms=self.corrupt_every_ms
            or CHAOS_INTERVALS_MS[FaultKind.SERVICE_CORRUPT],
            system_restart_every_ms=self.restart_every_ms
            or CHAOS_INTERVALS_MS[FaultKind.SYSTEM_RESTART],
        )

    def plan(self) -> FaultPlan:
        """A standalone plan with only the OS-service streams armed."""
        return self.apply(None)
