"""Crash-safe checkpoint journal: append-only JSONL plus a state snapshot.

HypoFuzz-style harnesses treat a long campaign as a resumable,
database-backed process rather than a one-shot run; this module is that
database, scaled to the simulator.  Two files:

* ``<journal>`` -- append-only JSONL.  First record is a header binding the
  run to its configuration and fault-plan fingerprint; each subsequent
  record marks one completed ``(package, campaign)`` segment with its
  serialized results.  Every append is flushed and fsynced, so after a kill
  the journal holds exactly the completed segments.  A torn final line
  (the crash landed mid-write) is dropped from the parse, with the
  recovered byte count noted on the returned header record; the owning
  writer's resume path additionally truncates it away (:meth:`repair`)
  before appending again, while readers leave the file untouched.
* ``<journal>.state`` -- a pickled snapshot of the full simulator state at
  the last completed segment boundary, written atomically (temp file,
  fsync, ``os.replace``).  Resume loads it and continues as if the kill
  never happened; because the simulation is deterministic on the virtual
  clock, the resumed run's remaining segments -- and therefore the final
  summary -- are identical to an uninterrupted run's.

The journal is the source of truth for *what completed*; the snapshot for
*where to continue from*.  If the snapshot is older than the journal's last
segment (a kill between the append and the snapshot replace), resume falls
back to the snapshot's index -- re-running a completed segment from its
boundary state reproduces its recorded results exactly.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any, Dict, List, Optional

from repro.faults.errors import CampaignKilled

JOURNAL_VERSION = 1


class KillSwitch:
    """Simulated host crash: raises after a fixed number of injections.

    The CI chaos smoke and the resume tests use this to kill a campaign at
    an arbitrary injection index without involving process management.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"kill limit must be >= 1, got {limit}")
        self.limit = limit
        self.count = 0

    def tick(self) -> None:
        self.count += 1
        if self.count >= self.limit:
            raise CampaignKilled(self.count)


class SharedKillSwitch:
    """A :class:`KillSwitch` whose counter is shared across worker processes.

    ``--kill-after N`` means "the host dies after N injections *study-wide*",
    not per worker -- so the supervised farm backs the counter with a
    ``multiprocessing.Value`` and every worker ticks the same cell.  The
    first tick to reach the limit raises :class:`CampaignKilled` at exactly
    ``limit``; workers racing past it raise with whatever count their tick
    observed (always ``>= limit``), so the supervisor reports the minimum.

    Construct it in the supervising process with
    :meth:`SharedKillSwitch.create`, then rebuild per worker from the raw
    shared counter (``multiprocessing`` can ship a ``Value`` only as a
    direct ``Process`` argument, not inside an arbitrary pickle).
    """

    def __init__(self, limit: int, counter) -> None:
        if limit < 1:
            raise ValueError(f"kill limit must be >= 1, got {limit}")
        self.limit = limit
        self._counter = counter

    @classmethod
    def create(cls, limit: int, ctx) -> "SharedKillSwitch":
        """A fresh shared counter under *ctx* (a multiprocessing context)."""
        return cls(limit, ctx.Value("q", 0))

    @property
    def counter(self):
        """The raw shared cell, for passing to a worker ``Process``."""
        return self._counter

    @property
    def count(self) -> int:
        return self._counter.value

    def tick(self) -> None:
        with self._counter.get_lock():
            self._counter.value += 1
            count = self._counter.value
        if count >= self.limit:
            raise CampaignKilled(count)


class CheckpointJournal:
    """One campaign's append-only journal and snapshot pair."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    @property
    def state_path(self) -> str:
        return self.path + ".state"

    # -- journal writes -----------------------------------------------------------
    def start(self, header: Dict[str, Any]) -> None:
        """Begin a fresh journal (truncates any previous one)."""
        record = {"type": "header", "version": JOURNAL_VERSION, **header}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if os.path.exists(self.state_path):
            os.remove(self.state_path)

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record; durable once this returns."""
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- journal reads ------------------------------------------------------------
    @staticmethod
    def load(path: str, truncate: bool = False) -> List[Dict[str, Any]]:
        """Parse a journal, tolerating a torn final line.

        A crash mid-append (``kill -9`` between the write and the fsync
        landing in full) leaves a partial final record: either an
        unterminated tail or a terminated-but-unparsable last line.  Both
        mean the record was never durable, so both are *recovered*: the
        partial record is dropped from the parse and the returned header
        record carries a ``"recovered_bytes"`` note so resume reporting
        can say what was dropped.  Corruption anywhere *before* the final
        line is not a torn append and still raises.

        By default the file itself is left untouched -- a concurrent
        reader (a ``status`` poll against a live daemon's WAL, say) may
        observe a writer's append mid-flight, and truncating what it
        mistook for a torn tail would destroy a record the writer is
        about to fsync.  Only the journal's *owning writer*, on its own
        recovery path where no concurrent append can exist, passes
        ``truncate=True`` (or calls :meth:`repair`) to cut the file back
        to its durable prefix before appending again (best-effort -- a
        read-only filesystem just skips the truncation).
        """
        records: List[Dict[str, Any]] = []
        with open(path, "rb") as fh:
            raw = fh.read()
        lines = raw.split(b"\n")
        # A well-formed journal ends with "\n", so the final split element
        # is empty; anything else is a torn tail.
        body, tail = lines[:-1], lines[-1]
        recovered = len(tail)
        for lineno, line in enumerate(body, start=1):
            if not line:
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if lineno == len(body) and not tail:
                    # Terminated final line that does not parse: the tail
                    # of a torn append whose newline survived.  Recover it
                    # like an unterminated tail (newline included).
                    recovered = len(line) + 1
                    break
                raise ValueError(f"{path}:{lineno}: corrupt journal record: {exc}")
        if not records or records[0].get("type") != "header":
            raise ValueError(f"{path}: not a checkpoint journal (missing header)")
        if recovered:
            if truncate:
                try:
                    with open(path, "r+b") as fh:
                        fh.truncate(len(raw) - recovered)
                        fh.flush()
                        os.fsync(fh.fileno())
                except OSError:  # read-only media: tolerate without truncating
                    pass
            # Synthesized at load time, never written to disk: the header
            # on disk stays exactly the bytes the writer produced.
            records[0]["recovered_bytes"] = recovered
        return records

    def repair(self) -> int:
        """Truncate a torn final line; returns the bytes dropped (0 if clean).

        Owner-only: call this exactly where the next append would land
        after a crash -- the writer's own resume path -- never from a
        reader, which may be observing a live writer's in-flight append.
        """
        if not os.path.exists(self.path):
            return 0
        records = self.load(self.path, truncate=True)
        return int(records[0].get("recovered_bytes", 0))

    def header(self) -> Dict[str, Any]:
        return self.load(self.path)[0]

    def segments(self) -> List[Dict[str, Any]]:
        return [r for r in self.load(self.path) if r.get("type") == "segment"]

    # -- state snapshot -----------------------------------------------------------
    def save_state(self, payload: Any) -> None:
        """Atomically replace the snapshot (temp file + fsync + rename)."""
        tmp = self.state_path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.state_path)

    def load_state(self) -> Optional[Any]:
        if not os.path.exists(self.state_path):
            return None
        with open(self.state_path, "rb") as fh:
            return pickle.load(fh)
