"""The chaos plane: seeded environment-fault injection beside the simulator.

The DSN'18 campaigns were operationally fragile -- a reboot mid-run drops
the adb session and the operator "resumes with the next app".  Cotroneo et
al. (*Dependability Assessment of the Android OS through Fault Injection*)
show that OS/IPC-level faults are a failure dimension of their own, distinct
from app-level intent fuzzing.  This package brings both into the QGJ stack:

* :mod:`repro.faults.plan` -- :class:`FaultPlan(seed=...)`: a deterministic,
  seeded schedule of adb session drops, binder transport failures, lmkd
  process kills, logcat truncation, OS-service outages/corruptions,
  system_server restarts, and compat mismatches, on the virtual clock;
* :mod:`repro.faults.services` -- the OS-service profile
  (:class:`ServiceFaultPlan`) and its window constants;
* :mod:`repro.faults.plane` -- the installed plane and its hook entry
  points in ``adb.py`` / ``binder.py`` / ``process.py`` /
  ``activity_manager.py`` / ``package_manager.py`` / ``sensor.py``;
* :mod:`repro.faults.retry` -- exponential backoff + seeded jitter for
  transient transport errors;
* :mod:`repro.faults.quarantine` -- the per-package circuit breaker;
* :mod:`repro.faults.journal` -- the crash-safe checkpoint journal behind
  ``python -m repro quick --resume <journal>``.

**No plan installed means no drift.**  Like telemetry, the default handle is
a shared no-op whose ``armed`` is ``False``; hooks check that one attribute
and return.  Installing an *empty* ``FaultPlan`` arms the hooks but fires
nothing, and is verified (by property test) to produce results identical to
no plan at all.

Usage::

    from repro import faults

    with faults.session(faults.FaultPlan.chaos(seed=7)):
        result = run_wear_study(QUICK)
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Iterator, Optional, Union

from repro.faults.errors import (
    TRANSIENT_ERRORS,
    AdbSessionDropped,
    CampaignKilled,
    CompatMismatchError,
    InfrastructureError,
    ServiceRestarted,
    ServiceUnavailable,
    StaleBinderReply,
)
from repro.faults.journal import CheckpointJournal, KillSwitch, SharedKillSwitch
from repro.faults.plan import (
    BASE_WEAR_API,
    CHAOS_INTERVALS_MS,
    CompatMatrix,
    FaultEvent,
    FaultKind,
    FaultPlan,
    PlanExecution,
)
from repro.faults.plane import NOOP_PLANE, FaultPlane, NoopPlane
from repro.faults.quarantine import CircuitBreaker, QuarantineEvent
from repro.faults.retry import RetryPolicy
from repro.faults.services import SERVICE_OUTAGE_WINDOW_MS, ServiceFaultPlan

__all__ = [
    "AdbSessionDropped",
    "BASE_WEAR_API",
    "CampaignKilled",
    "CheckpointJournal",
    "CircuitBreaker",
    "CompatMatrix",
    "CompatMismatchError",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultPlane",
    "InfrastructureError",
    "KillSwitch",
    "NoopPlane",
    "PlanExecution",
    "QuarantineEvent",
    "RetryPolicy",
    "SERVICE_OUTAGE_WINDOW_MS",
    "ServiceFaultPlan",
    "ServiceRestarted",
    "ServiceUnavailable",
    "SharedKillSwitch",
    "StaleBinderReply",
    "TRANSIENT_ERRORS",
    "compose_plan",
    "enabled",
    "fingerprint",
    "get",
    "install",
    "session",
    "uninstall",
]

_active: Union[FaultPlane, NoopPlane] = NOOP_PLANE


def get() -> Union[FaultPlane, NoopPlane]:
    """The current process-wide fault plane (the no-op plane by default)."""
    return _active


def enabled() -> bool:
    return _active.armed


def fingerprint() -> str:
    """Identity of the installed plan (``"none"`` when no plan is armed)."""
    return _active.fingerprint()


def install(plan: FaultPlan) -> FaultPlane:
    """Arm *plan* process-wide and return the live plane."""
    global _active
    plane = FaultPlane(plan)
    _active = plane
    return plane


def uninstall() -> None:
    """Return to the free no-op plane (schedule state is discarded)."""
    global _active
    _active = NOOP_PLANE


@contextlib.contextmanager
def session(plan: Optional[FaultPlan]) -> Iterator[Union[FaultPlane, NoopPlane]]:
    """Arm *plan* for a ``with`` block (``None`` keeps the no-op plane)."""
    if plan is None:
        yield _active
        return
    plane = install(plan)
    try:
        yield plane
    finally:
        uninstall()


def compose_plan(
    fault_seed: Optional[int] = None,
    service_fault_seed: Optional[int] = None,
    compat_skew: Optional[int] = None,
) -> Optional[FaultPlan]:
    """The one composition rule for the CLI's three chaos knobs.

    ``--fault-seed`` arms every stream, then ``--service-fault-seed`` arms
    (or re-seeds onto) the OS-service streams, then ``--compat-skew`` pins
    the device pair's API matrix on whatever is armed.  Returns ``None``
    when no knob is given -- the no-op plane.  The batch runner and the
    service daemon both build their plans here, so a submitted study spec
    reproduces exactly the plan the equivalent one-shot invocation would
    install.
    """
    if compat_skew is not None and not (0 <= compat_skew < BASE_WEAR_API):
        raise ValueError(
            f"compat skew must be in [0, {BASE_WEAR_API - 1}], got {compat_skew}"
        )
    plan: Optional[FaultPlan] = None
    if fault_seed is not None:
        plan = FaultPlan.chaos(seed=fault_seed)
    if service_fault_seed is not None:
        plan = ServiceFaultPlan(seed=service_fault_seed).apply(plan)
    if compat_skew is not None:
        base = plan if plan is not None else FaultPlan(seed=0)
        plan = dataclasses.replace(
            base,
            compat=CompatMatrix.from_skew(compat_skew),
            compat_mismatch_every_ms=CHAOS_INTERVALS_MS[FaultKind.COMPAT_MISMATCH],
        )
    return plan
