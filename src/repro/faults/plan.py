"""Seeded environment-fault plans and their per-device execution state.

A :class:`FaultPlan` is a *description*: which fault kinds fire, how often
(mean interval in virtual milliseconds, exponentially distributed), and any
explicitly pinned one-shot events.  It is frozen, hashable, and carries a
``fingerprint()`` so a checkpoint journal can refuse to resume a run under a
different plan.

Execution state lives in :class:`PlanExecution`, one per device clock: the
per-kind RNG streams and "next fire time" cursors.  Everything is scheduled
on the *virtual* clock, so a faulty run is exactly replayable -- same seed,
same clock trajectory, same faults -- and execution state is plain picklable
data, so a checkpoint snapshot freezes the fault schedule mid-stream.

The fault taxonomy follows Cotroneo et al.'s OS/IPC fault dimensions mapped
onto this simulator:

* ``ADB_DROP`` -- the adb session to the device is lost; the next adb
  command raises :class:`~repro.faults.errors.AdbSessionDropped`;
* ``BINDER`` -- a binder transaction fails in transport with
  ``DeadObjectException`` or ``TransactionTooLargeException``;
* ``LMKD_KILL`` -- the low-memory killer reaps an app process;
* ``LOGCAT_TRUNCATE`` -- the log ring loses its oldest half before the
  operator pulls it.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import Dict, List, Optional, Tuple


class FaultKind(enum.Enum):
    """The environment-fault taxonomy."""

    ADB_DROP = "adb_drop"
    BINDER = "binder"
    LMKD_KILL = "lmkd_kill"
    LOGCAT_TRUNCATE = "logcat_truncate"


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault occurrence."""

    at_ms: float
    kind: FaultKind
    #: Kind-specific detail (binder: the exception class to raise).
    param: str = ""


#: Binder faults alternate between the two transport exception classes.
BINDER_DEAD_OBJECT = "DeadObjectException"
BINDER_TOO_LARGE = "TransactionTooLargeException"

#: Default chaos profile intervals (virtual ms).  An 18-virtual-hour quick
#: study sees on the order of 100 binder faults, 36 adb drops, 54 lmkd
#: kills, and 18 log truncations -- dense enough to exercise every path,
#: sparse enough that retry absorbs almost all of them.
CHAOS_INTERVALS_MS: Dict[FaultKind, float] = {
    FaultKind.ADB_DROP: 1_800_000.0,
    FaultKind.BINDER: 600_000.0,
    FaultKind.LMKD_KILL: 1_200_000.0,
    FaultKind.LOGCAT_TRUNCATE: 3_600_000.0,
}


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of environment faults.

    ``*_every_ms`` are mean intervals for the stochastic streams (``None``
    disables a stream); ``oneshots`` pins explicit events, which fire in
    addition to the streams.  An all-``None``, no-oneshot plan is *empty*:
    installing it arms the hooks but injects nothing, and a run under it is
    bit-identical to a run with no plan at all (the no-op guarantee).
    """

    seed: int = 0
    adb_drop_every_ms: Optional[float] = None
    binder_every_ms: Optional[float] = None
    lmkd_every_ms: Optional[float] = None
    logcat_truncate_every_ms: Optional[float] = None
    oneshots: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "adb_drop_every_ms",
            "binder_every_ms",
            "lmkd_every_ms",
            "logcat_truncate_every_ms",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    def interval_for(self, kind: FaultKind) -> Optional[float]:
        return {
            FaultKind.ADB_DROP: self.adb_drop_every_ms,
            FaultKind.BINDER: self.binder_every_ms,
            FaultKind.LMKD_KILL: self.lmkd_every_ms,
            FaultKind.LOGCAT_TRUNCATE: self.logcat_truncate_every_ms,
        }[kind]

    def is_empty(self) -> bool:
        return not self.oneshots and all(
            self.interval_for(kind) is None for kind in FaultKind
        )

    def fingerprint(self) -> str:
        """Stable identity string, recorded in checkpoint journal headers."""
        parts = [f"seed={self.seed}"]
        for kind in FaultKind:
            interval = self.interval_for(kind)
            if interval is not None:
                parts.append(f"{kind.value}={interval:g}")
        for event in self.oneshots:
            parts.append(f"@{event.at_ms:g}:{event.kind.value}:{event.param}")
        return ";".join(parts)

    @staticmethod
    def chaos(seed: int = 0) -> "FaultPlan":
        """The default chaos profile (all four streams at default rates)."""
        return FaultPlan(
            seed=seed,
            adb_drop_every_ms=CHAOS_INTERVALS_MS[FaultKind.ADB_DROP],
            binder_every_ms=CHAOS_INTERVALS_MS[FaultKind.BINDER],
            lmkd_every_ms=CHAOS_INTERVALS_MS[FaultKind.LMKD_KILL],
            logcat_truncate_every_ms=CHAOS_INTERVALS_MS[FaultKind.LOGCAT_TRUNCATE],
        )


class _KindStream:
    """One fault kind's deterministic event stream (picklable)."""

    def __init__(self, plan: FaultPlan, kind: FaultKind) -> None:
        self.kind = kind
        self._rng = random.Random(f"{plan.seed}:{kind.value}")
        self._interval = plan.interval_for(kind)
        self._next: Optional[float] = self._draw_gap() if self._interval else None
        self._oneshots: List[FaultEvent] = sorted(
            (e for e in plan.oneshots if e.kind == kind), key=lambda e: e.at_ms
        )

    def _draw_gap(self) -> float:
        assert self._interval is not None
        return self._rng.expovariate(1.0 / self._interval)

    def _param(self) -> str:
        if self.kind is FaultKind.BINDER:
            return BINDER_DEAD_OBJECT if self._rng.random() < 0.5 else BINDER_TOO_LARGE
        return ""

    def take_due(self, now_ms: float, limit: Optional[int] = None) -> List[FaultEvent]:
        """Pop every event with ``at_ms <= now_ms`` (at most *limit*)."""
        due: List[FaultEvent] = []

        def full() -> bool:
            return limit is not None and len(due) >= limit

        while self._oneshots and self._oneshots[0].at_ms <= now_ms and not full():
            due.append(self._oneshots.pop(0))
        while self._next is not None and self._next <= now_ms and not full():
            due.append(FaultEvent(at_ms=self._next, kind=self.kind, param=self._param()))
            self._next += self._draw_gap()
        return due


class PlanExecution:
    """All mutable schedule state for one device clock (picklable)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.streams: Dict[FaultKind, _KindStream] = {
            kind: _KindStream(plan, kind) for kind in FaultKind
        }
        #: Deterministic victim selection for lmkd kills.
        self.victim_rng = random.Random(f"{plan.seed}:lmkd-victim")
        self.fired: int = 0

    def take_due(
        self, kind: FaultKind, now_ms: float, limit: Optional[int] = None
    ) -> List[FaultEvent]:
        due = self.streams[kind].take_due(now_ms, limit=limit)
        self.fired += len(due)
        return due
