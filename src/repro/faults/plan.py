"""Seeded environment-fault plans and their per-device execution state.

A :class:`FaultPlan` is a *description*: which fault kinds fire, how often
(mean interval in virtual milliseconds, exponentially distributed), and any
explicitly pinned one-shot events.  It is frozen, hashable, and carries a
``fingerprint()`` so a checkpoint journal can refuse to resume a run under a
different plan.

Execution state lives in :class:`PlanExecution`, one per device clock: the
per-kind RNG streams and "next fire time" cursors.  Everything is scheduled
on the *virtual* clock, so a faulty run is exactly replayable -- same seed,
same clock trajectory, same faults -- and execution state is plain picklable
data, so a checkpoint snapshot freezes the fault schedule mid-stream.

The fault taxonomy follows Cotroneo et al.'s OS/IPC fault dimensions mapped
onto this simulator:

* ``ADB_DROP`` -- the adb session to the device is lost; the next adb
  command raises :class:`~repro.faults.errors.AdbSessionDropped`;
* ``BINDER`` -- a binder transaction fails in transport with
  ``DeadObjectException`` or ``TransactionTooLargeException``;
* ``LMKD_KILL`` -- the low-memory killer reaps an app process;
* ``LOGCAT_TRUNCATE`` -- the log ring loses its oldest half before the
  operator pulls it.

The OS-service family (:mod:`repro.faults.services` holds the profile and
window constants) extends the taxonomy into ``system_server`` itself:

* ``SERVICE_OUTAGE`` -- one system service (activity / package / sensor)
  is unavailable for a window; calls raise ``DeadObjectException``-style
  errors until the window closes;
* ``SERVICE_CORRUPT`` -- a service returns a corrupted reply: the package
  manager ships a stale/mangled ``ComponentInfo`` parcel, the sensor
  service drops or duplicates a listener registration;
* ``SYSTEM_RESTART`` -- system_server dies and restarts in place; every
  service bounces and registered binders/listeners must re-attach (no
  reboot: ``boot_count`` is untouched);
* ``COMPAT_MISMATCH`` -- with a :class:`CompatMatrix` pinned on the plan,
  version-gated calls fail with ``NoSuchMethodError``-style throwables or
  companion/node messaging degrades.  Without a skewed matrix the stream
  is inert, so the kind stays wired (and covered by the interval property
  test) while a matched pair never sees it.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import Dict, List, Optional, Tuple


class FaultKind(enum.Enum):
    """The environment-fault taxonomy."""

    ADB_DROP = "adb_drop"
    BINDER = "binder"
    LMKD_KILL = "lmkd_kill"
    LOGCAT_TRUNCATE = "logcat_truncate"
    SERVICE_OUTAGE = "service_outage"
    SERVICE_CORRUPT = "service_corrupt"
    SYSTEM_RESTART = "system_restart"
    COMPAT_MISMATCH = "compat_mismatch"


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault occurrence."""

    at_ms: float
    kind: FaultKind
    #: Kind-specific detail (binder: the exception class to raise).
    param: str = ""


#: Binder faults alternate between the two transport exception classes.
BINDER_DEAD_OBJECT = "DeadObjectException"
BINDER_TOO_LARGE = "TransactionTooLargeException"

#: System services the outage stream can take down (event ``param``).  The
#: android-layer hook sites name themselves with the same plain strings.
OUTAGE_SERVICES = ("activity", "package", "sensor")

#: Corrupted-reply manifestations (``SERVICE_CORRUPT`` event ``param``).
CORRUPT_STALE_COMPONENT = "stale_component"
CORRUPT_DROP_LISTENER = "drop_listener"
CORRUPT_DUP_LISTENER = "dup_listener"
CORRUPTIONS = (CORRUPT_STALE_COMPONENT, CORRUPT_DROP_LISTENER, CORRUPT_DUP_LISTENER)

#: Compat-mismatch manifestations (``COMPAT_MISMATCH`` event ``param``):
#: a version-gated framework call failing at the injection boundary, or a
#: serialization delta degrading companion/node messaging.
COMPAT_MISSING_METHOD = "missing_method"
COMPAT_SYNC_DELTA = "sync_delta"

#: Default chaos profile intervals (virtual ms).  An 18-virtual-hour quick
#: study sees on the order of 100 binder faults, 36 adb drops, 54 lmkd
#: kills, and 18 log truncations -- dense enough to exercise every path,
#: sparse enough that retry absorbs almost all of them.  The OS-service
#: family is sparser still (~27 outages, ~21 corrupted replies, ~6
#: system_server restarts); compat mismatches only manifest when a skewed
#: :class:`CompatMatrix` is pinned on the plan.
CHAOS_INTERVALS_MS: Dict[FaultKind, float] = {
    FaultKind.ADB_DROP: 1_800_000.0,
    FaultKind.BINDER: 600_000.0,
    FaultKind.LMKD_KILL: 1_200_000.0,
    FaultKind.LOGCAT_TRUNCATE: 3_600_000.0,
    FaultKind.SERVICE_OUTAGE: 2_400_000.0,
    FaultKind.SERVICE_CORRUPT: 3_000_000.0,
    FaultKind.SYSTEM_RESTART: 10_800_000.0,
    FaultKind.COMPAT_MISMATCH: 1_800_000.0,
}

#: The API level both halves of a healthy pair run (Wear 2.0 / API 25,
#: the paper's test bed).  ``CompatMatrix.from_skew`` pins the phone below
#: it.
BASE_WEAR_API = 25


@dataclasses.dataclass(frozen=True)
class CompatMatrix:
    """Pinned phone/wear API levels for one device pair.

    Part of the :class:`FaultPlan` (and therefore of its fingerprint, the
    checkpoint-journal identity, and shard re-seeding via
    ``dataclasses.replace``).  A matrix with zero skew is inert: gates
    pass, deltas never manifest, and a run under it is byte-identical to a
    run with no matrix at all.
    """

    phone_api: int = BASE_WEAR_API
    wear_api: int = BASE_WEAR_API

    def __post_init__(self) -> None:
        for name in ("phone_api", "wear_api"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    @property
    def skew(self) -> int:
        return abs(self.phone_api - self.wear_api)

    @property
    def effective_api(self) -> int:
        """The API surface the *pair* can rely on (the older side's)."""
        return min(self.phone_api, self.wear_api)

    def fingerprint_token(self) -> str:
        return f"compat={self.phone_api}/{self.wear_api}"

    @staticmethod
    def from_skew(skew: int) -> "CompatMatrix":
        """A pair whose phone runs *skew* API levels behind the wearable."""
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        return CompatMatrix(phone_api=BASE_WEAR_API - skew, wear_api=BASE_WEAR_API)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of environment faults.

    ``*_every_ms`` are mean intervals for the stochastic streams (``None``
    disables a stream); ``oneshots`` pins explicit events, which fire in
    addition to the streams.  An all-``None``, no-oneshot plan is *empty*:
    installing it arms the hooks but injects nothing, and a run under it is
    bit-identical to a run with no plan at all (the no-op guarantee).
    """

    seed: int = 0
    adb_drop_every_ms: Optional[float] = None
    binder_every_ms: Optional[float] = None
    lmkd_every_ms: Optional[float] = None
    logcat_truncate_every_ms: Optional[float] = None
    service_outage_every_ms: Optional[float] = None
    service_corrupt_every_ms: Optional[float] = None
    system_restart_every_ms: Optional[float] = None
    compat_mismatch_every_ms: Optional[float] = None
    #: Pinned phone/wear API levels; ``None`` (or zero skew) is a matched
    #: pair and the compat stream is inert.
    compat: Optional[CompatMatrix] = None
    oneshots: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "adb_drop_every_ms",
            "binder_every_ms",
            "lmkd_every_ms",
            "logcat_truncate_every_ms",
            "service_outage_every_ms",
            "service_corrupt_every_ms",
            "system_restart_every_ms",
            "compat_mismatch_every_ms",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    def interval_for(self, kind: FaultKind) -> Optional[float]:
        return {
            FaultKind.ADB_DROP: self.adb_drop_every_ms,
            FaultKind.BINDER: self.binder_every_ms,
            FaultKind.LMKD_KILL: self.lmkd_every_ms,
            FaultKind.LOGCAT_TRUNCATE: self.logcat_truncate_every_ms,
            FaultKind.SERVICE_OUTAGE: self.service_outage_every_ms,
            FaultKind.SERVICE_CORRUPT: self.service_corrupt_every_ms,
            FaultKind.SYSTEM_RESTART: self.system_restart_every_ms,
            FaultKind.COMPAT_MISMATCH: self.compat_mismatch_every_ms,
        }[kind]

    def is_empty(self) -> bool:
        return not self.oneshots and all(
            self.interval_for(kind) is None for kind in FaultKind
        )

    def fingerprint(self) -> str:
        """Stable identity string, recorded in checkpoint journal headers."""
        parts = [f"seed={self.seed}"]
        for kind in FaultKind:
            interval = self.interval_for(kind)
            if interval is not None:
                parts.append(f"{kind.value}={interval:g}")
        if self.compat is not None:
            parts.append(self.compat.fingerprint_token())
        for event in self.oneshots:
            parts.append(f"@{event.at_ms:g}:{event.kind.value}:{event.param}")
        return ";".join(parts)

    @staticmethod
    def chaos(seed: int = 0) -> "FaultPlan":
        """The default chaos profile (every stream at its default rate)."""
        return FaultPlan(
            seed=seed,
            adb_drop_every_ms=CHAOS_INTERVALS_MS[FaultKind.ADB_DROP],
            binder_every_ms=CHAOS_INTERVALS_MS[FaultKind.BINDER],
            lmkd_every_ms=CHAOS_INTERVALS_MS[FaultKind.LMKD_KILL],
            logcat_truncate_every_ms=CHAOS_INTERVALS_MS[FaultKind.LOGCAT_TRUNCATE],
            service_outage_every_ms=CHAOS_INTERVALS_MS[FaultKind.SERVICE_OUTAGE],
            service_corrupt_every_ms=CHAOS_INTERVALS_MS[FaultKind.SERVICE_CORRUPT],
            system_restart_every_ms=CHAOS_INTERVALS_MS[FaultKind.SYSTEM_RESTART],
            compat_mismatch_every_ms=CHAOS_INTERVALS_MS[FaultKind.COMPAT_MISMATCH],
        )


class _KindStream:
    """One fault kind's deterministic event stream (picklable)."""

    def __init__(self, plan: FaultPlan, kind: FaultKind) -> None:
        self.kind = kind
        self._rng = random.Random(f"{plan.seed}:{kind.value}")
        self._interval = plan.interval_for(kind)
        self._next: Optional[float] = self._draw_gap() if self._interval else None
        self._oneshots: List[FaultEvent] = sorted(
            (e for e in plan.oneshots if e.kind == kind), key=lambda e: e.at_ms
        )

    def _draw_gap(self) -> float:
        assert self._interval is not None
        return self._rng.expovariate(1.0 / self._interval)

    def _param(self) -> str:
        if self.kind is FaultKind.BINDER:
            return BINDER_DEAD_OBJECT if self._rng.random() < 0.5 else BINDER_TOO_LARGE
        if self.kind is FaultKind.SERVICE_OUTAGE:
            return self._rng.choice(OUTAGE_SERVICES)
        if self.kind is FaultKind.SERVICE_CORRUPT:
            return self._rng.choice(CORRUPTIONS)
        if self.kind is FaultKind.COMPAT_MISMATCH:
            return (
                COMPAT_MISSING_METHOD
                if self._rng.random() < 0.5
                else COMPAT_SYNC_DELTA
            )
        return ""

    def take_due(self, now_ms: float, limit: Optional[int] = None) -> List[FaultEvent]:
        """Pop every event with ``at_ms <= now_ms`` (at most *limit*)."""
        due: List[FaultEvent] = []

        def full() -> bool:
            return limit is not None and len(due) >= limit

        while self._oneshots and self._oneshots[0].at_ms <= now_ms and not full():
            due.append(self._oneshots.pop(0))
        while self._next is not None and self._next <= now_ms and not full():
            due.append(FaultEvent(at_ms=self._next, kind=self.kind, param=self._param()))
            self._next += self._draw_gap()
        return due


class PlanExecution:
    """All mutable schedule state for one device clock (picklable)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.streams: Dict[FaultKind, _KindStream] = {
            kind: _KindStream(plan, kind) for kind in FaultKind
        }
        #: Deterministic victim selection for lmkd kills.
        self.victim_rng = random.Random(f"{plan.seed}:lmkd-victim")
        self.fired: int = 0
        #: Open service-unavailability windows: service name -> window-end
        #: (virtual ms).  Calls into a listed service raise until the clock
        #: passes the end.
        self.outages: Dict[str, float] = {}
        #: Drained-but-unconsumed corrupted-reply manifestations, consumed
        #: by the first matching hook site (FIFO).
        self.pending_corruptions: List[str] = []
        #: Drained-but-unconsumed compat manifestations.
        self.pending_deltas: int = 0
        self.pending_missing_method: int = 0

    def take_due(
        self, kind: FaultKind, now_ms: float, limit: Optional[int] = None
    ) -> List[FaultEvent]:
        due = self.streams[kind].take_due(now_ms, limit=limit)
        self.fired += len(due)
        return due
