"""Per-package circuit breaker: quarantine after repeated transport failures.

When a package's injections keep failing at the *transport* level (adb or
binder, after retries), the failure says nothing about the app -- it says
the infrastructure between QGJ and the component is broken.  Continuing
would burn campaign time and, worse, could smear infrastructure noise into
the behaviour distributions of Tables II-V.  The breaker trips after
``threshold`` consecutive transport-level failures and the harness skips the
package for the rest of the run, reporting it as *quarantined* -- a separate
bucket from every app-level outcome, exactly like the paper's operators
setting aside an app whose session would not come back.

One successful dispatch resets a package's streak (the breaker only counts
*consecutive* failures).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro import telemetry
from repro.telemetry.metrics import QUARANTINED

#: Consecutive transport-level failures before a package is quarantined.
DEFAULT_THRESHOLD = 3


@dataclasses.dataclass
class QuarantineEvent:
    """Record of one package being quarantined."""

    package: str
    consecutive_failures: int
    last_error: str


class CircuitBreaker:
    """Counts consecutive transport failures per package; trips at threshold."""

    def __init__(self, threshold: int = DEFAULT_THRESHOLD) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._consecutive: Dict[str, int] = {}
        self._quarantined: Dict[str, QuarantineEvent] = {}

    def record_failure(self, package: str, error: str = "", telemetry_handle=None) -> bool:
        """Record one exhausted-retries transport failure.

        Returns ``True`` when this failure newly quarantines the package.
        *telemetry_handle* scopes the quarantine counter (a farm shard's
        handle); by default the process-wide handle is used.
        """
        if package in self._quarantined:
            return False
        count = self._consecutive.get(package, 0) + 1
        self._consecutive[package] = count
        if count < self.threshold:
            return False
        event = QuarantineEvent(
            package=package, consecutive_failures=count, last_error=error
        )
        self._quarantined[package] = event
        t = telemetry_handle if telemetry_handle is not None else telemetry.get()
        if t.enabled:
            t.metrics.counter(
                QUARANTINED,
                "Packages quarantined by the transport circuit breaker.",
            ).inc()
        return True

    def record_success(self, package: str) -> None:
        """A successful dispatch resets the package's failure streak."""
        if self._consecutive.get(package):
            self._consecutive[package] = 0

    def is_quarantined(self, package: str) -> bool:
        return package in self._quarantined

    def quarantined(self) -> Tuple[str, ...]:
        return tuple(sorted(self._quarantined))

    def events(self) -> List[QuarantineEvent]:
        return [self._quarantined[p] for p in sorted(self._quarantined)]

    def failure_streak(self, package: str) -> int:
        return self._consecutive.get(package, 0)
