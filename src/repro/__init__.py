"""Reproduction of *How Reliable Is My Wearable: A Fuzz Testing-based Study*
(Barsallo Yi, Maji, Bagchi -- DSN 2018).

The package is organised as the paper's system is:

* :mod:`repro.android` -- a simulated Android OS substrate (intents,
  components, permissions, processes, sensors, system server, logcat, adb).
* :mod:`repro.wear` -- the Android Wear layer (paired devices, MessageAPI /
  DataAPI, Ambient mode, Google Fit, complications, wear UI widgets).
* :mod:`repro.apps` -- the synthetic app corpus standing in for the study's
  46 wearable and 63 phone applications, with calibrated input-validation
  behaviour models.
* :mod:`repro.qgj` -- **the paper's contribution**: the Qui-Gon Jinn fuzzer
  (QGJ-Master's four Fuzz Intent Campaigns and QGJ-UI's mutational UI
  fuzzing on top of a Monkey-style event generator).
* :mod:`repro.analysis` -- the logcat-driven analysis pipeline: parsing,
  root-cause attribution, manifestation classification, and the generators
  for every table and figure in the paper.
* :mod:`repro.experiments` -- end-to-end experiment harnesses at quick and
  paper scale.
* :mod:`repro.telemetry` -- the campaign's own monitoring plane: metrics,
  injection-span tracing, heartbeats, and the ``dumpsys telemetry`` /
  Prometheus exposition layer (off by default, free when off).
"""

__version__ = "1.0.0"

__all__ = ["android", "wear", "apps", "qgj", "analysis", "experiments", "telemetry"]
