"""Self-profiling: wall self-time attribution across campaign phases.

The telemetry plane watches the campaign; this watches the telemetry
plane's host -- where one wall-clock second of simulation actually goes
across the ``intent-generation → AM dispatch → binder → logcat → UI``
loop.  It is the built-in replacement for "attach cProfile and rerun":
cheap enough to leave on for a measurement run (one ``perf_counter`` and a
dict upsert per phase switch, nothing per sample inside a phase), and off
by default (the :class:`NoopProfiler` twin costs one attribute check).

The model is a flamegraph's: instrumented regions push a *phase* onto a
stack, and elapsed wall time is charged to whichever stack path is on top
when the clock ticks past -- so a path's bucket holds its **self** time,
exclusive of the phases nested inside it.  Accumulated paths export two
ways:

* a ``SELF-PROFILE`` section in ``dumpsys telemetry`` / ``summary.txt``;
* ``profile.collapsed`` -- Brendan Gregg's collapsed-stack format
  (``phase;subphase <microseconds>`` per line), ready for
  ``flamegraph.pl`` or speedscope.

Farm merge: a worker shard ships :meth:`PhaseProfiler.snapshot` home on
its ``ShardResult`` and the study-wide profiler :meth:`merge`\\ s it in --
self-times sum, like every other wall-clock account in the farm.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

#: A path is the tuple of open phase names, outermost first.
Path = Tuple[str, ...]


class PhaseProfiler:
    """Accumulates wall self-time per phase-stack path."""

    enabled = True

    __slots__ = ("_stack", "_acc", "_last")

    def __init__(self) -> None:
        #: Open phase paths, innermost last.
        self._stack: List[Path] = []
        #: path -> [self_seconds, entries]
        self._acc: Dict[Path, List[float]] = {}
        self._last = 0.0

    def enter(self, phase: str) -> None:
        """Open *phase*: charge the elapsed slice to the enclosing path."""
        now = time.perf_counter()
        stack = self._stack
        acc = self._acc
        if stack:
            acc[stack[-1]][0] += now - self._last
            path = stack[-1] + (phase,)
        else:
            path = (phase,)
        cell = acc.get(path)
        if cell is None:
            acc[path] = cell = [0.0, 0]
        cell[1] += 1
        stack.append(path)
        self._last = now

    def exit(self) -> None:
        """Close the innermost phase, charging it its final slice."""
        now = time.perf_counter()
        stack = self._stack
        if not stack:
            return
        self._acc[stack.pop()][0] += now - self._last
        self._last = now

    # -- reads / export --------------------------------------------------------
    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def paths(self) -> List[Tuple[Path, float, int]]:
        """``(path, self_seconds, entries)`` rows, sorted by path."""
        return [
            (path, cell[0], cell[1]) for path, cell in sorted(self._acc.items())
        ]

    def total_seconds(self) -> float:
        return sum(cell[0] for cell in self._acc.values())

    def snapshot(self) -> Dict[str, Tuple[float, int]]:
        """A picklable account: ``{";".join(path): (self_s, entries)}``."""
        return {";".join(path): (cell[0], cell[1]) for path, cell in self._acc.items()}

    def merge(self, snapshot: Dict[str, Tuple[float, int]]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one."""
        for key, (seconds, entries) in snapshot.items():
            path = tuple(key.split(";"))
            cell = self._acc.get(path)
            if cell is None:
                self._acc[path] = cell = [0.0, 0]
            cell[0] += seconds
            cell[1] += entries


class NoopProfiler:
    """Disabled twin of :class:`PhaseProfiler`: every call is inert."""

    enabled = False
    open_depth = 0

    def enter(self, phase: str) -> None:
        pass

    def exit(self) -> None:
        pass

    def paths(self) -> List[Tuple[Path, float, int]]:
        return []

    def total_seconds(self) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Tuple[float, int]]:
        return {}

    def merge(self, snapshot: Dict[str, Tuple[float, int]]) -> None:
        pass


NOOP_PROFILER = NoopProfiler()
