"""Campaign telemetry: the monitoring plane beside the injector.

The DSN'18 study observes the *system under test* through logcat; this
package observes the *campaign itself* -- injection throughput, ANR-watchdog
latency, binder traffic, log-buffer pressure, and where a run spends its
time -- the instrumentation plane that fault-injection campaigns need
beside the injector (Cotroneo et al.) and that every later perf claim in
this repo is judged against.

Four modules:

* :mod:`repro.telemetry.metrics` -- process-wide Counters / Gauges /
  fixed-bucket Histograms with labeled series;
* :mod:`repro.telemetry.trace` -- nested span tracing (``campaign →
  package → component → injection``) stamped with virtual and wall clocks;
* :mod:`repro.telemetry.exporters` -- Prometheus text exposition, JSONL
  trace export, and the ``dumpsys telemetry`` summary table;
* :mod:`repro.telemetry.progress` -- heartbeat snapshots for paper-scale
  runs.

**Telemetry is off by default and free when off.**  Instrument sites fetch
the process-wide handle with :func:`get` and guard on ``.enabled``; the
disabled handle is a set of shared no-op singletons, so a disabled run pays
one attribute check per hot-path call and nothing else.

Usage::

    from repro import telemetry

    with telemetry.session() as t:        # or telemetry.enable() / .disable()
        result = run_wear_study(QUICK)
        print(telemetry.exporters.render_summary(t))
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.telemetry import exporters, metrics, progress, trace
from repro.telemetry.metrics import NOOP_REGISTRY, MetricsRegistry, NoopRegistry
from repro.telemetry.progress import NOOP_HEARTBEAT, Heartbeat, NoopHeartbeat, Snapshot
from repro.telemetry.trace import DEFAULT_SPAN_CAPACITY, NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "enabled",
    "get",
    "session",
    "exporters",
    "metrics",
    "progress",
    "trace",
]


class Telemetry:
    """The process-wide telemetry handle: registry + tracer + heartbeat."""

    def __init__(self, enabled: bool, metrics_registry, tracer, heartbeat) -> None:
        self.enabled = enabled
        self.metrics = metrics_registry
        self.tracer = tracer
        self.progress = heartbeat

    def set_clock(self, clock) -> None:
        """Attach a device's virtual clock to the tracer and heartbeat."""
        self.tracer.set_clock(clock)
        self.progress.set_clock(clock)


#: The permanent disabled handle -- all shared no-op singletons.
_DISABLED = Telemetry(False, NOOP_REGISTRY, NOOP_TRACER, NOOP_HEARTBEAT)
_active: Telemetry = _DISABLED


def get() -> Telemetry:
    """The current process-wide handle (the no-op handle when disabled)."""
    return _active


def enabled() -> bool:
    return _active.enabled


def enable(
    clock=None,
    span_capacity: int = DEFAULT_SPAN_CAPACITY,
    heartbeat_every: int = progress.DEFAULT_EVERY_INJECTIONS,
) -> Telemetry:
    """Install a fresh live registry/tracer/heartbeat and return the handle.

    Calling it again replaces the previous instruments (a fresh campaign
    starts from zero).  *clock* may be attached later via
    :meth:`Telemetry.set_clock` once the device exists.
    """
    global _active
    registry = MetricsRegistry()
    tracer = Tracer(capacity=span_capacity, clock=clock)
    heartbeat = Heartbeat(registry, every_injections=heartbeat_every, clock=clock)
    _active = Telemetry(True, registry, tracer, heartbeat)
    return _active


def disable() -> None:
    """Return to the free no-op handle (recorded data is discarded)."""
    global _active
    _active = _DISABLED


@contextlib.contextmanager
def session(
    clock=None,
    span_capacity: int = DEFAULT_SPAN_CAPACITY,
    heartbeat_every: int = progress.DEFAULT_EVERY_INJECTIONS,
) -> Iterator[Telemetry]:
    """Enable telemetry for a ``with`` block, disabling on exit."""
    handle = enable(
        clock=clock, span_capacity=span_capacity, heartbeat_every=heartbeat_every
    )
    try:
        yield handle
    finally:
        disable()
