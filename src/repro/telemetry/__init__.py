"""Campaign telemetry: the monitoring plane beside the injector.

The DSN'18 study observes the *system under test* through logcat; this
package observes the *campaign itself* -- injection throughput, ANR-watchdog
latency, binder traffic, log-buffer pressure, and where a run spends its
time -- the instrumentation plane that fault-injection campaigns need
beside the injector (Cotroneo et al.) and that every later perf claim in
this repo is judged against.

Four modules:

* :mod:`repro.telemetry.metrics` -- process-wide Counters / Gauges /
  fixed-bucket Histograms with labeled series;
* :mod:`repro.telemetry.trace` -- nested span tracing (``campaign →
  package → component → injection``) stamped with virtual and wall clocks;
* :mod:`repro.telemetry.exporters` -- Prometheus text exposition, JSONL
  trace export, and the ``dumpsys telemetry`` summary table;
* :mod:`repro.telemetry.progress` -- heartbeat snapshots for paper-scale
  runs.

**Telemetry is off by default and free when off.**  Instrument sites fetch
the process-wide handle with :func:`get` and guard on ``.enabled``; the
disabled handle is a set of shared no-op singletons, so a disabled run pays
one attribute check per hot-path call and nothing else.

Usage::

    from repro import telemetry

    with telemetry.session() as t:        # or telemetry.enable() / .disable()
        result = run_wear_study(QUICK)
        print(telemetry.exporters.render_summary(t))
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.telemetry import exporters, metrics, profiler, progress, record, trace
from repro.telemetry.metrics import NOOP_REGISTRY, MetricsRegistry, NoopRegistry
from repro.telemetry.profiler import NOOP_PROFILER, NoopProfiler, PhaseProfiler
from repro.telemetry.progress import NOOP_HEARTBEAT, Heartbeat, NoopHeartbeat, Snapshot
from repro.telemetry.trace import DEFAULT_SPAN_CAPACITY, NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "enabled",
    "get",
    "session",
    "exporters",
    "metrics",
    "profiler",
    "progress",
    "record",
    "trace",
]


class Telemetry:
    """The process-wide telemetry handle: registry + tracer + heartbeat.

    A :class:`~repro.telemetry.profiler.PhaseProfiler` rides along when
    self-profiling is requested (the runner's ``--profile``); otherwise the
    shared no-op profiler keeps the hot path to one attribute check.
    """

    def __init__(
        self, enabled: bool, metrics_registry, tracer, heartbeat, profiler=NOOP_PROFILER
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics_registry
        self.tracer = tracer
        self.progress = heartbeat
        self.profiler = profiler

    def set_clock(self, clock) -> None:
        """Attach a device's virtual clock to the tracer and heartbeat."""
        self.tracer.set_clock(clock)
        self.progress.set_clock(clock)

    def flush(self) -> None:
        """Drain batched recording state into the registry.

        Registry reads flush automatically; this is for the moments a
        *consistent object* matters rather than a read -- e.g. before a
        farm shard pickles its registry into a :class:`ShardResult`.
        """
        self.metrics.flush()


#: The permanent disabled handle -- all shared no-op singletons.
_DISABLED = Telemetry(False, NOOP_REGISTRY, NOOP_TRACER, NOOP_HEARTBEAT)
_active: Telemetry = _DISABLED


def get() -> Telemetry:
    """The current process-wide handle (the no-op handle when disabled)."""
    return _active


def enabled() -> bool:
    return _active.enabled


def enable(
    clock=None,
    span_capacity: int = DEFAULT_SPAN_CAPACITY,
    heartbeat_every: int = progress.DEFAULT_EVERY_INJECTIONS,
    sample_every: int = 1,
    sample_seed: int = 0,
    profile: bool = False,
) -> Telemetry:
    """Install a fresh live registry/tracer/heartbeat and return the handle.

    Calling it again replaces the previous instruments (a fresh campaign
    starts from zero).  *clock* may be attached later via
    :meth:`Telemetry.set_clock` once the device exists.  *sample_every*
    retains 1-in-N spans per span name (deterministically, derived from
    *sample_seed*; ``1`` retains everything), and *profile* arms the
    :class:`~repro.telemetry.profiler.PhaseProfiler`.
    """
    global _active
    registry = MetricsRegistry()
    tracer = Tracer(
        capacity=span_capacity,
        clock=clock,
        sample_every=sample_every,
        sample_seed=sample_seed,
    )
    heartbeat = Heartbeat(registry, every_injections=heartbeat_every, clock=clock)
    _active = Telemetry(
        True,
        registry,
        tracer,
        heartbeat,
        profiler=PhaseProfiler() if profile else NOOP_PROFILER,
    )
    return _active


def disable() -> None:
    """Return to the free no-op handle (recorded data is discarded)."""
    global _active
    _active = _DISABLED


@contextlib.contextmanager
def session(
    clock=None,
    span_capacity: int = DEFAULT_SPAN_CAPACITY,
    heartbeat_every: int = progress.DEFAULT_EVERY_INJECTIONS,
    sample_every: int = 1,
    sample_seed: int = 0,
    profile: bool = False,
) -> Iterator[Telemetry]:
    """Enable telemetry for a ``with`` block, disabling on exit."""
    handle = enable(
        clock=clock,
        span_capacity=span_capacity,
        heartbeat_every=heartbeat_every,
        sample_every=sample_every,
        sample_seed=sample_seed,
        profile=profile,
    )
    try:
        yield handle
    finally:
        disable()
