"""Process-wide metrics: Counters, Gauges, and fixed-bucket Histograms.

The study's original instrumentation plane was ``logcat`` plus a stopwatch;
this module is the monitoring plane a production-scale campaign needs
beside the injector (in the spirit of Cotroneo et al.'s dependability
monitors).  The model is Prometheus': a registry owns named metrics, each
metric owns labeled *children* (one per label-value combination), and the
exposition layer (:mod:`repro.telemetry.exporters`) renders the whole
registry as text.

Histograms are *virtual-ms aware*: the default buckets are laid out around
the simulator's own time constants (100 ms intent pacing, 5 s ANR window,
20 s maximum main-thread stall, 30 s boot), so latency series recorded in
virtual milliseconds land in meaningful buckets without per-site tuning.

Everything here is plain in-process bookkeeping -- no threads, no I/O --
and the :class:`NoopRegistry` twin makes the whole plane free when
telemetry is disabled.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

# -- canonical series names (documented in README "Observability") -----------------
INTENTS_INJECTED = "intents_injected_total"
ANR_LATENCY = "anr_watchdog_latency_ms"
AM_DISPATCHES = "am_dispatches_total"
BINDER_TRANSACTIONS = "binder_transactions_total"
LOGCAT_WRITTEN = "logcat_records_written_total"
LOGCAT_DROPPED = "logcat_records_dropped_total"
LOGCAT_BUFFERED = "logcat_buffer_records"
MONKEY_EVENTS = "monkey_events_generated_total"
UI_EVENTS = "ui_events_injected_total"
UI_CRASHES = "ui_crashes_total"
UI_EXCEPTIONS = "ui_exceptions_total"
FAULTS_INJECTED = "env_faults_injected_total"
SERVICE_FAULTS_INJECTED = "service_faults_injected_total"
COMPAT_MISMATCHES = "compat_mismatches_total"
RETRIES = "qgj_transport_retries_total"
RETRY_BACKOFF = "qgj_retry_backoff_ms"
TRANSPORT_FAILURES = "qgj_transport_failures_total"
QUARANTINED = "qgj_quarantined_packages_total"
SHARD_RETRIES = "shard_retries_total"
SHARDS_POISONED = "shards_poisoned"
NOVEL_BEHAVIOURS = "novel_behaviours_total"
CORPUS_SIZE = "behaviour_corpus_size"
ARM_BUDGET = "guided_arm_budget_intents"
#: Fleet-kernel series, registered lazily by fleet lanes so a clean
#: non-fleet export carries none of them.
CRASHES = "crashes_total"
INTENTS_SENT = "intents_sent_total"
FLEET_PAIRS_ACTIVE = "fleet_pairs_active"
FLEET_PAIRS_FINISHED = "fleet_pairs_finished_total"
FLEET_LANE_OCCUPANCY = "fleet_lane_occupancy"
#: Service-plane series, registered lazily by the fuzzing-as-a-service
#: daemon (:mod:`repro.service.daemon`).
SERVICE_QUEUE_DEPTH = "service_queue_depth"
SERVICE_LEASE_EXPIRIES = "service_lease_expiries_total"
SERVICE_JOBS_RECOVERED = "service_jobs_recovered_total"
SERVICE_REJECTED = "service_rejected_submissions_total"
SERVICE_STUDIES_COMPLETED = "service_studies_completed_total"

#: Default histogram buckets, in virtual milliseconds, spanning the
#: simulator's time constants (pacing .. ANR window .. stall cap .. boot).
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    1, 5, 10, 25, 50, 100, 250, 500,
    1000, 2500, 5000, 7500, 10000, 15000, 20000, 30000, 60000,
)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name: {name!r}")


class CounterChild:
    """One labeled series of a :class:`Counter`."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def merge_from(self, other: "CounterChild") -> None:
        self.value += other.value


class GaugeChild:
    """One labeled series of a :class:`Gauge`."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge_from(self, other: "GaugeChild") -> None:
        # Gauges are level measurements: the later merge (shard order) wins.
        self.value = other.value


class HistogramChild:
    """One labeled series of a :class:`Histogram` (cumulative buckets)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        from repro.telemetry.record import bucket_index_table

        self.sum += value
        self.count += 1
        i = bucket_index_table(self.buckets).index(value)
        if i < len(self.counts):
            self.counts[i] += 1

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts (Prometheus ``le`` semantics)."""
        total, out = 0, []
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def merge_from(self, other: "HistogramChild") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{other.buckets} != {self.buckets}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        self.count += other.count


class _Metric:
    """Shared machinery: label validation and child management."""

    kind = "untyped"
    child_class: type = CounterChild

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        _validate_name(name)
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}

    def _new_child(self):
        return self.child_class()

    def labels(self, **labels: str):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _default_child(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        return self.labels()

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        """Yield ``(labels_dict, child)`` for every series."""
        for key, child in sorted(self._children.items()):
            yield dict(zip(self.labelnames, key)), child


class Counter(_Metric):
    kind = "counter"
    child_class = CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def total(self) -> float:
        """Sum over every labeled series."""
        return sum(child.value for child in self._children.values())

    def total_where(self, **labels: str) -> float:
        """Sum over series whose labels include *labels*."""
        total = 0.0
        for sample_labels, child in self.samples():
            if all(sample_labels.get(k) == str(v) for k, v in labels.items()):
                total += child.value
        return total


class Gauge(_Metric):
    kind = "gauge"
    child_class = GaugeChild

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(tuple(buckets)):
            raise ValueError(f"histogram buckets must be sorted and unique: {buckets}")
        self.buckets = tuple(buckets)

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def total_count(self) -> int:
        return sum(child.count for child in self._children.values())


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Re-registering a name is idempotent when the declaration matches and an
    error when it does not -- instrument sites declare their metric inline
    at each call and the registry guarantees they all share one series.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self.enabled = True
        #: Bound handles (:mod:`repro.telemetry.record`) with batched state
        #: to drain before any read of the registry.
        self._watched: List[object] = []

    # -- batched recording (see repro.telemetry.record) --------------------------
    def watch(self, bound) -> None:
        """Register a bound handle whose pending state flushes on read."""
        self._watched.append(bound)

    def flush(self) -> None:
        """Drain every bound handle's pending samples into the registry."""
        for bound in self._watched:
            bound.flush()

    def _get_or_create(self, cls: type, name: str, help: str, labelnames, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls) or metric.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
                f"{metric.labelnames}, conflicting re-registration"
            )
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one.

        Counters and histogram buckets sum, gauges take the incoming value
        (merge order is shard order, so the last shard's level wins), and a
        name registered with a conflicting kind or label set is an error.
        The farm uses this to collapse per-shard registries into the
        study-wide registry the exporters render.  Both sides flush their
        batched handles first (ours here, the other's via ``collect``), so
        the merged gauges can never be overwritten by stale pending levels.
        """
        self.flush()
        for metric in other.collect():
            if isinstance(metric, Histogram):
                mine = self.histogram(
                    metric.name, metric.help, metric.labelnames, buckets=metric.buckets
                )
            elif isinstance(metric, Gauge):
                mine = self.gauge(metric.name, metric.help, metric.labelnames)
            else:
                mine = self.counter(metric.name, metric.help, metric.labelnames)
            for labels, child in metric.samples():
                mine.labels(**labels).merge_from(child)

    def get(self, name: str) -> Optional[_Metric]:
        self.flush()
        return self._metrics.get(name)

    def collect(self) -> Iterator[_Metric]:
        self.flush()
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)


class _NoopChild:
    """Absorbs every instrument call; shared singleton."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NoopMetric(_NoopChild):
    """A metric that is also its own (only) child."""

    __slots__ = ()

    def labels(self, **labels: str) -> "_NoopMetric":
        return self

    def total(self) -> float:
        return 0.0

    def total_where(self, **labels: str) -> float:
        return 0.0

    def total_count(self) -> int:
        return 0

    def samples(self):
        return iter(())


_NOOP_METRIC = _NoopMetric()


class NoopRegistry:
    """Disabled twin of :class:`MetricsRegistry`: every lookup is free."""

    enabled = False

    def watch(self, bound) -> None:
        pass

    def flush(self) -> None:
        pass

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _NoopMetric:
        return _NOOP_METRIC

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _NoopMetric:
        return _NOOP_METRIC

    def histogram(self, name: str, help: str = "", labelnames=(), buckets=()) -> _NoopMetric:
        return _NOOP_METRIC

    def get(self, name: str) -> None:
        return None

    def collect(self):
        return iter(())

    def __len__(self) -> int:
        return 0


NOOP_REGISTRY = NoopRegistry()
