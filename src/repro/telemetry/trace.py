"""Nested span tracing for injection campaigns.

A campaign run is a tree of work: ``study → campaign → package → component
→ injection``.  Each :class:`Span` is stamped with **both** clocks the
simulator lives on -- the device's virtual millisecond clock (what the
experiment "experienced") and wall-clock ``time.perf_counter`` (what the
host actually spent) -- so a trace answers both "where did the virtual
hours go" and "where does the simulation burn host CPU".

Finished spans land in a bounded ring buffer: a paper-scale run makes
millions of injection spans, and keeping the newest window (plus a dropped
count) is the same discipline the logcat ring buffer applies to records.
"""

from __future__ import annotations

import contextlib
import itertools
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

#: Default finished-span ring capacity.
DEFAULT_SPAN_CAPACITY = 8192


class Span:
    """One timed unit of campaign work."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "attributes",
        "start_wall_s",
        "end_wall_s",
        "start_virtual_ms",
        "end_virtual_ms",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attributes: Dict[str, object],
        start_wall_s: float,
        start_virtual_ms: Optional[float],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self.start_wall_s = start_wall_s
        self.end_wall_s: Optional[float] = None
        self.start_virtual_ms = start_virtual_ms
        self.end_virtual_ms: Optional[float] = None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    @property
    def wall_duration_s(self) -> Optional[float]:
        if self.end_wall_s is None:
            return None
        return self.end_wall_s - self.start_wall_s

    @property
    def virtual_duration_ms(self) -> Optional[float]:
        if self.end_virtual_ms is None or self.start_virtual_ms is None:
            return None
        return self.end_virtual_ms - self.start_virtual_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attributes": dict(self.attributes),
            "start_wall_s": self.start_wall_s,
            "end_wall_s": self.end_wall_s,
            "start_virtual_ms": self.start_virtual_ms,
            "end_virtual_ms": self.end_virtual_ms,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} id={self.span_id} parent={self.parent_id}>"


class Tracer:
    """Produces nested spans and retains the newest *capacity* of them."""

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY, clock=None) -> None:
        if capacity < 1:
            raise ValueError(f"span capacity must be >= 1, got {capacity}")
        self._finished: Deque[Span] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._ids = itertools.count(1)
        self._dropped = 0
        self._clock = clock

    enabled = True

    def set_clock(self, clock) -> None:
        """Attach the device clock used to stamp virtual time."""
        self._clock = clock

    def _virtual_now(self, clock) -> Optional[float]:
        active = clock if clock is not None else self._clock
        return active.now_ms() if active is not None else None

    @contextlib.contextmanager
    def span(self, name: str, clock=None, **attributes: object) -> Iterator[Span]:
        """Open a span; nests under the innermost open span on this tracer.

        *clock* overrides the tracer's default clock for virtual-time
        stamping (the fuzzer passes the device clock of the device it is
        injecting into).
        """
        parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            attributes=dict(attributes),
            start_wall_s=time.perf_counter(),
            start_virtual_ms=self._virtual_now(clock),
        )
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end_wall_s = time.perf_counter()
            span.end_virtual_ms = self._virtual_now(clock)
            if len(self._finished) == self._finished.maxlen:
                self._dropped += 1
            self._finished.append(span)

    def absorb(self, spans: List[Span], dropped: int = 0) -> None:
        """Append finished spans from another tracer (a farm shard's).

        Span ids are re-issued from this tracer's sequence so merged traces
        stay unique; parent links are remapped within the absorbed batch and
        severed (→ root) when the parent fell outside it -- the same thing
        the ring buffer does to a span whose parent was evicted.  *dropped*
        carries the source tracer's own eviction count forward.
        """
        id_map: Dict[int, int] = {}
        for span in spans:
            new_id = next(self._ids)
            id_map[span.span_id] = new_id
            span.span_id = new_id
            if span.parent_id is not None:
                span.parent_id = id_map.get(span.parent_id)
            if len(self._finished) == self._finished.maxlen:
                self._dropped += 1
            self._finished.append(span)
        self._dropped += dropped

    # -- reads -----------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Finished spans, oldest first (within the retained window)."""
        return list(self._finished)

    @property
    def dropped(self) -> int:
        """Finished spans evicted by the ring buffer."""
        return self._dropped

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def __len__(self) -> int:
        return len(self._finished)


class _NoopSpan:
    """Shared inert span handed out by the disabled tracer."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled twin of :class:`Tracer`."""

    enabled = False
    dropped = 0
    open_depth = 0

    def set_clock(self, clock) -> None:
        pass

    @contextlib.contextmanager
    def span(self, name: str, clock=None, **attributes: object):
        yield _NOOP_SPAN

    def spans(self) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0


NOOP_TRACER = NoopTracer()
